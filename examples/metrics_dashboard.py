#!/usr/bin/env python
"""Meter a simulated BFS and build a telemetry dashboard from it.

``trace_profiling.py`` dissects one run's *timeline*; this example shows
the rest of the telemetry layer:

* a ``MetricsRegistry`` of labeled counters/gauges/histograms recorded
  through the engine, the comm channel and the wire codecs — and the
  reconciliation contract: counter totals equal the stats ledger's
  numbers exactly, not approximately,
* the OpenMetrics text exposition (what a Prometheus scrape would see),
* the JSONL event log and collapsed-stack flamegraph exports, and
* a cross-run performance trajectory: several run reports become
  per-metric time series with sparklines, a median-reference gate, and
  changepoint attribution.

Run::

    python examples/metrics_dashboard.py
"""

import tempfile
from pathlib import Path

import repro
from repro.obs import (
    MetricsRegistry,
    Tracer,
    analyze_reports,
    run_report,
    validate_collapsed_stacks,
    write_events_jsonl,
    write_flamegraph,
)

NPROCS = 16


def main() -> None:
    graph = repro.rmat_graph(13, 16, seed=21)
    source = int(graph.random_nonisolated_vertices(1, seed=1)[0])

    # -- one metered + traced run -------------------------------------
    registry = MetricsRegistry()
    tracer = Tracer()
    result = repro.run_bfs(
        graph, source, "1d-dirop", nprocs=NPROCS, machine="hopper",
        codec="delta-varint", sieve=True, tracer=tracer, metrics=registry,
    )
    print(f"=== {result.algorithm} on {result.nranks} ranks: "
          f"{result.time_total * 1e3:.3f} ms, {result.gteps():.3f} GTEPS ===")

    # Counters reconcile exactly against the stats ledger.
    for kind in ("alltoallv", "allreduce"):
        metered = registry.counter_value("comm_wire_words", kind=kind)
        ledger = result.stats.wire_words(kind)
        status = "==" if metered == ledger else "!="
        print(f"  comm_wire_words{{kind={kind}}} {metered:>10.0f} "
              f"{status} stats ledger {ledger:.0f}")
    dropped = registry.counter_value("sieve_dropped")
    cand = registry.counter_value("sieve_candidates")
    print(f"  sieve dropped {dropped:.0f} of {cand:.0f} candidates "
          f"({dropped / cand:.1%})")
    hist = registry.histogram_value("engine_frontier_size")
    print(f"  frontier sizes: {hist.count} observations, "
          f"mean {hist.sum / hist.count:.1f} vertices\n")

    # -- OpenMetrics exposition (first lines) -------------------------
    print("OpenMetrics exposition (head):")
    for line in registry.render_openmetrics().splitlines()[:8]:
        print(f"  {line}")

    # -- event log + flamegraph ---------------------------------------
    outdir = Path(tempfile.mkdtemp(prefix="repro-telemetry-"))
    events = write_events_jsonl(outdir / "events.jsonl", result)
    stacks = write_flamegraph(outdir / "profile.folded", result)
    validate_collapsed_stacks((outdir / "profile.folded").read_text())
    print(f"\nwrote {events} events to {outdir / 'events.jsonl'}")
    print(f"wrote {stacks} stacks to {outdir / 'profile.folded'} "
          "(load in https://speedscope.app)")

    # -- cross-run trajectory -----------------------------------------
    # Simulate a baseline history: the same workload, with the wire
    # codec silently reverted to raw at the third point.  At this small
    # scale raw is even a bit *faster* (encode compute dominates), so
    # the time gate stays green — but the changepoint scan still
    # pinpoints the 30%+ wire-volume blowup at exactly BENCH_02.
    series = []
    for i, codec in enumerate(["delta-varint", "delta-varint", "raw", "raw"]):
        r = repro.run_bfs(
            graph, source, "1d-dirop", nprocs=NPROCS, machine="hopper",
            codec=codec, sieve=True,
        )
        series.append((f"BENCH_{i:02d}", run_report(r)))
    trajectory = analyze_reports(series, threshold=0.02)
    print("\ncross-run trajectory (codec silently reverted at BENCH_02):")
    print(trajectory.render())
    (outdir / "trajectory.md").write_text(trajectory.render_markdown())
    print(f"\nwrote {outdir / 'trajectory.md'}")


if __name__ == "__main__":
    main()
