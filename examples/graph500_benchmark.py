#!/usr/bin/env python
"""Run the Graph 500 benchmark flow end to end.

The paper's evaluation follows the Graph 500 methodology (the authors
helped define the benchmark): construct an R-MAT graph, traverse from a
set of random search keys, validate every BFS tree, and report the
harmonic-mean TEPS the list ranks by.  This example runs the official
two-kernel flow at laptop scale on two modeled machines and compares the
algorithms' submissions.

Run::

    python examples/graph500_benchmark.py
"""

from repro.graph500 import run_graph500


def main() -> None:
    scale, nbfs = 14, 8
    print(f"Graph 500 flow: SCALE={scale}, edgefactor=16, NBFS={nbfs}")
    print("(downscaled from the official SCALE>=26 / NBFS=64)\n")

    submissions = []
    for algorithm, nprocs, machine in (
        ("1d", 16, "franklin"),
        ("2d", 16, "franklin"),
        ("2d-hybrid", 16, "hopper"),
    ):
        result = run_graph500(
            scale=scale,
            nprocs=nprocs,
            algorithm=algorithm,
            machine=machine,
            nbfs=nbfs,
            seed=7,
        )
        submissions.append(result)
        print(f"=== {algorithm} on {machine} "
              f"({result.nranks} simulated ranks) ===")
        print(result.report())
        print()

    print("ranking by harmonic-mean TEPS (the Graph 500 criterion):")
    for rank, res in enumerate(
        sorted(submissions, key=lambda r: -r.harmonic_mean_teps), start=1
    ):
        print(
            f"  {rank}. {res.algorithm:<10s} on {res.machine:<10s} "
            f"{res.harmonic_mean_teps / 1e6:8.1f} MTEPS"
        )
    print("\nall traversals validated against the Graph 500 rules "
          "(source/parent consistency, tree edges, level spans)")


if __name__ == "__main__":
    main()
