#!/usr/bin/env python
"""Profile a simulated BFS with the structured tracing subsystem.

Where ``timeline_debugging.py`` eyeballs collectives on an ASCII Gantt
chart, this example uses ``repro.obs`` to answer the profiling questions
programmatically:

* which rank and phase bound each BFS level (critical path),
* where the run's modeled time went per phase (the paper's Figure 6/8
  decompositions),
* how skewed each phase is across ranks (straggler attribution), and
* a Chrome ``trace_event`` file to inspect span-by-span in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.

Run::

    python examples/trace_profiling.py
"""

import tempfile
from pathlib import Path

import repro
from repro.obs import Tracer, check_critical_path, load_imbalance, run_report

NPROCS = 16


def main() -> None:
    graph = repro.rmat_graph(14, 16, seed=21)
    source = int(graph.random_nonisolated_vertices(1, seed=1)[0])
    tracer = Tracer()
    result = repro.run_bfs(
        graph, source, "1d-dirop", nprocs=NPROCS, machine="hopper",
        tracer=tracer,
    )

    # The critical path accounts for every modeled second: init plus the
    # straggler rank's phase decomposition of each level.
    path = check_critical_path(tracer, result.time_total)
    print(f"=== {result.algorithm} on {result.nranks} ranks: "
          f"{result.time_total * 1e3:.3f} ms, {result.gteps():.3f} GTEPS ===")
    print(f"{'level':>5} {'ms':>8} {'crit rank':>9}  bounding phase")
    for lc in path.levels:
        print(f"{lc.level:>5} {lc.duration * 1e3:>8.4f} {lc.rank:>9}  "
              f"{lc.bounding_phase}")

    print("\nper-phase critical-path totals (Figure 6/8 style):")
    totals = path.phase_totals()
    for phase in sorted(totals, key=totals.get, reverse=True):
        share = totals[phase] / result.time_total
        print(f"  {phase:<12} {totals[phase] * 1e6:>9.2f} us  "
              f"{'#' * int(40 * share)}")

    # Straggler attribution: the most skewed phases across ranks.
    records = sorted(
        load_imbalance(tracer), key=lambda r: r.imbalance, reverse=True
    )
    print("\nmost imbalanced (level, phase) pairs [max/mean across ranks]:")
    for rec in records[:5]:
        print(f"  level {rec.level:<2} {rec.phase:<12} "
              f"{rec.imbalance:5.2f}x  straggler rank {rec.straggler}")

    # Artifacts: the Chrome trace for Perfetto and the run report that
    # `repro-bench perf-diff` gates on.
    outdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    trace_path = repro.write_chrome_trace(outdir / "trace.json", tracer)
    report_path = repro.write_run_report(
        outdir / "report.json", run_report(result)
    )
    print(f"\nwrote {trace_path} (open in https://ui.perfetto.dev)")
    print(f"wrote {report_path} (compare runs: repro-bench perf-diff A B)")


if __name__ == "__main__":
    main()
