#!/usr/bin/env python
"""Quickstart: generate a Graph 500 R-MAT graph and traverse it with every
algorithm in the paper, validating against the serial reference.

Run::

    python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. A Graph 500-style R-MAT graph: skewed degrees, low diameter,
    #    randomly relabeled for load balance (Section 4.4).
    scale, edgefactor = 15, 16
    graph = repro.rmat_graph(scale, edgefactor, seed=42)
    print(f"graph: {graph.name}")
    print(f"  vertices : {graph.n:,}")
    print(f"  input edges (TEPS denominator): {graph.m_input:,}")
    print(f"  stored adjacencies (symmetric): {graph.nnz:,}")
    print(f"  max degree: {graph.degrees().max():,} "
          f"(mean {graph.degrees().mean():.1f} — the R-MAT skew)")

    # 2. Pick a source the Graph 500 way: non-isolated, inside the giant
    #    component.
    source = int(graph.random_nonisolated_vertices(1, seed=7)[0])
    print(f"\nsource vertex: {source}")

    # 3. Serial reference (Algorithm 1).
    ref = repro.run_bfs(graph, source, algorithm="serial")
    reached = int((ref.levels >= 0).sum())
    print(f"serial BFS: {ref.nlevels} levels, {reached:,} vertices reached, "
          f"{ref.m_traversed:,} edges traversed")

    # 4. Every distributed variant, functionally simulated, validated
    #    against the Graph 500 rules and compared with the reference.
    print("\nalgorithm      ranks  levels  matches serial")
    for algo, nprocs in [
        ("1d", 8),
        ("1d-hybrid", 4),
        ("2d", 16),
        ("2d-hybrid", 9),
        ("pbgl", 8),
        ("graph500-ref", 8),
    ]:
        res = repro.run_bfs(graph, source, algo, nprocs=nprocs, validate=True)
        same = np.array_equal(res.levels, ref.levels) and np.array_equal(
            res.parents, ref.parents
        )
        print(f"{algo:<14s} {res.nranks:>5d}  {res.nlevels:>6d}  {same}")

    # 5. The same traversal *timed* under the paper's machine models.
    print("\nmodeled on Franklin (Cray XT4) at 16 simulated ranks:")
    for algo in ("1d", "2d"):
        res = repro.run_bfs(graph, source, algo, nprocs=16, machine="franklin")
        print(
            f"  {algo}: {res.time_total * 1e3:7.2f} ms total, "
            f"{res.time_comm * 1e3:6.2f} ms MPI "
            f"({100 * res.time_comm / res.time_total:4.1f}%), "
            f"{res.gteps():.3f} GTEPS"
        )
    print("\n(the 2D fold exchanges far less data even at 16 ranks; run "
          "`repro-bench fig5 fig7` for the paper-scale projections, where "
          "the machine balance decides the winner)")


if __name__ == "__main__":
    main()
