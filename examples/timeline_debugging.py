#!/usr/bin/env python
"""See a schedule: virtual-time Gantt charts of the 2D algorithm.

Figure 4 of the paper is a heat map of time spent in MPI under two vector
distributions.  The simulator can show the *schedule itself*: with
``record_timeline=True`` every collective leaves a span on its rank's
virtual clock, and the ASCII renderer makes load imbalance visible at a
glance — watch the off-diagonal ranks sit inside collectives (waiting for
the diagonal's merge) under the 1D vector distribution, and the balanced
rows under the 2D distribution.

For structured profiling — critical paths, per-phase time decompositions,
straggler attribution, Chrome traces — use the ``repro.obs`` tracing
subsystem instead; see ``examples/trace_profiling.py`` and
``docs/observability.md``.

Run::

    python examples/timeline_debugging.py
"""

import numpy as np

import repro
from repro.core.bfs2d import bfs_2d, build_2d_blocks
from repro.core.partition import Decomp2D
from repro.model import FRANKLIN, NetworkCostModel
from repro.mpsim import render_timeline, run_spmd


def traverse(graph, source, side, diagonal):
    machine = FRANKLIN.with_overrides(net_latency=1e-9)  # isolate imbalance
    decomp = Decomp2D(graph.n, side, diagonal_vectors=diagonal)
    blocks = build_2d_blocks(graph.csr, decomp)
    return run_spmd(
        side * side,
        bfs_2d,
        blocks,
        decomp,
        source,
        machine=machine,
        cost_model=NetworkCostModel(machine, total_ranks=side * side),
        record_timeline=True,
    )


def main() -> None:
    side = 4
    graph = repro.rmat_graph(14, 16, seed=21)
    source = int(
        np.asarray(graph.to_internal(graph.random_nonisolated_vertices(1, 1)[0]))
    )

    for diagonal, label in ((True, "1D (diagonal-only) vector distribution"),
                            (False, "2D vector distribution")):
        res = traverse(graph, source, side, diagonal)
        print(f"\n=== {label} — {side}x{side} grid, R-MAT scale 14 ===")
        print(render_timeline(res.stats, width=70))
        diag = [i * side + i for i in range(side)]
        off = [r for r in range(side * side) if r not in diag]
        wait_off = np.mean([res.stats.clocks[r].mpi_wait_time for r in off])
        wait_diag = np.mean([res.stats.clocks[r].mpi_wait_time for r in diag])
        print(f"mean idle: off-diagonal {wait_off * 1e6:7.1f} us, "
              f"diagonal {wait_diag * 1e6:7.1f} us "
              f"(ratio {wait_off / max(wait_diag, 1e-12):.2f})")
    print("\n(the paper's Figure 4 reports the same contrast as a heat map "
          "of normalized MPI time on a 16x16 grid)")


if __name__ == "__main__":
    main()
