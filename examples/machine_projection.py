#!/usr/bin/env python
"""Project BFS performance onto the paper's supercomputers.

Uses the calibrated Section 5 alpha-beta model to answer the questions the
paper's evaluation asks: which algorithm should I run on this machine at
this scale, where is the 1D/2D crossover, and what does the 40,000-core
headline configuration look like?

Run::

    python examples/machine_projection.py
"""

from repro.bench.harness import projected_costs, projected_gteps
from repro.model import FRANKLIN, HOPPER

ALGOS = ("1d", "1d-hybrid", "2d", "2d-hybrid")


def sweep(machine, name, scale, edgefactor, cores_list):
    print(f"\n{name} — R-MAT scale {scale}, edgefactor {edgefactor} (GTEPS)")
    print(f"{'cores':>7}  " + "  ".join(f"{a:>10}" for a in ALGOS) + "   best")
    for cores in cores_list:
        rates = {a: projected_gteps(a, scale, edgefactor, cores, machine) for a in ALGOS}
        best = max(rates, key=rates.get)
        print(
            f"{cores:>7}  "
            + "  ".join(f"{rates[a]:>10.2f}" for a in ALGOS)
            + f"   {best}"
        )


def main() -> None:
    sweep(FRANKLIN, "Franklin (Cray XT4)", 29, 16, [512, 1024, 2048, 4096])
    sweep(HOPPER, "Hopper (Cray XE6)", 32, 16, [5040, 10008, 20000, 40000])

    print("\nheadline configuration: 2D-hybrid, scale 32, 40,000 Hopper cores")
    costs = projected_costs("2d-hybrid", 32, 16, 40000, HOPPER)
    rate = projected_gteps("2d-hybrid", 32, 16, 40000, HOPPER)
    print(f"  modeled traversal time: {costs.total:.2f} s")
    print(f"  computation      : {costs.comp:.2f} s")
    print(f"  expand (Allgather): {costs.ag:.2f} s")
    print(f"  fold (Alltoall)  : {costs.a2a:.2f} s")
    print(f"  transpose + sync : {costs.transpose + costs.sync:.2f} s")
    print(f"  rate             : {rate:.1f} GTEPS   (paper: 17.8 GTEPS)")

    print("\nwhy 2D wins on Hopper but not Franklin: the flat 1D all-to-all")
    for machine, name, scale, cores in (
        (FRANKLIN, "Franklin", 29, 4096),
        (HOPPER, "Hopper", 32, 20000),
    ):
        c = projected_costs("1d", scale, 16, cores, machine)
        print(
            f"  {name:>8} @ {cores:>6} cores: "
            f"{100 * c.comm / c.total:5.1f}% of flat-1D time is MPI"
        )


if __name__ == "__main__":
    main()
