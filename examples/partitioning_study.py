#!/usr/bin/env python
"""Partitioning study: randomization vs locality, measured on the wire.

Section 4.4 justifies randomly shuffling vertex ids: "this leads to each
process getting roughly the same number of vertices and edges ... the
downside is that the edge cut is potentially as high as an average random
balanced cut".  This example measures both sides of that trade with exact
simulated traffic — per-rank load, edge cut, all-to-all volume, and the
rank-to-rank communication matrix — and shows why the answer differs
between a structured web crawl and R-MAT.

Run::

    python examples/partitioning_study.py
"""

import numpy as np

import repro
from repro.graphs import Graph, build_csr
from repro.graphs.ordering import edge_cut, rcm_ordering
from repro.graphs.permutation import apply_permutation
from repro.mpsim import run_spmd
from repro.core.bfs1d import bfs_1d
from repro.core.partition import Partition1D

NPROCS = 8


def as_graph(csr, name):
    return Graph(csr=csr, m_input=csr.nnz // 2, perm=None, name=name)


def relabel(csr, perm):
    rows = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
    src, dst = apply_permutation(perm, rows, csr.indices)
    return build_csr(csr.n, src, dst, symmetrize=False, dedup=False)


def study(name, natural_csr):
    print(f"\n=== {name} ({natural_csr.n:,} vertices, "
          f"{natural_csr.nnz // 2:,} edges) on {NPROCS} ranks ===")
    rng = np.random.default_rng(0)
    orderings = {
        "natural": natural_csr,
        "random (paper)": relabel(
            natural_csr, rng.permutation(natural_csr.n).astype(np.int64)
        ),
        "RCM": relabel(natural_csr, rcm_ordering(natural_csr)),
    }
    print(f"{'ordering':<16} {'edge cut':>9} {'load max/mean':>14} "
          f"{'a2a words':>10} {'traffic spread':>15}")
    for label, csr in orderings.items():
        part = Partition1D(csr.n, NPROCS)
        deg = csr.degrees()
        per_rank = np.array(
            [deg[part.range_of(r)[0] : part.range_of(r)[1]].sum()
             for r in range(NPROCS)]
        )
        graph = as_graph(csr, label)
        source = int(graph.random_nonisolated_vertices(1, seed=1)[0])
        res = run_spmd(
            NPROCS, bfs_1d, csr, source, record_peers=True
        )
        words = res.stats.words_sent("alltoallv")
        matrix = res.stats.comm_matrix()
        off = matrix[~np.eye(NPROCS, dtype=bool)]
        spread = off.max() / max(off[off > 0].min(), 1) if off.any() else 0
        print(
            f"{label:<16} {edge_cut(csr, NPROCS):>9.3f} "
            f"{per_rank.max() / max(per_rank.mean(), 1):>14.2f} "
            f"{int(words):>10,} {spread:>14.1f}x"
        )


def main() -> None:
    crawl = repro.webcrawl_graph(12_000, n_hosts=24, seed=2, shuffle=False)
    study("web crawl", crawl.csr)
    rmat = repro.rmat_graph(13, 16, seed=2, shuffle=False)
    study("R-MAT scale 13", rmat.csr)

    print(
        "\nreading the table: randomization buys a tight load balance and"
        "\nuniform rank-to-rank traffic at a near-worst-case cut.  On the"
        "\ncrawl, locality-preserving orders move ~4-9x fewer words.  On"
        "\nR-MAT the cut barely moves ('the graphs lack good separators',"
        "\nSec. 6) while skew wrecks the balance (3-4x) and concentrates"
        "\ntraffic on hot rank pairs (>100x spread) — which is why the"
        "\npaper randomizes, and the Graph 500 benchmark does too."
    )


if __name__ == "__main__":
    main()
