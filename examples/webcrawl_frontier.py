#!/usr/bin/env python
"""Crawl-frontier exploration of a high-diameter web graph.

The paper's one real-world dataset (the ``uk-union`` crawl) behaves
completely unlike R-MAT: ~140 BFS levels instead of ~7, tiny per-level
frontiers, and communication that is a small fraction of the runtime
(Figure 11).  This example builds the synthetic stand-in crawl, contrasts
its traversal profile with R-MAT, and shows why the hybrid variant stops
paying off on this workload.

Run::

    python examples/webcrawl_frontier.py
"""

import numpy as np

import repro


def frontier_profile(graph, source, algo="2d", nprocs=16, **kwargs):
    res = repro.run_bfs(graph, source, algo, nprocs=nprocs, **kwargs)
    reached = res.levels >= 0
    sizes = np.bincount(res.levels[reached], minlength=res.nlevels + 1)
    return res, sizes


def main() -> None:
    crawl = repro.webcrawl_graph(60_000, n_hosts=120, host_reach=1, seed=11)
    rmat = repro.rmat_graph(15, 16, seed=11)

    print("traversal profiles (2D algorithm, 16 simulated ranks)")
    print("=" * 60)
    for name, graph, source in (
        ("web crawl (uk-union stand-in)", crawl, 0),
        ("R-MAT scale 15", rmat, int(rmat.random_nonisolated_vertices(1, 1)[0])),
    ):
        res, sizes = frontier_profile(graph, source)
        peak = int(sizes.max())
        print(f"\n{name}:")
        print(f"  levels: {res.nlevels}   reached: {(res.levels >= 0).sum():,}")
        print(f"  peak frontier: {peak:,} vertices "
              f"({100.0 * peak / graph.n:.1f}% of the graph)")
        bar_max = 50
        shown = [0, 1, 2] + list(
            range(5, res.nlevels, max(1, res.nlevels // 8))
        )
        for level in sorted(set(shown)):
            if level < sizes.size:
                bar = "#" * max(1, int(bar_max * sizes[level] / peak))
                print(f"  level {level:>3}: {bar} {sizes[level]:,}")

    # Why the hybrid loses on the crawl: per-level thread overhead times
    # ~140 levels, with almost no communication to save (Figure 11).
    print("\nflat vs hybrid 2D on the crawl (Hopper model, matched cores)")
    print("=" * 60)
    machine = repro.HOPPER.with_overrides(
        net_latency=repro.HOPPER.net_latency / 1000.0,
        nic_words_per_sec=repro.HOPPER.nic_words_per_sec * 50.0,
    )
    flat = repro.run_bfs(crawl, 0, "2d", nprocs=25, machine=machine)
    hybrid = repro.run_bfs(
        crawl, 0, "2d-hybrid", nprocs=4, threads=6, machine=machine
    )
    for label, res in (("flat MPI (25 ranks)", flat), ("hybrid (4 ranks x 6 threads)", hybrid)):
        print(
            f"  {label:<30s} {res.time_total * 1e3:7.3f} ms total, "
            f"MPI {100 * res.time_comm / res.time_total:5.2f}%"
        )
    print("\n(communication is a tiny fraction on this workload, so the "
          "hybrid's intra-node overheads are pure cost — Figure 11)")


if __name__ == "__main__":
    main()
