#!/usr/bin/env python
"""Degrees-of-separation analysis of a synthetic social network.

The paper's introduction motivates BFS with social-interaction data:
hop-distance distributions, reachability, and centrality-style queries all
reduce to breadth-first traversals.  This example builds an R-MAT "social
network" (skewed degrees = celebrities and lurkers), runs distributed BFS
from several seed users, and reports the small-world statistics.

Run::

    python examples/social_network_analysis.py
"""

import numpy as np

import repro


def main() -> None:
    # A scale-16 R-MAT graph is a decent synthetic stand-in for a social
    # network: heavy-tailed degrees and a tiny diameter.
    graph = repro.rmat_graph(16, 16, seed=2024)
    degrees = graph.degrees()
    print(f"social network: {graph.n:,} users, {graph.m_input:,} follow edges")
    top = np.sort(degrees)[-5:][::-1]
    print(f"most-connected users (degree): {', '.join(map(str, top))}")
    print(f"median degree: {int(np.median(degrees[degrees > 0]))}")

    seeds = graph.random_nonisolated_vertices(4, seed=1)
    print(f"\nseed users: {list(map(int, seeds))}")

    for seed in seeds:
        # Production-style setting: the 2D-hybrid algorithm on a simulated
        # 6-threads-per-rank Hopper allocation.
        res = repro.run_bfs(
            graph, int(seed), "2d-hybrid", nprocs=16, threads=6, machine="hopper"
        )
        reached = res.levels >= 0
        reachable_pct = 100.0 * reached.mean()
        hops = res.levels[reached]
        histogram = np.bincount(hops, minlength=res.nlevels + 1)
        mean_hops = hops.mean()
        print(
            f"\nfrom user {int(seed)}: reaches {reachable_pct:.1f}% of the "
            f"network, mean separation {mean_hops:.2f} hops, "
            f"eccentricity {hops.max()}"
        )
        print("  hop histogram:", end=" ")
        for level, count in enumerate(histogram):
            if count:
                print(f"{level}:{count:,}", end="  ")
        print(f"\n  modeled traversal: {res.time_total * 1e3:.2f} ms "
              f"({res.gteps():.3f} GTEPS on the Hopper model)")

    # Who is "between" two users?  The BFS tree gives shortest paths.
    a, b = int(seeds[0]), int(seeds[1])
    res = repro.run_bfs(graph, a, "2d", nprocs=16)
    if res.levels[b] > 0:
        path = [b]
        while path[-1] != a:
            path.append(int(res.parents[path[-1]]))
        print(f"\nshortest path {a} -> {b} ({res.levels[b]} hops): "
              f"{' -> '.join(map(str, reversed(path)))}")
    else:
        print(f"\nusers {a} and {b} are not connected")


if __name__ == "__main__":
    main()
