"""Setup shim: enables legacy editable installs on systems without `wheel`.

All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
