"""Tests for the alpha-beta machine model (Section 5)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.model import (
    CARVER,
    FRANKLIN,
    HOPPER,
    Charger,
    NetworkCostModel,
    RmatVolumeModel,
    alpha_L,
    beta_a2a,
    beta_ag,
    cost_1d,
    cost_2d,
    gteps,
)
from repro.model.machine import get_machine
from repro.model.memory import int_op_cost, random_access_cost, stream_cost
from repro.model.network import latency_a2a, latency_tree
from repro.model.projection import fit_dedup_curve


class TestMachineConfigs:
    def test_registry_lookup(self):
        assert get_machine("franklin") is FRANKLIN
        assert get_machine("HOPPER") is HOPPER
        assert get_machine(CARVER) is CARVER
        assert get_machine(None) is None
        with pytest.raises(ValueError, match="unknown machine"):
            get_machine("roadrunner")

    def test_paper_hardware_ratios(self):
        # Hopper has 6x the cores per node of Franklin but nowhere near 6x
        # the per-node network bandwidth — the "cores to bandwidth ratio
        # increases" regime motivating the 2D algorithm.
        franklin_bw_per_core = FRANKLIN.nic_words_per_sec / FRANKLIN.cores_per_node
        hopper_bw_per_core = HOPPER.nic_words_per_sec / HOPPER.cores_per_node
        assert hopper_bw_per_core < 0.5 * franklin_bw_per_core
        # Hopper's MagnyCours is faster at integer work (Section 6).
        assert HOPPER.int_ops_per_sec > FRANKLIN.int_ops_per_sec

    def test_nodes_for_cores(self):
        assert FRANKLIN.nodes_for_cores(4096) == 1024
        assert FRANKLIN.nodes_for_cores(5) == 2
        assert HOPPER.nodes_for_cores(1) == 1

    def test_with_overrides(self):
        fat = FRANKLIN.with_overrides(nic_words_per_sec=1e12)
        assert fat.nic_words_per_sec == 1e12
        assert fat.cores_per_node == FRANKLIN.cores_per_node
        assert FRANKLIN.nic_words_per_sec != 1e12  # original untouched


class TestMemoryModel:
    def test_latency_ladder_monotone(self):
        sizes = np.logspace(1, 9, 50)
        lats = [alpha_L(s, FRANKLIN) for s in sizes]
        assert all(b >= a for a, b in zip(lats, lats[1:]))

    def test_cache_resident_vs_dram(self):
        assert alpha_L(100, FRANKLIN) == FRANKLIN.lat_l1
        # Very large working sets land in the TLB-limited regime.
        assert alpha_L(10**10, FRANKLIN) == pytest.approx(
            FRANKLIN.tlb_penalty * FRANKLIN.lat_dram
        )
        assert alpha_L(32 * FRANKLIN.l3_words, FRANKLIN) == pytest.approx(
            FRANKLIN.lat_dram
        )
        # Working sets between cache levels interpolate strictly between.
        mid = alpha_L(FRANKLIN.l1_words * 3, FRANKLIN)
        assert FRANKLIN.lat_l1 < mid < FRANKLIN.lat_l2

    def test_working_set_drives_1d_vs_2d_gap(self):
        # The paper's explanation of 2D's higher computation time: random
        # accesses into n/pr (2D) cost more than into n/p (1D).
        n = 2**29
        p = 4096
        assert alpha_L(n / math.isqrt(p), FRANKLIN) > alpha_L(n / p, FRANKLIN)

    def test_cost_helpers_validate(self):
        with pytest.raises(ValueError):
            stream_cost(-1, FRANKLIN)
        with pytest.raises(ValueError):
            random_access_cost(-1, 10, FRANKLIN)
        with pytest.raises(ValueError):
            int_op_cost(-5, FRANKLIN)
        with pytest.raises(ValueError):
            alpha_L(-1, FRANKLIN)


class TestNetworkModel:
    def test_a2a_bandwidth_degrades_with_scale(self):
        # 3D torus: per-node all-to-all share shrinks ~ p^(-1/3).
        b_small = beta_a2a(FRANKLIN, 256, ranks_per_node=4)
        b_large = beta_a2a(FRANKLIN, 16384, ranks_per_node=4)
        assert b_large > 2 * b_small

    def test_allgather_degrades_slower_than_a2a(self):
        small, large = 256, 16384
        a2a_ratio = beta_a2a(FRANKLIN, large, 4) / beta_a2a(FRANKLIN, small, 4)
        ag_ratio = beta_ag(FRANKLIN, large, 4) / beta_ag(FRANKLIN, small, 4)
        assert ag_ratio < a2a_ratio

    def test_fewer_ranks_per_node_means_more_bandwidth(self):
        # The hybrid advantage: 1 rank per node owns the whole NIC.
        assert beta_a2a(FRANKLIN, 1024, 1) < beta_a2a(FRANKLIN, 1024, 4)

    def test_carver_fat_tree_no_degradation(self):
        assert beta_a2a(CARVER, 64, 8) == pytest.approx(
            beta_a2a(CARVER, 4096, 8)
        )

    def test_latency_terms(self):
        assert latency_a2a(FRANKLIN, 1024) == pytest.approx(1024 * FRANKLIN.net_latency)
        assert latency_tree(FRANKLIN, 1024) == pytest.approx(10 * FRANKLIN.net_latency)


class TestNetworkCostModel:
    def test_collective_kinds_priced(self):
        model = NetworkCostModel(FRANKLIN, total_ranks=64)
        for kind in ("alltoallv", "allgatherv", "allreduce", "bcast", "barrier"):
            assert model.cost(kind, 64, 1000.0, 1000.0) > 0
        with pytest.raises(ValueError, match="unknown collective"):
            model.cost("alltoallw", 4, 0, 0)

    def test_volume_increases_cost(self):
        model = NetworkCostModel(HOPPER, total_ranks=64)
        assert model.cost("alltoallv", 64, 1e6, 1e6) > model.cost(
            "alltoallv", 64, 1e3, 1e3
        )

    def test_threads_reduce_ranks_per_node(self):
        flat = NetworkCostModel(HOPPER, threads=1, total_ranks=1024)
        hybrid = NetworkCostModel(HOPPER, threads=6, total_ranks=1024)
        assert hybrid.ranks_per_node < flat.ranks_per_node
        assert hybrid.cost("alltoallv", 1024, 1e6, 1e6) < flat.cost(
            "alltoallv", 1024, 1e6, 1e6
        )

    def test_p2p_cost(self):
        model = NetworkCostModel(FRANKLIN, total_ranks=4)
        assert model.p2p_cost(0) == pytest.approx(FRANKLIN.net_latency)
        assert model.p2p_cost(1e6) > model.p2p_cost(1e3)

    def test_requires_machine(self):
        with pytest.raises(ValueError):
            NetworkCostModel(None)  # type: ignore[arg-type]


class _FakeComm:
    """Minimal clock-bearing stand-in for Charger unit tests."""

    def __init__(self):
        from repro.mpsim.clock import RankClock

        self.clock = RankClock()

    def charge_compute(self, seconds, **counters):
        self.clock.charge_compute(seconds, **counters)

    def count(self, **counters):
        self.clock.count(**counters)


class TestCharger:
    def test_disabled_records_counters_only(self):
        comm = _FakeComm()
        charger = Charger(comm, machine=None)
        charger.stream(1000, edges_scanned=500)
        charger.random(10, ws_words=1000)
        assert comm.clock.time == 0.0
        assert comm.clock.counters["edges_scanned"] == 500
        assert comm.clock.counters["random_accesses"] == 10

    def test_enabled_charges_time(self):
        comm = _FakeComm()
        charger = Charger(comm, machine=FRANKLIN)
        charger.stream(10**6)
        assert comm.clock.compute_time > 0

    def test_threads_divide_parallel_work(self):
        flat, hybrid = _FakeComm(), _FakeComm()
        # Bulk work (far above the parallel grain) gets the full speedup.
        Charger(flat, machine=FRANKLIN, threads=1).stream(10**9)
        Charger(hybrid, machine=FRANKLIN, threads=4).stream(10**9)
        assert hybrid.clock.compute_time < flat.clock.compute_time
        from repro.model.costmodel import DEFAULT_THREAD_EFFICIENCY

        assert flat.clock.compute_time / hybrid.clock.compute_time == pytest.approx(
            4 * DEFAULT_THREAD_EFFICIENCY, rel=0.01
        )

    def test_tiny_charges_gain_nothing_from_threads(self):
        # Below the parallel grain, threading a microscopic loop is a wash
        # (the fig-11 / high-diameter mechanism).
        flat, hybrid = _FakeComm(), _FakeComm()
        Charger(flat, machine=FRANKLIN, threads=1).stream(100)
        Charger(hybrid, machine=FRANKLIN, threads=4).stream(100)
        assert hybrid.clock.compute_time == pytest.approx(
            flat.clock.compute_time, rel=0.01
        )

    def test_serial_work_not_divided(self):
        comm = _FakeComm()
        charger = Charger(comm, machine=FRANKLIN, threads=4)
        charger.stream(10**6, parallel=False)
        reference = _FakeComm()
        Charger(reference, machine=FRANKLIN, threads=1).stream(10**6)
        assert comm.clock.compute_time == pytest.approx(reference.clock.compute_time)

    def test_thread_merge_only_with_threads(self):
        flat = _FakeComm()
        Charger(flat, machine=FRANKLIN, threads=1).thread_merge(1000)
        assert flat.clock.compute_time == 0.0
        hybrid = _FakeComm()
        Charger(hybrid, machine=FRANKLIN, threads=4).thread_merge(1000)
        assert hybrid.clock.compute_time > 0

    def test_sort_charges_nlogn(self):
        comm = _FakeComm()
        charger = Charger(comm, machine=FRANKLIN)
        charger.sort(1024)
        expected = 1024 * 10 / FRANKLIN.int_ops_per_sec
        assert comm.clock.compute_time == pytest.approx(expected)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Charger(_FakeComm(), threads=0)
        with pytest.raises(ValueError):
            Charger(_FakeComm(), thread_efficiency=0.0)


class TestAnalyticCosts:
    def test_gteps(self):
        assert gteps(1e9, 1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            gteps(1e9, 0.0)

    def test_1d_cost_structure(self):
        model = RmatVolumeModel()
        vol = model.volumes_1d(2**29, 16 * 2**29, p_cores=4096)
        costs = cost_1d(vol, 4096, FRANKLIN)
        assert costs.comp > 0 and costs.a2a > 0 and costs.sync > 0
        assert costs.total == pytest.approx(costs.comp + costs.comm)
        assert costs.ag == 0.0  # 1D has no expand phase

    def test_2d_cost_structure(self):
        model = RmatVolumeModel()
        vol = model.volumes_2d(2**29, 16 * 2**29, p_cores=4096)
        costs = cost_2d(vol, 4096, FRANKLIN)
        assert costs.ag > 0 and costs.a2a > 0 and costs.transpose > 0

    def test_2d_communicates_less_than_1d(self):
        # The paper's headline: 30-60% lower communication for 2D.
        model = RmatVolumeModel()
        n, m, p = 2**29, 16 * 2**29, 4096
        c1 = cost_1d(model.volumes_1d(n, m, p), p, FRANKLIN)
        c2 = cost_2d(model.volumes_2d(n, m, p), p, FRANKLIN)
        assert c2.comm < c1.comm

    def test_2d_computes_more_than_1d_on_franklin(self):
        # ... while paying more in local computation (larger working sets).
        model = RmatVolumeModel()
        n, m, p = 2**29, 16 * 2**29, 1024
        c1 = cost_1d(model.volumes_1d(n, m, p), p, FRANKLIN)
        c2 = cost_2d(model.volumes_2d(n, m, p), p, FRANKLIN)
        assert c2.comp > c1.comp

    def test_hybrid_reduces_both_components(self):
        model = RmatVolumeModel()
        n, m, p = 2**32, 16 * 2**32, 20000
        flat = cost_1d(model.volumes_1d(n, m, p), p, HOPPER)
        hybrid = cost_1d(model.volumes_1d(n, m, p, threads=6), p, HOPPER, threads=6)
        assert hybrid.comm < flat.comm

    def test_heap_vs_spa_kernels_differ(self):
        model = RmatVolumeModel()
        vol = model.volumes_2d(2**29, 16 * 2**29, 1024)
        spa = cost_2d(vol, 1024, HOPPER, spmsv_kernel="spa")
        heap = cost_2d(vol, 1024, HOPPER, spmsv_kernel="heap")
        assert spa.comp != heap.comp
        with pytest.raises(ValueError, match="unknown spmsv"):
            cost_2d(vol, 1024, HOPPER, spmsv_kernel="radix")


class TestVolumeModel:
    def test_survival_monotone_and_capped(self):
        model = RmatVolumeModel()
        survs = [model.survival(p) for p in (1, 16, 256, 4096, 10**6)]
        assert all(b >= a for a, b in zip(survs, survs[1:]))
        assert survs[-1] == 1.0
        with pytest.raises(ValueError):
            model.survival(0)

    def test_2d_fold_survival_uses_grid_side(self):
        # 2D's fold deduplicates among only sqrt(p) parties, so it ships
        # less than 1D at the same core count — the paper's key mechanism.
        model = RmatVolumeModel()
        n, m, p = 2**29, 16 * 2**29, 4096
        v1 = model.volumes_1d(n, m, p)
        v2 = model.volumes_2d(n, m, p)
        assert v2.a2a_words < v1.a2a_words

    def test_nlevels_grows_with_sparsity(self):
        model = RmatVolumeModel()
        assert model.nlevels(2**31, 4) > model.nlevels(2**29, 16) > model.nlevels(2**27, 64)

    def test_dispatch(self):
        model = RmatVolumeModel()
        assert model.volumes("1d-hybrid", 2**20, 2**24, 64, threads=4).nlevels > 0
        assert model.volumes("2d", 2**20, 2**24, 64).ag_words > 0
        with pytest.raises(ValueError, match="unknown algorithm"):
            model.volumes("serial", 2**20, 2**24, 64)

    def test_fit_dedup_curve_recovers_power_law(self):
        parties = np.array([4, 16, 64, 256])
        survival = 0.3 * parties**0.25
        s1, gamma = fit_dedup_curve(parties, survival)
        assert s1 == pytest.approx(0.3, rel=1e-6)
        assert gamma == pytest.approx(0.25, rel=1e-6)
        with pytest.raises(ValueError):
            fit_dedup_curve(np.array([4]), np.array([0.5]))


class TestMachineValidation:
    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError, match="must be positive"):
            FRANKLIN.with_overrides(nic_words_per_sec=0.0)
        with pytest.raises(ValueError, match="must be positive"):
            FRANKLIN.with_overrides(lat_dram=-1.0)

    def test_rejects_bad_topology(self):
        with pytest.raises(ValueError, match="exponent"):
            FRANKLIN.with_overrides(torus_bisection_exponent=2.0)
        with pytest.raises(ValueError, match="reference_nodes"):
            FRANKLIN.with_overrides(torus_reference_nodes=0)

    def test_rejects_bad_cores_and_tlb(self):
        with pytest.raises(ValueError, match="cores_per_node"):
            FRANKLIN.with_overrides(cores_per_node=0)
        with pytest.raises(ValueError, match="tlb_penalty"):
            FRANKLIN.with_overrides(tlb_penalty=0.5)

    def test_predefined_machines_valid(self):
        # Construction would have raised otherwise; touch all three.
        for machine in (FRANKLIN, HOPPER, CARVER):
            assert machine.nodes_for_cores(machine.cores_per_node) == 1
