"""Round-trip property tests for the ``repro.comm`` wire-format codecs.

Every codec must reproduce the shipped (vertex, parent) multiset up to
the receiver-side (select, max) dedup — including the empty buffer, a
single element, adversarial delta gaps, and ids at the top of the int64
range.  The varint primitives get their own exhaustive round-trips since
every other codec property rests on them.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    CODECS,
    AutoCodec,
    BitmapCodec,
    DeltaVarintCodec,
    RawCodec,
    VertexRange,
    decode_varints,
    encode_varints,
    get_codec,
    varint_sizes,
)
from repro.comm.varint import MAX_VARINT_BYTES, bytes_to_words, words_to_bytes
from repro.core.frontier import dedup_candidates

MAX_ID = 2**63 - 1
ALL_CODECS = sorted(CODECS)
#: Codecs that preserve the pair multiset exactly (reordering allowed).
#: bitmap/auto may instead collapse duplicates with the receiver's
#: (select, max) rule, which the BFS applies anyway.
MULTISET_CODECS = ("raw", "delta-varint")

int64s = st.integers(-(2**63), MAX_ID)
vertex_ids = st.integers(0, MAX_ID)


def _norm(targets, parents):
    """Order-insensitive canonical form of a pair multiset."""
    targets = np.asarray(targets, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    order = np.lexsort((parents, targets))
    return targets[order], parents[order]


def assert_pairs_roundtrip(name, targets, parents, ctx):
    codec = get_codec(name)
    targets = np.asarray(targets, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    wire = codec.encode_pairs(targets, parents, ctx)
    assert wire.dtype == np.int64
    assert (wire.size == 0) == (targets.size == 0)
    got_t, got_p = codec.decode_pairs(wire, ctx)
    if name in MULTISET_CODECS:
        want = _norm(targets, parents)
        got = _norm(got_t, got_p)
    else:
        want = dedup_candidates(targets, parents)
        got = dedup_candidates(got_t, got_p)
    assert np.array_equal(got[0], want[0]), name
    assert np.array_equal(got[1], want[1]), name


@st.composite
def pair_case(draw):
    """Unranged pairs: full-range vertex ids, arbitrary int64 parents."""
    n = draw(st.integers(0, 60))
    targets = draw(st.lists(vertex_ids, min_size=n, max_size=n))
    parents = draw(st.lists(int64s, min_size=n, max_size=n))
    return np.array(targets, np.int64), np.array(parents, np.int64)


@st.composite
def ranged_pair_case(draw):
    """Pairs confined to an owned VertexRange (what exchanges ship)."""
    nbits = draw(st.integers(1, 192))
    lo = draw(st.integers(0, MAX_ID - nbits))
    n = draw(st.integers(0, 60))
    targets = draw(
        st.lists(st.integers(lo, lo + nbits - 1), min_size=n, max_size=n)
    )
    parents = draw(st.lists(int64s, min_size=n, max_size=n))
    return (
        VertexRange(lo, nbits),
        np.array(targets, np.int64),
        np.array(parents, np.int64),
    )


class TestPairRoundTrips:
    @pytest.mark.parametrize("name", ["raw", "delta-varint", "auto"])
    @settings(max_examples=50, deadline=None)
    @given(pair_case())
    def test_without_range_context(self, name, case):
        targets, parents = case
        assert_pairs_roundtrip(name, targets, parents, ctx=None)

    @pytest.mark.parametrize("name", ALL_CODECS)
    @settings(max_examples=50, deadline=None)
    @given(ranged_pair_case())
    def test_with_range_context(self, name, case):
        ctx, targets, parents = case
        assert_pairs_roundtrip(name, targets, parents, ctx)


class TestSetRoundTrips:
    @pytest.mark.parametrize("name", ["raw", "delta-varint", "auto"])
    @settings(max_examples=50, deadline=None)
    @given(st.lists(vertex_ids, max_size=60))
    def test_sparse(self, name, vertices):
        codec = get_codec(name)
        v = np.array(vertices, np.int64)
        out = codec.decode_set(codec.encode_set(v), dense=False)
        assert np.array_equal(np.sort(out), np.sort(v))

    @pytest.mark.parametrize("name", ALL_CODECS)
    @settings(max_examples=50, deadline=None)
    @given(ranged_pair_case())
    def test_dense(self, name, case):
        """Dense sets are presence sets: round-trips up to uniqueness."""
        ctx, vertices, _ = case
        codec = get_codec(name)
        wire = codec.encode_set(vertices, ctx, dense=True)
        out = codec.decode_set(wire, ctx, dense=True)
        assert np.array_equal(np.unique(out), np.unique(vertices))


class TestEdgeCases:
    CTX = VertexRange(MAX_ID - 63, 64)

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_empty_pairs(self, name):
        codec = get_codec(name)
        empty = np.empty(0, np.int64)
        wire = codec.encode_pairs(empty, empty, self.CTX)
        assert wire.size == 0
        t, p = codec.decode_pairs(wire, self.CTX)
        assert t.size == p.size == 0
        assert t.dtype == p.dtype == np.int64

    @pytest.mark.parametrize("name", ALL_CODECS)
    @pytest.mark.parametrize("dense", [False, True])
    def test_empty_set(self, name, dense):
        codec = get_codec(name)
        empty = np.empty(0, np.int64)
        wire = codec.encode_set(empty, self.CTX, dense=dense)
        if not (name == "raw" and dense):
            assert wire.size <= 1  # raw dense ships the (all-zero) bitmap
        out = codec.decode_set(wire, self.CTX, dense=dense)
        assert out.size == 0 and out.dtype == np.int64

    @pytest.mark.parametrize("name", ALL_CODECS)
    @pytest.mark.parametrize("parent", [0, -(2**63), MAX_ID])
    def test_single_pair_at_int64_extremes(self, name, parent):
        assert_pairs_roundtrip(
            name, [MAX_ID], [parent], self.CTX
        )

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_adversarial_deltas(self, name):
        """Near-maximal gaps between consecutive sorted ids: the deltas
        themselves are ~2**63 and need the full 10-byte varint."""
        lo = 0
        ctx = VertexRange(lo, 0)  # bitmap inapplicable; auto must skip it
        targets = np.array([0, 1, MAX_ID - 1, MAX_ID], np.int64)
        parents = np.array([MAX_ID, 0, -1, -(2**63)], np.int64)
        if name == "bitmap":
            # A bitmap over the full id space is absurd; the codec is
            # simply not applicable here (auto knows to skip it).
            with pytest.raises(ValueError):
                get_codec(name).encode_pairs(targets, parents, None)
            return
        assert_pairs_roundtrip(name, targets, parents, ctx=None if name != "auto" else ctx)

    def test_duplicate_targets_keep_max_parent(self):
        """Codecs that dedup must apply exactly the receiver's rule."""
        ctx = VertexRange(10, 8)
        targets = np.array([12, 12, 15, 12], np.int64)
        parents = np.array([3, 9, 1, 7], np.int64)
        for name in ("bitmap", "auto"):
            t, p = get_codec(name).decode_pairs(
                get_codec(name).encode_pairs(targets, parents, ctx), ctx
            )
            want_t, want_p = dedup_candidates(targets, parents)
            got_t, got_p = dedup_candidates(t, p)
            assert np.array_equal(got_t, want_t)
            assert np.array_equal(got_p, want_p)


class TestAutoPolicy:
    def test_picks_smallest_image_plus_tag(self):
        ctx = VertexRange(0, 256)
        auto = AutoCodec()
        candidates = (RawCodec(), DeltaVarintCodec(), BitmapCodec())
        dense = np.arange(256, dtype=np.int64)
        sparse = np.array([3, 250], dtype=np.int64)
        for targets in (dense, sparse):
            parents = targets % 7
            best = min(
                c.encode_pairs(targets, parents, ctx).size for c in candidates
            )
            wire = auto.encode_pairs(targets, parents, ctx)
            assert wire.size == best + 1

    def test_dense_set_selects_bitmap(self):
        """A full frontier piece: the bitmap (8 words for 512 vertices)
        beats even 1-byte varint deltas, and auto must find it."""
        ctx = VertexRange(0, 512)
        vertices = np.arange(512, dtype=np.int64)
        wire = AutoCodec().encode_set(vertices, ctx)
        bitmap = BitmapCodec().encode_set(vertices, ctx)
        assert wire.size == bitmap.size + 1


class TestVarints:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(int64s, max_size=80))
    def test_roundtrip_and_sizes(self, values):
        v = np.array(values, np.int64)
        stream = encode_varints(v)
        assert np.array_equal(decode_varints(stream), v)
        assert stream.size == int(varint_sizes(v).sum()) if v.size else stream.size == 0

    def test_boundary_sizes(self):
        for k in range(1, MAX_VARINT_BYTES):
            below = np.array([(1 << (7 * k)) - 1], np.int64)
            above = np.array([1 << (7 * k)], np.int64) if 7 * k < 63 else None
            assert varint_sizes(below)[0] == k
            assert encode_varints(below).size == k
            if above is not None:
                assert varint_sizes(above)[0] == k + 1
        # Negative values view as >= 2**63 and always need all 10 bytes.
        assert varint_sizes(np.array([-1], np.int64))[0] == MAX_VARINT_BYTES

    def test_truncated_stream_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_varints(np.array([0x80], np.uint8))

    def test_overlong_varint_raises(self):
        stream = np.array([0x80] * MAX_VARINT_BYTES + [0x00], np.uint8)
        with pytest.raises(ValueError, match="longer than"):
            decode_varints(stream)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=64))
    def test_word_packing_roundtrip(self, raw):
        stream = np.frombuffer(raw, dtype=np.uint8)
        words = bytes_to_words(stream)
        assert words.size == (stream.size + 7) // 8
        assert np.array_equal(words_to_bytes(words, stream.size), stream)

    def test_words_to_bytes_range_checked(self):
        words = bytes_to_words(np.arange(5, dtype=np.uint8))
        for nbytes in (-1, 8 * words.size + 1):
            with pytest.raises(ValueError, match="out of range"):
                words_to_bytes(words, nbytes)


class TestValidation:
    def test_get_codec_unknown_name(self):
        with pytest.raises(ValueError, match="unknown codec"):
            get_codec("zstd")

    def test_get_codec_instance_passthrough(self):
        codec = DeltaVarintCodec()
        assert get_codec(codec) is codec

    def test_vertex_range_rejects_negative_width(self):
        with pytest.raises(ValueError, match="nbits"):
            VertexRange(0, -1)

    def test_bitmap_requires_context(self):
        codec = BitmapCodec()
        one = np.array([1], np.int64)
        for call in (
            lambda: codec.encode_pairs(one, one, None),
            lambda: codec.decode_pairs(one, None),
            lambda: codec.encode_set(one, None),
            lambda: codec.decode_set(one, None),
        ):
            with pytest.raises(ValueError, match="VertexRange"):
                call()

    def test_corrupt_delta_varint_header_raises(self):
        codec = DeltaVarintCodec()
        wire = codec.encode_pairs(np.array([5], np.int64), np.array([1], np.int64))
        wire = wire.copy()
        wire[0] = 2  # claim two pairs; the stream holds one
        with pytest.raises(ValueError, match="corrupt"):
            codec.decode_pairs(wire)

    def test_corrupt_bitmap_parent_count_raises(self):
        ctx = VertexRange(0, 64)
        codec = BitmapCodec()
        wire = codec.encode_pairs(
            np.array([3, 9], np.int64), np.array([1, 2], np.int64), ctx
        )
        with pytest.raises(ValueError, match="corrupt"):
            codec.decode_pairs(wire[:-1], ctx)
