"""Tracing is passive: a traced run is bit-identical to an untraced one.

This is the subsystem's zero-overhead contract — spans read the virtual
clocks but never charge them, so installing a tracer may not move a
single charge, arrival time, or collective completion by even one ULP.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_bfs
from repro.obs import Tracer


def _stats_fingerprint(result):
    summary = result.stats.summary()
    summary["words_by_level"] = {
        level: dict(kinds) for level, kinds in summary["words_by_level"].items()
    }
    clocks = [
        (c.time, c.compute_time, c.mpi_time, dict(c.counters))
        for c in result.stats.clocks
    ]
    return summary, clocks


@pytest.mark.parametrize(
    "algorithm,kwargs",
    [
        ("1d", {}),
        ("1d", {"codec": "delta-varint", "sieve": True}),
        ("1d-dirop", {}),
        ("1d-dirop-hybrid", {}),
        ("2d", {"kernel": "spa"}),
        ("2d-hybrid", {"codec": "auto", "sieve": True}),
    ],
)
def test_traced_run_bit_identical(rmat_small, algorithm, kwargs):
    source = 5
    plain = run_bfs(
        rmat_small, source, algorithm, nprocs=4, machine="hopper", **kwargs
    )
    traced = run_bfs(
        rmat_small, source, algorithm, nprocs=4, machine="hopper",
        tracer=Tracer(), **kwargs,
    )
    assert np.array_equal(plain.levels, traced.levels)
    assert np.array_equal(plain.parents, traced.parents)
    # == on floats, not approx: the clocks must agree bit for bit.
    assert plain.time_total == traced.time_total
    assert _stats_fingerprint(plain) == _stats_fingerprint(traced)


def test_untimed_traced_run_matches(rmat_small):
    plain = run_bfs(rmat_small, 5, "1d", nprocs=4)
    traced = run_bfs(rmat_small, 5, "1d", nprocs=4, tracer=Tracer())
    assert np.array_equal(plain.levels, traced.levels)
    assert plain.time_total == traced.time_total == 0.0


def test_uninstrumented_families_reject_tracer(rmat_small):
    for algorithm in ("serial", "pbgl", "graph500-ref"):
        with pytest.raises(ValueError, match="not instrumented"):
            run_bfs(rmat_small, 5, algorithm, nprocs=2, tracer=Tracer())
