"""Golden-parity battery for the traversal engine refactor.

The fixtures under ``tests/golden/`` were captured with the pre-engine
scaffolding (one hand-rolled level loop per algorithm file) running each
distributed family with every cross-cutting concern on at once: wire
codec, sender-side sieve, per-level trace profile, span tracer, a fault
schedule (crash + timeout + corruption + delay) and checkpoint-restart.
These tests re-run the same configurations through
:class:`repro.core.engine.TraversalEngine` and assert the observable
outputs are **bit-identical** — parents and levels, the machine-readable
run report (modeled times, ``stats.summary()`` comm volumes, fault and
checkpoint accounting), the merged per-level profile, and the complete
Chrome ``trace_event`` span tree of every rank.

If one of these fails, the engine's level skeleton has drifted from the
original loops; regenerating the fixtures (``python tests/golden/
capture.py``) is only legitimate when an intentional behavior change is
being locked in.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

_spec = importlib.util.spec_from_file_location(
    "golden_capture", GOLDEN_DIR / "capture.py"
)
capture = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(capture)

FAMILIES = sorted(capture.CONFIGS)


@pytest.fixture(scope="module")
def fixtures():
    """One fresh capture per family, normalized through JSON like the files."""
    fresh = {}
    for algorithm in FAMILIES:
        fresh[algorithm] = json.loads(
            json.dumps(capture.capture(algorithm), allow_nan=False)
        )
    return fresh


def committed(algorithm: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{algorithm}.json").read_text())


@pytest.mark.parametrize("algorithm", FAMILIES)
class TestGoldenParity:
    def test_fixture_exercises_everything(self, algorithm):
        """Guard the fixtures themselves: a config drift that silently
        stops covering recovery or both directions would hollow out the
        parity guarantee."""
        golden = committed(algorithm)
        config = golden["config"]
        assert config["codec"] == "delta-varint"
        if capture.ALGORITHMS[algorithm].kind == "bfs":
            assert config["sieve"]
        else:
            # Query kinds refuse the sieve structurally; the fixture must
            # omit it (not carry sieve=False) and batch several sources.
            assert "sieve" not in config
            assert len(golden["source"]) > 1
        assert config["trace"] and config["checkpoint_every"] == 2
        assert "crash:" in config["faults"]
        assert golden["report"]["faults"]["attempts"] >= 2  # crash fired
        assert golden["report"]["faults"]["counters"]["checkpoints"] > 0
        assert golden["trace_events"]
        if "dirop" in algorithm:
            directions = {
                entry["direction"] for entry in golden["level_profile"]
            }
            assert directions == {"top-down", "bottom-up"}

    def test_parents_and_levels(self, fixtures, algorithm):
        golden = committed(algorithm)
        assert fixtures[algorithm]["parents"] == golden["parents"]
        assert fixtures[algorithm]["levels"] == golden["levels"]

    def test_run_report(self, fixtures, algorithm):
        """Config, modeled times, GTEPS, comm volumes, span-derived phase
        sections, and the fault/checkpoint accounting — all bit-equal."""
        golden = committed(algorithm)["report"]
        fresh = fixtures[algorithm]["report"]
        assert sorted(fresh) == sorted(golden)
        for section in golden:
            assert fresh[section] == golden[section], section

    def test_level_profile(self, fixtures, algorithm):
        golden = committed(algorithm)
        assert fixtures[algorithm]["level_profile"] == golden["level_profile"]

    def test_span_tree(self, fixtures, algorithm):
        """Every rank's nested phase spans, with virtual timestamps."""
        golden = committed(algorithm)
        assert fixtures[algorithm]["trace_events"] == golden["trace_events"]

    def test_whole_fixture(self, fixtures, algorithm):
        assert fixtures[algorithm] == committed(algorithm)
