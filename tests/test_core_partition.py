"""Tests for 1D and 2D partitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partition import Decomp2D, Partition1D, block_bounds


class TestBlockBounds:
    def test_even_division(self):
        assert np.array_equal(block_bounds(12, 4), [0, 3, 6, 9, 12])

    def test_remainder_to_last(self):
        assert np.array_equal(block_bounds(10, 4), [0, 2, 4, 6, 10])

    def test_more_parts_than_items(self):
        bounds = block_bounds(2, 5)
        assert bounds[0] == 0 and bounds[-1] == 2
        assert np.all(np.diff(bounds) >= 0)

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            block_bounds(5, 0)


class TestPartition1D:
    def test_ranges_cover_everything(self):
        part = Partition1D(103, 8)
        covered = []
        for rank in range(8):
            lo, hi = part.range_of(rank)
            covered.extend(range(lo, hi))
        assert covered == list(range(103))

    def test_owner_matches_range(self):
        part = Partition1D(100, 7)
        vertices = np.arange(100)
        owners = part.owner_of(vertices)
        for rank in range(7):
            lo, hi = part.range_of(rank)
            assert np.all(owners[lo:hi] == rank)

    def test_single_rank(self):
        part = Partition1D(10, 1)
        assert part.range_of(0) == (0, 10)
        assert np.all(part.owner_of(np.arange(10)) == 0)

    def test_out_of_range_vertex(self):
        part = Partition1D(10, 2)
        with pytest.raises(ValueError, match="out of range"):
            part.owner_of(np.array([10]))

    def test_bad_rank(self):
        with pytest.raises(ValueError, match="rank"):
            Partition1D(10, 2).range_of(2)


class TestDecomp2D:
    def test_blocks_cover(self):
        d = Decomp2D(101, 4)
        covered = []
        for k in range(4):
            lo, hi = d.block(k)
            covered.extend(range(lo, hi))
        assert covered == list(range(101))

    def test_vec_pieces_tile_blocks(self):
        d = Decomp2D(100, 3)
        for i in range(3):
            lo, hi = d.block(i)
            covered = []
            for j in range(3):
                plo, phi = d.vec_piece(i, j)
                assert lo <= plo <= phi <= hi
                covered.extend(range(plo, phi))
            assert covered == list(range(lo, hi))

    def test_vec_owner_col_consistent_with_pieces(self):
        d = Decomp2D(97, 4)
        for i in range(4):
            lo, hi = d.block(i)
            vertices = np.arange(lo, hi)
            owners = d.vec_owner_col(i, vertices)
            for j in range(4):
                plo, phi = d.vec_piece(i, j)
                assert np.all(owners[plo - lo : phi - lo] == j)

    def test_diagonal_vector_distribution(self):
        d = Decomp2D(64, 4, diagonal_vectors=True)
        for i in range(4):
            lo, hi = d.block(i)
            for j in range(4):
                plo, phi = d.vec_piece(i, j)
                if i == j:
                    assert (plo, phi) == (lo, hi)
                else:
                    assert plo == phi  # empty
            owners = d.vec_owner_col(i, np.arange(lo, hi))
            assert np.all(owners == i)

    def test_block_of(self):
        d = Decomp2D(100, 5)
        blocks = d.block_of(np.arange(100))
        for k in range(5):
            lo, hi = d.block(k)
            assert np.all(blocks[lo:hi] == k)

    def test_vertices_outside_block_rejected(self):
        d = Decomp2D(100, 4)
        with pytest.raises(ValueError, match="outside block"):
            d.vec_owner_col(0, np.array([99]))

    def test_tiny_n_large_grid(self):
        # More processors than vertices: blocks may be empty but must tile.
        d = Decomp2D(3, 4)
        total = sum(d.block(k)[1] - d.block(k)[0] for k in range(4))
        assert total == 3
