"""Property-based tests for the substrate layers (collectives, sparse)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.permutation import invert_permutation, random_permutation
from repro.mpsim import collectives as coll
from repro.sparse import DCSC, CSRMatrix, SparseVector, spmsv_heap, spmsv_spa


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=6).flatmap(
        lambda size: st.lists(
            st.lists(
                st.lists(st.integers(-(2**40), 2**40), max_size=8),
                min_size=size,
                max_size=size,
            ),
            min_size=size,
            max_size=size,
        )
    )
)
def test_alltoallv_conserves_multiset(payload_lists):
    """Everything sent is received, exactly once, by the right rank."""
    payloads = [
        [np.array(buf, dtype=np.int64) for buf in row] for row in payload_lists
    ]
    out = coll.alltoallv(payloads)
    size = len(payloads)
    sent = sorted(
        np.concatenate(
            [payloads[i][j] for i in range(size) for j in range(size)]
            or [np.empty(0, np.int64)]
        ).tolist()
    )
    received = sorted(
        np.concatenate(
            [out[j][i] for j in range(size) for i in range(size)]
            or [np.empty(0, np.int64)]
        ).tolist()
    )
    assert sent == received
    for j in range(size):
        for i in range(size):
            assert np.array_equal(out[j][i], payloads[i][j])


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=500), st.integers(0, 2**16))
def test_permutation_inverts(n, seed):
    perm = random_permutation(n, seed)
    inv = invert_permutation(perm)
    assert np.array_equal(perm[inv], np.arange(n))


@st.composite
def coo_matrices(draw):
    nrows = draw(st.integers(1, 50))
    ncols = draw(st.integers(1, 50))
    nnz = draw(st.integers(0, 150))
    rows = draw(
        st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz)
    )
    return nrows, ncols, np.array(rows, np.int64), np.array(cols, np.int64)


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_dcsc_round_trip(matrix):
    nrows, ncols, rows, cols = matrix
    d = DCSC.from_coo(nrows, ncols, rows, cols)
    r2, c2 = d.to_coo()
    d2 = DCSC.from_coo(nrows, ncols, r2, c2)
    assert np.array_equal(d.jc, d2.jc)
    assert np.array_equal(d.cp, d2.cp)
    assert np.array_equal(d.ir, d2.ir)
    # nnz equals the number of *distinct* entries.
    distinct = len({(int(r), int(c)) for r, c in zip(rows, cols)})
    assert d.nnz == distinct


@settings(max_examples=60, deadline=None)
@given(coo_matrices(), st.integers(0, 2**16))
def test_spmsv_kernels_equal_reference(matrix, seed):
    """SPA kernel == heap kernel == brute-force reference, always."""
    nrows, ncols, rows, cols = matrix
    d = DCSC.from_coo(nrows, ncols, rows, cols)
    m = CSRMatrix.from_coo(nrows, ncols, rows, cols)
    rng = np.random.default_rng(seed)
    k = int(rng.integers(0, ncols + 1))
    fi = np.unique(rng.integers(0, ncols, size=k)) if k else np.empty(0, np.int64)
    fv = fi + 1
    i_spa, v_spa, _ = spmsv_spa(d, fi, fv)
    i_heap, v_heap, _ = spmsv_heap(d, fi, fv)
    i_ref, v_ref = m.spmsv_reference(fi, fv)
    assert np.array_equal(i_spa, i_heap)
    assert np.array_equal(v_spa, v_heap)
    assert np.array_equal(i_spa, i_ref)
    assert np.array_equal(v_spa, v_ref)


@settings(max_examples=60, deadline=None)
@given(coo_matrices(), st.integers(1, 8))
def test_dcsc_rowsplit_partitions_nnz(matrix, pieces):
    nrows, ncols, rows, cols = matrix
    d = DCSC.from_coo(nrows, ncols, rows, cols)
    parts = d.split_rowwise(pieces)
    assert sum(p.nnz for p in parts) == d.nnz
    assert sum(p.nrows for p in parts) == d.nrows


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 30), st.integers(0, 2**20)), max_size=60),
)
def test_sparse_vector_from_pairs_idempotent(pairs):
    idx = np.array([p[0] for p in pairs], np.int64)
    val = np.array([p[1] for p in pairs], np.int64)
    v = SparseVector.from_pairs(31, idx, val)
    # Indices strictly increasing, values are the per-index maxima.
    assert np.all(np.diff(v.indices) > 0)
    for i, x in zip(v.indices, v.values):
        assert x == val[idx == i].max()
    # Re-feeding the result is a fixed point.
    v2 = SparseVector.from_pairs(31, v.indices, v.values)
    assert np.array_equal(v.indices, v2.indices)
    assert np.array_equal(v.values, v2.values)
