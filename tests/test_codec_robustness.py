"""Codec hardening: damaged wire buffers raise typed errors, never decode.

The fault layer's corrupt events rely on every codec *detecting* damage:
the channel damages a received piece exactly like :func:`corrupt_pieces`
and asserts the decode raises :class:`CodecError` before retrying.  These
tests pin that contract per codec and per site shape, using the same
damage modes the channel injects (truncation for pair/dense buffers,
an out-of-range smash for sparse vertex lists), then exercise the whole
loop end to end through ``run_bfs``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.codecs import CodecError, VertexRange, get_codec
from repro.core import run_bfs
from repro.faults import corrupt_pieces

CODECS = ("raw", "delta-varint", "bitmap", "auto")
# Two bitmap words wide, so even the densest encoding is truncatable.
CTX = VertexRange(lo=0, nbits=128)


def _pairs():
    rng = np.random.default_rng(5)
    targets = np.sort(rng.choice(CTX.nbits, size=12, replace=False)).astype(np.int64)
    parents = rng.integers(0, 256, size=12, dtype=np.int64)
    return targets, parents


def _vertices():
    return np.array([1, 3, 8, 21, 34, 55, 89, 101, 120], dtype=np.int64)


def _damage(wire, mode):
    hit = corrupt_pieces([wire], mode)
    assert hit is not None, "encoded buffer too small to damage"
    return hit[1]


@pytest.mark.parametrize("codec_name", CODECS)
class TestDamagedBuffersRaise:
    def test_truncated_pair_buffer(self, codec_name):
        codec = get_codec(codec_name)
        wire = codec.encode_pairs(*_pairs(), CTX)
        with pytest.raises(CodecError, match="corrupt"):
            codec.decode_pairs(_damage(wire, "truncate"), CTX)

    def test_damaged_sparse_set(self, codec_name):
        codec = get_codec(codec_name)
        wire = codec.encode_set(_vertices(), CTX, dense=False)
        # Truncating a raw vertex list is a shorter-but-valid list, so
        # sparse sites smash an id/header word out of the agreed range —
        # except the bitmap codec, whose image is length-checked.
        mode = "truncate" if codec.name == "bitmap" else "smash"
        with pytest.raises(CodecError, match="corrupt"):
            codec.decode_set(_damage(wire, mode), CTX, dense=False)

    def test_truncated_dense_set(self, codec_name):
        codec = get_codec(codec_name)
        wire = codec.encode_set(_vertices(), CTX, dense=True)
        with pytest.raises(CodecError, match="corrupt"):
            codec.decode_set(_damage(wire, "truncate"), CTX, dense=True)

    def test_undamaged_buffers_round_trip(self, codec_name):
        codec = get_codec(codec_name)
        targets, parents = _pairs()
        rt, rp = codec.decode_pairs(codec.encode_pairs(targets, parents, CTX), CTX)
        order = np.lexsort((rp, rt))
        assert np.array_equal(rt[order], targets)
        assert np.array_equal(rp[order], parents)


@pytest.mark.parametrize("codec_name", CODECS)
@pytest.mark.parametrize("algorithm", ["1d", "2d"])
def test_corruption_absorbed_end_to_end(rmat_small, algorithm, codec_name):
    """An injected corruption is caught, charged, retried, and survived."""
    plain = run_bfs(
        rmat_small, 5, algorithm, nprocs=4, machine="hopper", codec=codec_name
    )
    faulted = run_bfs(
        rmat_small, 5, algorithm, nprocs=4, machine="hopper", codec=codec_name,
        faults="corrupt:rank=0,level=2;timeout:level=3",
    )
    assert np.array_equal(plain.parents, faulted.parents)
    counters = faulted.meta["faults"]["counters"]
    assert counters["fault_corruptions"] >= 1  # victim proved detection
    assert counters["fault_retries"] >= 2 * 4  # both events, all 4 ranks
    # Absorbed faults cost virtual time (detection + backoff) but the
    # traversal's answer and attempt count are untouched.
    assert faulted.meta["faults"]["attempts"] == 1
    assert faulted.time_total > plain.time_total
