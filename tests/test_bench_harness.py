"""Tests for the benchmark harness machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import (
    average_bfs,
    closest_square_cores,
    paper_threads,
    pick_sources,
    projected_costs,
    projected_gteps,
)
from repro.core import bfs_serial
from repro.model import CARVER, FRANKLIN, HOPPER


class TestPickSources:
    def test_sources_in_large_component(self, rmat_small):
        sources = pick_sources(rmat_small, 4, seed=0)
        assert len(sources) == 4
        probe = int(np.asarray(rmat_small.to_internal(sources[0])))
        levels, _ = bfs_serial(rmat_small.csr, probe)
        for s in sources[1:]:
            internal = int(np.asarray(rmat_small.to_internal(s)))
            assert levels[internal] >= 0  # same component

    def test_deterministic_by_seed(self, rmat_small):
        assert pick_sources(rmat_small, 3, seed=5) == pick_sources(
            rmat_small, 3, seed=5
        )

    def test_crawl_graph(self, crawl_graph):
        sources = pick_sources(crawl_graph, 2, seed=1)
        assert len(sources) == 2


class TestAverageBfs:
    def test_metrics_are_means(self, rmat_small):
        sources = pick_sources(rmat_small, 2, seed=2)
        run = average_bfs(rmat_small, "1d", 4, FRANKLIN, sources=sources)
        times = [r.time_total for r in run.results]
        assert run.time_total == pytest.approx(np.mean(times))
        assert len(run.results) == 2
        assert run.gteps > 0
        assert run.mteps == pytest.approx(run.gteps * 1e3)
        assert 0 < run.comm_fraction < 1

    def test_threads_plumbed(self, rmat_small):
        sources = pick_sources(rmat_small, 1, seed=3)
        run = average_bfs(
            rmat_small, "1d-hybrid", 2, FRANKLIN, sources=sources, threads=2
        )
        assert run.threads == 2


class TestPaperThreads:
    def test_machine_specific(self):
        assert paper_threads(FRANKLIN) == 4
        assert paper_threads(HOPPER) == 6
        assert paper_threads("hopper") == 6
        assert paper_threads(CARVER) == 4


class TestProjection:
    def test_costs_positive_and_consistent(self):
        for algo in ("1d", "1d-hybrid", "2d", "2d-hybrid"):
            costs = projected_costs(algo, 29, 16, 1024, FRANKLIN)
            assert costs.total > 0
            assert costs.comm < costs.total
            rate = projected_gteps(algo, 29, 16, 1024, FRANKLIN)
            assert rate == pytest.approx(16 * 2**29 / costs.total / 1e9)

    def test_kernel_override(self):
        spa = projected_costs("2d", 29, 16, 1024, HOPPER, kernel="spa")
        heap = projected_costs("2d", 29, 16, 1024, HOPPER, kernel="heap")
        assert spa.comp != heap.comp

    def test_auto_kernel_switches_at_scale(self):
        # Below the Figure-3 crossover auto == spa; above it auto == heap.
        low_auto = projected_costs("2d", 29, 16, 1024, HOPPER, kernel="auto")
        low_spa = projected_costs("2d", 29, 16, 1024, HOPPER, kernel="spa")
        assert low_auto.comp == pytest.approx(low_spa.comp)
        hi_auto = projected_costs("2d", 32, 16, 40000, HOPPER, kernel="auto")
        hi_heap = projected_costs("2d", 32, 16, 40000, HOPPER, kernel="heap")
        assert hi_auto.comp == pytest.approx(hi_heap.comp)

    def test_closest_square(self):
        assert closest_square_cores(40000) == 200 * 200
        assert closest_square_cores(10008) == 100 * 100
        assert closest_square_cores(4) == 4
