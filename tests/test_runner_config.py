"""RunConfig / run_bfs compatibility-shim contract tests.

Three guarantees:

* **Mapping** — every legacy ``run_bfs`` keyword lands on the
  :class:`repro.core.runner.RunConfig` field of the same name, locked by
  monkeypatching :func:`repro.core.runner.run` and comparing the config
  the shim builds (frozen-dataclass equality) for the keyword combos the
  experiment harness and CLI actually use.
* **Error messages** — every validation failure raises the SAME
  ``ValueError`` text as before the refactor, locked with
  ``pytest.raises(match=...)`` so downstream ``except`` handlers and CLI
  output stay stable.
* **Equivalence** — one real traversal through each API produces
  identical parents, levels and modeled stats.

Plus the deprecation re-exports: the sieve helpers that moved to
``repro.comm`` (and ``partition_ranges``, now in the engine) stay
importable from ``repro.core.bfs1d`` with a ``DeprecationWarning``.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

import repro.core.runner as runner_mod
from repro.core import RunConfig, run, run_bfs
from repro.obs import Tracer

from tests.conftest import make_path_graph


@pytest.fixture
def captured(monkeypatch):
    """Monkeypatch the typed driver; record the config the shim builds."""
    calls: list[tuple] = []

    def fake_run(graph, source, config):
        calls.append((graph, source, config))
        return None

    monkeypatch.setattr(runner_mod, "run", fake_run)
    return calls


class TestShimMapping:
    """Legacy keyword combos map onto the equivalent RunConfig."""

    def test_defaults(self, captured):
        graph = object()
        run_bfs(graph, 3)
        assert captured == [(graph, 3, RunConfig())]

    def test_experiment_harness_combo(self, captured):
        # The strong-scaling sweeps: flat 1d with the ablation switches.
        run_bfs(
            object(), 0, "1d", nprocs=16, machine="franklin",
            dedup_sends=False, codec="delta-varint", sieve=True,
        )
        assert captured[0][2] == RunConfig(
            algorithm="1d", nprocs=16, machine="franklin",
            dedup_sends=False, codec="delta-varint", sieve=True,
        )

    def test_hybrid_threads(self, captured):
        run_bfs(object(), 0, "1d-hybrid", nprocs=8, threads=6, machine="hopper")
        assert captured[0][2] == RunConfig(
            algorithm="1d-hybrid", nprocs=8, threads=6, machine="hopper"
        )

    def test_2d_combo(self, captured):
        # The Figure 4/6 ablations: grid, kernel, vector distribution.
        run_bfs(
            object(), 0, "2d", nprocs=16, kernel="heap", vector_dist="1d",
            modeled_cores=64, grid_shape=(2, 8), validate=True,
        )
        assert captured[0][2] == RunConfig(
            algorithm="2d", nprocs=16, kernel="heap", vector_dist="1d",
            modeled_cores=64, grid_shape=(2, 8), validate=True,
        )

    def test_dirop_thresholds_and_trace(self, captured):
        run_bfs(
            object(), 0, "1d-dirop", dirop_alpha=12.0, dirop_beta=20.0,
            trace=True,
        )
        assert captured[0][2] == RunConfig(
            algorithm="1d-dirop", dirop_alpha=12.0, dirop_beta=20.0,
            trace=True,
        )

    def test_tracer_passthrough(self, captured):
        tracer = Tracer()
        run_bfs(object(), 0, "1d", tracer=tracer)
        assert captured[0][2].tracer is tracer

    def test_resilience_combo(self, captured):
        # The fault-ablation harness: spec string + checkpointing + retries.
        run_bfs(
            object(), 0, "1d", machine="hopper",
            faults="crash:rank=1,level=3;seed=7",
            checkpoint_every=2, max_retries=5,
        )
        config = captured[0][2]
        assert config == RunConfig(
            algorithm="1d", machine="hopper",
            faults="crash:rank=1,level=3;seed=7",
            checkpoint_every=2, max_retries=5,
        )
        assert config.resilient

    def test_positional_algorithm_and_keyword_equivalent(self, captured):
        run_bfs(object(), 0, "2d-hybrid")
        run_bfs(object(), 0, algorithm="2d-hybrid")
        assert captured[0][2] == captured[1][2]


class TestValidationMessages:
    """The exact pre-refactor ValueError texts, locked verbatim."""

    @pytest.fixture(scope="class")
    def graph(self):
        return make_path_graph(32)

    def test_unknown_algorithm(self, graph):
        known = sorted(runner_mod.ALGORITHMS)
        msg = re.escape(f"unknown algorithm 'bogus'; known: {known}")
        with pytest.raises(ValueError, match=msg):
            run_bfs(graph, 0, "bogus")
        with pytest.raises(ValueError, match=msg):
            RunConfig(algorithm="bogus")

    def test_source_out_of_range(self, graph):
        with pytest.raises(
            ValueError, match=re.escape("source 32 out of range [0, 32)")
        ):
            run_bfs(graph, 32)
        with pytest.raises(
            ValueError, match=re.escape("source -1 out of range [0, 32)")
        ):
            run_bfs(graph, -1)

    def test_unknown_machine(self, graph):
        with pytest.raises(ValueError, match=re.escape("unknown machine 'cray-3'")):
            run_bfs(graph, 0, "1d", machine="cray-3")

    def test_bad_thread_count(self, graph):
        with pytest.raises(ValueError, match=re.escape("threads must be >= 1, got 0")):
            run_bfs(graph, 0, "1d-hybrid", threads=0)

    def test_threads_on_flat_variant(self, graph):
        with pytest.raises(
            ValueError,
            match=re.escape("1d is a flat variant; use a hybrid for threads > 1"),
        ):
            run_bfs(graph, 0, "1d", threads=4)

    @pytest.mark.parametrize("algorithm", ["serial", "pbgl", "graph500-ref"])
    def test_wire_options_gated_by_capability(self, graph, algorithm):
        msg = re.escape(
            f"{algorithm} does not route its exchanges through repro.comm; "
            "codec/sieve apply to the 1d/2d families only"
        )
        with pytest.raises(ValueError, match=msg):
            run_bfs(graph, 0, algorithm, codec="delta-varint")
        with pytest.raises(ValueError, match=msg):
            run_bfs(graph, 0, algorithm, sieve=True)

    def test_raw_codec_allowed_everywhere(self, graph):
        # codec="raw" is the no-op default; it must not trip the gate.
        result = run_bfs(graph, 0, "serial", codec="raw", sieve=False)
        assert result.nlevels == 31

    @pytest.mark.parametrize("algorithm", ["serial", "pbgl", "graph500-ref"])
    def test_tracer_gated_by_capability(self, graph, algorithm):
        msg = re.escape(
            f"{algorithm} is not instrumented for span tracing; "
            "tracer applies to the 1d/2d families only"
        )
        with pytest.raises(ValueError, match=msg):
            run_bfs(graph, 0, algorithm, tracer=Tracer())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"faults": "crash:rank=0,level=1"},
            {"checkpoint_every": 2},
            {"max_retries": 5},
        ],
    )
    def test_resilience_gated_by_capability(self, graph, kwargs):
        msg = re.escape(
            "serial has no fault/checkpoint instrumentation; "
            "faults/checkpoint_every/max_retries apply to the 1d/2d families only"
        )
        with pytest.raises(ValueError, match=msg):
            run_bfs(graph, 0, "serial", **kwargs)

    def test_bad_grid(self, graph):
        with pytest.raises(ValueError, match=re.escape("grid must be positive, got 0x2")):
            run_bfs(graph, 0, "2d", grid_shape=(0, 2))

    def test_fault_plan_rank_out_of_range(self, graph):
        with pytest.raises(
            ValueError,
            match=re.escape("fault plan targets rank 7 but the run has only 4 ranks"),
        ):
            run_bfs(
                graph, 0, "1d", nprocs=4,
                faults="crash:rank=7,level=1", checkpoint_every=1,
            )

    def test_bad_checkpoint_interval(self, graph):
        with pytest.raises(
            ValueError, match=re.escape("checkpoint interval must be >= 1, got 0")
        ):
            run_bfs(graph, 0, "1d", checkpoint_every=0)


class TestRunEquivalence:
    """run_bfs(...) and run(graph, src, RunConfig(...)) are the same run."""

    def test_identical_results(self, rmat_small):
        source = int(rmat_small.random_nonisolated_vertices(1, seed=11)[0])
        kwargs = dict(
            algorithm="1d-dirop", nprocs=4, machine="hopper",
            codec="delta-varint", sieve=True, trace=True,
        )
        via_shim = run_bfs(rmat_small, source, **kwargs)
        via_config = run(rmat_small, source, RunConfig(**kwargs))
        np.testing.assert_array_equal(via_shim.parents, via_config.parents)
        np.testing.assert_array_equal(via_shim.levels, via_config.levels)
        assert via_shim.stats.makespan == via_config.stats.makespan
        assert via_shim.meta["level_profile"] == via_config.meta["level_profile"]


class TestDeprecatedReExports:
    """Names that moved out of bfs1d keep working, with a warning."""

    @pytest.mark.parametrize(
        "name, new_home",
        [
            ("make_sieve", "repro.comm"),
            ("sieve_state", "repro.comm"),
            ("restore_sieve", "repro.comm"),
            ("partition_ranges", "repro.core.engine"),
        ],
    )
    def test_moved_names_warn_and_resolve(self, name, new_home):
        import importlib

        from repro.core import bfs1d

        target = getattr(importlib.import_module(new_home), name)
        with pytest.warns(DeprecationWarning, match=f"{name}.*{new_home}"):
            legacy = getattr(bfs1d, name)
        assert legacy is target

    def test_unknown_attribute_still_raises(self):
        from repro.core import bfs1d

        with pytest.raises(AttributeError):
            bfs1d.no_such_name
