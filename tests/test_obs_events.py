"""JSONL event log and collapsed-stack flamegraph export."""

from __future__ import annotations

import json

import pytest

from repro.core import run_bfs
from repro.obs import (
    EVENTS_SCHEMA,
    MetricsRegistry,
    Tracer,
    collapsed_stacks,
    load_events_jsonl,
    run_events,
    validate_collapsed_stacks,
    validate_events,
    write_events_jsonl,
    write_flamegraph,
)
from repro.query import run_query

from tests.conftest import query_sources


@pytest.fixture(scope="module")
def instrumented(rmat_small):
    """One traced + metered BFS run shared by the event/flame tests."""
    result = run_bfs(
        rmat_small, 5, "2d-dirop", nprocs=4, machine="hopper",
        tracer=Tracer(), metrics=MetricsRegistry(),
    )
    return result


class TestEventStream:
    def test_header_frames_the_stream(self, instrumented):
        events = run_events(instrumented)
        head, tail = events[0], events[-1]
        assert head["kind"] == "run" and head["schema"] == EVENTS_SCHEMA
        assert head["algorithm"] == "2d-dirop"
        assert head["nranks"] == instrumented.nranks
        assert tail["kind"] == "end"
        assert tail["events"] == len(events) - 1
        validate_events(events)

    def test_kinds_cover_the_run(self, instrumented):
        kinds = {e["kind"] for e in run_events(instrumented)}
        assert kinds >= {"run", "level", "span", "metric", "end"}
        levels = [
            e for e in run_events(instrumented) if e["kind"] == "level"
        ]
        # One level event per (rank, level): direction metadata rides on.
        assert len(levels) == instrumented.nlevels * instrumented.nranks
        assert all(e["direction"] in ("top-down", "bottom-up") for e in levels)

    def test_span_events_are_time_ordered(self, instrumented):
        events = run_events(instrumented)
        times = [
            e["t"]
            for e in events
            if e["kind"] in ("level", "span", "instant", "fault", "checkpoint")
        ]
        assert times == sorted(times)
        assert times[-1] <= events[-1]["t"]

    def test_metric_events_mirror_the_registry(self, instrumented):
        registry = instrumented.meta["metrics"]
        metric_events = [
            e for e in run_events(instrumented) if e["kind"] == "metric"
        ]
        assert metric_events
        total = sum(
            e["value"]
            for e in metric_events
            if e["name"] == "comm_wire_words" and e["type"] == "counter"
        )
        assert total == registry.counter_value("comm_wire_words")

    def test_fault_and_checkpoint_events_surface(self, rmat_small):
        result = run_bfs(
            rmat_small, 5, "1d", nprocs=4, machine="hopper",
            tracer=Tracer(), faults="timeout:level=1", checkpoint_every=2,
        )
        kinds = {e["kind"] for e in run_events(result)}
        assert "fault" in kinds and "checkpoint" in kinds

    def test_query_run_header_carries_batch(self, rmat_small):
        result = run_query(
            rmat_small, query_sources(rmat_small, 5, 8),
            algorithm="msbfs-1d", nprocs=4, machine="hopper", tracer=Tracer(),
        )
        head = run_events(result)[0]
        assert head["query_kind"] == "msbfs" and head["batch"] == 8
        levels = [e for e in run_events(result) if e["kind"] == "level"]
        assert all(e["lanes"] == 8 for e in levels)

    def test_write_load_round_trip(self, instrumented, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        count = write_events_jsonl(path, instrumented)
        lines = path.read_text().splitlines()
        assert len(lines) == count
        assert all(json.loads(line) for line in lines)
        events = load_events_jsonl(path)
        validate_events(events)
        assert events == run_events(instrumented)

    def test_load_rejects_foreign_stream(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "something"}\n')
        with pytest.raises(ValueError, match="not a"):
            load_events_jsonl(path)
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_events_jsonl(path)

    def test_validate_rejects_malformed(self, instrumented):
        events = run_events(instrumented)
        with pytest.raises(ValueError, match="empty"):
            validate_events([])
        with pytest.raises(ValueError, match="run header"):
            validate_events(events[1:])
        with pytest.raises(ValueError, match="end marker"):
            validate_events(events[:-1])
        shuffled = [events[0]] + events[1:-1][::-1] + [events[-1]]
        with pytest.raises(ValueError, match="out of order"):
            validate_events(shuffled)


class TestFlamegraph:
    def test_stacks_validate_and_root_at_ranks(self, instrumented, tmp_path):
        path = tmp_path / "profile.folded"
        count = write_flamegraph(path, instrumented)
        text = path.read_text()
        assert validate_collapsed_stacks(text) == count > 0
        for line in text.splitlines():
            assert line.startswith("rank")
        # Levels appear as stack frames with their number.
        assert any(";level:1;" in line or ";level:1 " in line
                   for line in text.splitlines())

    def test_total_weight_bounded_by_makespan(self, instrumented):
        stacks = collapsed_stacks(instrumented.meta["tracer"])
        total_us = sum(stacks.values())
        bound = instrumented.time_total * 1e6 * instrumented.nranks
        # Self-times partition each rank's span tree: the sum cannot
        # exceed nranks * makespan (plus integer-rounding slack).
        assert 0 < total_us <= bound + len(stacks)

    def test_untimed_run_collapses_to_nothing(self, rmat_small, tmp_path):
        result = run_bfs(rmat_small, 5, "1d", nprocs=4, tracer=Tracer())
        assert collapsed_stacks(result.meta["tracer"]) == {}
        path = tmp_path / "empty.folded"
        assert write_flamegraph(path, result) == 0
        assert path.read_text() == ""
        assert validate_collapsed_stacks("") == 0

    def test_write_requires_a_tracer(self, rmat_small, tmp_path):
        result = run_bfs(rmat_small, 5, "1d", nprocs=4)
        with pytest.raises(ValueError, match="no tracer"):
            write_flamegraph(tmp_path / "x.folded", result)

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError, match="not 'stack weight'"):
            validate_collapsed_stacks("loneframe\n")
        with pytest.raises(ValueError, match="positive integer"):
            validate_collapsed_stacks("a;b -3\n")
        with pytest.raises(ValueError, match="positive integer"):
            validate_collapsed_stacks("a;b 1.5\n")
        with pytest.raises(ValueError, match="empty frame"):
            validate_collapsed_stacks("a;;b 10\n")
