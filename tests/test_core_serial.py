"""Serial BFS tests against hand-computed and oracle answers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bfs_serial
from repro.core.serial import bfs_queue
from repro.core.validate import ValidationError, count_traversed_edges, validate_bfs

from tests.conftest import make_disconnected_graph, make_path_graph, make_star_graph


class TestSerialBfs:
    def test_path_graph_levels(self):
        g = make_path_graph(10)
        levels, parents = bfs_serial(g.csr, 0)
        assert np.array_equal(levels, np.arange(10))
        assert np.array_equal(parents, [0] + list(range(9)))

    def test_path_graph_from_middle(self):
        g = make_path_graph(7)
        levels, _ = bfs_serial(g.csr, 3)
        assert np.array_equal(levels, [3, 2, 1, 0, 1, 2, 3])

    def test_star_graph(self):
        g = make_star_graph(50)
        levels, parents = bfs_serial(g.csr, 0)
        assert levels[0] == 0
        assert np.all(levels[1:] == 1)
        assert np.all(parents[1:] == 0)

    def test_star_from_leaf(self):
        g = make_star_graph(10)
        levels, _ = bfs_serial(g.csr, 5)
        assert levels[5] == 0 and levels[0] == 1
        assert np.all(np.delete(levels, [0, 5]) == 2)

    def test_disconnected(self):
        g = make_disconnected_graph()
        levels, parents = bfs_serial(g.csr, 0)
        assert np.array_equal(levels[:3] >= 0, [True, True, True])
        assert levels[3] == -1 and levels[4] == -1 and levels[5] == -1
        assert parents[3] == -1

    def test_isolated_source(self):
        g = make_disconnected_graph()
        levels, parents = bfs_serial(g.csr, 5)
        assert levels[5] == 0 and parents[5] == 5
        assert np.all(levels[:5] == -1)

    def test_source_out_of_range(self):
        g = make_path_graph(5)
        with pytest.raises(ValueError, match="source"):
            bfs_serial(g.csr, 5)

    def test_matches_queue_oracle(self, rmat_small):
        for seed in range(4):
            src = int(
                rmat_small.to_internal(
                    rmat_small.random_nonisolated_vertices(1, seed=seed)[0]
                )
            )
            lv, pv = bfs_serial(rmat_small.csr, src)
            lq, _ = bfs_queue(rmat_small.csr, src)
            assert np.array_equal(lv, lq)

    def test_high_diameter(self, crawl_graph):
        src = int(crawl_graph.to_internal(0))
        levels, parents = bfs_serial(crawl_graph.csr, src)
        assert levels.max() >= 25
        validate_bfs(crawl_graph.csr, src, levels, parents)


class TestValidation:
    def test_accepts_correct_output(self, rmat_small):
        src = int(rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 0)[0]))
        levels, parents = bfs_serial(rmat_small.csr, src)
        validate_bfs(rmat_small.csr, src, levels, parents, reference_levels=levels)

    def test_rejects_wrong_source_level(self):
        g = make_path_graph(4)
        levels, parents = bfs_serial(g.csr, 0)
        levels = levels.copy()
        levels[0] = 1
        with pytest.raises(ValidationError, match="source level"):
            validate_bfs(g.csr, 0, levels, parents)

    def test_rejects_level_skip(self):
        g = make_path_graph(4)
        levels, parents = bfs_serial(g.csr, 0)
        levels = levels.copy()
        levels[3] = 5
        with pytest.raises(ValidationError):
            validate_bfs(g.csr, 0, levels, parents)

    def test_rejects_fake_tree_edge(self):
        g = make_path_graph(5)
        levels, parents = bfs_serial(g.csr, 0)
        parents = parents.copy()
        parents[4] = 0  # 0-4 is not an edge... and levels disagree too
        with pytest.raises(ValidationError):
            validate_bfs(g.csr, 0, levels, parents)

    def test_rejects_nonedge_parent_same_level_gap(self):
        # Construct: square 0-1-2-3-0 plus chord-free diagonal claim.
        import numpy as np

        from repro.graphs import Graph

        g = Graph.from_edges(
            4, np.array([0, 1, 2, 3]), np.array([1, 2, 3, 0]), shuffle=False
        )
        levels, parents = bfs_serial(g.csr, 0)
        parents = parents.copy()
        # Vertex 2 is at level 2; claim its parent is vertex 1's neighbor 0
        # (level 0): wrong level spacing.
        parents[2] = 0
        with pytest.raises(ValidationError):
            validate_bfs(g.csr, 0, levels, parents)

    def test_rejects_reachability_mismatch(self):
        g = make_path_graph(4)
        levels, parents = bfs_serial(g.csr, 0)
        parents = parents.copy()
        parents[2] = -1
        with pytest.raises(ValidationError, match="disagree"):
            validate_bfs(g.csr, 0, levels, parents)

    def test_rejects_unreachable_neighbor_undirected(self):
        g = make_path_graph(4)
        levels, parents = bfs_serial(g.csr, 0)
        levels, parents = levels.copy(), parents.copy()
        levels[3] = -1
        parents[3] = -1
        with pytest.raises(ValidationError):
            validate_bfs(g.csr, 0, levels, parents)

    def test_reference_mismatch(self):
        g = make_star_graph(5)
        levels, parents = bfs_serial(g.csr, 0)
        wrong = levels.copy()
        wrong[2] = 0  # also breaks other rules, but reference fires too
        with pytest.raises(ValidationError):
            validate_bfs(g.csr, 0, levels, parents, reference_levels=wrong)


class TestTraversedEdges:
    def test_full_component(self):
        g = make_path_graph(5)
        levels, _ = bfs_serial(g.csr, 0)
        assert count_traversed_edges(g.csr, levels) == 4

    def test_partial_component(self):
        g = make_disconnected_graph()
        levels, _ = bfs_serial(g.csr, 0)
        # Triangle has 3 undirected edges; the 3-4 edge is outside.
        assert count_traversed_edges(g.csr, levels) == 3

    def test_m_input_scaling(self):
        g = make_path_graph(3)
        levels, _ = bfs_serial(g.csr, 0)
        # Pretend the input listed each edge twice (duplicates).
        assert count_traversed_edges(g.csr, levels, m_input=4) == 4

    def test_isolated_source_zero_edges(self):
        g = make_disconnected_graph()
        levels, _ = bfs_serial(g.csr, 5)
        assert count_traversed_edges(g.csr, levels) == 0
