"""CommChannel accounting: payload/wire stats, sieve, and reporting.

The channel is the only seam between the algorithms and the wire, so
these tests pin its bookkeeping contract: raw is the identity (wire ==
payload, self-buckets excluded), codecs shrink the wire without touching
the decoded multiset, the sieve drops exactly the already-shipped
targets, and everything lands in ``SimStats.summary()`` and the
breakdown table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import comm_breakdown_table
from repro.comm import CommChannel, Sieve, VertexRange
from repro.core import run_bfs
from repro.graphs.rmat import rmat_graph
from repro.mpsim import run_spmd


class TestPairAccounting:
    def test_raw_is_identity_and_excludes_self_bucket(self):
        """One pair to every rank (self included): payload counts only
        the off-rank pairs, and raw wire words equal payload words."""

        def fn(comm):
            ranges = [VertexRange(4 * r, 4) for r in range(comm.size)]
            channel = CommChannel(comm, ranges, codec="raw")
            targets = np.arange(comm.size, dtype=np.int64) * 4
            parents = np.full(comm.size, comm.rank, dtype=np.int64)
            owners = np.arange(comm.size, dtype=np.int64)
            send, info = channel.pack_pairs(targets, parents, owners)
            rv, rp = channel.exchange_pairs(send, info, level=0)
            assert info.pairs == comm.size
            assert info.payload_words == 2.0 * (comm.size - 1)
            assert info.wire_words == info.payload_words
            assert info.dropped == 0
            # Every rank addressed vertex 4*rank to this rank's range.
            assert rv.size == comm.size
            assert np.all(rv == 4 * comm.rank)
            assert np.array_equal(np.sort(rp), np.arange(comm.size))
            return True

        res = run_spmd(4, fn)
        assert all(res.returns)
        assert res.stats.payload_words("alltoallv") == 4 * 6.0
        assert res.stats.wire_words("alltoallv") == 4 * 6.0
        assert res.stats.compression_ratio("alltoallv") == 1.0

    def test_delta_varint_shrinks_wire_and_preserves_pairs(self):
        """A consecutive id block delta-encodes to 1-byte varints: the
        wire shrinks well past 2x and the decoded pairs are intact."""

        def fn(comm):
            per = 128
            ranges = [VertexRange(per * r, per) for r in range(comm.size)]
            channel = CommChannel(comm, ranges, codec="delta-varint")
            dst = (comm.rank + 1) % comm.size
            targets = np.arange(per * dst, per * (dst + 1), dtype=np.int64)
            parents = np.full(per, comm.rank, dtype=np.int64)
            owners = np.full(per, dst, dtype=np.int64)
            send, info = channel.pack_pairs(targets, parents, owners)
            rv, rp = channel.exchange_pairs(send, info, level=3)
            assert info.payload_words == 2.0 * per
            assert 0 < info.wire_words < info.payload_words / 2
            assert np.array_equal(
                np.sort(rv), np.arange(per * comm.rank, per * (comm.rank + 1))
            )
            assert np.all(rp == (comm.rank - 1) % comm.size)
            return True

        res = run_spmd(4, fn)
        assert all(res.returns)
        stats = res.stats
        assert 0 < stats.wire_words("alltoallv") < stats.payload_words("alltoallv")
        assert stats.compression_ratio("alltoallv") > 2.0
        summary = stats.summary()
        for key in (
            "total_payload_words",
            "total_wire_words",
            "compression_ratio",
            "sieve_dropped_candidates",
            "words_by_kind",
            "payload_by_kind",
            "words_by_level",
        ):
            assert key in summary, key
        assert 3 in summary["words_by_level"]
        assert summary["compression_ratio"] > 2.0

    def test_sieve_drops_resends_exactly_once(self):
        def fn(comm):
            ranges = [VertexRange(8 * r, 8) for r in range(comm.size)]
            sieve = Sieve(8 * comm.size)
            channel = CommChannel(comm, ranges, codec="raw", sieve=sieve)
            dst = (comm.rank + 1) % comm.size
            targets = np.arange(8 * dst, 8 * dst + 4, dtype=np.int64)
            parents = np.zeros(4, dtype=np.int64)
            owners = np.full(4, dst, dtype=np.int64)
            send, first = channel.pack_pairs(targets, parents, owners)
            channel.exchange_pairs(send, first, level=0)
            send, second = channel.pack_pairs(targets, parents, owners)
            channel.exchange_pairs(send, second, level=1)
            assert first.dropped == 0 and first.pairs == 4
            assert second.dropped == 4 and second.pairs == 0
            assert second.payload_words == second.wire_words == 0.0
            assert sieve.dropped == 4
            return True

        res = run_spmd(3, fn)
        assert all(res.returns)
        assert res.stats.sieve_dropped == 3 * 4


class TestGatherAccounting:
    def test_expand_bitmap_counts_words_and_marks_sieve(self):
        def fn(comm):
            nbits = 64
            ranges = [VertexRange(nbits * r, nbits) for r in range(comm.size)]
            sieve = Sieve(nbits * comm.size)
            channel = CommChannel(comm, ranges, codec="raw", sieve=sieve)
            mine = ranges[comm.rank]
            frontier = np.arange(mine.lo, mine.lo + 4, dtype=np.int64)
            mask, info = channel.expand_bitmap(frontier, level=0)
            assert mask.size == nbits * comm.size
            assert int(mask.sum()) == 4 * comm.size
            assert info.payload_words == info.wire_words == 1.0  # 64 bits
            # The gathered frontier is globally visited: all marked.
            assert int(sieve.seen.sum()) == 4 * comm.size
            return True

        assert all(run_spmd(2, fn).returns)

    def test_allgatherv_vertices_rank_order(self):
        def fn(comm):
            ranges = [VertexRange(10 * r, 10) for r in range(comm.size)]
            channel = CommChannel(comm, ranges, codec="delta-varint")
            mine = np.array([10 * comm.rank + 1, 10 * comm.rank + 7], np.int64)
            gathered, info = channel.allgatherv_vertices(mine, level=2)
            want = np.concatenate(
                [[10 * r + 1, 10 * r + 7] for r in range(comm.size)]
            )
            assert np.array_equal(gathered, want)
            assert info.payload_words == 2.0
            return True

        assert all(run_spmd(3, fn).returns)


class TestSummaryMixedCollectives:
    def test_per_level_breakdowns_exclude_control_collectives(self):
        """A realistic level interleaves channel-routed exchanges with
        control collectives (allreduce termination test, barrier): the
        per-level payload/wire breakdowns must cover exactly the channel
        kinds while ``words_by_kind`` still counts everything."""

        def fn(comm):
            per = 16
            ranges = [VertexRange(per * r, per) for r in range(comm.size)]
            channel = CommChannel(comm, ranges, codec="raw")
            for level in (1, 2):
                dst = (comm.rank + 1) % comm.size
                targets = np.arange(per * dst, per * dst + 4, dtype=np.int64)
                send, info = channel.pack_pairs(
                    targets, targets, np.full(4, dst, dtype=np.int64)
                )
                channel.exchange_pairs(send, info, level=level)
                if level == 2:
                    mine = np.array([per * comm.rank], dtype=np.int64)
                    channel.allgatherv_vertices(mine, level=level)
                comm.allreduce(np.int64(1))  # control: no level attribution
            comm.barrier()
            return True

        res = run_spmd(3, fn)
        assert all(res.returns)
        summary = res.stats.summary()

        by_level = summary["words_by_level"]
        assert set(by_level) == {1, 2}
        assert set(by_level[1]) == {"alltoallv"}
        assert set(by_level[2]) == {"alltoallv", "allgatherv"}
        # 3 ranks x 4 pairs x 2 words, all off-rank, raw codec.
        assert by_level[1]["alltoallv"] == 3 * 8.0
        assert by_level[2]["allgatherv"] == 3 * 1.0

        # Control collectives appear in the per-kind totals but never in
        # the channel's payload/wire accounting.
        assert "allreduce" in summary["words_by_kind"]
        assert "allreduce" not in summary["payload_by_kind"]
        payload_by_level = res.stats.payload_by_level()
        assert set(payload_by_level) == {1, 2}
        assert payload_by_level[1]["alltoallv"] == 3 * 8.0

        # Channel totals reconcile with the per-level breakdowns.
        wire_total = sum(
            words for kinds in by_level.values() for words in kinds.values()
        )
        assert summary["total_wire_words"] == wire_total
        assert summary["total_payload_words"] == wire_total  # raw codec
        # The wire's grand total also includes the control collectives.
        assert summary["total_words_sent"] > wire_total


class TestValidationAndReporting:
    def test_channel_requires_one_range_per_rank(self):
        def fn(comm):
            with pytest.raises(ValueError, match="VertexRange per group rank"):
                CommChannel(comm, [VertexRange(0, 4)] * (comm.size + 1))
            return True

        assert all(run_spmd(2, fn).returns)

    def test_serial_families_reject_wire_options(self):
        graph = rmat_graph(6, 8, seed=5)
        with pytest.raises(ValueError, match="codec/sieve"):
            run_bfs(graph, 0, "serial", codec="delta-varint")
        with pytest.raises(ValueError, match="codec/sieve"):
            run_bfs(graph, 0, "graph500-ref", nprocs=2, sieve=True)

    def test_comm_breakdown_table_from_run(self):
        graph = rmat_graph(8, 8, seed=2)
        res = run_bfs(
            graph, 17, "1d", nprocs=4, codec="delta-varint", sieve=True
        )
        stats = res.stats
        assert stats.wire_words("alltoallv") < stats.payload_words("alltoallv")
        table = comm_breakdown_table(stats)
        kinds = {row[1] for row in table.rows if row[0] == "total"}
        assert "alltoallv" in kinds
        ratio = {
            row[1]: row[4] for row in table.rows if row[0] == "total"
        }["alltoallv"]
        assert ratio > 1.0
        level_rows = [r for r in table.rows if str(r[0]).startswith("level")]
        assert level_rows, "per-level rows missing"
        rendered = table.render()
        assert "payload words" in rendered and "wire words" in rendered
