"""Tests for timeline recording and the ASCII Gantt renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import FRANKLIN, NetworkCostModel
from repro.mpsim import run_spmd
from repro.mpsim.timeline import GLYPHS, TimelineEvent, render_timeline


def _workload(comm):
    comm.charge_compute(1e-5 * (comm.rank + 1))
    comm.alltoallv([np.arange(100)] * comm.size)
    comm.allgatherv(np.arange(50))
    comm.allreduce(1)
    return None


def _timed_run(**kwargs):
    return run_spmd(
        3,
        _workload,
        cost_model=NetworkCostModel(FRANKLIN, total_ranks=3),
        **kwargs,
    )


class TestRecording:
    def test_disabled_by_default(self):
        res = _timed_run()
        assert all(not r.events for r in res.stats.comm)

    def test_events_cover_every_collective(self):
        res = _timed_run(record_timeline=True)
        for rank_stats in res.stats.comm:
            kinds = [e.kind for e in rank_stats.events]
            assert kinds == ["alltoallv", "allgatherv", "allreduce"]

    def test_event_times_ordered_and_positive(self):
        res = _timed_run(record_timeline=True)
        for rank_stats in res.stats.comm:
            for prev, cur in zip(rank_stats.events, rank_stats.events[1:]):
                assert cur.t_arrive >= prev.t_complete - 1e-15
            assert all(e.duration >= 0 for e in rank_stats.events)

    def test_event_durations_sum_to_mpi_time(self):
        res = _timed_run(record_timeline=True)
        for rank, rank_stats in enumerate(res.stats.comm):
            total = sum(e.duration for e in rank_stats.events)
            assert total == pytest.approx(res.stats.clocks[rank].mpi_time)

    def test_waiting_visible_in_spans(self):
        # Rank 0 does the least compute, so it waits longest at the first
        # collective: its span must start earliest and end with the rest.
        res = _timed_run(record_timeline=True)
        first = [rs.events[0] for rs in res.stats.comm]
        assert first[0].t_arrive < first[2].t_arrive
        assert first[0].t_complete == pytest.approx(first[2].t_complete)


class TestRenderer:
    def test_renders_rows_and_legend(self):
        res = _timed_run(record_timeline=True)
        chart = render_timeline(res.stats, width=40)
        lines = chart.splitlines()
        assert sum(1 for ln in lines if ln.startswith("rank ")) == 3
        assert "legend:" in lines[-1]
        assert "a" in chart and "g" in chart and "r" in chart

    def test_rank_subset(self):
        res = _timed_run(record_timeline=True)
        chart = render_timeline(res.stats, width=30, ranks=[1])
        assert chart.count("rank ") == 1

    def test_untimed_run_rejected(self):
        res = run_spmd(2, lambda comm: comm.barrier())
        with pytest.raises(ValueError, match="nothing to render"):
            render_timeline(res.stats)

    def test_unrecorded_run_rejected(self):
        res = _timed_run()  # timed but no events
        with pytest.raises(ValueError, match="record_timeline"):
            render_timeline(res.stats)

    def test_glyph_table_consistent(self):
        assert len(set(GLYPHS.values())) == len(GLYPHS)
        event = TimelineEvent("alltoallv", 0.0, 1.0, 10.0)
        assert event.duration == 1.0

    def test_unknown_kind_renders_fallback_glyph(self):
        # The docstring's o=other fallback must exist in the table so the
        # legend explains glyphs that unknown collective kinds produce.
        assert GLYPHS["other"] == "o"
        res = _timed_run(record_timeline=True)
        makespan = res.stats.makespan
        res.stats.comm[0].events.append(
            TimelineEvent("mystery-collective", 0.0, makespan / 2, 1.0)
        )
        chart = render_timeline(res.stats, width=40)
        assert "o" in chart.splitlines()[0]
        assert "o=other" in chart
