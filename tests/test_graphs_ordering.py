"""Tests for locality-aware orderings (RCM) and edge-cut measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, build_csr, rmat_graph, webcrawl_graph
from repro.graphs.ordering import bandwidth, edge_cut, rcm_ordering
from repro.graphs.permutation import apply_permutation


def relabeled(csr, perm):
    rows = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
    src, dst = apply_permutation(perm, rows, csr.indices)
    return build_csr(csr.n, src, dst, symmetrize=False, dedup=False)


class TestRcmOrdering:
    def test_is_permutation(self, rmat_small):
        perm = rcm_ordering(rmat_small.csr)
        assert np.array_equal(np.sort(perm), np.arange(rmat_small.n))

    def test_reduces_bandwidth_on_structured_graph(self):
        # A shuffled path graph: RCM should recover near-unit bandwidth.
        rng = np.random.default_rng(3)
        n = 200
        shuffle = rng.permutation(n).astype(np.int64)
        src = shuffle[np.arange(n - 1)]
        dst = shuffle[np.arange(1, n)]
        csr = build_csr(n, src, dst)
        assert bandwidth(csr) > 10
        perm = rcm_ordering(csr)
        assert bandwidth(relabeled(csr, perm)) <= 2

    def test_reduces_edge_cut_on_crawl(self):
        graph = webcrawl_graph(4000, n_hosts=20, seed=1, shuffle=True)
        cut_random = edge_cut(graph.csr, 8)
        perm = rcm_ordering(graph.csr)
        cut_rcm = edge_cut(relabeled(graph.csr, perm), 8)
        # Structured graph: locality ordering meaningfully cuts the cut
        # (the hub-heavy levels keep it above the natural host order).
        assert cut_rcm < 0.75 * cut_random

    def test_natural_host_order_is_best_on_crawl(self):
        shuffled = webcrawl_graph(4000, n_hosts=20, seed=1, shuffle=True)
        natural = webcrawl_graph(4000, n_hosts=20, seed=1, shuffle=False)
        # The generator's host blocks are the "perfect partition": the
        # upper bound any ordering heuristic is chasing.
        assert edge_cut(natural.csr, 8) < 0.3 * edge_cut(shuffled.csr, 8)

    def test_barely_helps_on_rmat(self):
        # Section 6: R-MAT "lack[s] good separators, and common vertex
        # relabeling strategies are also expected to have a minimal
        # effect".
        graph = rmat_graph(12, 16, seed=4)
        cut_random = edge_cut(graph.csr, 8)
        perm = rcm_ordering(graph.csr)
        cut_rcm = edge_cut(relabeled(graph.csr, perm), 8)
        assert cut_rcm > 0.6 * cut_random

    def test_handles_disconnected_graphs(self):
        src = np.array([0, 1, 4, 5], dtype=np.int64)
        dst = np.array([1, 2, 5, 6], dtype=np.int64)
        csr = build_csr(8, src, dst)  # two paths + isolated vertices
        perm = rcm_ordering(csr)
        assert np.array_equal(np.sort(perm), np.arange(8))

    def test_bfs_still_correct_after_relabel(self, rmat_small):
        from repro.core import run_bfs

        perm = rcm_ordering(rmat_small.csr)
        rows = np.repeat(
            np.arange(rmat_small.n, dtype=np.int64), rmat_small.degrees()
        )
        src, dst = apply_permutation(perm, rows, rmat_small.csr.indices)
        graph = Graph.from_edges(
            rmat_small.n, src, dst, symmetrize=False, shuffle=False
        )
        source = int(graph.random_nonisolated_vertices(1, 0)[0])
        ref = run_bfs(graph, source, "serial")
        res = run_bfs(graph, source, "1d", nprocs=4, validate=True)
        assert np.array_equal(res.levels, ref.levels)


class TestEdgeCut:
    def test_single_part_zero(self, rmat_small):
        assert edge_cut(rmat_small.csr, 1) == 0.0

    def test_empty_graph(self):
        csr = build_csr(4, np.empty(0, np.int64), np.empty(0, np.int64))
        assert edge_cut(csr, 4) == 0.0

    def test_path_cut_counts_boundary_edges(self):
        csr = build_csr(8, np.arange(7), np.arange(1, 8))
        # Partition into 4 blocks of 2: 3 of 7 undirected edges cross,
        # i.e. 6 of 14 stored adjacencies.
        assert edge_cut(csr, 4) == pytest.approx(6 / 14)

    def test_validation(self, rmat_small):
        with pytest.raises(ValueError):
            edge_cut(rmat_small.csr, 0)
