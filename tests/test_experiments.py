"""Quick-mode smoke tests of every experiment (shape checks live in the
full-size ``benchmarks/`` suite; here we verify each experiment runs,
returns well-formed tables, and preserves its headline signal even at the
downscaled quick settings)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.report import Table

#: Experiments cheap enough to run in quick mode inside the unit suite.
QUICK_EXPERIMENTS = [
    "fig3",
    "fig4",
    "table1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "sec6-ref",
    "sec6-node",
    "abl-dedup",
    "abl-shuffle",
    "abl-ordering",
    "abl-collectives",
    "abl-symmetric",
    "dirop",
    "abl-dirop",
]


@pytest.mark.parametrize("exp_id", QUICK_EXPERIMENTS)
def test_experiment_runs_quick(exp_id):
    table = run_experiment(exp_id, quick=True)
    assert isinstance(table, Table)
    assert table.rows, exp_id
    assert all(len(row) == len(table.headers) for row in table.rows)


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("fig99")


def test_registry_well_formed():
    for exp_id, (fn, desc) in EXPERIMENTS.items():
        assert callable(fn), exp_id
        assert isinstance(desc, str) and desc, exp_id


class TestQuickModeSignals:
    """Headline signals that must survive even the downscaled settings."""

    def test_fig5_flat_1d_beats_flat_2d_small_p(self):
        table = run_experiment("fig5", quick=True)
        row = next(r for r in table.rows if r[0] == 29 and r[2] == 512)
        header = table.headers
        assert row[header.index("1d")] > row[header.index("2d")]

    def test_fig7_hybrid_2d_wins_at_scale(self):
        table = run_experiment("fig7", quick=True)
        row = next(r for r in table.rows if r[2] == 40000)
        header = table.headers
        assert row[header.index("2d-hybrid")] == max(row[3:])

    def test_fig6_2d_communicates_less(self):
        table = run_experiment("fig6", quick=True)
        header = table.headers
        for row in table.rows:
            assert row[header.index("2d comm(s)")] < row[header.index("1d comm(s)")]

    def test_table2_order_of_magnitude_gap(self):
        table = run_experiment("table2", quick=True)
        by_key = {(r[0], r[1]): r[2:] for r in table.rows}
        cores = sorted({k[0] for k in by_key})[0]
        pbgl = by_key[(cores, "PBGL(-like)")]
        two_d = by_key[(cores, "Flat 2D")]
        assert all(t > 3 * p for t, p in zip(two_d, pbgl))

    def test_dedup_ablation_signal(self):
        table = run_experiment("abl-dedup", quick=True)
        rows = {(r[0], r[1]): r[2] for r in table.rows}
        assert rows[(8, "on")] < rows[(8, "off")]
