"""Invariants of the per-level traces emitted by the distributed BFS.

The merged ``level_profile`` (one entry per level, counters summed over
ranks) must stay consistent with the traversal result itself: every
discovered vertex shows up in exactly one level's ``discovered`` count,
the wire-word counters match the candidate counts the algorithms claim
to send, and the direction-optimizing variant labels each level with the
direction it actually ran.
"""

from __future__ import annotations

import pytest

from repro.core import run_bfs
from repro.core.runner import ALGORITHMS
from repro.graphs.rmat import rmat_graph

from tests.conftest import launch_any

#: Every flat variant the registry declares a per-level trace profile
#: for — derived dynamically, so a new plugin is covered the moment it
#: lands (hybrids share the family's trace path).
TRACE_ALGORITHMS = sorted(
    name
    for name, spec in ALGORITHMS.items()
    if "trace-profile" in spec.capabilities and not spec.hybrid
)
#: The direction-optimizing subset: their levels must carry a direction.
DIROP_TRACE_ALGORITHMS = [
    name for name in TRACE_ALGORITHMS if "dirop" in ALGORITHMS[name].family
]
#: Split by result kind: the single-source BFS entries keep the exact
#: discovered/frontier bookkeeping; the batched query kinds have their
#: own (weaker but still structural) invariants below.
BFS_TRACE_ALGORITHMS = [
    name for name in TRACE_ALGORITHMS if ALGORITHMS[name].kind == "bfs"
]
QUERY_TRACE_ALGORITHMS = [
    name for name in TRACE_ALGORITHMS if ALGORITHMS[name].kind != "bfs"
]


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(11, 16, seed=1)


@pytest.fixture(scope="module")
def source(graph):
    return int(graph.random_nonisolated_vertices(1, seed=2)[0])


def reached_after_source(res):
    """Vertices discovered strictly after level 0 (the source)."""
    return int((res.levels >= 1).sum())


class TestTraceEveryAlgorithm:
    """Registry-driven invariants: they hold for every traced plugin."""

    @pytest.mark.parametrize("algorithm", BFS_TRACE_ALGORITHMS)
    def test_discovered_sums_to_reached(self, graph, source, algorithm):
        res = run_bfs(graph, source, algorithm, nprocs=4, trace=True)
        profile = res.meta["level_profile"]
        assert sum(lvl["discovered"] for lvl in profile) == reached_after_source(res)
        # Frontier entering level L+1 is what level L discovered.
        for prev, cur in zip(profile, profile[1:]):
            assert cur["frontier"] == prev["discovered"]
        assert profile[0]["frontier"] == 1

    @pytest.mark.parametrize("algorithm", QUERY_TRACE_ALGORITHMS)
    def test_query_profile_invariants(self, graph, source, algorithm):
        """Kind-specific structure of the batched query families' traces.

        ``discovered`` counts *vertices* whose state changed at a level,
        so for the lane kinds it is bracketed by the distinct reached
        vertices (below) and the reached (vertex, lane) pairs (above);
        frontier continuity holds everywhere except across a CC batch
        reseed, which restarts the frontier from the next seed set.
        """
        res = launch_any(graph, source, algorithm, nprocs=4, trace=True, batch=8)
        profile = res.meta["level_profile"]
        kind = ALGORITHMS[algorithm].kind
        total_discovered = sum(lvl["discovered"] for lvl in profile)
        if kind in ("msbfs", "landmark"):
            lane_pairs = int((res.levels >= 1).sum())
            reached = int((res.levels >= 1).any(axis=1).sum())
            assert reached <= total_discovered <= lane_pairs
            for prev, cur in zip(profile, profile[1:]):
                assert cur["frontier"] == prev["discovered"]
            assert profile[0]["frontier"] == len(set(map(int, res.sources)))
            assert all(lvl["lanes"] == res.batch for lvl in profile)
        elif kind == "sssp":
            assert total_discovered >= int((res.levels[:, 0] >= 1).sum())
            for prev, cur in zip(profile, profile[1:]):
                assert cur["frontier"] == prev["discovered"]
            assert profile[0]["frontier"] == 1
            # Nonnegative weights make delta-stepping's buckets monotone.
            buckets = [lvl["bucket"] for lvl in profile]
            assert buckets == sorted(buckets)
        elif kind == "cc":
            batches = [lvl["batch"] for lvl in profile]
            assert batches == sorted(batches)
            for prev, cur in zip(profile, profile[1:]):
                if cur["batch"] == prev["batch"]:
                    assert cur["frontier"] == prev["discovered"]
                else:
                    assert cur["batch"] == prev["batch"] + 1
        else:  # pragma: no cover - new kind must add an invariant branch
            raise AssertionError(f"no trace invariants for kind {kind!r}")

    @pytest.mark.parametrize("algorithm", DIROP_TRACE_ALGORITHMS)
    def test_dirop_levels_record_direction(self, graph, source, algorithm):
        res = run_bfs(graph, source, algorithm, nprocs=4, trace=True)
        profile = res.meta["level_profile"]
        assert all(
            lvl["direction"] in ("top-down", "bottom-up") for lvl in profile
        )
        # A dense R-MAT actually exercises both directions.
        assert {lvl["direction"] for lvl in profile} == {
            "top-down",
            "bottom-up",
        }


class TestTrace1D:
    def test_words_sent_tracks_candidates_exactly_without_dedup(
        self, graph, source
    ):
        # Without send-side dedup every candidate crosses the wire as a
        # (vertex, parent) pair: exactly two words per candidate.
        res = run_bfs(
            graph, source, "1d", nprocs=4, trace=True, dedup_sends=False
        )
        for lvl in res.meta["level_profile"]:
            assert lvl["words_sent"] == 2 * lvl["candidates"], lvl

    def test_dedup_never_sends_more(self, graph, source):
        res = run_bfs(graph, source, "1d", nprocs=4, trace=True)
        assert any(
            lvl["words_sent"] < 2 * lvl["candidates"]
            for lvl in res.meta["level_profile"]
        )
        for lvl in res.meta["level_profile"]:
            assert lvl["words_sent"] <= 2 * lvl["candidates"], lvl

    def test_trace_words_bound_stats_ledger(self, graph, source):
        # The trace counts every exchanged pair; the simulator's
        # alltoallv ledger counts only the words that leave the rank
        # (self-destined buffers stay in memory).  The trace is therefore
        # an upper bound that the ledger approaches as p grows.
        res = run_bfs(graph, source, "1d", nprocs=4, trace=True)
        traced = sum(lvl["words_sent"] for lvl in res.meta["level_profile"])
        ledger = res.stats.words_sent("alltoallv")
        assert 0 < ledger <= traced
        # With 4 ranks and a hashed vertex distribution roughly 3/4 of
        # the pairs cross rank boundaries.
        assert ledger > traced / 2


class TestTrace2D:
    def test_words_sent_covers_both_exchanges(self, graph, source):
        # 2D sends the frontier along processor columns (expand) AND the
        # candidate pairs along rows (fold), so the wire traffic strictly
        # exceeds two words per surviving candidate on non-trivial levels.
        res = run_bfs(graph, source, "2d", nprocs=4, trace=True)
        for lvl in res.meta["level_profile"]:
            assert lvl["words_sent"] >= 2 * lvl["candidates"], lvl
        assert any(
            lvl["words_sent"] > 2 * lvl["candidates"]
            for lvl in res.meta["level_profile"]
        )


class TestTraceLandmark:
    """The landmark index build is one traced 64-way msbfs sweep, so its
    trace must agree with the index it returns."""

    @pytest.fixture(scope="class")
    def traced_index(self, graph, source):
        from repro.obs import Tracer

        tracer = Tracer()
        res = launch_any(
            graph, source, "landmark", nprocs=4, trace=True, batch=8,
            tracer=tracer,
        )
        return res, tracer

    def test_index_build_lanes_are_the_landmarks(self, traced_index):
        res, _tracer = traced_index
        index = res.meta["index"]
        assert index.k == res.batch == 8
        profile = res.meta["level_profile"]
        assert all(lvl["lanes"] == index.k for lvl in profile)

    def test_index_distances_match_the_sweep(self, traced_index):
        res, _tracer = traced_index
        index = res.meta["index"]
        # Each landmark is at distance 0 of its own lane, and every
        # finite distance was discovered in some traced level.
        for lane, landmark in enumerate(index.landmarks):
            assert res.levels[landmark, lane] == 0
        finite = res.levels[res.levels >= 1]
        assert finite.size and finite.max() <= len(res.meta["level_profile"])

    def test_index_build_spans_cover_every_level(self, traced_index):
        res, tracer = traced_index
        for rank in tracer.ranks:
            level_spans = [
                s for s in tracer.spans_for(rank) if s.phase == "level"
            ]
            assert len(level_spans) == res.nlevels
            assert all(s.meta.get("lanes") == res.batch for s in level_spans)
            assert [s.level for s in level_spans] == list(
                range(1, res.nlevels + 1)
            )


class TestTraceDirop:
    def test_non_dirop_traces_have_no_direction(self, graph, source):
        res = run_bfs(graph, source, "1d", nprocs=4, trace=True)
        assert all(
            "direction" not in lvl for lvl in res.meta["level_profile"]
        )

    def test_topdown_levels_match_1d_counters(self, graph, source):
        # Levels that ran top-down use the same exchange as plain 1d, so
        # their counters obey the same two-words-per-candidate bound.
        res = run_bfs(graph, source, "1d-dirop", nprocs=4, trace=True)
        for lvl in res.meta["level_profile"]:
            if lvl["direction"] == "top-down":
                assert lvl["words_sent"] <= 2 * lvl["candidates"], lvl
