"""Unit tests for the resilience layer: specs, plans, policies, stores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_bfs
from repro.faults import (
    CheckpointConfig,
    CheckpointStore,
    FaultEvent,
    RankCrashError,
    RetryPolicy,
    corrupt_pieces,
    parse_fault_spec,
    random_fault_plan,
    resolve_fault_plan,
)
from repro.model.machine import HOPPER


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor", rank=0)

    def test_level_must_be_positive(self):
        with pytest.raises(ValueError, match="level"):
            FaultEvent(kind="timeout", level=0)

    @pytest.mark.parametrize("kind", ["crash", "corrupt", "delay"])
    def test_rank_required_for_targeted_kinds(self, kind):
        with pytest.raises(ValueError, match="rank"):
            FaultEvent(kind=kind)

    def test_timeout_needs_no_rank(self):
        assert FaultEvent(kind="timeout", level=2).rank == -1

    def test_bad_site_rejected(self):
        with pytest.raises(ValueError, match="site"):
            FaultEvent(kind="timeout", site="bcast")

    def test_negative_seconds_and_attempt_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            FaultEvent(kind="delay", rank=0, seconds=-1.0)
        with pytest.raises(ValueError, match="attempt"):
            FaultEvent(kind="timeout", attempt=-1)


class TestSpecGrammar:
    SPEC = (
        "crash:rank=1,level=3;"
        "timeout:level=2,site=alltoallv;"
        "corrupt:rank=0,level=2,attempt=1;"
        "delay:rank=2,level=1,seconds=0.001;"
        "seed=7"
    )

    def test_parse(self):
        plan = parse_fault_spec(self.SPEC)
        assert len(plan) == 4
        assert plan.seed == 7
        kinds = [e.kind for e in plan.events]
        assert kinds == ["crash", "timeout", "corrupt", "delay"]
        assert plan.events[1].site == "alltoallv"
        assert plan.events[2].attempt == 1
        assert plan.events[3].seconds == pytest.approx(1e-3)

    def test_round_trip(self):
        plan = parse_fault_spec(self.SPEC)
        again = parse_fault_spec(plan.spec())
        assert again.events == plan.events
        assert again.seed == plan.seed

    def test_whitespace_and_empty_segments_tolerated(self):
        plan = parse_fault_spec(" crash:rank=0,level=1 ; ;seed=3 ")
        assert len(plan) == 1 and plan.seed == 3

    @pytest.mark.parametrize(
        "bad",
        ["sudden-death", "crash:rank", "crash:color=red", "crash:rank=1 level=2"],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(
            ValueError, match="bad fault spec|unknown fault kind|invalid literal"
        ):
            parse_fault_spec(bad)


class TestFaultPlan:
    def test_crash_at_level_respects_fired(self):
        plan = parse_fault_spec("crash:rank=1,level=3")
        index, event = plan.crash_at_level(3)
        assert event.rank == 1
        assert plan.crash_at_level(2) is None
        plan.mark_fired(index)
        assert plan.crash_at_level(3) is None

    def test_copy_resets_fired(self):
        plan = parse_fault_spec("crash:rank=1,level=3")
        plan.mark_fired(0)
        fresh = plan.copy()
        assert fresh.crash_at_level(3) is not None
        assert plan.crash_at_level(3) is None

    def test_delay_matches_rank_and_level(self):
        plan = parse_fault_spec("delay:rank=2,level=4,seconds=1e-4")
        assert plan.delay_at(2, 4) is not None
        assert plan.delay_at(1, 4) is None
        assert plan.delay_at(2, 3) is None

    def test_transients_filter_on_site(self):
        plan = parse_fault_spec(
            "timeout:level=2,site=alltoallv;corrupt:rank=0,level=2"
        )
        assert len(list(plan.transients_at("alltoallv", 2))) == 2
        # The wildcard corrupt event matches either site; the pinned
        # timeout does not.
        assert [e.kind for _i, e in plan.transients_at("allgatherv", 2)] == [
            "corrupt"
        ]
        assert list(plan.transients_at("alltoallv", 3)) == []

    def test_max_rank(self):
        assert parse_fault_spec("timeout:level=1").max_rank() == -1
        assert parse_fault_spec("crash:rank=5,level=1").max_rank() == 5

    def test_resolve_coercions(self):
        assert len(resolve_fault_plan(None)) == 0
        assert len(resolve_fault_plan("crash:rank=0,level=1")) == 1
        event = FaultEvent(kind="timeout", level=1)
        assert resolve_fault_plan(event).events == (event,)
        plan = parse_fault_spec("crash:rank=0,level=1")
        plan.mark_fired(0)
        assert resolve_fault_plan(plan).fired == set()
        with pytest.raises(TypeError, match="faults must be"):
            resolve_fault_plan(42)


class TestRandomPlan:
    def test_deterministic_and_in_bounds(self):
        a = random_fault_plan(9, nranks=4, max_level=5)
        b = random_fault_plan(9, nranks=4, max_level=5)
        assert a.events == b.events and a.seed == b.seed == 9
        for event in a.events:
            assert event.rank < 4
            assert 1 <= event.level <= 5

    def test_shape_knobs(self):
        plan = random_fault_plan(
            3, nranks=2, max_level=4, n_transients=0, crash=False, delay=False
        )
        assert len(plan) == 0
        plan = random_fault_plan(3, nranks=2, max_level=4, n_transients=3)
        kinds = [e.kind for e in plan.events]
        assert kinds.count("crash") == 1 and kinds.count("delay") == 1
        assert len(plan) == 5


class TestRetryPolicy:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_penalty_grows_with_attempt(self):
        policy = RetryPolicy()
        p0 = policy.penalty_seconds(HOPPER, 0)
        p1 = policy.penalty_seconds(HOPPER, 1)
        assert 0 < p0 < p1

    def test_untimed_runs_charge_nothing(self):
        assert RetryPolicy().penalty_seconds(None, 0) == 0.0


class TestCheckpointStore:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError, match="nranks"):
            CheckpointStore(0)
        with pytest.raises(ValueError, match="interval"):
            CheckpointConfig(CheckpointStore(2), every=0)

    def test_latest_complete_needs_every_rank(self):
        store = CheckpointStore(2)
        assert store.latest_complete() is None
        store.save(0, 1, {"x": 1})
        assert store.latest_complete() is None  # rank 1 missing
        store.save(1, 1, {"x": 2})
        assert store.latest_complete() == 1
        store.save(0, 2, {"x": 3})
        assert store.latest_complete() == 1  # level 2 still torn
        store.save(1, 2, {"x": 4})
        assert store.latest_complete() == 2
        assert store.get(2, 1) == {"x": 4}
        assert store.levels() == [1, 2]

    def test_cadence(self):
        config = CheckpointConfig(CheckpointStore(1), every=3)
        assert [level for level in range(1, 8) if config.due(level)] == [3, 6]


class TestCorruptPieces:
    def test_truncate_drops_last_word_of_largest_piece(self):
        pieces = [np.arange(2), np.arange(5), np.arange(3)]
        index, bad = corrupt_pieces(pieces, "truncate")
        assert index == 1
        assert np.array_equal(bad, np.arange(4))
        assert pieces[1].size == 5  # original untouched

    def test_smash_overwrites_first_word(self):
        index, bad = corrupt_pieces([np.array([7, 8])], "smash")
        assert index == 0
        assert bad[0] > 2**60 and bad[1] == 8

    def test_nothing_corruptible(self):
        assert corrupt_pieces([np.empty(0, dtype=np.int64)], "smash") is None
        assert corrupt_pieces([np.array([1])], "truncate") is None


class TestRunnerGating:
    @pytest.mark.parametrize("algorithm", ["serial", "pbgl", "graph500-ref"])
    def test_uninstrumented_families_reject_fault_options(
        self, rmat_small, algorithm
    ):
        with pytest.raises(ValueError, match="no fault/checkpoint"):
            run_bfs(rmat_small, 5, algorithm, nprocs=2, checkpoint_every=1)

    def test_fault_plan_must_fit_the_run(self, rmat_small):
        with pytest.raises(ValueError, match="only 4 ranks"):
            run_bfs(
                rmat_small, 5, "1d", nprocs=4, faults="crash:rank=7,level=1"
            )

    def test_crash_without_checkpointing_aborts_cleanly(self, rmat_small):
        with pytest.raises(RankCrashError, match="rank 1 at level 2"):
            run_bfs(
                rmat_small, 5, "1d", nprocs=4, machine="hopper",
                faults="crash:rank=1,level=2",
            )

    def test_crash_beyond_traversal_never_fires(self, rmat_small):
        plain = run_bfs(rmat_small, 5, "1d", nprocs=4, machine="hopper")
        result = run_bfs(
            rmat_small, 5, "1d", nprocs=4, machine="hopper",
            faults=f"crash:rank=0,level={plain.nlevels + 5}",
            checkpoint_every=1,
        )
        assert result.meta["faults"]["attempts"] == 1
        assert result.meta["faults"]["restores"] == []
        assert np.array_equal(result.parents, plain.parents)
