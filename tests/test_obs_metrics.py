"""Metrics registry: typed labeled series, null path, reconciliation.

Three contracts:

* the registry itself — typed counter/gauge/histogram series keyed by
  sorted label sets, OpenMetrics rendering, versioned JSON snapshot;
* the **null path** — installing a registry is passive: a metered run
  is bit-identical to an unmetered one (same parents, same clocks to
  the ULP), mirroring the tracer's zero-overhead contract;
* **reconciliation** — every instrumented counter equals the quantity
  the stats ledger / result derives independently, exactly, not
  approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_bfs
from repro.obs import (
    METRICS_SCHEMA,
    NULL_METRICS,
    NULL_RANK_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    resolve_metrics,
)

from tests.conftest import launch_any


class TestRegistry:
    def test_counters_accumulate_per_label_set(self):
        reg = MetricsRegistry()
        m = reg.for_rank(0)
        m.inc("words", 3.0, kind="alltoallv")
        m.inc("words", 2.0, kind="alltoallv")
        m.inc("words", 7.0, kind="allgatherv")
        assert reg.counter_value("words", kind="alltoallv") == 5.0
        assert reg.counter_value("words", kind="allgatherv") == 7.0
        assert reg.counter_value("words") == 12.0  # subset match sums
        assert reg.counter_value("words", kind="bcast") == 0.0

    def test_counters_sum_across_ranks(self):
        reg = MetricsRegistry()
        reg.for_rank(0).inc("hits")
        reg.for_rank(1).inc("hits", 2.0)
        assert reg.counter_value("hits") == 3.0
        assert reg.counter_value("hits", rank=1) == 2.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            MetricsRegistry().for_rank(0).inc("x", -1.0)

    def test_gauges_keep_latest_and_max_across_series(self):
        reg = MetricsRegistry()
        m = reg.for_rank(0)
        m.set_gauge("lanes", 8.0, level=1)
        m.set_gauge("lanes", 4.0, level=2)
        assert reg.gauge_value("lanes", level=2) == 4.0
        assert reg.gauge_value("lanes") == 8.0  # max over matching series
        assert reg.gauge_value("missing") is None

    def test_histogram_observe_and_merge(self):
        reg = MetricsRegistry()
        reg.declare_histogram("size", (1.0, 10.0, 100.0))
        reg.for_rank(0).observe("size", 0.5)
        reg.for_rank(0).observe("size", 5.0)
        reg.for_rank(1).observe("size", 500.0)  # overflow bucket
        hist = reg.histogram_value("size")
        assert isinstance(hist, Histogram)
        assert hist.count == 3
        assert hist.sum == pytest.approx(505.5)
        assert hist.bucket_counts[0] == 1  # <= 1.0
        assert hist.bucket_counts[-1] == 1  # > 100.0

    def test_name_binds_to_one_type(self):
        reg = MetricsRegistry()
        reg.for_rank(0).inc("x")
        with pytest.raises(TypeError, match="counter"):
            reg.for_rank(0).set_gauge("x", 1.0)

    def test_for_rank_returns_stable_handle(self):
        reg = MetricsRegistry()
        assert reg.for_rank(3) is reg.for_rank(3)
        assert reg.for_rank(3) is not reg.for_rank(4)

    def test_snapshot_schema_and_round_trip(self):
        reg = MetricsRegistry()
        reg.for_rank(0).inc("n", 2.0, kind="a")
        reg.for_rank(0).set_gauge("g", 1.5)
        reg.for_rank(0).observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["schema"] == METRICS_SCHEMA
        assert snap["metrics"]["n"]["type"] == "counter"
        assert snap["metrics"]["g"]["type"] == "gauge"
        assert snap["metrics"]["h"]["type"] == "histogram"
        import json

        assert json.loads(json.dumps(snap)) == snap  # JSON-serializable

    def test_openmetrics_rendering(self):
        reg = MetricsRegistry()
        reg.for_rank(0).inc("requests", 3.0, kind="a")
        reg.for_rank(0).observe("latency", 0.5)
        text = reg.render_openmetrics()
        assert "# TYPE requests counter" in text
        assert 'requests{kind="a"} 3' in text
        assert "# TYPE latency histogram" in text
        assert "latency_count" in text and "latency_sum" in text
        assert 'le="+Inf"' in text

    def test_reset_clears_series(self):
        reg = MetricsRegistry()
        reg.for_rank(0).inc("x", 5.0)
        reg.reset()
        assert reg.counter_value("x") == 0.0


class TestNullPath:
    def test_resolve_metrics_defaults_to_shared_null(self):
        assert resolve_metrics(None) is NULL_METRICS
        assert isinstance(resolve_metrics(None), NullMetrics)
        reg = MetricsRegistry()
        assert resolve_metrics(reg) is reg

    def test_null_handles_are_inert(self):
        handle = NULL_METRICS.for_rank(0)
        assert handle is NULL_RANK_METRICS
        handle.inc("x")
        handle.set_gauge("g", 1.0)
        handle.observe("h", 2.0)  # no-ops, no state anywhere

    def test_uninstrumented_families_reject_metrics(self, rmat_small):
        with pytest.raises(ValueError, match="not instrumented"):
            run_bfs(rmat_small, 5, "serial", nprocs=2, metrics=MetricsRegistry())


def _fingerprint(result):
    clocks = [
        (c.time, c.compute_time, c.mpi_time, dict(c.counters))
        for c in result.stats.clocks
    ]
    return result.stats.summary(), clocks


#: One flat representative per instrumented algorithm family.
FAMILY_ALGORITHMS = [
    "1d",
    "1d-dirop",
    "2d",
    "2d-dirop",
    "msbfs-1d",
    "cc",
    "sssp-delta",
    "landmark",
]


class TestMeteredRunBitIdentical:
    """Metrics read the clocks but never charge them: zero overhead."""

    @pytest.mark.parametrize("algorithm", FAMILY_ALGORITHMS)
    def test_metered_matches_plain(self, rmat_small, algorithm):
        kwargs = dict(nprocs=4, machine="hopper", batch=8)
        plain = launch_any(rmat_small, 5, algorithm, **kwargs)
        registry = MetricsRegistry()
        metered = launch_any(
            rmat_small, 5, algorithm, metrics=registry, **kwargs
        )
        assert np.array_equal(plain.levels, metered.levels)
        assert np.array_equal(plain.parents, metered.parents)
        # == on floats, not approx: the clocks must agree bit for bit.
        assert plain.time_total == metered.time_total
        assert _fingerprint(plain) == _fingerprint(metered)
        # ... and the registry actually recorded the run.
        assert registry.counter_value("engine_levels") > 0

    def test_metered_and_traced_compose(self, rmat_small):
        from repro.obs import Tracer

        plain = run_bfs(rmat_small, 5, "1d-dirop", nprocs=4, machine="hopper")
        both = run_bfs(
            rmat_small, 5, "1d-dirop", nprocs=4, machine="hopper",
            tracer=Tracer(), metrics=MetricsRegistry(),
        )
        assert np.array_equal(plain.parents, both.parents)
        assert plain.time_total == both.time_total


class TestReconciliation:
    """Counter totals equal independently-derived quantities, exactly."""

    @pytest.fixture(scope="class")
    def metered(self, rmat_small):
        registry = MetricsRegistry()
        result = run_bfs(
            rmat_small, 5, "1d-dirop", nprocs=4, machine="hopper",
            codec="delta-varint", sieve=True, metrics=registry,
        )
        return result, registry

    def test_wire_and_payload_words_match_stats(self, metered):
        result, registry = metered
        for kind in ("alltoallv", "allreduce", "allgatherv"):
            assert registry.counter_value(
                "comm_wire_words", kind=kind
            ) == float(result.stats.wire_words(kind))
            assert registry.counter_value(
                "comm_payload_words", kind=kind
            ) == float(result.stats.payload_words(kind))

    def test_engine_levels_and_discovered_match_result(self, metered):
        result, registry = metered
        assert registry.counter_value("engine_levels") == float(
            result.nlevels * result.nranks
        )
        reached = int((np.asarray(result.levels) >= 1).sum())
        assert registry.counter_value("engine_discovered") == float(reached)

    def test_sieve_counters_match_clock_ledger(self, metered):
        result, registry = metered
        dropped = sum(
            c.counters.get("sieve_dropped", 0) for c in result.stats.clocks
        )
        assert dropped > 0
        assert registry.counter_value("sieve_dropped") == float(dropped)

    def test_codec_encodes_are_labeled(self, metered):
        _result, registry = metered
        assert registry.counter_value("codec_encodes", codec="delta-varint") > 0
        assert registry.counter_value("codec_encodes", codec="raw") == 0.0

    def test_frontier_histogram_covers_every_level(self, metered):
        result, registry = metered
        hist = registry.histogram_value("engine_frontier_size")
        assert hist.count == result.nlevels * result.nranks

    def test_query_lanes_gauge_tracks_batch(self, rmat_small):
        registry = MetricsRegistry()
        result = launch_any(
            rmat_small, 5, "msbfs-1d", nprocs=4, machine="hopper",
            batch=8, metrics=registry,
        )
        assert registry.gauge_value("query_lanes_active") == float(result.batch)
        candidates = registry.counter_value("lane_prune_candidates")
        kept = registry.counter_value("lane_prune_kept")
        assert 0 < kept <= candidates

    def test_fault_and_checkpoint_counters(self, rmat_small):
        registry = MetricsRegistry()
        result = run_bfs(
            rmat_small, 5, "1d", nprocs=4, machine="hopper",
            faults="crash:rank=1,level=2;timeout:level=1", checkpoint_every=1,
            metrics=registry,
        )
        counters = result.meta["faults"]["counters"]
        # Crash detection is cooperative: every rank raises at the
        # crashed level's boundary, so the counter records one per rank.
        assert registry.counter_value("fault_crashes") == float(result.nranks)
        assert registry.counter_value("fault_retries") == float(
            counters["fault_retries"]
        )
        assert registry.counter_value("checkpoint_saves") == float(
            counters["checkpoints"]
        )
        assert registry.counter_value("checkpoint_restores") == float(
            counters["restores"]
        )
        assert registry.counter_value("fault_seconds") > 0
