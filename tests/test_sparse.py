"""Tests for the sparse substrate: DCSC, SPA, SpMSV kernels, vectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import (
    DCSC,
    SELECT_MAX,
    SPA,
    CSRMatrix,
    SparseVector,
    choose_spmsv_kernel,
    spmsv,
    spmsv_heap,
    spmsv_spa,
)


def random_coo(nrows, ncols, nnz, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, nrows, nnz), rng.integers(0, ncols, nnz)


class TestDCSC:
    def test_round_trip(self):
        rows, cols = random_coo(40, 30, 150, seed=1)
        d = DCSC.from_coo(40, 30, rows, cols)
        r2, c2 = d.to_coo()
        d2 = DCSC.from_coo(40, 30, r2, c2)
        assert np.array_equal(d.jc, d2.jc)
        assert np.array_equal(d.cp, d2.cp)
        assert np.array_equal(d.ir, d2.ir)

    def test_duplicates_collapse(self):
        d = DCSC.from_coo(5, 5, [1, 1, 2], [3, 3, 3])
        assert d.nnz == 2
        assert d.nzc == 1

    def test_hypersparse_pointer_storage(self):
        # 3 nonzeros in a 1000-column block: pointer arrays are O(nzc),
        # the whole point of DCSC (Section 4.1).
        d = DCSC.from_coo(1000, 1000, [1, 2, 3], [10, 500, 990])
        assert d.nzc == 3
        assert d.cp.size == 4

    def test_empty_block(self):
        d = DCSC.from_coo(10, 10, [], [])
        assert d.nnz == 0
        rows, vals, _ = d.extract_columns(np.array([1, 2]), np.array([1, 2]))
        assert rows.size == 0

    def test_extract_columns_exact(self):
        d = DCSC.from_coo(6, 6, [0, 2, 4, 1], [1, 1, 3, 5])
        rows, vals, lookups = d.extract_columns(
            np.array([1, 2, 3]), np.array([100, 200, 300])
        )
        # Column 1 has rows {0, 2}, column 3 has {4}; column 2 is empty.
        assert sorted(zip(rows.tolist(), vals.tolist())) == [
            (0, 100),
            (2, 100),
            (4, 300),
        ]
        assert lookups == 3

    def test_extract_no_hits(self):
        d = DCSC.from_coo(4, 8, [0], [7])
        rows, vals, _ = d.extract_columns(np.array([0, 3]), np.array([1, 2]))
        assert rows.size == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            DCSC.from_coo(4, 4, [5], [0])

    def test_split_rowwise_partitions(self):
        rows, cols = random_coo(64, 20, 300, seed=2)
        d = DCSC.from_coo(64, 20, rows, cols)
        pieces = d.split_rowwise(4)
        assert len(pieces) == 4
        assert sum(p.nnz for p in pieces) == d.nnz
        assert all(p.nrows == 16 for p in pieces)
        # Reassemble and compare.
        all_rows, all_cols = [], []
        for t, piece in enumerate(pieces):
            pr, pc = piece.to_coo()
            all_rows.append(pr + t * 16)
            all_cols.append(pc)
        rebuilt = DCSC.from_coo(
            64, 20, np.concatenate(all_rows), np.concatenate(all_cols)
        )
        assert np.array_equal(rebuilt.ir, d.ir)

    def test_split_more_pieces_than_rows(self):
        d = DCSC.from_coo(2, 4, [0, 1], [1, 2])
        pieces = d.split_rowwise(2)
        assert sum(p.nnz for p in pieces) == 2


class TestSPA:
    def test_max_select(self):
        spa = SPA(8)
        spa.accumulate(np.array([3, 3, 5]), np.array([10, 20, 7]))
        idx, val = spa.extract()
        assert np.array_equal(idx, [3, 5])
        assert np.array_equal(val, [20, 7])

    def test_reset_reuse(self):
        spa = SPA(8)
        spa.accumulate(np.array([1]), np.array([5]))
        spa.reset()
        idx, val = spa.extract()
        assert idx.size == 0
        spa.accumulate(np.array([2]), np.array([9]))
        idx, val = spa.extract_and_reset()
        assert np.array_equal(idx, [2]) and np.array_equal(val, [9])

    def test_identity_value_rejected(self):
        spa = SPA(4)
        with pytest.raises(ValueError, match="identity"):
            spa.accumulate(np.array([0]), np.array([-1]))

    def test_position_bounds(self):
        spa = SPA(4)
        with pytest.raises(ValueError, match="out of range"):
            spa.accumulate(np.array([4]), np.array([1]))

    def test_memory_footprint_reported(self):
        assert SPA(1000).memory_words == 1000


class TestSpMSVKernels:
    @pytest.mark.parametrize("seed", range(5))
    def test_spa_heap_reference_agree(self, seed):
        rng = np.random.default_rng(seed)
        nr, nc = rng.integers(5, 60), rng.integers(5, 60)
        nnz = int(rng.integers(0, 4 * max(nr, nc)))
        rows, cols = random_coo(nr, nc, nnz, seed=seed + 100)
        d = DCSC.from_coo(nr, nc, rows, cols)
        m = CSRMatrix.from_coo(nr, nc, rows, cols)
        k = int(rng.integers(0, nc))
        fi = np.unique(rng.integers(0, nc, size=k)) if k else np.empty(0, np.int64)
        fv = fi * 3 + 1
        i_spa, v_spa, w_spa = spmsv_spa(d, fi, fv)
        i_heap, v_heap, w_heap = spmsv_heap(d, fi, fv)
        i_ref, v_ref = m.spmsv_reference(fi, fv)
        assert np.array_equal(i_spa, i_heap) and np.array_equal(v_spa, v_heap)
        assert np.array_equal(i_spa, i_ref) and np.array_equal(v_spa, v_ref)
        assert w_spa.candidates == w_heap.candidates
        assert w_spa.kernel == "spa" and w_heap.kernel == "heap"

    def test_output_sorted_unique(self):
        rows, cols = random_coo(30, 30, 200, seed=9)
        d = DCSC.from_coo(30, 30, rows, cols)
        fi = np.arange(0, 30, 2)
        idx, _, _ = spmsv_heap(d, fi, fi + 1)
        assert np.all(np.diff(idx) > 0)

    def test_work_records(self):
        d = DCSC.from_coo(100, 10, [1, 2, 3], [4, 4, 5])
        _, _, w = spmsv_spa(d, np.array([4]), np.array([7]))
        assert w.candidates == 2
        assert w.merge_ws_words == 100
        assert w.heap_comparisons == 0.0
        _, _, wh = spmsv_heap(d, np.array([4, 5]), np.array([7, 8]))
        assert wh.heap_k == 2
        assert wh.heap_comparisons == pytest.approx(3 * 1.0)

    def test_polyalgorithm_predicate(self):
        # Figure 3: SPA below ~10K cores, heap beyond.
        assert choose_spmsv_kernel(1024) == "spa"
        assert choose_spmsv_kernel(20_000) == "heap"
        # Memory pressure forces the heap regardless of concurrency.
        assert (
            choose_spmsv_kernel(64, spa_words=10**9, memory_budget_words=10**6)
            == "heap"
        )
        # A budget without a known SPA working set cannot be enforced and
        # must not be silently ignored.
        with pytest.raises(ValueError, match="spa_words"):
            choose_spmsv_kernel(64, memory_budget_words=10**6)

    def test_auto_dispatch_respects_memory_budget(self):
        # The block's dense accumulator would need nrows=100 words; a
        # tighter budget must force the heap kernel even at low
        # concurrency, and a looser one must keep the SPA.
        d = DCSC.from_coo(100, 10, [1, 2, 3], [4, 4, 5])
        fi, fv = np.array([4, 5]), np.array([7, 8])
        _, _, w = spmsv(d, fi, fv, kernel="auto", modeled_cores=64,
                        memory_budget_words=50)
        assert w.kernel == "heap"
        _, _, w = spmsv(d, fi, fv, kernel="auto", modeled_cores=64,
                        memory_budget_words=1000)
        assert w.kernel == "spa"
        # Both kernels agree on the result either way.
        i1, v1, _ = spmsv(d, fi, fv, kernel="spa")
        i2, v2, _ = spmsv(d, fi, fv, kernel="auto", modeled_cores=64,
                          memory_budget_words=50)
        assert np.array_equal(i1, i2) and np.array_equal(v1, v2)

    def test_dispatch(self):
        d = DCSC.from_coo(10, 10, [1], [2])
        fi, fv = np.array([2]), np.array([3])
        for kernel, expect in [("spa", "spa"), ("heap", "heap")]:
            _, _, w = spmsv(d, fi, fv, kernel=kernel)
            assert w.kernel == expect
        _, _, w = spmsv(d, fi, fv, kernel="auto", modeled_cores=40_000)
        assert w.kernel == "heap"
        with pytest.raises(ValueError, match="unknown SpMSV kernel"):
            spmsv(d, fi, fv, kernel="bogus")


class TestSparseVector:
    def test_from_pairs_max_dedup(self):
        v = SparseVector.from_pairs(10, [4, 2, 4], [1, 9, 8])
        assert np.array_equal(v.indices, [2, 4])
        assert np.array_equal(v.values, [9, 8])

    def test_dense_round_trip(self):
        dense = np.array([-1, 5, -1, 7], dtype=np.int64)
        v = SparseVector.from_dense(dense)
        assert np.array_equal(v.to_dense(), dense)
        assert v.nnz == 2

    def test_restrict_and_rebase(self):
        v = SparseVector(10, np.array([1, 4, 8]), np.array([10, 40, 80]))
        r = v.restrict(2, 9, rebase=True)
        assert r.length == 7
        assert np.array_equal(r.indices, [2, 6])
        assert np.array_equal(r.values, [40, 80])

    def test_mask_out(self):
        v = SparseVector(5, np.array([0, 2, 4]), np.array([1, 2, 3]))
        occupied = np.array([-1, -1, 9, -1, 9], dtype=np.int64)
        masked = v.mask_out(occupied)
        assert np.array_equal(masked.indices, [0])

    def test_unsorted_construction_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            SparseVector(5, np.array([3, 1]), np.array([1, 1]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            SparseVector(3, np.array([3]), np.array([1]))


class TestCSRMatrix:
    def test_transpose_involution(self):
        rows, cols = random_coo(12, 17, 60, seed=4)
        m = CSRMatrix.from_coo(12, 17, rows, cols)
        mt2 = m.transpose().transpose()
        assert np.array_equal(m.indptr, mt2.indptr)
        assert np.array_equal(m.indices, mt2.indices)

    def test_spmv_bool(self):
        m = CSRMatrix.from_coo(3, 3, [0, 1, 2], [1, 2, 0])
        x = np.array([False, True, False])
        assert np.array_equal(m.spmv_bool(x), [True, False, False])

    def test_spmv_bool_empty_rows(self):
        m = CSRMatrix.from_coo(4, 4, [0], [0])
        y = m.spmv_bool(np.array([True, True, True, True]))
        assert np.array_equal(y, [True, False, False, False])

    def test_to_dcsc_consistent(self):
        rows, cols = random_coo(10, 10, 40, seed=5)
        m = CSRMatrix.from_coo(10, 10, rows, cols)
        d = m.to_dcsc()
        assert d.nnz == m.nnz

    def test_semiring_reduce_sorted_runs(self):
        keys = np.array([1, 1, 3, 3, 3, 7])
        vals = np.array([5, 9, 2, 8, 4, 1])
        k, v = SELECT_MAX.reduce_sorted_runs(keys, vals)
        assert np.array_equal(k, [1, 3, 7])
        assert np.array_equal(v, [9, 8, 1])
