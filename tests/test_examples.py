"""Every example script must run to completion (keeps examples from
rotting as the library evolves)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they show"
    assert "Traceback" not in proc.stderr
