"""Capture golden run-report fixtures for the engine parity tests.

Runs each distributed BFS family once with every cross-cutting concern
enabled — wire codec, sender-side sieve, per-level trace profile, span
tracer, fault injection (crash + transients), and checkpoint-restart —
and freezes the observable outputs as JSON:

* ``parents`` / ``levels`` in the caller's labels,
* the machine-readable run report (config, modeled times, GTEPS,
  ``stats.summary()`` comm volumes, span-derived phase/level/critical
  sections, and the fault/checkpoint accounting),
* the merged per-level trace profile,
* the full Chrome ``trace_event`` span tree of every rank.

The fixtures committed under ``tests/golden/`` were produced by the
pre-engine scaffolding (one hand-rolled level loop per algorithm file);
``tests/test_golden_parity.py`` asserts the refactored
:mod:`repro.core.engine` reproduces them bit-identically.  Regenerate
(only when an intentional behavior change is being locked in) with::

    PYTHONPATH=src python tests/golden/capture.py [family ...]

Passing family names regenerates only those fixtures, so locking in a
new algorithm (or an intentional change to one family) never rewrites
the unrelated files.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import run_bfs
from repro.core.runner import ALGORITHMS
from repro.graphs import rmat_graph
from repro.obs import Tracer, chrome_trace, run_report
from repro.query import run_query

GOLDEN_DIR = Path(__file__).resolve().parent

#: One deterministic fault schedule shared by every family: a rank-1
#: crash at level 3 (forcing a checkpoint restart), a timeout on the
#: level-2 alltoallv (one retry), a corruption on rank 0 (detected via
#: CodecError on the damaged wire, then retried) and a fixed-length
#: delay on rank 0 at level 1.
FAULT_SPEC = (
    "crash:rank=1,level=3;"
    "timeout:level=2,site=alltoallv;"
    "corrupt:rank=0,level=2;"
    "delay:rank=0,level=1,seconds=1e-4;"
    "seed=7"
)

#: Graph + run configuration of every fixture (kwargs to ``run_bfs``).
CONFIGS: dict[str, dict] = {
    algorithm: dict(
        algorithm=algorithm,
        nprocs=4,
        machine="hopper",
        codec="delta-varint",
        sieve=True,
        trace=True,
        faults=FAULT_SPEC,
        checkpoint_every=2,
        validate=True,
    )
    for algorithm in ("1d", "1d-dirop", "2d", "2d-dirop")
}

#: The batched query families ride the same harness — everything on at
#: once except the sieve (structurally refused for triple-shipping
#: kinds, so the key is absent rather than False).
CONFIGS["msbfs-1d"] = dict(
    algorithm="msbfs-1d",
    nprocs=4,
    machine="hopper",
    codec="delta-varint",
    trace=True,
    faults=FAULT_SPEC,
    checkpoint_every=2,
    validate=True,
)

GRAPH = dict(scale=9, edgefactor=8, seed=5)
SOURCE_SEED = 3
QUERY_BATCH = 8


def capture(algorithm: str) -> dict:
    """Run one fixture configuration and freeze its observables.

    Dispatches on the registry kind: single-source BFS families run
    through ``run_bfs`` and freeze flat ``parents``/``levels`` lists;
    query families run through ``run_query`` with a deterministic source
    batch and freeze the 2-D lane arrays (``source`` holds the batch).
    """
    graph = rmat_graph(GRAPH["scale"], GRAPH["edgefactor"], seed=GRAPH["seed"])
    tracer = Tracer()
    config = dict(CONFIGS[algorithm])
    algorithm = config.pop("algorithm")
    if ALGORITHMS[algorithm].kind == "bfs":
        source = int(graph.random_nonisolated_vertices(1, seed=SOURCE_SEED)[0])
        result = run_bfs(graph, source, algorithm, tracer=tracer, **config)
    else:
        source = [
            int(s)
            for s in graph.random_nonisolated_vertices(
                QUERY_BATCH, seed=SOURCE_SEED
            )
        ]
        result = run_query(
            graph,
            sources=source,
            algorithm=algorithm,
            tracer=tracer,
            **config,
        )
    return {
        "graph": dict(GRAPH),
        "source": source,
        "config": {"algorithm": algorithm, **config},
        "parents": result.parents.tolist(),
        "levels": result.levels.tolist(),
        "report": run_report(result),
        "level_profile": result.meta["level_profile"],
        "trace_events": chrome_trace(tracer)["traceEvents"],
    }


def main(argv: list[str] | None = None) -> None:
    names = argv if argv is not None else sys.argv[1:]
    names = list(names) if names else sorted(CONFIGS)
    unknown = sorted(set(names) - set(CONFIGS))
    if unknown:
        raise SystemExit(
            f"unknown families {unknown}; known: {sorted(CONFIGS)}"
        )
    for algorithm in names:
        fixture = capture(algorithm)
        path = GOLDEN_DIR / f"{algorithm}.json"
        path.write_text(
            json.dumps(fixture, indent=1, allow_nan=False, sort_keys=True) + "\n"
        )
        profile = fixture["level_profile"]
        directions = {
            entry["direction"] for entry in profile if "direction" in entry
        }
        print(
            f"wrote {path.name}: nlevels={fixture['report']['graph']['nlevels']} "
            f"spans={len(fixture['trace_events'])} "
            f"attempts={fixture['report']['faults']['attempts']}"
            + (f" directions={sorted(directions)}" if directions else "")
        )


if __name__ == "__main__":
    main()
