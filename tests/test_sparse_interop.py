"""Tests for scipy sparse interoperability."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import rmat_graph
from repro.sparse import DCSC
from repro.sparse.interop import (
    csr_from_scipy,
    csr_to_scipy,
    dcsc_from_scipy,
    dcsc_to_scipy,
    graph_to_scipy,
)


class TestCsrInterop:
    def test_round_trip(self, rmat_small):
        mat = csr_to_scipy(rmat_small.csr)
        back = csr_from_scipy(mat)
        assert np.array_equal(back.indptr, rmat_small.csr.indptr)
        assert np.array_equal(back.indices, rmat_small.csr.indices)

    def test_scipy_matrix_semantics(self, rmat_small):
        mat = csr_to_scipy(rmat_small.csr)
        assert mat.shape == (rmat_small.n, rmat_small.n)
        assert mat.nnz == rmat_small.nnz
        # Symmetric storage: A == A^T for undirected graphs.
        assert (mat != mat.T).nnz == 0

    def test_from_scipy_dedups_and_sorts(self):
        mat = sp.coo_matrix(
            (np.ones(3), ([0, 0, 1], [2, 2, 0])), shape=(3, 3)
        )
        csr = csr_from_scipy(mat)
        assert csr.nnz == 2
        assert csr.has_edge(0, 2) and csr.has_edge(1, 0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            csr_from_scipy(sp.eye(3, 4))

    def test_spmv_matches_bfs_level(self, rmat_small):
        """One boolean SpMV == one BFS frontier expansion."""
        from repro.core import bfs_serial

        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 0)[0])
        )
        levels, _ = bfs_serial(rmat_small.csr, src)
        mat = csr_to_scipy(rmat_small.csr)
        x = np.zeros(rmat_small.n, dtype=bool)
        x[src] = True
        reached = x.copy()
        for _ in range(int(levels.max())):
            x = np.asarray((mat.T @ x)).ravel() & ~reached
            reached |= x
        assert np.array_equal(reached, levels >= 0)


class TestDcscInterop:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        d = DCSC.from_coo(40, 30, rng.integers(0, 40, 100), rng.integers(0, 30, 100))
        back = dcsc_from_scipy(dcsc_to_scipy(d))
        assert np.array_equal(back.ir, d.ir)
        assert np.array_equal(back.jc, d.jc)
        assert np.array_equal(back.cp, d.cp)

    def test_empty_block(self):
        d = DCSC.from_coo(5, 5, [], [])
        mat = dcsc_to_scipy(d)
        assert mat.nnz == 0
        assert dcsc_from_scipy(mat).nnz == 0


class TestGraphInterop:
    def test_original_labels_restore_input_edges(self):
        graph = rmat_graph(8, 4, seed=3, shuffle=True)
        mat = graph_to_scipy(graph, original_labels=True)
        # Compare against the unshuffled build of the same edges.
        plain = rmat_graph(8, 4, seed=3, shuffle=False)
        expected = csr_to_scipy(plain.csr)
        assert (mat != expected).nnz == 0

    def test_internal_labels(self, rmat_small):
        mat = graph_to_scipy(rmat_small, original_labels=False)
        assert mat.nnz == rmat_small.nnz
