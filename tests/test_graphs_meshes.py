"""Tests for the structured mesh generators (single-node stand-ins)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bfs_serial, run_bfs
from repro.graphs import Graph
from repro.graphs.meshes import (
    banded_edges,
    grid2d_edges,
    grid3d_edges,
    mesh_graph,
    power_grid_edges,
)
from repro.graphs.ordering import bandwidth as matrix_bandwidth


class TestGrid2d:
    def test_edge_count(self):
        src, dst = grid2d_edges(4, 5)
        # 4x5 lattice: 4*4 horizontal + 3*5 vertical = 31.
        assert src.size == 31

    def test_degrees_bounded_by_four(self):
        g = Graph.from_edges(20, *grid2d_edges(4, 5), shuffle=False)
        assert g.degrees().max() <= 4
        # Corners have degree 2.
        assert g.degrees().min() == 2

    def test_periodic_wraps(self):
        g = Graph.from_edges(16, *grid2d_edges(4, 4, periodic=True), shuffle=False)
        assert np.all(g.degrees() == 4)  # torus is 4-regular

    def test_diameter_is_manhattan(self):
        g = Graph.from_edges(64, *grid2d_edges(8, 8), shuffle=False)
        levels, _ = bfs_serial(g.csr, 0)
        assert levels.max() == 14  # (8-1) + (8-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            grid2d_edges(0, 5)


class TestGrid3d:
    def test_edge_count(self):
        src, dst = grid3d_edges(3, 3, 3)
        assert src.size == 3 * (2 * 3 * 3)  # 3 axes x 2*9 links

    def test_diameter(self):
        g = Graph.from_edges(27, *grid3d_edges(3, 3, 3), shuffle=False)
        levels, _ = bfs_serial(g.csr, 0)
        assert levels.max() == 6  # 2+2+2

    def test_periodic_regular(self):
        g = Graph.from_edges(
            64, *grid3d_edges(4, 4, 4, periodic=True), shuffle=False
        )
        assert np.all(g.degrees() == 6)


class TestPowerGrid:
    def test_connected_and_low_degree(self):
        g = Graph.from_edges(2000, *power_grid_edges(2000, seed=1), shuffle=False)
        levels, _ = bfs_serial(g.csr, 0)
        assert (levels >= 0).all()
        assert g.degrees().mean() < 6

    def test_has_spurs(self):
        g = Graph.from_edges(1000, *power_grid_edges(1000, seed=2), shuffle=False)
        assert (g.degrees() == 1).sum() > 0

    def test_high_diameter(self):
        g = Graph.from_edges(4000, *power_grid_edges(4000, seed=3), shuffle=False)
        levels, _ = bfs_serial(g.csr, 0)
        assert levels.max() > 20  # ~sqrt(n) scaling, nothing like R-MAT

    def test_validation(self):
        with pytest.raises(ValueError):
            power_grid_edges(2)
        with pytest.raises(ValueError):
            power_grid_edges(100, tie_fraction=1.5)


class TestBanded:
    def test_bandwidth_respected(self):
        src, dst = banded_edges(500, bandwidth=8, seed=4)
        g = Graph.from_edges(500, src, dst, shuffle=False)
        assert matrix_bandwidth(g.csr) <= 8

    def test_connected_via_backbone(self):
        g = Graph.from_edges(300, *banded_edges(300, 4, seed=5), shuffle=False)
        levels, _ = bfs_serial(g.csr, 0)
        assert (levels >= 0).all()


class TestMeshGraph:
    @pytest.mark.parametrize("kind", ["power", "banded", "grid2d", "grid3d"])
    def test_kinds_build_and_traverse(self, kind):
        graph = mesh_graph(kind, 1500, seed=6)
        source = int(graph.random_nonisolated_vertices(1, seed=1)[0])
        ref = run_bfs(graph, source, "serial")
        res = run_bfs(graph, source, "2d", nprocs=4, validate=True)
        assert np.array_equal(res.levels, ref.levels)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown mesh kind"):
            mesh_graph("klein-bottle", 100)
