"""Tests for the graph-generation substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    build_csr,
    erdos_renyi_edges,
    load_graph,
    rmat_edges,
    rmat_graph,
    save_graph,
    uniform_degree_edges,
    webcrawl_graph,
)
from repro.graphs.permutation import (
    apply_permutation,
    invert_permutation,
    random_permutation,
)
from repro.graphs.webcrawl import webcrawl_edges


class TestRmat:
    def test_edge_count_and_range(self):
        src, dst = rmat_edges(10, 16, seed=0)
        assert src.size == dst.size == 16 * 1024
        assert src.min() >= 0 and src.max() < 1024
        assert dst.min() >= 0 and dst.max() < 1024

    def test_deterministic_by_seed(self):
        a = rmat_edges(8, 8, seed=5)
        b = rmat_edges(8, 8, seed=5)
        c = rmat_edges(8, 8, seed=6)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        assert not np.array_equal(a[0], c[0])

    def test_skewed_degree_distribution(self):
        g = rmat_graph(12, 16, seed=1)
        deg = g.degrees()
        # R-MAT with Graph 500 parameters concentrates edges heavily:
        # the max degree dwarfs the mean (the load-balance challenge the
        # paper tackles with random relabeling).
        assert deg.max() > 20 * deg.mean()

    def test_scale_zero(self):
        src, dst = rmat_edges(0, 4, seed=0)
        assert np.all(src == 0) and np.all(dst == 0)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            rmat_edges(4, 4, params=(0.9, 0.2, 0.0, 0.0))
        with pytest.raises(ValueError, match="scale"):
            rmat_edges(-1, 4)

    def test_noise_changes_output_but_not_shape(self):
        base = rmat_edges(8, 8, seed=3, noise=0.0)
        noisy = rmat_edges(8, 8, seed=3, noise=0.1)
        assert noisy[0].size == base[0].size
        assert not np.array_equal(base[0], noisy[0])

    def test_rmat_graph_keeps_input_edge_count(self):
        g = rmat_graph(9, 16, seed=0)
        assert g.m_input == 16 * 512
        # Symmetrized storage is bounded by twice the input.
        assert g.nnz <= 2 * g.m_input


class TestRandomGraphs:
    def test_erdos_renyi_edge_count(self):
        src, dst = erdos_renyi_edges(1000, 8.0, seed=0)
        assert src.size == 4000

    def test_uniform_degree_is_regular_in_sources(self):
        src, dst = uniform_degree_edges(100, 5, seed=0)
        assert np.all(np.bincount(src, minlength=100) == 5)

    def test_uniform_degree_concentrated(self):
        g = Graph.from_edges(500, *uniform_degree_edges(500, 8, seed=1), shuffle=False)
        deg = g.degrees()
        assert deg.max() < 3 * deg.mean()  # no skew, unlike R-MAT

    def test_zero_degree(self):
        src, dst = uniform_degree_edges(10, 0, seed=0)
        assert src.size == dst.size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_edges(0, 4)
        with pytest.raises(ValueError):
            uniform_degree_edges(5, -1)


class TestWebcrawl:
    def test_high_diameter(self):
        from repro.core import bfs_serial

        g = webcrawl_graph(8000, n_hosts=40, host_reach=1, seed=0, shuffle=False)
        levels, _ = bfs_serial(g.csr, 0)
        assert levels.max() >= 35  # ~ one level per host in the chain
        assert (levels >= 0).all()  # backbone guarantees connectivity

    def test_shuffle_preserves_diameter(self):
        from repro.core import bfs_serial

        plain = webcrawl_graph(4000, n_hosts=20, seed=0, shuffle=False)
        shuffled = webcrawl_graph(4000, n_hosts=20, seed=0, shuffle=True)
        lv_plain, _ = bfs_serial(plain.csr, 0)
        src = int(shuffled.to_internal(0))
        lv_shuf, _ = bfs_serial(shuffled.csr, src)
        assert lv_plain.max() == lv_shuf.max()

    def test_intra_host_skew(self):
        g = webcrawl_graph(5000, n_hosts=10, seed=1, shuffle=False)
        deg = g.degrees()
        assert deg.max() > 5 * deg.mean()

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="n >= n_hosts"):
            webcrawl_edges(5, n_hosts=10)
        with pytest.raises(ValueError, match="zipf"):
            webcrawl_edges(100, n_hosts=4, zipf_exponent=1.5)


class TestCsr:
    def test_symmetrize_and_dedup(self):
        csr = build_csr(4, np.array([0, 0, 1]), np.array([1, 1, 0]))
        # Edge 0-1 collapses to one undirected edge stored twice.
        assert csr.nnz == 2
        assert csr.has_edge(0, 1) and csr.has_edge(1, 0)

    def test_self_loops_dropped(self):
        csr = build_csr(3, np.array([0, 1]), np.array([0, 2]))
        assert not csr.has_edge(0, 0)
        assert csr.has_edge(1, 2)

    def test_directed_mode(self):
        csr = build_csr(3, np.array([0]), np.array([1]), symmetrize=False)
        assert csr.has_edge(0, 1) and not csr.has_edge(1, 0)

    def test_adjacencies_sorted(self):
        rng = np.random.default_rng(0)
        csr = build_csr(50, rng.integers(0, 50, 500), rng.integers(0, 50, 500))
        for v in range(50):
            adj = csr.neighbors(v)
            assert np.all(np.diff(adj) > 0)  # sorted and deduplicated

    def test_gather_matches_neighbors(self):
        rng = np.random.default_rng(1)
        csr = build_csr(30, rng.integers(0, 30, 200), rng.integers(0, 30, 200))
        frontier = np.array([3, 7, 15], dtype=np.int64)
        targets, sources = csr.gather(frontier)
        expected_t = np.concatenate([csr.neighbors(v) for v in frontier])
        expected_s = np.concatenate(
            [np.full(csr.neighbors(v).size, v) for v in frontier]
        )
        assert np.array_equal(targets, expected_t)
        assert np.array_equal(sources, expected_s)

    def test_gather_empty_frontier(self):
        csr = build_csr(5, np.array([0]), np.array([1]))
        t, s = csr.gather(np.empty(0, dtype=np.int64))
        assert t.size == s.size == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            build_csr(3, np.array([0]), np.array([5]))

    def test_degrees_sum_to_nnz(self):
        rng = np.random.default_rng(2)
        csr = build_csr(20, rng.integers(0, 20, 100), rng.integers(0, 20, 100))
        assert csr.degrees().sum() == csr.nnz


class TestPermutation:
    def test_inversion(self):
        perm = random_permutation(100, seed=0)
        inv = invert_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(100))
        assert np.array_equal(inv[perm], np.arange(100))

    def test_apply(self):
        perm = np.array([2, 0, 1], dtype=np.int64)
        src, dst = apply_permutation(perm, np.array([0, 1]), np.array([1, 2]))
        assert np.array_equal(src, [2, 0])
        assert np.array_equal(dst, [0, 1])

    def test_graph_label_round_trip(self):
        g = rmat_graph(8, 8, seed=0, shuffle=True)
        orig = np.arange(g.n)
        assert np.array_equal(g.to_original(g.to_internal(orig)), orig)

    def test_relabel_preserves_structure(self):
        g_plain = rmat_graph(8, 8, seed=0, shuffle=False)
        g_shuf = rmat_graph(8, 8, seed=0, shuffle=True)
        # Same multiset of degrees even though labels moved.
        assert np.array_equal(
            np.sort(g_plain.degrees()), np.sort(g_shuf.degrees())
        )


class TestGraphContainer:
    def test_relabel_vertex_array_round_trip(self):
        from repro.core import bfs_serial

        g = rmat_graph(9, 8, seed=3, shuffle=True)
        src_orig = int(g.random_nonisolated_vertices(1, seed=1)[0])
        levels_int, parents_int = bfs_serial(g.csr, int(g.to_internal(src_orig)))
        levels = g.relabel_level_array(levels_int)
        parents = g.relabel_vertex_array(parents_int)
        assert levels[src_orig] == 0
        assert parents[src_orig] == src_orig
        # Unreachable sentinels survive the relabeling.
        assert np.array_equal(levels < 0, parents < 0)

    def test_random_sources_have_degree(self):
        g = rmat_graph(10, 4, seed=0)
        sources = g.random_nonisolated_vertices(8, seed=0)
        deg = g.degrees()
        internal = np.asarray(g.to_internal(sources))
        assert np.all(deg[internal] > 0)
        assert np.unique(sources).size == sources.size

    def test_no_sources_on_empty_graph(self):
        g = Graph.from_edges(4, np.empty(0, np.int64), np.empty(0, np.int64))
        with pytest.raises(ValueError, match="no edges"):
            g.random_nonisolated_vertices(1)


class TestIO:
    def test_round_trip(self, tmp_path):
        g = rmat_graph(8, 8, seed=9)
        path = save_graph(g, tmp_path / "g")
        loaded = load_graph(path)
        assert loaded.n == g.n
        assert loaded.m_input == g.m_input
        assert loaded.name == g.name
        assert np.array_equal(loaded.csr.indptr, g.csr.indptr)
        assert np.array_equal(loaded.csr.indices, g.csr.indices)
        assert np.array_equal(loaded.perm, g.perm)

    def test_round_trip_without_perm(self, tmp_path):
        g = rmat_graph(6, 4, seed=0, shuffle=False)
        loaded = load_graph(save_graph(g, tmp_path / "noperm"))
        assert loaded.perm is None


class TestScipyAndMtxInput:
    def test_from_scipy_round_trip(self):
        import scipy.sparse as sp

        rng = np.random.default_rng(0)
        coo = sp.coo_matrix(
            (np.ones(60), (rng.integers(0, 40, 60), rng.integers(0, 40, 60))),
            shape=(40, 40),
        )
        g = Graph.from_scipy(coo, shuffle=False)
        assert g.n == 40
        assert g.m_input == 60
        # Symmetric storage regardless of the input's symmetry.
        for u in range(40):
            for v in g.csr.neighbors(u):
                assert g.csr.has_edge(int(v), u)

    def test_from_scipy_rejects_rectangular(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError, match="square"):
            Graph.from_scipy(sp.eye(3, 5))

    def test_from_mtx(self, tmp_path):
        import scipy.io
        import scipy.sparse as sp

        matrix = sp.coo_matrix(
            (np.ones(4), ([0, 1, 2, 3], [1, 2, 3, 0])), shape=(5, 5)
        )
        path = tmp_path / "tiny.mtx"
        scipy.io.mmwrite(str(path), matrix)
        g = Graph.from_mtx(path, shuffle=False)
        assert g.name == "tiny"
        assert g.n == 5
        from repro.core import run_bfs

        res = run_bfs(g, 0, "1d", nprocs=2, validate=True)
        assert res.levels[0] == 0
        assert (res.levels[:4] >= 0).all()
