"""Tests for the calibration workflow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.calibration import (
    CalibrationReport,
    _fit_saturating_survival,
    audit_shipped_constants,
    calibrate_volume_model,
)


class TestSurvivalFit:
    def test_recovers_known_curve(self):
        s1, gamma = 0.06, 0.58
        parties = np.array([2.0, 8.0, 32.0, 128.0])
        survival = 1.0 - np.exp(-s1 * parties**gamma)
        fit_s1, fit_gamma = _fit_saturating_survival(parties, survival)
        assert fit_s1 == pytest.approx(s1, rel=1e-9)
        assert fit_gamma == pytest.approx(gamma, rel=1e-9)

    def test_rejects_degenerate_points(self):
        with pytest.raises(ValueError, match="strictly"):
            _fit_saturating_survival(np.array([2.0, 4.0]), np.array([0.5, 1.0]))


class TestCalibrateVolumeModel:
    @pytest.fixture(scope="class")
    def calibration(self):
        return calibrate_volume_model(scale=12, rank_counts=(4, 16, 64), seed=3)

    def test_report_fields(self, calibration):
        model, report = calibration
        assert isinstance(report, CalibrationReport)
        assert set(report.survival_measured) == {4, 16, 64}
        assert 0.3 < report.reach_measured < 1.0
        assert report.nlevels_measured >= 3

    def test_survival_monotone(self, calibration):
        _model, report = calibration
        values = [report.survival_measured[p] for p in (4, 16, 64)]
        assert values[0] < values[1] < values[2]

    def test_fitted_model_predicts_measured_volumes(self, calibration):
        _model, report = calibration
        # The self-fit must reproduce its own measurements reasonably;
        # at scale 12 the duplicate-edge collapse (edge_frac < 1) leaves
        # a systematic overshoot that vanishes at the paper's scales.
        assert report.max_a2a_error < 0.45

    def test_summary_renders(self, calibration):
        _model, report = calibration
        text = report.summary()
        assert "survival fit" in text
        assert "p=  64" in text or "p=64" in text.replace(" ", "")

    def test_needs_two_points(self):
        with pytest.raises(ValueError, match="two rank counts"):
            calibrate_volume_model(scale=10, rank_counts=(4,))


def test_shipped_constants_not_drifted():
    """The packaged defaults stay within ~50% of a fresh small-scale fit
    (exact agreement is not expected: the shipped constants were fitted
    at a larger scale)."""
    diffs = audit_shipped_constants(scale=12, rank_counts=(4, 16, 64), seed=3)
    assert abs(diffs["s1_rel_diff"]) < 0.6
    assert abs(diffs["gamma_rel_diff"]) < 0.45
