"""Differential tests: every numpy kernel against its python reference.

Each :data:`repro.kernels.KERNELS` entry carries a battery of cases —
randomized plus the adversarial shapes the hot paths actually hit (empty
frontier, single vertex, all-ones bitmap, lane word ``0`` and ``2**63``,
owner boundaries at ``p`` not dividing ``n``) — and every case is run
through the dispatching facade under *both* backends, asserting the
results are bit-identical: same values, same dtypes, same error
messages.  The coverage meta-test at the bottom fails the suite when a
kernel is added to :data:`~repro.kernels.KERNELS` without a differential
case, mirroring the registry coverage pattern of
``tests/test_registry_coverage.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import zlib

import numpy as np
import pytest

from repro import kernels

BACKENDS = sorted(kernels.BACKENDS)

I64_MIN = -(1 << 63)
I64_MAX = (1 << 63) - 1


def _rng(tag: str):
    """Deterministic per-case generator (stable across runs and backends)."""
    return np.random.default_rng(zlib.crc32(tag.encode()))


def _i64(*values) -> np.ndarray:
    return np.array(values, dtype=np.int64)


def _u64(*values) -> np.ndarray:
    return np.array(values, dtype=np.uint64)


# -- case table ---------------------------------------------------------------
#
# kernel name -> {case name -> zero-arg factory returning the call args}.
# Factories return *fresh* arrays on every call so the in-place kernel
# (scatter_reduce) cannot leak state between the two backend runs.

def _random_pairs(tag, n, nkeys, lo=0, hi=1000):
    rng = _rng(tag)
    return (
        rng.integers(0, nkeys, n),
        rng.integers(lo, hi, n),
    )


def _lhs_random(tag):
    """Random runs tiling ``hits`` exactly (the kernel's contract)."""
    rng = _rng(tag)
    counts = rng.integers(1, 9, 30)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    hits = rng.random(int(counts.sum())) < 0.2
    return hits, starts, counts


def _scatter_args(tag, op, length=24, n=70, dtype=np.int64):
    rng = _rng(tag)
    identity = {"max": -1, "min": 1 << 62, "or": 0}[op]
    dense = np.full(length, identity, dtype=dtype)
    positions = rng.integers(0, length, n)
    if dtype == np.uint64:
        values = rng.integers(0, I64_MAX, n, dtype=np.uint64) | np.uint64(1 << 63)
    else:
        values = rng.integers(0, 1 << 40, n)
    return dense, positions, values, op

CASES: dict[str, dict] = {
    "dedup_max": {
        "empty": lambda: (_i64(), _i64()),
        "single-vertex": lambda: (_i64(7), _i64(3)),
        "dup-heavy": lambda: _random_pairs("dedup-dup", 300, 20),
        "all-same-target": lambda: (
            np.zeros(50, dtype=np.int64),
            _rng("dedup-same").permutation(50),
        ),
        "negative-parent-lexsort-path": lambda: (
            _i64(5, 5, 2, 2), _i64(-1, 3, 7, -1)
        ),
        "huge-parents-lexsort-path": lambda: (
            _i64(3, 3, 1), _i64(I64_MAX - 1, I64_MAX, 1 << 62)
        ),
    },
    "reduce_runs": {
        "empty-min": lambda: (_i64(), _i64(), "min"),
        "max": lambda: (*_random_pairs("rr-max", 200, 15), "max"),
        "min": lambda: (*_random_pairs("rr-min", 200, 15), "min"),
        "or-lane-words": lambda: (
            _rng("rr-or").integers(0, 12, 150),
            _rng("rr-or-w").integers(0, I64_MAX, 150, dtype=np.uint64),
            "or",
        ),
        "or-high-bit": lambda: (
            _i64(4, 4, 4), _u64(1 << 63, 1, 0), "or"
        ),
    },
    "scatter_reduce": {
        "max": lambda: _scatter_args("sc-max", "max"),
        "min": lambda: _scatter_args("sc-min", "min"),
        "or-64-lane": lambda: _scatter_args("sc-or", "or", dtype=np.uint64),
        "empty": lambda: (
            np.full(8, -1, dtype=np.int64), _i64(), _i64(), "max"
        ),
    },
    "bucket_by_owner": {
        "empty": lambda: (_i64(), 5, _i64(), _i64()),
        "single-vertex": lambda: (_i64(2), 4, _i64(9), _i64(1)),
        "boundaries-p-not-dividing-n": lambda: (
            # n = 53 vertices over p = 7 owners: boundary owners 0 and
            # p-1 both occupied, uneven bucket sizes.
            _rng("bucket").integers(0, 7, 53), 7,
            np.arange(53, dtype=np.int64),
            _rng("bucket-p").integers(0, 100, 53),
        ),
        "mixed-dtypes": lambda: (
            _i64(1, 0, 1, 2), 3,
            _i64(10, 11, 12, 13),
            _u64(1 << 63, 0, 1, 7),
        ),
        "empty-buckets": lambda: (
            _i64(3, 3, 3), 9, _i64(1, 2, 3)
        ),
    },
    "pack_pairs": {
        "empty": lambda: (_i64(), _i64()),
        "single": lambda: (_i64(4), _i64(-1)),
        "random": lambda: _random_pairs("pack", 80, 500),
    },
    "unpack_pairs": {
        "empty": lambda: (_i64(),),
        "roundtrip": lambda: (
            kernels.pack_pairs(*_random_pairs("unpack", 60, 400)),
        ),
    },
    "pack_bitmap": {
        "empty-frontier": lambda: (_i64(), 0, 130),
        "single-vertex": lambda: (_i64(64), 0, 65),
        "all-ones": lambda: (np.arange(130, dtype=np.int64), 0, 130),
        "offset-range": lambda: (
            _rng("pb").integers(1000, 1130, 40), 1000, 130
        ),
        "last-bit": lambda: (_i64(127), 0, 128),
    },
    "unpack_bitmap": {
        "zero-bits": lambda: (_u64(), 0),
        "all-ones": lambda: (
            np.full(3, (1 << 64) - 1, dtype=np.uint64), 130
        ),
        "word-zero": lambda: (_u64(0, 0), 100),
        "high-bit": lambda: (_u64(1 << 63), 64),
        "roundtrip": lambda: (
            kernels.pack_bitmap(
                _rng("ub").integers(0, 200, 70), 0, 200
            ),
            200,
        ),
    },
    "popcount": {
        "empty": lambda: (_u64(),),
        "word-zero": lambda: (_u64(0),),
        "high-bit": lambda: (_u64(1 << 63),),
        "all-ones-word": lambda: (_u64((1 << 64) - 1),),
        "random": lambda: (
            _rng("pc").integers(0, I64_MAX, 64, dtype=np.uint64),
        ),
    },
    "last_hit_scan": {
        "empty": lambda: (np.zeros(0, dtype=bool), _i64(), _i64()),
        "no-hits": lambda: (
            np.zeros(10, dtype=bool), _i64(0, 4), _i64(4, 6)
        ),
        "all-hits": lambda: (
            np.ones(10, dtype=bool), _i64(0, 4), _i64(4, 6)
        ),
        "single-element-runs": lambda: (
            np.array([True, False, True], dtype=bool),
            _i64(0, 1, 2),
            _i64(1, 1, 1),
        ),
        "random": lambda: _lhs_random("lhs"),
    },
    "lane_prune": {
        "empty": lambda: (_i64(), _i64(), _u64(), 64),
        "single": lambda: (_i64(3), _i64(9), _u64(5), 64),
        "lane-word-zero": lambda: (
            _i64(1, 1, 2), _i64(5, 4, 3), _u64(0, 1, 0), 64
        ),
        "lane-word-high-bit": lambda: (
            _i64(7, 7, 7), _i64(9, 8, 7),
            _u64(1 << 63, 1 << 63, 1), 64,
        ),
        "bits-above-nlanes-masked": lambda: (
            _i64(4, 4), _i64(2, 1), _u64(1 << 8, 1), 8
        ),
        "random": lambda: (
            _rng("lp-t").integers(0, 30, 200),
            _rng("lp-s").integers(0, 100, 200),
            _rng("lp-w").integers(0, I64_MAX, 200, dtype=np.uint64),
            64,
        ),
    },
    "unique_sorted": {
        "empty": lambda: (_i64(),),
        "dups": lambda: (_rng("uq").integers(0, 25, 200),),
    },
    "varint_sizes": {
        "empty": lambda: (_i64(),),
        "thresholds": lambda: (
            _i64(0, 1, 127, 128, (1 << 14) - 1, 1 << 14, I64_MAX, -1, I64_MIN),
        ),
        "random": lambda: (
            _rng("vs").integers(I64_MIN, I64_MAX, 100),
        ),
    },
    "varint_encode": {
        "empty": lambda: (_i64(),),
        "thresholds": lambda: (
            _i64(0, 1, 127, 128, (1 << 14) - 1, 1 << 14, I64_MAX, -1, I64_MIN),
        ),
        "random": lambda: (
            _rng("ve").integers(I64_MIN, I64_MAX, 100),
        ),
    },
    "varint_decode": {
        "empty": lambda: (np.empty(0, dtype=np.uint8),),
        "roundtrip-thresholds": lambda: (
            kernels.varint_encode(
                _i64(0, 1, 127, 128, I64_MAX, -1, I64_MIN)
            ),
        ),
        "roundtrip-random": lambda: (
            kernels.varint_encode(
                _rng("vd").integers(I64_MIN, I64_MAX, 100)
            ),
        ),
        "max-length-wrap": lambda: (
            # 10 bytes whose spilled high groups wrap past bit 63.
            np.array([0xFF] * 9 + [0x7F], dtype=np.uint8),
        ),
    },
    "delta_encode": {
        "empty": lambda: (_i64(),),
        "single": lambda: (_i64(42),),
        "sorted-random": lambda: (
            np.sort(_rng("de").integers(0, 1 << 40, 100)),
        ),
        "int64-wrap": lambda: (_i64(I64_MIN, I64_MAX),),
    },
    "delta_decode": {
        "empty": lambda: (_i64(),),
        "roundtrip": lambda: (
            kernels.delta_encode(np.sort(_rng("dd").integers(0, 1 << 40, 100))),
        ),
        "uint64-wrap": lambda: (
            kernels.delta_encode(_i64(I64_MIN, I64_MAX)),
        ),
    },
}

DIFFERENTIAL_CASES = sorted(
    (kernel, case) for kernel, cases in CASES.items() for case in cases
)


def _normalize(result):
    """Flatten a kernel result into comparable (value, dtype) leaves."""
    if result is None:
        return [None]
    if isinstance(result, np.ndarray):
        return [(result.tolist(), result.dtype)]
    if isinstance(result, (tuple, list)):
        return [leaf for item in result for leaf in _normalize(item)]
    return [result]


def _run_case(kernel: str, case: str, backend: str):
    """One backend's (result, mutated-dense) pair for a case."""
    args = CASES[kernel][case]()
    with kernels.use_backend(backend):
        assert kernels.active_backend() == backend
        result = getattr(kernels, kernel)(*args)
    # scatter_reduce mutates its first argument in place.
    mutated = args[0] if kernel == "scatter_reduce" else None
    return _normalize(result), _normalize(mutated)


@pytest.mark.parametrize("kernel,case", DIFFERENTIAL_CASES)
def test_backends_bit_identical(kernel, case):
    """The numpy backend matches the pure-python reference exactly —
    values and dtypes — on every adversarial and randomized case."""
    python = _run_case(kernel, case, "python")
    numpy = _run_case(kernel, case, "numpy")
    assert python == numpy


#: (kernel, args-factory, error-message substring): both backends must
#: reject invalid input with an identical ValueError, because the codec
#: layer interpolates these messages into CodecError and the comm tests
#: match on them.
ERROR_CASES = {
    "bucket-owner-out-of-range": (
        "bucket_by_owner",
        lambda: (_i64(0, 5), 5, _i64(1, 2)),
        "owners out of range [0, 5)",
    ),
    "bucket-owner-negative": (
        "bucket_by_owner",
        lambda: (_i64(-1), 3, _i64(1)),
        "owners out of range [0, 3)",
    ),
    "pack-pairs-length-mismatch": (
        "pack_pairs",
        lambda: (_i64(1, 2), _i64(1)),
        "vertices/parents must be equal length",
    ),
    "unpack-pairs-odd": (
        "unpack_pairs",
        lambda: (_i64(1, 2, 3),),
        "pair buffer has odd length 3",
    ),
    "varint-truncated": (
        "varint_decode",
        lambda: (np.array([0x80], dtype=np.uint8),),
        "truncated varint stream: last byte has continuation bit",
    ),
    "varint-overlong": (
        "varint_decode",
        lambda: (np.array([0xFF] * 10 + [0x00], dtype=np.uint8),),
        "varint longer than 10 bytes in stream",
    ),
}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(ERROR_CASES))
def test_error_messages_identical(backend, name):
    kernel, factory, message = ERROR_CASES[name]
    with kernels.use_backend(backend):
        with pytest.raises(ValueError) as exc:
            getattr(kernels, kernel)(*factory())
    assert str(exc.value) == message


# -- coverage meta-tests ------------------------------------------------------

def test_every_kernel_has_differential_cases():
    """A kernel added to KERNELS without a differential battery (or a
    battery for a dropped kernel) fails here by name."""
    assert set(CASES) == set(kernels.KERNELS)


def test_every_kernel_battery_is_adversarial():
    """Each battery carries at least one empty/degenerate case and one
    non-trivial case, so a lazy single-case entry cannot slip through."""
    for kernel, cases in CASES.items():
        assert len(cases) >= 2, kernel


def test_both_backend_modules_export_every_kernel():
    from repro.kernels import numpy_backend, reference

    for name in kernels.KERNELS:
        assert callable(getattr(numpy_backend, name)), name
        assert callable(getattr(reference, name)), name


# -- backend selection --------------------------------------------------------

def test_set_backend_unknown_name_rejected():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.set_backend("cupy")


def test_use_backend_restores_previous():
    before = kernels.active_backend()
    with kernels.use_backend("python"):
        assert kernels.active_backend() == "python"
    assert kernels.active_backend() == before


def test_set_backend_none_reapplies_env_policy(monkeypatch):
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    previous = kernels.active_backend()
    try:
        assert kernels.set_backend(None) == "numpy"
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        assert kernels.set_backend(None) == "python"
        monkeypatch.setenv(kernels.ENV_VAR, "fortran")
        with pytest.raises(ValueError, match="not a kernel backend"):
            kernels.set_backend(None)
    finally:
        kernels.set_backend(previous)


def _subprocess(code: str, **env_overrides) -> subprocess.CompletedProcess:
    env = {k: v for k, v in os.environ.items() if k != kernels.ENV_VAR}
    env.update(env_overrides)
    env.setdefault("PYTHONPATH", "src")
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )


def test_env_var_selects_python_backend():
    proc = _subprocess(
        """
        import repro.kernels as kernels
        assert kernels.active_backend() == "python"
        """,
        REPRO_KERNELS="python",
    )
    assert proc.returncode == 0, proc.stderr


def test_env_var_rejects_unknown_backend():
    proc = _subprocess(
        """
        import repro.kernels as kernels
        try:
            kernels.active_backend()
        except ValueError as exc:
            assert "not a kernel backend" in str(exc)
        else:
            raise SystemExit("unknown backend accepted")
        """,
        REPRO_KERNELS="fortran",
    )
    assert proc.returncode == 0, proc.stderr


def test_numpy_absent_falls_back_to_python_backend():
    """With numpy unimportable, repro.kernels still imports, silently
    selects the reference backend, and the kernels run on plain lists."""
    proc = _subprocess(
        """
        import sys
        sys.modules["numpy"] = None  # makes ``import numpy`` raise ImportError
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            import repro.kernels as kernels
            assert kernels.active_backend() == "python"
        t, p = kernels.dedup_max([3, 1, 3], [5, 2, 9])
        assert (t, p) == ([1, 3], [2, 9])
        stream = kernels.varint_encode([0, 127, 128, -1])
        assert kernels.varint_decode(stream) == [0, 127, 128, -1]
        words = kernels.pack_bitmap([0, 64, 129], 0, 130)
        assert kernels.popcount(words) == [1, 1, 1]
        """
    )
    assert proc.returncode == 0, proc.stderr


def test_numpy_absent_explicit_numpy_request_warns():
    proc = _subprocess(
        """
        import sys
        sys.modules["numpy"] = None
        import warnings
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.kernels as kernels
            assert kernels.active_backend() == "python"
        assert any("falling back" in str(w.message) for w in caught)
        """,
        REPRO_KERNELS="numpy",
    )
    assert proc.returncode == 0, proc.stderr


def test_numpy_absent_programmatic_numpy_request_raises():
    proc = _subprocess(
        """
        import sys
        sys.modules["numpy"] = None
        import repro.kernels as kernels
        try:
            kernels.set_backend("numpy")
        except ImportError:
            pass
        else:
            raise SystemExit("set_backend('numpy') succeeded without numpy")
        """
    )
    assert proc.returncode == 0, proc.stderr
