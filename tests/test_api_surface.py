"""Direct tests for API surface exercised only indirectly elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partition import Partition1D
from repro.graphs import Graph, build_csr
from repro.model import FRANKLIN, Charger, beta_L
from repro.model.network import (
    beta_p2p,
    bisection_factor,
    latency_ag,
    per_rank_injection,
)
from repro.mpsim import ProcessorGrid, closest_square, run_spmd
from repro.sparse import SELECT_MAX


class TestGridHelpers:
    def test_closest_square(self):
        assert closest_square(40000) == 40000  # 200^2 exactly
        assert closest_square(10008) == 10000
        assert closest_square(1) == 1
        assert closest_square(3) == 1
        with pytest.raises(ValueError):
            closest_square(0)

    def test_rank_of_and_transpose_partner(self):
        def fn(comm):
            grid = ProcessorGrid(comm)
            assert grid.rank_of(grid.row, grid.col) == comm.rank
            with pytest.raises(ValueError, match="outside"):
                grid.rank_of(9, 0)
            partner = grid.transpose_partner
            i, j = divmod(comm.rank, 3)
            assert partner == j * 3 + i
            return True

        assert all(run_spmd(9, fn).returns)

    def test_transpose_partner_requires_square(self):
        def fn(comm):
            grid = ProcessorGrid(comm, pr=2, pc=3)
            with pytest.raises(ValueError, match="square"):
                _ = grid.transpose_partner
            return True

        assert all(run_spmd(6, fn).returns)


class TestCommunicatorSurface:
    def test_members_and_concat(self):
        def fn(comm):
            assert comm.members == [0, 1, 2]
            send = [np.full(j + 1, comm.rank) for j in range(comm.size)]
            data, counts = comm.alltoallv_concat(send)
            # Rank r receives r+1 elements from each of 3 sources.
            assert np.array_equal(counts, [comm.rank + 1] * 3)
            assert data.size == 3 * (comm.rank + 1)
            assert np.array_equal(np.sort(np.unique(data)), [0, 1, 2])
            return True

        assert all(run_spmd(3, fn).returns)


class TestStatsSurface:
    def test_per_kind_and_fraction_helpers(self):
        from repro.model import NetworkCostModel

        def fn(comm):
            comm.allgatherv(np.arange(100))
            comm.alltoallv([np.arange(10)] * comm.size)
            comm.charge_compute(1e-6)
            return None

        res = run_spmd(
            4, fn, cost_model=NetworkCostModel(FRANKLIN, total_ranks=4)
        )
        stats = res.stats
        assert stats.mpi_time_by_kind("allgatherv") > 0
        assert stats.mpi_time_by_kind("alltoallv") > 0
        assert stats.mpi_time_by_kind("bcast") == 0.0
        assert 0 < stats.mpi_fraction(0) < 1
        assert stats.mean_mpi_time > 0
        rank0 = stats.comm[0]
        assert rank0.total_words_sent == 100 + 30
        assert rank0.total_words_recv == 400 + 30

    def test_mpi_fraction_zero_time(self):
        res = run_spmd(2, lambda comm: None)
        assert res.stats.mpi_fraction(0) == 0.0


class TestPartitionSurface:
    def test_local_count(self):
        part = Partition1D(10, 3)
        assert [part.local_count(r) for r in range(3)] == [3, 3, 4]
        assert sum(part.local_count(r) for r in range(3)) == 10


class TestModelSurface:
    def test_beta_l_is_stream_reciprocal(self):
        assert beta_L(FRANKLIN) == pytest.approx(
            1.0 / FRANKLIN.stream_words_per_sec
        )

    def test_network_primitives(self):
        # Injection splits across ranks and loses a bit to contention.
        solo = per_rank_injection(FRANKLIN, 1)
        shared = per_rank_injection(FRANKLIN, 4)
        assert solo == FRANKLIN.nic_words_per_sec
        assert shared < solo / 4 * 1.01
        with pytest.raises(ValueError):
            per_rank_injection(FRANKLIN, 0)
        # Bisection factor is 1 inside the reference size, shrinking past it.
        assert bisection_factor(FRANKLIN, 8) == 1.0
        assert bisection_factor(FRANKLIN, 512) < 1.0
        with pytest.raises(ValueError):
            bisection_factor(FRANKLIN, 0)
        assert beta_p2p(FRANKLIN, 1) == pytest.approx(1.0 / solo)
        assert latency_ag(FRANKLIN, 64) == pytest.approx(64 * FRANKLIN.net_latency)

    def test_charger_enabled_and_intops(self):
        from tests.test_model import _FakeComm

        inert = Charger(_FakeComm(), machine=None)
        assert not inert.enabled
        live = Charger(_FakeComm(), machine=FRANKLIN)
        assert live.enabled
        live.intops(1e6)
        assert live.comm.clock.compute_time == pytest.approx(
            1e6 / FRANKLIN.int_ops_per_sec
        )

    def test_level_overhead_only_for_threads(self):
        from repro.model.costmodel import LEVEL_THREAD_OVERHEAD
        from tests.test_model import _FakeComm

        flat = Charger(_FakeComm(), machine=FRANKLIN, threads=1)
        flat.level_overhead()
        assert flat.comm.clock.compute_time == 0.0
        hybrid = Charger(_FakeComm(), machine=FRANKLIN, threads=4)
        hybrid.level_overhead()
        assert hybrid.comm.clock.compute_time == pytest.approx(
            LEVEL_THREAD_OVERHEAD
        )


class TestSemiringSurface:
    def test_combine_and_reduce_at(self):
        a = np.array([1, 9, 3])
        b = np.array([7, 2, 3])
        assert np.array_equal(SELECT_MAX.combine(a, b), [7, 9, 3])
        dense = np.full(4, SELECT_MAX.identity, dtype=np.int64)
        SELECT_MAX.reduce_at(dense, np.array([1, 1, 3]), np.array([5, 8, 2]))
        assert np.array_equal(dense, [-1, 8, -1, 2])


class TestGraphSurface:
    def test_from_csr_wraps_without_relabeling(self):
        csr = build_csr(4, np.array([0, 1]), np.array([1, 2]))
        g = Graph.from_csr(csr, name="wrapped")
        assert g.perm is None
        assert g.m_input == 2  # stored nnz // 2
        assert g.name == "wrapped"
        g2 = Graph.from_csr(csr, m_input=7)
        assert g2.m_input == 7
