"""Unit tests for the pure collective semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpsim import collectives as coll


class TestAlltoallv:
    def test_transposes_payloads(self):
        payloads = [
            [np.array([10 * i + j]) for j in range(3)] for i in range(3)
        ]
        out = coll.alltoallv(payloads)
        for j in range(3):
            for i in range(3):
                assert out[j][i][0] == 10 * i + j

    def test_none_becomes_empty(self):
        out = coll.alltoallv([[None, np.array([1])], [np.array([2]), None]])
        assert out[0][0].size == 0
        assert out[1][1].size == 0
        assert out[0][1][0] == 2
        assert out[1][0][0] == 1

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError, match="send buffers for group of 2"):
            coll.alltoallv([[np.array([1])], [np.array([2]), np.array([3])]])

    def test_2d_buffer_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            coll.alltoallv([[np.zeros((2, 2))]])


class TestAllgatherv:
    def test_everyone_gets_all_pieces(self):
        payloads = [np.arange(i + 1) for i in range(4)]
        out = coll.allgatherv(payloads)
        for rank_out in out:
            assert len(rank_out) == 4
            for i, piece in enumerate(rank_out):
                assert piece.size == i + 1

    def test_empty_contributions(self):
        out = coll.allgatherv([None, np.array([5])])
        assert out[0][0].size == 0
        assert out[1][1][0] == 5


class TestAllreduce:
    def test_named_ops(self):
        values = [3, 1, 4, 1, 5]
        assert coll.allreduce(values, "sum") == [14] * 5
        assert coll.allreduce(values, "max") == [5] * 5
        assert coll.allreduce(values, "min") == [1] * 5
        assert coll.allreduce(values, "prod") == [60] * 5

    def test_logical_ops(self):
        assert coll.allreduce([True, False], "lor") == [True, True]
        assert coll.allreduce([True, False], "land") == [False, False]

    def test_callable_op(self):
        out = coll.allreduce([np.array([1, 2]), np.array([3, 0])], np.maximum)
        assert np.array_equal(out[0], [3, 2])

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown reduction"):
            coll.allreduce([1, 2], "xor")


class TestBcastGatherScatter:
    def test_bcast(self):
        assert coll.bcast([None, "x", None], root=1) == ["x"] * 3

    def test_bcast_bad_root(self):
        with pytest.raises(ValueError, match="root"):
            coll.bcast([1, 2], root=5)

    def test_gather(self):
        out = coll.gather([10, 20, 30], root=2)
        assert out[0] is None and out[1] is None
        assert out[2] == [10, 20, 30]

    def test_scatter(self):
        out = coll.scatter([["a", "b", "c"], None, None], root=0)
        assert out == ["a", "b", "c"]

    def test_scatter_wrong_cardinality(self):
        with pytest.raises(ValueError, match="exactly 2 items"):
            coll.scatter([["only-one"], None], root=0)


class TestExchange:
    def test_permutation_routing(self):
        payloads = [(1, np.array([100])), (2, np.array([200])), (0, np.array([300]))]
        out = coll.exchange(payloads)
        assert out[1][0] == 100
        assert out[2][0] == 200
        assert out[0][0] == 300

    def test_self_send_allowed(self):
        out = coll.exchange([(0, np.array([7]))])
        assert out[0][0] == 7

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError, match="not a permutation"):
            coll.exchange([(0, None), (0, None)])


class TestVolumeAccounting:
    def test_alltoallv_excludes_self(self):
        payload = [np.arange(3), np.arange(5), np.arange(7)]
        assert coll.sent_words("alltoallv", payload) == 15
        assert coll.sent_words("alltoallv", payload, self_rank=1) == 10

    def test_exchange_self_is_free(self):
        assert coll.sent_words("exchange", (2, np.arange(4)), self_rank=2) == 0
        assert coll.sent_words("exchange", (1, np.arange(4)), self_rank=2) == 4

    def test_barrier_is_zero(self):
        assert coll.sent_words("barrier", None) == 0
        assert coll.recv_words("barrier", None) == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown collective"):
            coll.sent_words("reduce_scatter", None)
