"""Tests for the Graph 500 benchmark driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph500 import Graph500Result, run_graph500, sample_search_keys
from repro.graphs import rmat_graph


@pytest.fixture(scope="module")
def small_run() -> Graph500Result:
    return run_graph500(
        scale=11, nprocs=9, algorithm="2d", machine="hopper", nbfs=4, seed=3
    )


class TestRunGraph500:
    def test_counts_and_fields(self, small_run):
        assert small_run.scale == 11
        assert small_run.nbfs == 4
        assert small_run.nranks == 9
        assert small_run.bfs_times.shape == (4,)
        assert small_run.teps.shape == (4,)
        assert small_run.construction_seconds > 0
        assert len(small_run.searches) == 4

    def test_all_searches_validated(self, small_run):
        # run_graph500 validates by default; traversal results must be
        # non-trivial (every search reaches the giant component).
        for res in small_run.searches:
            assert (res.levels >= 0).sum() > 0.2 * (1 << 11)

    def test_harmonic_mean_definition(self, small_run):
        teps = small_run.teps
        expected = teps.size / np.sum(1.0 / teps)
        assert small_run.harmonic_mean_teps == pytest.approx(expected)
        # Harmonic mean never exceeds the arithmetic mean.
        assert small_run.harmonic_mean_teps <= small_run.teps_stats["mean"] + 1e-9

    def test_quartile_ordering(self, small_run):
        for stats in (small_run.time_stats, small_run.teps_stats):
            assert (
                stats["min"]
                <= stats["firstquartile"]
                <= stats["median"]
                <= stats["thirdquartile"]
                <= stats["max"]
            )

    def test_report_format(self, small_run):
        report = small_run.report()
        for key in (
            "SCALE:",
            "NBFS:",
            "construction_time:",
            "median_time:",
            "max_TEPS:",
            "harmonic_mean_TEPS:",
        ):
            assert key in report, key
        # Canonical key-value layout: every line has exactly one colon.
        for line in report.splitlines():
            assert line.count(":") == 1

    def test_invalid_nbfs(self):
        with pytest.raises(ValueError, match="nbfs"):
            run_graph500(scale=8, nbfs=0)

    def test_1d_algorithm_path(self):
        result = run_graph500(
            scale=10, nprocs=4, algorithm="1d", machine="franklin", nbfs=2, seed=1
        )
        assert result.nranks == 4
        assert np.all(result.teps > 0)


class TestSearchKeys:
    def test_keys_non_isolated_and_distinct(self):
        graph = rmat_graph(10, 4, seed=5)
        keys = sample_search_keys(graph, 8, seed=2)
        assert np.unique(keys).size == keys.size
        internal = np.asarray(graph.to_internal(keys))
        assert np.all(graph.degrees()[internal] > 0)

    def test_deterministic(self):
        graph = rmat_graph(10, 4, seed=5)
        assert np.array_equal(
            sample_search_keys(graph, 4, seed=9), sample_search_keys(graph, 4, seed=9)
        )


def test_untimed_machine_rejected():
    with pytest.raises(ValueError, match="machine model"):
        run_graph500(scale=8, machine=None, nbfs=1)
