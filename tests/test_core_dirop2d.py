"""Tests for the direction-optimizing 2D BFS (``DirOpt2D``).

The switching *policy* is DirOpt1D's — collective alpha/beta predicates
with hysteresis — but the level interiors are the 2D grid phases, so
these tests pin down what is new: the crossover behavior inside the 2D
loop, the hysteresis state riding through checkpoint
``state()``/``restore()``, bottom-up correctness on directed inputs
(the stored matrix is ``A^T``, so no symmetry gate), and bit-identical
parents against the serial oracle across graph shapes and processor
grids, square and rectangular.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_bfs
from repro.core.bfs2d_dirop import DirOpt2D
from repro.core.bfs_dirop import BOTTOM_UP
from repro.graphs import Graph, erdos_renyi_edges
from repro.graphs.rmat import rmat_graph


def _er_graph(n, avg_degree, seed):
    src, dst = erdos_renyi_edges(n, avg_degree, seed=seed)
    return Graph.from_edges(n, src, dst, shuffle=False)


def _disconnected_graph():
    # Two components plus isolated vertices; n = 53 is prime, so no
    # grid dimension divides it.
    rng = np.random.default_rng(11)
    return Graph.from_edges(
        53,
        np.concatenate([rng.integers(0, 20, 80), rng.integers(25, 50, 80)]),
        np.concatenate([rng.integers(0, 20, 80), rng.integers(25, 50, 80)]),
        shuffle=False,
    )


class TestOracleEquivalence:
    CASES = {
        "er-sparse": (_er_graph(61, 2.0, seed=3), 5),
        "er-dense": (_er_graph(48, 12.0, seed=4), 0),
        "rmat": (rmat_graph(8, 8, seed=2), 17),
        "disconnected": (_disconnected_graph(), 1),
        "isolated-source": (_disconnected_graph(), 52),
    }
    #: nprocs/grid_shape pairs: 1x1, the closest-square default, and
    #: rectangular grids in both orientations (general transpose path).
    GRIDS = [(1, None), (4, None), (9, None), (4, (1, 4)), (6, (2, 3)), (6, (3, 2))]

    @pytest.mark.parametrize("algorithm", ["2d-dirop", "2d-dirop-hybrid"])
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_matches_serial_everywhere(self, algorithm, case):
        graph, source = self.CASES[case]
        ref = run_bfs(graph, source, "serial")
        for nprocs, grid_shape in self.GRIDS:
            res = run_bfs(
                graph,
                source,
                algorithm,
                nprocs=nprocs,
                grid_shape=grid_shape,
                validate=True,
            )
            assert np.array_equal(res.levels, ref.levels), (case, nprocs, grid_shape)
            assert np.array_equal(res.parents, ref.parents), (case, nprocs, grid_shape)

    def test_matches_serial_on_rmat_scale10(self):
        graph = rmat_graph(10, 8, seed=3)
        src = int(graph.random_nonisolated_vertices(1, seed=1)[0])
        ref = run_bfs(graph, src, "serial")
        for nprocs in (1, 4, 9):
            res = run_bfs(graph, src, "2d-dirop", nprocs=nprocs, validate=True)
            assert np.array_equal(res.levels, ref.levels)
            assert np.array_equal(res.parents, ref.parents)

    def test_isolated_source(self):
        graph = Graph.from_edges(
            10, np.array([1, 2]), np.array([2, 3]), shuffle=False
        )
        res = run_bfs(graph, 7, "2d-dirop", nprocs=4)
        assert res.levels[7] == 0 and (res.levels >= 0).sum() == 1

    def test_directed_graph_runs_bottom_up_and_stays_correct(self):
        # The 2D block stores A^T, so the bottom-up row scan sees
        # in-neighbours — unlike 1D, a directed input needs no top-down
        # pin.  Force the switch with a tiny alpha and check the sweep
        # both fires and stays exact.
        rng = np.random.default_rng(0)
        n, m = 60, 400
        graph = Graph.from_edges(
            n,
            rng.integers(0, n, m),
            rng.integers(0, n, m),
            symmetrize=False,
            shuffle=False,
        )
        assert graph.directed
        ref = run_bfs(graph, 0, "serial")
        # No validate=True: the Graph 500 edge-span rule is an
        # undirected invariant; exactness vs the serial oracle is the
        # correctness check here (same as the 1D directed test).
        res = run_bfs(
            graph, 0, "2d-dirop", nprocs=4, dirop_alpha=1e9, trace=True
        )
        assert np.array_equal(res.levels, ref.levels)
        assert np.array_equal(res.parents, ref.parents)
        directions = [lvl["direction"] for lvl in res.meta["level_profile"]]
        assert BOTTOM_UP in directions


class TestSwitchingPolicy:
    @pytest.fixture(scope="class")
    def graph(self):
        return rmat_graph(10, 16, seed=1)

    @pytest.fixture(scope="class")
    def source(self, graph):
        return int(graph.random_nonisolated_vertices(1, seed=2)[0])

    def test_default_thresholds_cross_over(self, graph, source):
        """A dense R-MAT drives the default alpha/beta through both
        directions: top-down at the fringe, bottom-up in the middle."""
        res = run_bfs(graph, source, "2d-dirop", nprocs=4, trace=True)
        directions = [lvl["direction"] for lvl in res.meta["level_profile"]]
        assert directions[0] == "top-down"
        assert {*directions} == {"top-down", "bottom-up"}

    def test_never_switch_matches_2d_counters(self):
        """alpha -> 0 degenerates to plain 2d exactly: same directions,
        same modeled edge scans, same levels.  The unreachable ring keeps
        the unexplored-edge count positive on every level, so the switch
        predicate can never trivially fire (same device as the 1D test)."""
        rng = np.random.default_rng(7)
        n, m = 80, 400
        src = rng.integers(0, n // 2, m)
        dst = rng.integers(0, n // 2, m)
        ring = np.arange(n // 2, n)
        src = np.concatenate([src, ring])
        dst = np.concatenate([dst, np.roll(ring, 1)])
        graph = Graph.from_edges(n, src, dst, shuffle=False)
        source = 0
        td = run_bfs(graph, source, "2d", nprocs=4, trace=True)
        do = run_bfs(
            graph, source, "2d-dirop", nprocs=4, dirop_alpha=1e-12, trace=True
        )
        assert all(
            lvl["direction"] == "top-down" for lvl in do.meta["level_profile"]
        )
        assert (
            td.stats.counter("edges_scanned")
            == do.stats.counter("edges_scanned")
        )
        assert np.array_equal(td.levels, do.levels)
        assert np.array_equal(td.parents, do.parents)

    def test_beta_controls_return_to_topdown(self, graph, source):
        # huge beta: n/beta ~ 0, so once bottom-up it never returns.
        res = run_bfs(
            graph, source, "2d-dirop", nprocs=4,
            dirop_alpha=2.0, dirop_beta=1e9, trace=True,
        )
        directions = [lvl["direction"] for lvl in res.meta["level_profile"]]
        assert "bottom-up" in directions
        first_bu = directions.index("bottom-up")
        assert all(d == "bottom-up" for d in directions[first_bu:])
        # tiny beta: the switch-back fires on the very next level, so
        # bottom-up levels never run back to back.
        res2 = run_bfs(
            graph, source, "2d-dirop", nprocs=4,
            dirop_alpha=2.0, dirop_beta=1e-9, trace=True,
        )
        directions2 = [lvl["direction"] for lvl in res2.meta["level_profile"]]
        assert "bottom-up" in directions2
        assert all(
            not (a == b == "bottom-up")
            for a, b in zip(directions2, directions2[1:])
        )

    def test_switch_decision_matches_1d_policy(self, graph, source):
        """Same thresholds, same global statistics -> the 2D variant
        flips levels exactly where the 1D variant does (the policy is
        shared; only the level interiors differ)."""
        d1 = run_bfs(graph, source, "1d-dirop", nprocs=4, trace=True)
        d2 = run_bfs(graph, source, "2d-dirop", nprocs=4, trace=True)
        assert [lvl["direction"] for lvl in d1.meta["level_profile"]] == [
            lvl["direction"] for lvl in d2.meta["level_profile"]
        ]


class TestHysteresisCheckpoint:
    def test_state_round_trip(self):
        """state() -> restore() reproduces the switching hysteresis
        bit-for-bit, including the cached global statistics."""
        step = DirOpt2D([], None, 0, degrees=np.zeros(1, dtype=np.int64))
        step.shared_sieve = None
        step.direction = BOTTOM_UP
        step.unexplored_edges = 12345
        step.g_front, step.g_fedges, step.g_unexplored = 7, 6500, 12345
        snap = step.state()

        twin = DirOpt2D([], None, 0, degrees=np.zeros(1, dtype=np.int64))
        twin.shared_sieve = None
        term = twin.restore(snap)
        assert term == 7
        assert twin.direction == BOTTOM_UP
        assert twin.unexplored_edges == 12345
        assert (twin.g_front, twin.g_fedges, twin.g_unexplored) == (7, 6500, 12345)

    def test_crash_resumes_with_same_directions(self, rmat_small):
        """A crash at a bottom-up level restarts from the checkpoint and
        replays the same switch decisions the fault-free run made."""
        oracle = run_bfs(
            rmat_small, 5, "2d-dirop", nprocs=4, machine="hopper", trace=True
        )
        directions = {
            lvl["level"]: lvl["direction"]
            for lvl in oracle.meta["level_profile"]
        }
        bu_levels = [lvl for lvl, d in directions.items() if d == "bottom-up"]
        assert bu_levels, "fixture graph must exercise bottom-up"
        crash_level = bu_levels[0] + 1
        res = run_bfs(
            rmat_small,
            5,
            "2d-dirop",
            nprocs=4,
            machine="hopper",
            trace=True,
            faults=f"crash:rank=1,level={crash_level}",
            checkpoint_every=1,
            validate=True,
        )
        assert np.array_equal(res.parents, oracle.parents)
        assert np.array_equal(res.levels, oracle.levels)
        (restore,) = res.meta["faults"]["restores"]
        assert restore["crash_level"] == crash_level
        # The final attempt's profile covers resume+1 onward; every
        # replayed level ran in the fault-free run's direction.
        for lvl in res.meta["level_profile"]:
            assert lvl["direction"] == directions[lvl["level"]], lvl

    def test_crash_at_every_level_with_sieve_and_codec(self, rmat_small):
        """The full wire stack (codec + shared sieve) survives recovery
        at every level boundary, bit-identically."""
        oracle = run_bfs(
            rmat_small, 5, "2d-dirop", nprocs=4, machine="hopper",
            codec="bitmap", sieve=True,
        )
        for level in range(1, oracle.nlevels + 1):
            res = run_bfs(
                rmat_small, 5, "2d-dirop", nprocs=4, machine="hopper",
                codec="bitmap", sieve=True,
                faults=f"crash:rank={level % 4},level={level}",
                checkpoint_every=2,
            )
            assert np.array_equal(res.parents, oracle.parents), level


class TestPerformance:
    def test_beats_plain_2d_and_1d_dirop_at_scale12(self):
        """The paper-2 claim at test scale: on a scale-12 R-MAT with 16
        ranks, 2D+dirop models strictly less time than plain 2D and no
        more than 1D+dirop, while staying level-exact."""
        graph = rmat_graph(12, 16, seed=1)
        source = int(graph.random_nonisolated_vertices(1, seed=2)[0])
        ref = run_bfs(graph, source, "serial")
        td2d = run_bfs(graph, source, "2d", nprocs=16, machine="hopper")
        do1d = run_bfs(graph, source, "1d-dirop", nprocs=16, machine="hopper")
        do2d = run_bfs(graph, source, "2d-dirop", nprocs=16, machine="hopper")
        assert do2d.time_total < td2d.time_total
        assert do2d.time_total <= do1d.time_total
        assert (
            do2d.stats.counter("edges_scanned")
            < td2d.stats.counter("edges_scanned")
        )
        assert np.array_equal(do2d.levels, ref.levels)
        assert np.array_equal(do2d.parents, ref.parents)

    def test_bottom_up_folds_fewer_words(self):
        """On the dense middle levels the bottom-up fold ships one pair
        per discovered row instead of one per candidate edge, so the
        dirop run moves strictly fewer words than plain 2d."""
        graph = rmat_graph(12, 16, seed=1)
        src = int(graph.random_nonisolated_vertices(1, seed=2)[0])
        td = run_bfs(graph, src, "2d", nprocs=16, machine="hopper")
        do = run_bfs(graph, src, "2d-dirop", nprocs=16, machine="hopper")
        assert do.stats.words_sent("alltoallv") < td.stats.words_sent("alltoallv")
