"""Property-based tests for the performance model and partitioning."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import build_send_buffers, unpack_pairs
from repro.core.partition import Decomp2D, Partition1D
from repro.model import FRANKLIN, HOPPER, RmatVolumeModel, alpha_L, cost_1d, cost_2d
from repro.model.network import a2a_time, allgather_time


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 64))
def test_partition1d_owner_matches_range(n, p):
    part = Partition1D(n, p)
    if n == 0:
        return
    vertices = np.arange(n, dtype=np.int64)
    owners = part.owner_of(vertices)
    for rank in range(p):
        lo, hi = part.range_of(rank)
        assert np.all(owners[lo:hi] == rank)
    # Every vertex owned exactly once; ranges tile [0, n).
    total = sum(part.range_of(r)[1] - part.range_of(r)[0] for r in range(p))
    assert total == n


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 5_000), st.integers(1, 12), st.booleans())
def test_decomp2d_vector_pieces_tile(n, side, diagonal):
    decomp = Decomp2D(n, side, diagonal_vectors=diagonal)
    covered = []
    for i in range(side):
        for j in range(side):
            lo, hi = decomp.vec_piece(i, j)
            covered.extend(range(lo, hi))
    assert sorted(covered) == list(range(n))


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 5_000), st.integers(1, 9), st.integers(1, 9))
def test_decomp2d_rectangular_blocks_tile(n, pr, pc):
    """Rectangular grids: row blocks, column blocks and vector pieces all
    tile the vertex space independently."""
    decomp = Decomp2D(n, pr, pc)
    row_cover = sum(decomp.row_block(i)[1] - decomp.row_block(i)[0] for i in range(pr))
    col_cover = sum(decomp.col_block(j)[1] - decomp.col_block(j)[0] for j in range(pc))
    assert row_cover == n and col_cover == n
    covered = []
    for i in range(pr):
        for j in range(pc):
            lo, hi = decomp.vec_piece(i, j)
            covered.extend(range(lo, hi))
    assert sorted(covered) == list(range(n))
    # Owner functions agree with the block ranges.
    if n:
        vertices = np.arange(n, dtype=np.int64)
        rb = decomp.row_block_of(vertices)
        cb = decomp.col_block_of(vertices)
        for i in range(pr):
            lo, hi = decomp.row_block(i)
            assert np.all(rb[lo:hi] == i)
        for j in range(pc):
            lo, hi = decomp.col_block(j)
            assert np.all(cb[lo:hi] == j)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 999), st.integers(0, 2**30)), max_size=100),
    st.integers(1, 16),
)
def test_send_buffers_conserve_pairs(pairs, nbuckets):
    targets = np.array([p[0] for p in pairs], dtype=np.int64)
    parents = np.array([p[1] for p in pairs], dtype=np.int64)
    owners = targets % nbuckets
    send = build_send_buffers(targets, parents, owners, nbuckets)
    assert len(send) == nbuckets
    rebuilt = []
    for j, buf in enumerate(send):
        t, p = unpack_pairs(buf)
        assert np.all(t % nbuckets == j)  # routed to the right bucket
        rebuilt.extend(zip(t.tolist(), p.tolist()))
    assert sorted(rebuilt) == sorted(pairs)


@settings(max_examples=60, deadline=None)
@given(st.floats(1.0, 1e12), st.floats(1.0, 1e12))
def test_alpha_l_monotone_in_working_set(a, b):
    lo, hi = sorted((a, b))
    assert alpha_L(lo, FRANKLIN) <= alpha_L(hi, FRANKLIN) + 1e-18


@settings(max_examples=60, deadline=None)
@given(
    st.integers(2, 65536),
    st.floats(0.0, 1e9),
    st.integers(1, 24),
)
def test_collective_auto_never_worse_than_fixed(parties, words, rpn):
    auto, _ = a2a_time(HOPPER, parties, words, rpn)
    for algo in ("pairwise", "bruck"):
        fixed, _ = a2a_time(HOPPER, parties, words, rpn, algorithm=algo)
        assert auto <= fixed + 1e-15
    auto_ag, _ = allgather_time(HOPPER, parties, words, rpn, 1024)
    for algo in ("ring", "recursive-doubling"):
        fixed, _ = allgather_time(HOPPER, parties, words, rpn, 1024, algorithm=algo)
        assert auto_ag <= fixed + 1e-15


@settings(max_examples=40, deadline=None)
@given(
    st.integers(16, 33),
    st.sampled_from([4, 16, 64]),
    st.sampled_from([64, 512, 4096, 40000]),
)
def test_projected_costs_positive_and_decomposed(scale, ef, cores):
    """Closed-form costs stay finite, positive, and self-consistent over
    the whole parameter space the benches sweep."""
    model = RmatVolumeModel()
    n, m = 1 << scale, ef << scale
    c1 = cost_1d(model.volumes_1d(n, m, cores), cores, FRANKLIN)
    assert c1.total > 0 and np.isfinite(c1.total)
    assert c1.total >= c1.comm >= 0
    c2 = cost_2d(model.volumes_2d(n, m, cores), cores, HOPPER)
    assert c2.total > 0 and np.isfinite(c2.total)
    assert abs(c2.comm - (c2.a2a + c2.ag + c2.transpose + c2.sync)) < 1e-12


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 10**6))
def test_survival_bounded_and_monotone(parties):
    model = RmatVolumeModel()
    s = model.survival(parties)
    assert 0.0 < s <= 1.0  # saturates to 1.0 in float at huge g
    if parties > 1:
        assert s >= model.survival(parties - 1)
