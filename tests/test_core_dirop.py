"""Tests for the direction-optimizing 1D BFS (bottom-up/top-down)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_bfs
from repro.core.frontier import (
    bitmap_words,
    pack_frontier_bitmap,
    should_switch_bottom_up,
    should_switch_top_down,
    unpack_frontier_bitmap,
)
from repro.graphs import Graph
from repro.graphs.rmat import rmat_graph


class TestFrontierBitmap:
    def test_roundtrip(self):
        vertices = np.array([100, 107, 163, 199], dtype=np.int64)
        words = pack_frontier_bitmap(vertices, lo=100, nbits=100)
        assert words.dtype == np.uint64
        assert words.size == bitmap_words(100) == 2
        mask = unpack_frontier_bitmap(words, 100)
        assert np.array_equal(np.flatnonzero(mask) + 100, vertices)

    def test_empty_and_zero_length(self):
        words = pack_frontier_bitmap(np.empty(0, dtype=np.int64), 0, 65)
        assert words.size == 2 and not words.any()
        assert unpack_frontier_bitmap(words, 65).sum() == 0
        assert pack_frontier_bitmap(np.empty(0, dtype=np.int64), 0, 0).size == 0
        assert unpack_frontier_bitmap(np.empty(0, dtype=np.uint64), 0).size == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="owned range"):
            pack_frontier_bitmap(np.array([10]), lo=0, nbits=10)
        with pytest.raises(ValueError, match="words"):
            unpack_frontier_bitmap(np.zeros(1, dtype=np.uint64), 65)

    def test_switch_predicates(self):
        # Beamer: bottom-up once m_f > m_u / alpha, back once n_f < n / beta.
        assert should_switch_bottom_up(101, 1400, alpha=14.0)
        assert not should_switch_bottom_up(100, 1400, alpha=14.0)
        assert should_switch_top_down(10, 241, beta=24.0)
        assert not should_switch_top_down(11, 241, beta=24.0)
        with pytest.raises(ValueError, match="alpha"):
            should_switch_bottom_up(1, 1, alpha=0)
        with pytest.raises(ValueError, match="beta"):
            should_switch_top_down(1, 1, beta=-1)


class TestDiropCorrectness:
    @pytest.mark.parametrize("algorithm", ["1d-dirop", "1d-dirop-hybrid"])
    @pytest.mark.parametrize("nprocs", [1, 3, 4])
    def test_matches_serial_on_rmat(self, algorithm, nprocs):
        graph = rmat_graph(10, 8, seed=3)
        src = int(graph.random_nonisolated_vertices(1, seed=1)[0])
        ref = run_bfs(graph, src, "serial")
        res = run_bfs(graph, src, algorithm, nprocs=nprocs, validate=True)
        assert np.array_equal(res.levels, ref.levels)
        assert np.array_equal(res.parents, ref.parents)

    def test_isolated_source(self):
        graph = Graph.from_edges(
            10, np.array([1, 2]), np.array([2, 3]), shuffle=False
        )
        res = run_bfs(graph, 7, "1d-dirop", nprocs=3)
        assert res.levels[7] == 0 and (res.levels >= 0).sum() == 1

    def test_disconnected_graph(self):
        # Two components; the dense one is never entered from source 0.
        src = np.array([0, 1, 5, 5, 6, 7])
        dst = np.array([1, 2, 6, 7, 7, 8])
        graph = Graph.from_edges(9, src, dst, shuffle=False)
        ref = run_bfs(graph, 0, "serial")
        res = run_bfs(graph, 0, "1d-dirop", nprocs=2, validate=True)
        assert np.array_equal(res.levels, ref.levels)
        assert np.array_equal(res.parents, ref.parents)

    def test_directed_graph_stays_topdown_and_correct(self):
        # Bottom-up needs in-edges; a directed input must pin top-down
        # and still traverse correctly.
        rng = np.random.default_rng(0)
        n, m = 60, 400
        graph = Graph.from_edges(
            n,
            rng.integers(0, n, m),
            rng.integers(0, n, m),
            symmetrize=False,
            shuffle=False,
        )
        assert graph.directed
        source = 0
        ref = run_bfs(graph, source, "serial")
        # alpha tiny would switch immediately if symmetry were ignored.
        res = run_bfs(
            graph, source, "1d-dirop", nprocs=3, dirop_alpha=1e-9, trace=True
        )
        assert np.array_equal(res.levels, ref.levels)
        assert np.array_equal(res.parents, ref.parents)
        assert all(
            lvl["direction"] == "top-down" for lvl in res.meta["level_profile"]
        )

    def test_never_switch_matches_topdown_counters(self):
        # alpha -> 0 degenerates to bfs_1d exactly, edge scans included.
        # The unreachable ring keeps the unexplored-edge count positive on
        # every level, so the switch predicate can never trivially fire.
        rng = np.random.default_rng(7)
        n, m = 80, 400
        src = rng.integers(0, n // 2, m)
        dst = rng.integers(0, n // 2, m)
        ring = np.arange(n // 2, n)
        src = np.concatenate([src, ring])
        dst = np.concatenate([dst, np.roll(ring, 1)])
        graph = Graph.from_edges(n, src, dst, shuffle=False)
        source = 0
        td = run_bfs(graph, source, "1d", nprocs=3, trace=True)
        do = run_bfs(
            graph, source, "1d-dirop", nprocs=3, dirop_alpha=1e-12, trace=True
        )
        assert all(
            lvl["direction"] == "top-down" for lvl in do.meta["level_profile"]
        )
        assert (
            td.stats.counter("edges_scanned")
            == do.stats.counter("edges_scanned")
        )
        assert np.array_equal(td.levels, do.levels)

    def test_beta_controls_return_to_topdown(self):
        graph = rmat_graph(10, 16, seed=1)
        src = int(graph.random_nonisolated_vertices(1, seed=2)[0])
        # huge beta: n/beta ~ 0, so once bottom-up it never returns.
        res = run_bfs(
            graph, src, "1d-dirop", nprocs=3,
            dirop_alpha=2.0, dirop_beta=1e9, trace=True,
        )
        directions = [lvl["direction"] for lvl in res.meta["level_profile"]]
        assert "bottom-up" in directions
        first_bu = directions.index("bottom-up")
        assert all(d == "bottom-up" for d in directions[first_bu:])
        # tiny beta: the switch-back fires on the very next level, so
        # bottom-up levels never run back to back.
        res2 = run_bfs(
            graph, src, "1d-dirop", nprocs=3,
            dirop_alpha=2.0, dirop_beta=1e-9, trace=True,
        )
        directions2 = [lvl["direction"] for lvl in res2.meta["level_profile"]]
        assert "bottom-up" in directions2
        assert all(
            not (a == b == "bottom-up")
            for a, b in zip(directions2, directions2[1:])
        )


class TestDiropPerformance:
    def test_scale16_beats_topdown(self):
        """Acceptance criterion: on an R-MAT scale-16 graph the
        direction-optimizing variant models strictly fewer edges scanned
        and a strictly lower traversal time than top-down 1D, while
        remaining level-exact against the serial oracle."""
        graph = rmat_graph(16, 16, seed=1)
        source = int(graph.random_nonisolated_vertices(1, seed=2)[0])
        ref = run_bfs(graph, source, "serial")
        td = run_bfs(graph, source, "1d", nprocs=4, machine="hopper")
        do = run_bfs(graph, source, "1d-dirop", nprocs=4, machine="hopper")
        assert (
            do.stats.counter("edges_scanned")
            < td.stats.counter("edges_scanned")
        )
        assert do.time_total < td.time_total
        assert np.array_equal(do.levels, ref.levels)
        assert np.array_equal(do.parents, ref.parents)

    def test_bitmap_expand_cheaper_than_pair_exchange(self):
        # On the dense middle levels the bitmap allgather moves ~n/64
        # words where the top-down alltoallv moves ~2 words per edge.
        graph = rmat_graph(12, 16, seed=1)
        src = int(graph.random_nonisolated_vertices(1, seed=2)[0])
        td = run_bfs(graph, src, "1d", nprocs=4, machine="hopper")
        do = run_bfs(graph, src, "1d-dirop", nprocs=4, machine="hopper")
        assert do.stats.words_sent() < td.stats.words_sent()
