"""Runtime-equivalence sweep: full runs under every execution backend.

For every registered algorithm, one complete timed traversal runs under
each execution runtime — ``threads``, ``sequential``, ``processes`` —
and the *entire* observable output is asserted identical: levels,
parents, level count, traversed-edge count, the modeled time breakdown,
and (for the instrumented families) the full span stream.  This is the
end-to-end half of the runtime bit-identity contract (see
:mod:`repro.runtime`): swapping the backend may change wall-clock only,
never results.

The fault half of the contract gets its own sweep: an injected crash
plus checkpoint-restart must recover identically — same recovered tree,
same attempt count, same restore records on the same virtual timeline —
on every backend, for every flat fault-capable family.

``RUNTIME_BACKEND_ALGORITHMS`` is an import-time snapshot of the
registry, wired into ``tests/test_registry_coverage.py`` as the
``runtime-backend`` harness — registering an algorithm that skips this
sweep fails the coverage meta-test by name.
"""

from __future__ import annotations

import glob
import os
import pickle

import numpy as np
import pytest

from repro import runtime
from repro.core.runner import ALGORITHMS, RunConfig
from repro.graphs.rmat import rmat_graph
from repro.mpsim import run_spmd
from repro.obs import Tracer

from tests.conftest import launch_any

#: Every registered algorithm; the registry coverage meta-test compares
#: this import-time list against the live registry.
RUNTIME_BACKEND_ALGORITHMS = sorted(ALGORITHMS)

#: The instrumented flat families additionally lock the span stream.
TRACED_ALGORITHMS = sorted(
    name
    for name, spec in ALGORITHMS.items()
    if "tracer" in spec.capabilities and not spec.hybrid
)

#: One crash/checkpoint-restart scenario per flat fault-capable family.
CRASH_ALGORITHMS = sorted(
    name
    for name, spec in ALGORITHMS.items()
    if "faults" in spec.capabilities and not spec.hybrid
)

RUNTIMES = runtime.BACKENDS

#: Small-but-structured instance: R-MAT keeps hubs (dense middle levels,
#: bottom-up switches) while staying cheap enough to fork a worker set
#: per run at full registry width.
GRAPH = rmat_graph(8, 8, seed=2)
SOURCE = 17
NPROCS = 4


def _run(algorithm: str, runtime_name: str, **kwargs):
    return launch_any(
        GRAPH,
        SOURCE,
        algorithm,
        nprocs=NPROCS,
        machine="hopper",
        runtime=runtime_name,
        **kwargs,
    )


def _observe(result) -> dict:
    """Everything a runtime switch must leave bit-identical."""
    return {
        "levels": np.asarray(result.levels).tolist(),
        "parents": np.asarray(result.parents).tolist(),
        "nlevels": result.nlevels,
        "m_traversed": result.m_traversed,
        "time_total": result.time_total,
        "time_comm": result.time_comm,
        "time_comp": result.time_comp,
    }


@pytest.mark.parametrize("algorithm", RUNTIME_BACKEND_ALGORITHMS)
def test_runtime_switch_preserves_full_run(algorithm):
    """threads / sequential / processes agree on every observable."""
    baseline = _observe(_run(algorithm, "threads"))
    for name in RUNTIMES[1:]:
        assert _observe(_run(algorithm, name)) == baseline, name


@pytest.mark.parametrize("algorithm", TRACED_ALGORITHMS)
def test_runtime_switch_preserves_spans(algorithm):
    """The virtual-time span stream is backend-invariant, including for
    the processes backend where spans are shipped home as shards."""
    streams = {}
    for name in RUNTIMES:
        tracer = Tracer()
        _run(algorithm, name, tracer=tracer)
        streams[name] = [
            (s.rank, s.phase, s.t_start, s.t_end, s.level, s.depth, s.parent)
            for s in tracer.all_spans()
        ]
    assert streams["sequential"] == streams["threads"]
    assert streams["processes"] == streams["threads"]


@pytest.mark.parametrize("algorithm", CRASH_ALGORITHMS)
def test_runtime_switch_preserves_crash_recovery(algorithm):
    """A permanent rank loss plus checkpoint-restart recovers to the
    same tree, with the same attempt count and the same restore records
    on the same virtual timeline, under every backend."""
    oracle = _run(algorithm, "threads")
    crash_level = max(1, min(2, oracle.nlevels - 1))
    fault_spec = f"crash:rank=1,level={crash_level};seed=3"
    observed = {}
    for name in RUNTIMES:
        result = _run(
            algorithm, name, faults=fault_spec, checkpoint_every=1
        )
        meta = result.meta["faults"]
        observed[name] = (
            _observe(result),
            meta["attempts"],
            tuple(
                (r["rank"], r["crash_level"], r["resume_level"], r["at_time"])
                for r in meta["restores"]
            ),
        )
    # The crash actually fired and the driver actually restarted.
    assert observed["threads"][1] == 2
    assert observed["sequential"] == observed["threads"]
    assert observed["processes"] == observed["threads"]
    assert np.array_equal(
        observed["threads"][0]["levels"], _observe(oracle)["levels"]
    )


class TestProcessesMechanics:
    """Direct checks of the process backend's distinctive claims."""

    def test_workers_run_concurrently_in_distinct_processes(self):
        """All ranks rendezvous at one collective while alive at once,
        each in its own forked interpreter (the CI smoke's assertion)."""

        def body(comm):
            pids = comm.allgatherv(np.array([os.getpid()], dtype=np.int64))
            return sorted(int(p) for p in pids)

        spmd = run_spmd(4, body, runtime="processes")
        pids = spmd.returns[0]
        assert spmd.returns == [pids] * 4
        assert len(set(pids)) == 4, "each rank must be its own process"
        assert os.getpid() not in pids, "ranks must not run in the parent"

    def test_shared_memory_transfers_round_trip_and_clean_up(self):
        """Buffers above the shm threshold cross correctly and every
        segment is unlinked by the end of the run."""
        from repro.runtime.processes import SHM_MIN_BYTES

        words = 2 * SHM_MIN_BYTES // 8

        def body(comm):
            data = np.full(words, comm.rank + 1, dtype=np.int64)
            gathered = comm.allgatherv(data)
            return int(gathered.sum())

        shm_visible = os.path.isdir("/dev/shm")
        before = set(glob.glob("/dev/shm/psm_*")) if shm_visible else set()
        spmd = run_spmd(4, body, runtime="processes")
        expected = sum(r + 1 for r in range(4)) * words
        assert list(spmd.returns) == [expected] * 4
        if shm_visible:
            assert set(glob.glob("/dev/shm/psm_*")) <= before

    def test_worker_failure_raises_picklable_spmd_failure(self):
        def body(comm):
            if comm.rank == 2:
                raise ValueError("boom on rank 2")
            comm.barrier()
            return comm.rank

        from repro.mpsim import SpmdFailure

        with pytest.raises(SpmdFailure, match="rank 2 failed") as info:
            run_spmd(4, body, runtime="processes")
        failure = info.value
        assert failure.rank == 2
        assert isinstance(failure.exc, ValueError)
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.rank == 2 and str(clone) == str(failure)


class TestRuntimePolicy:
    """REPRO_RUNTIME resolution mirrors the REPRO_KERNELS policy."""

    @pytest.fixture(autouse=True)
    def _restore(self):
        previous = runtime.active_runtime()
        yield
        runtime.set_runtime(previous)

    def test_default_is_threads(self, monkeypatch):
        monkeypatch.delenv(runtime.ENV_VAR, raising=False)
        assert runtime.set_runtime(None) == "threads"

    def test_env_selects_startup_runtime(self, monkeypatch):
        monkeypatch.setenv(runtime.ENV_VAR, "sequential")
        assert runtime.set_runtime(None) == "sequential"
        assert runtime.get_backend().name == "sequential"

    def test_env_rejects_unknown_name(self, monkeypatch):
        monkeypatch.setenv(runtime.ENV_VAR, "fibers")
        with pytest.raises(ValueError, match="REPRO_RUNTIME='fibers'"):
            runtime.set_runtime(None)

    def test_set_and_use_runtime(self):
        runtime.set_runtime("sequential")
        assert runtime.active_runtime() == "sequential"
        with runtime.use_runtime("threads"):
            assert runtime.active_runtime() == "threads"
        assert runtime.active_runtime() == "sequential"
        with pytest.raises(ValueError, match="unknown execution runtime"):
            runtime.set_runtime("green")

    def test_run_config_validates_runtime(self):
        with pytest.raises(ValueError, match="unknown execution runtime"):
            RunConfig(runtime="fibers")
        with pytest.raises(ValueError, match="spmd_timeout"):
            RunConfig(spmd_timeout=0.0)


class TestTimeoutPolicy:
    """REPRO_SPMD_TIMEOUT and the spmd_timeout= override (satellite 1)."""

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(runtime.TIMEOUT_ENV_VAR, raising=False)
        assert runtime.default_timeout() == runtime.DEFAULT_TIMEOUT

    def test_env_overrides_engine_default(self, monkeypatch):
        from repro.mpsim import SimEngine

        monkeypatch.setenv(runtime.TIMEOUT_ENV_VAR, "42.5")
        assert runtime.default_timeout() == 42.5
        assert SimEngine(2).timeout == 42.5
        # An explicit timeout= still wins over the environment.
        assert SimEngine(2, timeout=7.0).timeout == 7.0

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(runtime.TIMEOUT_ENV_VAR, "soon")
        with pytest.raises(ValueError, match="not a number"):
            runtime.default_timeout()
        monkeypatch.setenv(runtime.TIMEOUT_ENV_VAR, "-3")
        with pytest.raises(ValueError, match="must be > 0"):
            runtime.default_timeout()

    def test_spmd_timeout_reaches_the_engine(self):
        """The RunConfig field arrives as the engine timeout: a run that
        deadlocks under a tiny budget aborts (instead of waiting out the
        600 s default), proving the value was applied."""

        def stuck(comm):
            if comm.rank == 0:
                comm.barrier()
            return True

        from repro.mpsim import SpmdFailure

        with pytest.raises(SpmdFailure, match="failed"):
            run_spmd(2, stuck, runtime="threads", timeout=0.4)
