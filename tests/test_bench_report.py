"""Tests for the result-table renderer."""

from __future__ import annotations

import pytest

from repro.bench.report import Table, _format_cell


class TestTable:
    def make(self) -> Table:
        t = Table(title="T", headers=["a", "b"])
        t.add_row(1, 2.5)
        t.add_row(10, 0.001)
        return t

    def test_add_row_arity_checked(self):
        t = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row(1)

    def test_column_access(self):
        t = self.make()
        assert t.column("a") == [1, 10]
        with pytest.raises(KeyError, match="no column"):
            t.column("z")

    def test_render_contains_everything(self):
        t = self.make()
        t.notes.append("hello")
        out = t.render()
        assert "T" in out
        assert "a" in out and "b" in out
        assert "2.5" in out
        assert "0.001" in out
        assert "note: hello" in out

    def test_render_aligns_columns(self):
        t = self.make()
        lines = t.render().splitlines()
        header_line = lines[2]
        first_row = lines[4]
        assert len(header_line) == len(lines[3])  # separator matches
        assert len(first_row) <= len(header_line) + 2

    def test_save_round_trip(self, tmp_path):
        t = self.make()
        path = t.save(tmp_path / "sub", "exp")
        assert path.name == "exp.txt"
        assert path.read_text().startswith("T\n")

    def test_float_formatting(self):
        t = Table(title="F", headers=["x"])
        t.add_row(123456.789)
        t.add_row(0.0)
        assert "1.23e+05" in t.render()
        assert "\n  0" in t.render() or " 0" in t.render()


class TestFormatCell:
    def test_negative_values_keep_sign(self):
        assert _format_cell(-2.5) == "-2.5"
        assert _format_cell(-123456.789) == "-1.23e+05"
        assert _format_cell(-0.0001) == "-0.0001"

    def test_negative_zero_drops_sign(self):
        assert _format_cell(-0.0) == "0"

    def test_nan_and_infinities_are_explicit(self):
        assert _format_cell(float("nan")) == "nan"
        assert _format_cell(float("inf")) == "inf"
        assert _format_cell(float("-inf")) == "-inf"

    def test_non_floats_pass_through(self):
        assert _format_cell(7) == "7"
        assert _format_cell("-") == "-"

    def test_render_survives_nan_rows(self):
        t = Table(title="N", headers=["x"])
        t.add_row(float("nan"))
        t.add_row(-1.0)
        out = t.render()
        assert "nan" in out and "-1" in out
