"""Tests for the high-level run_bfs driver."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import ALGORITHMS, run_bfs


class TestRunBfs:
    def test_all_algorithms_agree(self, rmat_small):
        src = int(rmat_small.random_nonisolated_vertices(1, 0)[0])
        ref = run_bfs(rmat_small, src, "serial")
        for algo, spec in ALGORITHMS.items():
            if spec.kind != "bfs":
                # Batched query families go through repro.query.run_query
                # (covered by the property/oracle sweeps); run_bfs must
                # refuse them with a pointer rather than misinterpret.
                with pytest.raises(ValueError, match="run_query"):
                    run_bfs(rmat_small, src, algo, nprocs=9)
                continue
            res = run_bfs(rmat_small, src, algo, nprocs=9, validate=True)
            assert np.array_equal(res.levels, ref.levels), algo
            assert np.array_equal(res.parents, ref.parents), algo
            assert res.m_traversed == ref.m_traversed, algo

    def test_results_in_original_labels(self, rmat_small):
        src = int(rmat_small.random_nonisolated_vertices(1, 1)[0])
        res = run_bfs(rmat_small, src, "1d", nprocs=4)
        assert res.levels[src] == 0
        assert res.parents[src] == src
        # A neighbor (original labels) of the source sits at level <= 1.
        internal_src = int(np.asarray(rmat_small.to_internal(src)))
        nbr_internal = int(rmat_small.csr.neighbors(internal_src)[0])
        nbr = int(np.asarray(rmat_small.to_original(nbr_internal)))
        assert res.levels[nbr] == 1

    def test_2d_uses_closest_square(self, rmat_small):
        src = int(rmat_small.random_nonisolated_vertices(1, 2)[0])
        res = run_bfs(rmat_small, src, "2d", nprocs=10)
        assert res.nranks == 9  # paper: closest square grid

    def test_unknown_algorithm(self, rmat_small):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_bfs(rmat_small, 0, "3d")

    def test_bad_source(self, rmat_small):
        with pytest.raises(ValueError, match="source"):
            run_bfs(rmat_small, rmat_small.n, "serial")

    def test_flat_rejects_threads(self, rmat_small):
        with pytest.raises(ValueError, match="flat variant"):
            run_bfs(rmat_small, 0, "1d", threads=4)

    def test_hybrid_thread_defaults(self, rmat_small):
        src = int(rmat_small.random_nonisolated_vertices(1, 3)[0])
        on_franklin = run_bfs(
            rmat_small, src, "1d-hybrid", nprocs=2, machine="franklin"
        )
        on_hopper = run_bfs(rmat_small, src, "1d-hybrid", nprocs=2, machine="hopper")
        assert on_franklin.threads == 4  # paper: 4-way on Franklin
        assert on_hopper.threads == 6  # 6-way on Hopper (NUMA domains)

    def test_untimed_run_has_no_teps(self, rmat_small):
        src = int(rmat_small.random_nonisolated_vertices(1, 4)[0])
        res = run_bfs(rmat_small, src, "1d", nprocs=2)
        with pytest.raises(ValueError, match="untimed"):
            res.gteps()

    def test_timed_run_reports_breakdown(self, rmat_small):
        src = int(rmat_small.random_nonisolated_vertices(1, 5)[0])
        res = run_bfs(rmat_small, src, "2d", nprocs=9, machine="hopper")
        assert res.time_total > 0
        assert 0 < res.time_comm <= res.time_total
        assert res.time_comp > 0
        assert res.gteps() > 0
        assert res.mteps() == pytest.approx(res.gteps() * 1e3)

    def test_machine_accepts_config_object(self, rmat_small):
        src = int(rmat_small.random_nonisolated_vertices(1, 6)[0])
        res = run_bfs(rmat_small, src, "1d", nprocs=4, machine=repro.FRANKLIN)
        assert res.time_total > 0

    def test_unknown_machine_rejected(self, rmat_small):
        with pytest.raises(ValueError, match="unknown machine"):
            run_bfs(rmat_small, 0, "1d", machine="bluegene")

    def test_vector_dist_ablation(self, rmat_small):
        src = int(rmat_small.random_nonisolated_vertices(1, 7)[0])
        ref = run_bfs(rmat_small, src, "serial")
        res = run_bfs(rmat_small, src, "2d", nprocs=9, vector_dist="1d")
        assert np.array_equal(res.levels, ref.levels)

    def test_serial_on_directed_graph(self):
        src_arr = np.array([0, 1, 2], dtype=np.int64)
        dst_arr = np.array([1, 2, 3], dtype=np.int64)
        g = repro.Graph.from_edges(
            4, src_arr, dst_arr, symmetrize=False, shuffle=False
        )
        res = run_bfs(g, 0, "serial")
        assert np.array_equal(res.levels, [0, 1, 2, 3])
        # From the middle, earlier vertices are unreachable (directed).
        res = run_bfs(g, 2, "serial")
        assert np.array_equal(res.levels, [-1, -1, 0, 1])

    def test_distributed_on_directed_graph(self):
        rng = np.random.default_rng(0)
        g = repro.Graph.from_edges(
            64,
            rng.integers(0, 64, 300),
            rng.integers(0, 64, 300),
            symmetrize=False,
            shuffle=True,
            seed=1,
        )
        src = int(g.random_nonisolated_vertices(1, 2)[0])
        ref = run_bfs(g, src, "serial")
        for algo in ("1d", "2d"):
            res = run_bfs(g, src, algo, nprocs=4)
            assert np.array_equal(res.levels, ref.levels), algo

    def test_modeled_cores_forces_heap(self, rmat_small):
        src = int(rmat_small.random_nonisolated_vertices(1, 8)[0])
        ref = run_bfs(rmat_small, src, "serial")
        res = run_bfs(
            rmat_small, src, "2d", nprocs=4, modeled_cores=40_000, kernel="auto"
        )
        assert np.array_equal(res.levels, ref.levels)
