"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, rmat_graph, webcrawl_graph


@pytest.fixture(scope="session")
def rmat_small() -> Graph:
    """Scale-11 R-MAT graph (2048 vertices) used across integration tests."""
    return rmat_graph(11, 16, seed=42)


@pytest.fixture(scope="session")
def rmat_medium() -> Graph:
    """Scale-13 R-MAT graph for the heavier distributed tests."""
    return rmat_graph(13, 16, seed=7)


@pytest.fixture(scope="session")
def crawl_graph() -> Graph:
    """High-diameter synthetic web crawl (uk-union stand-in)."""
    return webcrawl_graph(6000, n_hosts=30, host_reach=1, seed=3)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_path_graph(n: int) -> Graph:
    """Deterministic path 0-1-2-...-(n-1): known levels for exact checks."""
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    return Graph.from_edges(n, src, dst, shuffle=False, name=f"path-{n}")


def make_star_graph(n: int) -> Graph:
    """Star with center 0: every other vertex at level 1."""
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    return Graph.from_edges(n, src, dst, shuffle=False, name=f"star-{n}")


def make_disconnected_graph() -> Graph:
    """Two components: a triangle {0,1,2} and an edge {3,4}; vertex 5 isolated."""
    src = np.array([0, 1, 2, 3], dtype=np.int64)
    dst = np.array([1, 2, 0, 4], dtype=np.int64)
    return Graph.from_edges(6, src, dst, shuffle=False, name="disconnected")


def query_sources(graph: Graph, source: int, k: int = 4) -> list[int]:
    """Deterministic batch anchored at ``source``: k distinct vertex ids."""
    return [(source + i) % graph.n for i in range(min(k, graph.n))]


def launch_any(graph: Graph, source: int, algorithm: str, *, batch: int = 4, **kwargs):
    """Kind-dispatching launcher for registry-driven sweeps.

    The harnesses parametrize over the whole ``ALGORITHMS`` registry;
    BFS entries run through :func:`repro.core.run_bfs` and the batched
    query kinds through :func:`repro.query.run_query` with a
    deterministic source batch derived from ``source``, so one helper
    covers every entry — current and future — without per-name branches
    in the tests.
    """
    from repro.core import run_bfs
    from repro.core.runner import ALGORITHMS
    from repro.query import run_query

    kind = ALGORITHMS[algorithm].kind
    if kind == "bfs":
        return run_bfs(graph, source, algorithm, **kwargs)
    if kind == "msbfs":
        return run_query(
            graph,
            sources=query_sources(graph, source, batch),
            algorithm=algorithm,
            **kwargs,
        )
    if kind == "sssp":
        return run_query(graph, sources=[source], algorithm=algorithm, **kwargs)
    if kind == "cc":
        return run_query(graph, algorithm=algorithm, **kwargs)
    if kind == "landmark":
        return run_query(
            graph, algorithm=algorithm, landmarks=min(batch, graph.n), **kwargs
        )
    raise ValueError(f"unknown algorithm kind {kind!r}")  # pragma: no cover
