"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, rmat_graph, webcrawl_graph


@pytest.fixture(scope="session")
def rmat_small() -> Graph:
    """Scale-11 R-MAT graph (2048 vertices) used across integration tests."""
    return rmat_graph(11, 16, seed=42)


@pytest.fixture(scope="session")
def rmat_medium() -> Graph:
    """Scale-13 R-MAT graph for the heavier distributed tests."""
    return rmat_graph(13, 16, seed=7)


@pytest.fixture(scope="session")
def crawl_graph() -> Graph:
    """High-diameter synthetic web crawl (uk-union stand-in)."""
    return webcrawl_graph(6000, n_hosts=30, host_reach=1, seed=3)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_path_graph(n: int) -> Graph:
    """Deterministic path 0-1-2-...-(n-1): known levels for exact checks."""
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    return Graph.from_edges(n, src, dst, shuffle=False, name=f"path-{n}")


def make_star_graph(n: int) -> Graph:
    """Star with center 0: every other vertex at level 1."""
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    return Graph.from_edges(n, src, dst, shuffle=False, name=f"star-{n}")


def make_disconnected_graph() -> Graph:
    """Two components: a triangle {0,1,2} and an edge {3,4}; vertex 5 isolated."""
    src = np.array([0, 1, 2, 3], dtype=np.int64)
    dst = np.array([1, 2, 0, 4], dtype=np.int64)
    return Graph.from_edges(6, src, dst, shuffle=False, name="disconnected")
