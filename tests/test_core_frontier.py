"""Tests for the frontier manipulation primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import (
    bucket_by_owner,
    dedup_candidates,
    pack_pairs,
    unpack_pairs,
)


class TestDedupCandidates:
    def test_keeps_max_parent(self):
        targets = np.array([5, 3, 5, 3, 5], dtype=np.int64)
        parents = np.array([1, 9, 7, 2, 4], dtype=np.int64)
        t, p = dedup_candidates(targets, parents)
        assert np.array_equal(t, [3, 5])
        assert np.array_equal(p, [9, 7])

    def test_sorted_output(self):
        rng = np.random.default_rng(0)
        t, p = dedup_candidates(rng.integers(0, 50, 200), rng.integers(0, 50, 200))
        assert np.all(np.diff(t) > 0)

    def test_empty(self):
        t, p = dedup_candidates(np.empty(0, np.int64), np.empty(0, np.int64))
        assert t.size == p.size == 0

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        t1, p1 = dedup_candidates(rng.integers(0, 20, 80), rng.integers(0, 99, 80))
        t2, p2 = dedup_candidates(t1, p1)
        assert np.array_equal(t1, t2)
        assert np.array_equal(p1, p2)


def _dedup_oracle(targets, parents):
    """Pure-Python (select, max) reference for dedup_candidates."""
    best = {}
    for t, p in zip(np.asarray(targets).tolist(), np.asarray(parents).tolist()):
        if t not in best or p > best[t]:
            best[t] = p
    keys = sorted(best)
    return (
        np.array(keys, dtype=np.int64),
        np.array([best[t] for t in keys], dtype=np.int64),
    )


class TestDedupBranches:
    """dedup_candidates has a composite-key fast path plus a lexsort
    fallback for inputs whose ``target * span + parent`` key would not
    fit an int64; both must produce identical (select, max) output."""

    def _check(self, targets, parents):
        targets = np.asarray(targets, dtype=np.int64)
        parents = np.asarray(parents, dtype=np.int64)
        t, p = dedup_candidates(targets, parents)
        want_t, want_p = _dedup_oracle(targets, parents)
        assert np.array_equal(t, want_t)
        assert np.array_equal(p, want_p)

    def test_negative_parent_forces_lexsort(self):
        # parents.min() < 0 disqualifies the composite key outright.
        self._check([7, 3, 7, 3], [-1, 5, 2, -1])

    def test_all_negative_parents(self):
        self._check([4, 4, 9], [-3, -1, -2])

    def test_huge_targets_force_lexsort(self):
        base = 1 << 61
        self._check(
            [base + 5, base + 2, base + 5, base + 2],
            [1, 9, 4, 3],
        )

    def test_huge_parent_span_forces_lexsort(self):
        # span = parents.max() + 1 > 2**62: the key would overflow even
        # for tiny targets (and parents near 2**63 would wrap span itself).
        self._check([1, 2, 1, 1], [2**62 + 3, 0, 2**62 + 9, 2**63 - 1])

    def test_branches_agree_under_target_shift(self):
        """The same logical input pushed through both branches: shifting
        every target by 2**61 flips the composite guard without changing
        the dedup structure, so results must match after unshifting."""
        rng = np.random.default_rng(7)
        targets = rng.integers(0, 100, 400)
        parents = rng.integers(0, 50, 400)
        fast_t, fast_p = dedup_candidates(targets, parents)
        shift = np.int64(1) << 61
        slow_t, slow_p = dedup_candidates(targets + shift, parents)
        assert np.array_equal(slow_t - shift, fast_t)
        assert np.array_equal(slow_p, fast_p)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**63 - 1),
                st.integers(-(2**63), 2**63 - 1),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_oracle_agreement_full_int64_range(self, pairs):
        """Whichever branch fires, output matches the dict-max oracle —
        including spans and targets that sit right on the overflow guard."""
        targets = [t for t, _ in pairs]
        parents = [p for _, p in pairs]
        self._check(targets, parents)


class TestPackUnpack:
    def test_round_trip(self):
        v = np.array([1, 2, 3], dtype=np.int64)
        p = np.array([10, 20, 30], dtype=np.int64)
        buf = pack_pairs(v, p)
        assert buf.size == 6
        v2, p2 = unpack_pairs(buf)
        assert np.array_equal(v, v2) and np.array_equal(p, p2)

    def test_interleaved_layout(self):
        buf = pack_pairs(np.array([7]), np.array([8]))
        assert list(buf) == [7, 8]

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            pack_pairs(np.array([1]), np.array([1, 2]))

    def test_odd_buffer_rejected(self):
        with pytest.raises(ValueError, match="odd length"):
            unpack_pairs(np.array([1, 2, 3]))


class TestBucketByOwner:
    def test_groups_preserve_pairing(self):
        owners = np.array([2, 0, 1, 0, 2], dtype=np.int64)
        a = np.array([10, 11, 12, 13, 14], dtype=np.int64)
        b = np.array([20, 21, 22, 23, 24], dtype=np.int64)
        groups, counts = bucket_by_owner(owners, 3, a, b)
        assert np.array_equal(counts, [2, 1, 2])
        ga, gb = groups[0]
        assert np.array_equal(ga, [11, 13]) and np.array_equal(gb, [21, 23])
        ga, gb = groups[2]
        assert np.array_equal(ga, [10, 14]) and np.array_equal(gb, [20, 24])

    def test_empty_buckets_present(self):
        groups, counts = bucket_by_owner(
            np.array([3], dtype=np.int64), 5, np.array([9], dtype=np.int64)
        )
        assert len(groups) == 5
        assert counts.sum() == 1
        assert groups[0][0].size == 0
        assert groups[3][0][0] == 9

    def test_out_of_range_owner(self):
        with pytest.raises(ValueError, match="out of range"):
            bucket_by_owner(np.array([5]), 3, np.array([1]))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 2**30)),
        max_size=80,
    )
)
def test_dedup_is_groupby_max(pairs):
    """Property: dedup == groupby(target).max(parent)."""
    targets = np.array([p[0] for p in pairs], dtype=np.int64)
    parents = np.array([p[1] for p in pairs], dtype=np.int64)
    t, p = dedup_candidates(targets, parents)
    expected = {}
    for tt, pp in pairs:
        expected[tt] = max(expected.get(tt, -1), pp)
    assert list(t) == sorted(expected)
    assert all(p[i] == expected[t[i]] for i in range(t.size))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 2**40), max_size=60),
    st.lists(st.integers(0, 2**40), max_size=60),
)
def test_pack_unpack_round_trip(xs, ys):
    k = min(len(xs), len(ys))
    v = np.array(xs[:k], dtype=np.int64)
    p = np.array(ys[:k], dtype=np.int64)
    v2, p2 = unpack_pairs(pack_pairs(v, p))
    assert np.array_equal(v, v2)
    assert np.array_equal(p, p2)
