"""Differential determinism of faulted runs.

Two contracts:

1. Identical ``(seed, fault spec)`` ⇒ identical everything: parents,
   ``SimStats`` down to per-rank clocks and counters, and the full span
   stream — crash, restart, and all.  The fault subsystem draws no
   entropy at runtime, so a recovery is as reproducible as a clean run.
2. Arming the machinery without faults is free: a zero-fault plan with
   retries enabled must be bit-identical to the plain run (the faulted
   sibling of ``test_obs_overhead``'s zero-overhead contract).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_bfs
from repro.obs import Tracer

SOURCE = 5
NPROCS = 4
SPEC = (
    "crash:rank=1,level=3;"
    "timeout:level=2;"
    "corrupt:rank=0,level=2;"
    "delay:rank=2,level=1,seconds=2e-4;"
    "seed=11"
)


def _stats_fingerprint(result):
    summary = result.stats.summary()
    summary["words_by_level"] = {
        level: dict(kinds) for level, kinds in summary["words_by_level"].items()
    }
    clocks = [
        (c.time, c.compute_time, c.mpi_time, dict(c.counters))
        for c in result.stats.clocks
    ]
    return summary, clocks


def _trace_fingerprint(tracer):
    return [
        [
            (
                span.phase,
                span.t_start,
                span.t_end,
                span.level,
                span.instant,
                tuple(sorted(span.meta.items())),
            )
            for span in tracer.spans_for(rank)
        ]
        for rank in tracer.ranks
    ]


@pytest.mark.parametrize("algorithm", ["1d", "1d-dirop", "2d"])
def test_identical_fault_runs_are_bit_identical(rmat_small, algorithm):
    runs = []
    for _ in range(2):
        tracer = Tracer()
        result = run_bfs(
            rmat_small, SOURCE, algorithm, nprocs=NPROCS, machine="hopper",
            faults=SPEC, checkpoint_every=1, tracer=tracer,
        )
        runs.append((result, tracer))
    (a, trace_a), (b, trace_b) = runs
    assert np.array_equal(a.parents, b.parents)
    assert np.array_equal(a.levels, b.levels)
    assert a.time_total == b.time_total  # ==, not approx: bit identity
    assert _stats_fingerprint(a) == _stats_fingerprint(b)
    assert _trace_fingerprint(trace_a) == _trace_fingerprint(trace_b)
    assert a.meta["faults"] == b.meta["faults"]
    # The schedule actually fired: one restart, plus absorbed transients.
    assert a.meta["faults"]["attempts"] == 2
    counters = a.meta["faults"]["counters"]
    assert counters["fault_retries"] > 0
    assert counters["restores"] == NPROCS


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_retries": 3},
        {"faults": ""},  # empty plan, machinery armed
        {"faults": "seed=9", "max_retries": 5},
    ],
    ids=["retries-only", "empty-plan", "seed-only"],
)
def test_zero_fault_plan_is_bit_identical_to_plain(rmat_small, kwargs):
    plain = run_bfs(rmat_small, SOURCE, "1d", nprocs=NPROCS, machine="hopper")
    armed = run_bfs(
        rmat_small, SOURCE, "1d", nprocs=NPROCS, machine="hopper", **kwargs
    )
    assert np.array_equal(plain.parents, armed.parents)
    assert plain.time_total == armed.time_total
    assert _stats_fingerprint(plain) == _stats_fingerprint(armed)
    meta = armed.meta["faults"]
    assert meta["attempts"] == 1 and meta["restores"] == []
    assert all(v == 0.0 for v in meta["counters"].values())


def test_checkpointing_without_faults_changes_time_not_answers(rmat_small):
    plain = run_bfs(rmat_small, SOURCE, "1d", nprocs=NPROCS, machine="hopper")
    insured = run_bfs(
        rmat_small, SOURCE, "1d", nprocs=NPROCS, machine="hopper",
        checkpoint_every=1,
    )
    assert np.array_equal(plain.parents, insured.parents)
    # Snapshots are modeled work: the run pays for its insurance.
    assert insured.time_total > plain.time_total
    assert insured.meta["faults"]["counters"]["checkpoints"] > 0
