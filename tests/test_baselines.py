"""Tests for the PBGL-like and Graph500-reference baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_bfs


class TestBaselineCorrectness:
    @pytest.mark.parametrize("algo", ["pbgl", "graph500-ref"])
    def test_matches_serial(self, rmat_small, algo):
        src = int(rmat_small.random_nonisolated_vertices(1, 0)[0])
        ref = run_bfs(rmat_small, src, "serial")
        res = run_bfs(rmat_small, src, algo, nprocs=6, validate=True)
        assert np.array_equal(res.levels, ref.levels)
        assert np.array_equal(res.parents, ref.parents)


class TestBaselinePerformanceGaps:
    def test_reference_sends_more_than_tuned_1d(self, rmat_medium):
        """The reference code ships every edge; the tuned code dedups."""
        src = int(rmat_medium.random_nonisolated_vertices(1, 1)[0])
        tuned = run_bfs(rmat_medium, src, "1d", nprocs=8)
        ref = run_bfs(rmat_medium, src, "graph500-ref", nprocs=8)
        assert ref.stats.words_sent("alltoallv") > tuned.stats.words_sent(
            "alltoallv"
        )

    def test_tuned_1d_faster_than_reference(self, rmat_medium):
        """Section 6: flat 1D is 2.7-4.1x the reference code on Franklin."""
        src = int(rmat_medium.random_nonisolated_vertices(1, 2)[0])
        tuned = run_bfs(rmat_medium, src, "1d", nprocs=8, machine="franklin")
        ref = run_bfs(
            rmat_medium, src, "graph500-ref", nprocs=8, machine="franklin"
        )
        assert tuned.time_total < ref.time_total

    def test_2d_much_faster_than_pbgl(self, rmat_medium):
        """Table 2: flat 2D is an order of magnitude above PBGL on Carver."""
        src = int(rmat_medium.random_nonisolated_vertices(1, 3)[0])
        two_d = run_bfs(rmat_medium, src, "2d", nprocs=16, machine="carver")
        pbgl = run_bfs(rmat_medium, src, "pbgl", nprocs=16, machine="carver")
        assert two_d.mteps() > 4 * pbgl.mteps()
