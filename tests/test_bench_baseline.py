"""The committed perf baselines: regenerable and gate-clean.

``benchmarks/BENCH_baseline.json`` is the first frozen run report of the
canonical Graph 500 configuration (scale-13 R-MAT, 2D BFS, 16 ranks on
the Hopper model) — the anchor of the perf trajectory.  Later PRs
compare their candidate reports against it with ``repro-bench perf-diff``
(see EXPERIMENTS.md).  The simulation is deterministic, so regenerating
the report through the exact CLI recipe must reproduce the committed
file bit for bit, and a self-diff through the gate must pass with zero
delta on every gated metric.

``benchmarks/BENCH_kernels.json`` is the same recipe re-run after the
kernel vectorization: every modeled metric must equal the baseline's
(the backends are bit-identical), and its extra ``wallclock`` section
records the measured numpy-vs-python comparison — host-dependent, so it
informs the trajectory but never gates, and only its committed floor
(>= 5x on the scale-16 recipe) is asserted here.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.obs.regress import perf_diff

_BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BASELINE = _BENCH_DIR / "BENCH_baseline.json"
KERNELS_POINT = _BENCH_DIR / "BENCH_kernels.json"

#: The exact CLI recipe that produced the committed baseline (and that
#: later PRs run to produce their candidate reports).
RECIPE = [
    "graph500",
    "--scale", "13",
    "--edgefactor", "16",
    "--algorithm", "2d",
    "--nprocs", "16",
    "--machine", "hopper",
    "--nbfs", "4",
    "--seed", "0",
]


def _regenerate(path: Path) -> None:
    assert main(RECIPE + ["--report-out", str(path)]) == 0


def test_baseline_is_committed_and_regenerable(tmp_path):
    fresh = tmp_path / "candidate.json"
    _regenerate(fresh)
    assert json.loads(fresh.read_text()) == json.loads(BASELINE.read_text())


def test_baseline_self_diff_passes_the_gate(tmp_path):
    fresh = tmp_path / "candidate.json"
    _regenerate(fresh)
    diff = perf_diff(BASELINE, fresh, threshold=0.05)
    assert diff.ok
    # Deterministic simulation: the self-comparison is exactly zero.
    for delta in diff.deltas:
        if delta.baseline is not None and delta.candidate is not None:
            assert delta.baseline == delta.candidate, delta


def test_kernels_point_matches_baseline_modulo_wallclock():
    """The vectorization PR's trajectory point is the baseline recipe's
    exact modeled output — the kernel refactor changed wall-clock only —
    plus the measured ``wallclock`` section."""
    point = json.loads(KERNELS_POINT.read_text())
    wallclock = point.pop("wallclock")
    assert point == json.loads(BASELINE.read_text())
    assert wallclock["recipe.speedup"] >= 5.0
    for algorithm in ("1d", "2d", "msbfs"):
        assert wallclock[f"{algorithm}.python_seconds"] > 0
        assert wallclock[f"{algorithm}.numpy_seconds"] > 0
        assert wallclock[f"{algorithm}.speedup"] > 1.0


SCALE18_DIR = _BENCH_DIR / "scale18"
SCALE18_BASELINE = SCALE18_DIR / "BENCH_scale18.json"
SCALE18_RUNTIME_POINT = SCALE18_DIR / "BENCH_scale18_runtime.json"


def test_baseline_recipe_is_runtime_invariant(tmp_path):
    """The acceptance check of the runtime split: the exact committed
    baseline recipe, re-run under the sequential and processes
    execution backends, reproduces ``BENCH_baseline.json`` bit for bit
    — parents, levels, modeled times, wire words, spans, metrics."""
    committed = json.loads(BASELINE.read_text())
    for runtime_name in ("sequential", "processes"):
        fresh = tmp_path / f"candidate-{runtime_name}.json"
        assert (
            main(RECIPE + ["--runtime", runtime_name, "--report-out", str(fresh)])
            == 0
        )
        assert json.loads(fresh.read_text()) == committed, runtime_name


def test_runtime_point_matches_scale18_baseline_modulo_wallclock():
    """The runtime PR's trajectory point is the scale-18 recipe's exact
    modeled output — the execution backends are bit-identical — plus the
    measured ``wallclock`` section.  Wall-clock is host-dependent (the
    committed numbers come from a single-CPU container, where forked
    workers can only add overhead), so it informs the trajectory but
    never gates; only shape and positivity are asserted here."""
    point = json.loads(SCALE18_RUNTIME_POINT.read_text())
    wallclock = point.pop("wallclock")
    assert point == json.loads(SCALE18_BASELINE.read_text())
    for backend in ("threads", "sequential", "processes"):
        assert wallclock[f"recipe.{backend}_seconds"] > 0
    assert wallclock["recipe.processes_speedup"] > 0
    assert wallclock["recipe.workers"] == 16
    assert wallclock["recipe.host_cpus"] >= 1
