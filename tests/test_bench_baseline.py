"""The committed perf baseline: regenerable and gate-clean.

``benchmarks/BENCH_baseline.json`` is the first frozen run report of the
canonical Graph 500 configuration (scale-13 R-MAT, 2D BFS, 16 ranks on
the Hopper model) — the anchor of the perf trajectory.  Later PRs
compare their candidate reports against it with ``repro-bench perf-diff``
(see EXPERIMENTS.md).  The simulation is deterministic, so regenerating
the report through the exact CLI recipe must reproduce the committed
file bit for bit, and a self-diff through the gate must pass with zero
delta on every gated metric.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.obs.regress import perf_diff

BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_baseline.json"

#: The exact CLI recipe that produced the committed baseline (and that
#: later PRs run to produce their candidate reports).
RECIPE = [
    "graph500",
    "--scale", "13",
    "--edgefactor", "16",
    "--algorithm", "2d",
    "--nprocs", "16",
    "--machine", "hopper",
    "--nbfs", "4",
    "--seed", "0",
]


def _regenerate(path: Path) -> None:
    assert main(RECIPE + ["--report-out", str(path)]) == 0


def test_baseline_is_committed_and_regenerable(tmp_path):
    fresh = tmp_path / "candidate.json"
    _regenerate(fresh)
    assert json.loads(fresh.read_text()) == json.loads(BASELINE.read_text())


def test_baseline_self_diff_passes_the_gate(tmp_path):
    fresh = tmp_path / "candidate.json"
    _regenerate(fresh)
    diff = perf_diff(BASELINE, fresh, threshold=0.05)
    assert diff.ok
    # Deterministic simulation: the self-comparison is exactly zero.
    for delta in diff.deltas:
        if delta.baseline is not None and delta.candidate is not None:
            assert delta.baseline == delta.candidate, delta
