"""Property-based validation of the SPMD engine against a pure oracle.

Hypothesis generates random *programs* — sequences of collectives with
random payload shapes — which every rank executes under :func:`run_spmd`.
The same program is then evaluated by the pure functions in
:mod:`repro.mpsim.collectives` (no threads, no barriers), and the results
must match exactly.  This pins the engine's synchronization machinery to
the collectives' mathematical semantics under arbitrary interleavings.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpsim import collectives as coll
from repro.mpsim import run_spmd


@st.composite
def programs(draw):
    nranks = draw(st.integers(2, 6))
    nops = draw(st.integers(1, 6))
    rng_seed = draw(st.integers(0, 2**16))
    ops = []
    for _ in range(nops):
        kind = draw(
            st.sampled_from(["alltoallv", "allgatherv", "allreduce", "bcast"])
        )
        ops.append(kind)
    return nranks, ops, rng_seed


def _payload(kind, rank, nranks, rng):
    if kind == "alltoallv":
        return [
            rng.integers(0, 100, size=int(rng.integers(0, 5)))
            for _ in range(nranks)
        ]
    if kind == "allgatherv":
        return rng.integers(0, 100, size=int(rng.integers(0, 6)))
    if kind == "allreduce":
        return int(rng.integers(-50, 50))
    if kind == "bcast":
        return int(rng.integers(0, 1000))
    raise AssertionError(kind)


def _oracle(kind, payloads):
    if kind == "alltoallv":
        return coll.alltoallv(payloads)
    if kind == "allgatherv":
        return coll.allgatherv(payloads)
    if kind == "allreduce":
        return coll.allreduce(payloads, "sum")
    if kind == "bcast":
        return coll.bcast(payloads, root=0)
    raise AssertionError(kind)


def _normalize(kind, out):
    if kind == "alltoallv":
        return [list(map(int, buf)) for buf in out]
    if kind == "allgatherv":
        return [list(map(int, buf)) for buf in out]
    return out


@settings(max_examples=40, deadline=None)
@given(programs())
def test_engine_matches_pure_collectives(program):
    nranks, ops, rng_seed = program

    # Payloads are a pure function of (rank, step, seed), so both the
    # threaded engine and the oracle see identical inputs.
    def payload_for(rank, step, kind):
        rng = np.random.default_rng((rng_seed, rank, step))
        return _payload(kind, rank, nranks, rng)

    def rank_fn(comm):
        outputs = []
        for step, kind in enumerate(ops):
            payload = payload_for(comm.rank, step, kind)
            if kind == "alltoallv":
                out = comm.alltoallv(payload)
            elif kind == "allgatherv":
                out = comm.allgatherv(payload, concat=False)
            elif kind == "allreduce":
                out = comm.allreduce(payload, "sum")
            else:
                out = comm.bcast(payload if comm.rank == 0 else None, root=0)
            outputs.append(_normalize(kind, out))
        return outputs

    result = run_spmd(nranks, rank_fn)

    for step, kind in enumerate(ops):
        payloads = [payload_for(rank, step, kind) for rank in range(nranks)]
        if kind == "bcast":
            payloads = [payloads[0]] + [None] * (nranks - 1)
        expected = _oracle(kind, payloads)
        for rank in range(nranks):
            got = result[rank][step]
            want = _normalize(kind, expected[rank])
            assert got == want, (kind, step, rank)


@settings(max_examples=25, deadline=None)
@given(programs())
def test_engine_program_deterministic(program):
    """The same random program yields identical stats across runs."""
    nranks, ops, rng_seed = program

    def rank_fn(comm):
        rng = np.random.default_rng((rng_seed, comm.rank))
        for kind in ops:
            if kind == "alltoallv":
                comm.alltoallv(
                    [rng.integers(0, 9, size=2) for _ in range(comm.size)]
                )
            elif kind == "allgatherv":
                comm.allgatherv(rng.integers(0, 9, size=3))
            elif kind == "allreduce":
                comm.allreduce(1)
            else:
                comm.bcast(1, root=0)
        return None

    first = run_spmd(nranks, rank_fn).stats
    second = run_spmd(nranks, rank_fn).stats
    assert first.words_sent() == second.words_sent()
    assert [c.snapshot() for c in first.clocks] == [
        c.snapshot() for c in second.clocks
    ]
