"""Tests for the repro-bench command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "table2" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figZZ"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_one_quick(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "finished in" in out

    def test_output_dir(self, tmp_path, capsys):
        assert main(["fig5", "--quick", "-o", str(tmp_path)]) == 0
        assert (tmp_path / "fig5.txt").exists()
        assert "Figure 5" in (tmp_path / "fig5.txt").read_text()

    def test_parser_defaults(self):
        args = build_parser().parse_args(["all"])
        assert args.experiment == "all"
        assert args.quick is False
        assert args.output_dir is None

    def test_module_entry_point_exists(self):
        import repro.__main__  # noqa: F401 - import is the test

    def test_console_script_registered(self):
        import importlib.metadata as md

        eps = md.entry_points()
        scripts = eps.select(group="console_scripts") if hasattr(eps, "select") else eps["console_scripts"]
        names = {ep.name for ep in scripts}
        if "repro-bench" not in names:
            pytest.skip("editable install without console script metadata")

    def test_graph500_mode(self, capsys):
        assert main(["graph500", "--scale", "10", "--nbfs", "2", "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "SCALE:" in out
        assert "harmonic_mean_TEPS:" in out
