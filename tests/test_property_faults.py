"""Property battery: random fault schedules never corrupt the traversal.

For random (graph, seed) pairs and randomly drawn fault plans — one
crash, transient timeouts/corruptions, a straggler — every registered
distributed algorithm must come back with a tree that passes the Graph
500 validator and distances equal to the fault-free oracle.  Recovery is
exercised end to end: the crash kills an attempt mid-traversal and the
driver restarts from the last complete checkpoint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_bfs
from repro.core.runner import ALGORITHMS as REGISTRY
from repro.faults import RankCrashError, random_fault_plan

from tests.conftest import launch_any

#: Every registered algorithm with fault/checkpoint instrumentation,
#: hybrids included — derived from the registry so a new plugin is
#: covered the moment it lands.
FAULT_ALGORITHMS = tuple(
    sorted(
        name
        for name, spec in REGISTRY.items()
        if "faults" in spec.capabilities
    )
)
#: The flat variant of each fault-capable family carries the exhaustive
#: crash-at-every-level sweep (hybrids share the family's checkpoint
#: path).
SWEEP_ALGORITHMS = tuple(
    sorted(
        name
        for name, spec in REGISTRY.items()
        if "faults" in spec.capabilities and not spec.hybrid
    )
)
NPROCS = 4
SOURCE = 5


@pytest.fixture(scope="module")
def oracles(rmat_small):
    """Fault-free reference runs, one per algorithm.  ``launch_any``
    dispatches by registry kind, so the batched query families (2-D lane
    results) ride the same battery as the single-source BFS entries."""
    return {
        algorithm: launch_any(
            rmat_small, SOURCE, algorithm, nprocs=NPROCS, machine="hopper"
        )
        for algorithm in FAULT_ALGORITHMS
    }


@pytest.mark.parametrize("algorithm", FAULT_ALGORITHMS)
@pytest.mark.parametrize("seed", range(3))
def test_random_fault_schedule_recovers(rmat_small, oracles, algorithm, seed):
    oracle = oracles[algorithm]
    plan = random_fault_plan(
        seed, nranks=NPROCS, max_level=max(2, oracle.nlevels - 1)
    )
    result = launch_any(
        rmat_small,
        SOURCE,
        algorithm,
        nprocs=NPROCS,
        machine="hopper",
        faults=plan,
        checkpoint_every=1,
        validate=True,  # Graph 500 rules on the recovered tree
    )
    assert np.array_equal(result.levels, oracle.levels)
    assert np.array_equal(result.parents, oracle.parents)
    meta = result.meta["faults"]
    assert meta["attempts"] == 1 + len(meta["restores"])


@pytest.mark.parametrize("algorithm", SWEEP_ALGORITHMS)
def test_crash_at_every_level_recovers(rmat_small, oracles, algorithm):
    """The acceptance sweep: a permanent loss at any level is survivable."""
    oracle = oracles[algorithm]
    for level in range(1, oracle.nlevels + 1):
        result = launch_any(
            rmat_small,
            SOURCE,
            algorithm,
            nprocs=NPROCS,
            machine="hopper",
            faults=f"crash:rank={level % NPROCS},level={level}",
            checkpoint_every=2,
        )
        assert np.array_equal(result.parents, oracle.parents), (
            f"{algorithm}: crash at level {level} diverged"
        )
        (restore,) = result.meta["faults"]["restores"]
        assert restore["crash_level"] == level
        resume = restore["resume_level"]
        assert resume is None or resume < level


@pytest.mark.parametrize("algorithm", SWEEP_ALGORITHMS)
def test_crash_without_checkpoint_aborts_cleanly(rmat_small, algorithm):
    """No checkpointing means a crash is an outage: typed abort, no hang."""
    with pytest.raises(RankCrashError, match="injected crash"):
        launch_any(
            rmat_small,
            SOURCE,
            algorithm,
            nprocs=NPROCS,
            machine="hopper",
            faults="crash:rank=2,level=2",
        )


def test_transients_only_plans_match_oracle_exactly(rmat_small, oracles):
    """Timeout/corrupt/delay schedules are absorbed without a restart."""
    for seed in range(4):
        plan = random_fault_plan(
            seed, nranks=NPROCS, max_level=4, n_transients=3, crash=False
        )
        result = run_bfs(
            rmat_small,
            SOURCE,
            "1d",
            nprocs=NPROCS,
            machine="hopper",
            faults=plan,
            validate=True,
        )
        assert np.array_equal(result.parents, oracles["1d"].parents)
        assert result.meta["faults"]["attempts"] == 1
