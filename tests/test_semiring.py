"""Algebraic property battery for the traversal semirings.

Every semiring registered in :data:`repro.sparse.SEMIRINGS` must be a
commutative, associative, idempotent monoid over its payload domain, and
its two reduction kernels (``reduce_at`` scatter-combine and
``reduce_sorted_runs`` run-combine) must agree with a straightforward
element-at-a-time fold of :meth:`combine` — that fold is the semantics,
the kernels are the vectorizations.  The sweep is registry-driven: a new
semiring is algebra-checked the moment it lands in ``SEMIRINGS``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import SEMIRINGS, SPA
from repro.sparse.semiring import INF

NAMES = sorted(SEMIRINGS)

#: Payload domain of each semiring — values its kernels must accept.
#: (The identity is excluded where the SPA forbids accumulating it.)
_DOMAINS = {
    "select-max": st.integers(min_value=0, max_value=1 << 40),
    "bit-or": st.integers(min_value=1, max_value=(1 << 64) - 1),
    "min-level": st.integers(min_value=0, max_value=INF - 1),
    "min-plus": st.integers(min_value=0, max_value=INF - 1),
}


def test_every_semiring_has_a_payload_domain():
    """A new registry entry must extend the property battery's domains."""
    assert set(_DOMAINS) == set(SEMIRINGS)


def _values(name):
    return st.lists(_DOMAINS[name], min_size=1, max_size=32)


def _array(semiring, values):
    return np.asarray(values, dtype=semiring.dtype)


@pytest.mark.parametrize("name", NAMES)
class TestMonoidLaws:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_associative_and_commutative(self, name, data):
        s = SEMIRINGS[name]
        vals = data.draw(_values(name))
        a = _array(s, vals)
        b = _array(s, data.draw(st.permutations(vals)))
        c = _array(s, data.draw(st.permutations(vals)))
        assert np.array_equal(s.combine(a, b), s.combine(b, a))
        assert np.array_equal(
            s.combine(s.combine(a, b), c), s.combine(a, s.combine(b, c))
        )

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_identity_and_idempotence(self, name, data):
        s = SEMIRINGS[name]
        a = _array(s, data.draw(_values(name)))
        identity = np.full(a.size, s.identity, dtype=s.dtype)
        assert np.array_equal(s.combine(a, identity), a)
        assert np.array_equal(s.combine(identity, a), a)
        # All the traversal combines (max, or, min) are idempotent:
        # re-delivering a contribution never changes the result, which is
        # what makes the fault layer's replay-after-restore safe.
        assert np.array_equal(s.combine(a, a), a)


def _fold(semiring, keys, values):
    """The semantics: combine values key by key with a python dict."""
    acc = {}
    for k, v in zip(keys, values):
        k = int(k)
        if k in acc:
            acc[k] = semiring.combine(
                np.asarray([acc[k]], dtype=semiring.dtype),
                np.asarray([v], dtype=semiring.dtype),
            )[0]
        else:
            acc[k] = v
    out_keys = np.asarray(sorted(acc), dtype=np.int64)
    out_vals = np.asarray([acc[int(k)] for k in out_keys], dtype=semiring.dtype)
    return out_keys, out_vals


@pytest.mark.parametrize("name", NAMES)
class TestReductionKernels:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_reduce_at_matches_fold(self, name, data):
        s = SEMIRINGS[name]
        vals = data.draw(_values(name))
        n = 8
        keys = data.draw(
            st.lists(
                st.integers(0, n - 1), min_size=len(vals), max_size=len(vals)
            )
        )
        dense = np.full(n, s.identity, dtype=s.dtype)
        s.reduce_at(dense, np.asarray(keys, dtype=np.int64), _array(s, vals))
        out_keys, out_vals = _fold(s, keys, vals)
        expected = np.full(n, s.identity, dtype=s.dtype)
        expected[out_keys] = out_vals
        assert np.array_equal(dense, expected)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_reduce_sorted_runs_matches_fold_in_any_order(self, name, data):
        s = SEMIRINGS[name]
        vals = data.draw(_values(name))
        keys = data.draw(
            st.lists(
                st.integers(0, 7), min_size=len(vals), max_size=len(vals)
            )
        )
        pairs = data.draw(st.permutations(list(zip(keys, vals))))
        rk = np.asarray([k for k, _ in pairs], dtype=np.int64)
        rv = _array(s, [v for _, v in pairs])
        got_keys, got_vals = s.reduce_sorted_runs(rk, rv)
        out_keys, out_vals = _fold(s, keys, vals)
        assert np.array_equal(got_keys, out_keys)
        assert np.array_equal(got_vals, out_vals)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_spa_accumulate_agrees_with_runs(self, name, data):
        """The dense SPA and the sort-based run reduction are the same
        reduction — the kernel choice (Figure 3) must never change the
        result, whatever the semiring."""
        s = SEMIRINGS[name]
        vals = data.draw(_values(name))
        n = 16
        keys = data.draw(
            st.lists(
                st.integers(0, n - 1), min_size=len(vals), max_size=len(vals)
            )
        )
        spa = SPA(n, s)
        spa.accumulate(np.asarray(keys, dtype=np.int64), _array(s, vals))
        got_keys, got_vals = spa.extract_and_reset()
        run_keys, run_vals = s.reduce_sorted_runs(
            np.asarray(keys, dtype=np.int64), _array(s, vals)
        )
        assert np.array_equal(got_keys, run_keys)
        assert np.array_equal(got_vals, run_vals)

    def test_empty_runs_are_the_identity(self, name):
        s = SEMIRINGS[name]
        empty_k = np.empty(0, dtype=np.int64)
        empty_v = np.empty(0, dtype=s.dtype)
        got_keys, got_vals = s.reduce_sorted_runs(empty_k, empty_v)
        assert got_keys.size == 0 and got_vals.size == 0
