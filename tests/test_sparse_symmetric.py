"""Tests for triangle-only symmetric storage (Section 7 exploration)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import DCSC, spmsv_heap
from repro.sparse.symmetric import SymmetricDCSC, spmsv_symmetric


def symmetric_coo(n, nnz, seed):
    rng = np.random.default_rng(seed)
    r = rng.integers(0, n, nnz)
    c = rng.integers(0, n, nnz)
    rows = np.concatenate([r, c])
    cols = np.concatenate([c, r])
    return rows, cols


class TestSymmetricDCSC:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            SymmetricDCSC(DCSC.from_coo(3, 4, [1], [0]))

    def test_rejects_upper_entries(self):
        with pytest.raises(ValueError, match="row >= col"):
            SymmetricDCSC(DCSC.from_coo(4, 4, [0], [2]))

    def test_round_trip_through_full(self):
        rows, cols = symmetric_coo(30, 100, seed=1)
        full = DCSC.from_coo(30, 30, rows, cols)
        sym = SymmetricDCSC.from_full(full)
        back = sym.to_full()
        assert np.array_equal(back.ir, full.ir)
        assert np.array_equal(back.jc, full.jc)

    def test_storage_roughly_halves(self):
        rows, cols = symmetric_coo(200, 2000, seed=2)
        full = DCSC.from_coo(200, 200, rows, cols)
        sym = SymmetricDCSC.from_full(full)
        full_words = full.ir.size + full.jc.size + full.cp.size
        # The triangle keeps a bit over half (diagonal + pointer arrays).
        assert sym.memory_words < 0.65 * full_words
        assert sym.logical_nnz == full.nnz

    @pytest.mark.parametrize("seed", range(4))
    def test_extraction_equals_full_matrix(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 60))
        rows, cols = symmetric_coo(n, int(rng.integers(0, 4 * n)), seed + 50)
        full = DCSC.from_coo(n, n, rows, cols)
        sym = SymmetricDCSC.from_full(full)
        k = int(rng.integers(0, n))
        fi = np.unique(rng.integers(0, n, size=k)) if k else np.empty(0, np.int64)
        fv = fi + 1
        i_full, v_full, _ = spmsv_heap(full, fi, fv)
        i_sym, v_sym, work = spmsv_symmetric(sym, fi, fv)
        assert np.array_equal(i_full, i_sym)
        assert np.array_equal(v_full, v_sym)
        assert work.scanned == sym.stored_nnz  # the row-pass price

    def test_diagonal_entries_once(self):
        # Self-paired entries must not be double-emitted.
        sym = SymmetricDCSC.from_coo(4, np.array([2, 1]), np.array([2, 0]))
        fi = np.array([2], dtype=np.int64)
        rows, vals, _ = sym.extract_columns(fi, np.array([9]))
        assert np.array_equal(np.sort(rows), [2])

    def test_empty_frontier(self):
        sym = SymmetricDCSC.from_coo(5, np.array([1]), np.array([0]))
        rows, vals, work = sym.extract_columns(
            np.empty(0, np.int64), np.empty(0, np.int64)
        )
        assert rows.size == 0
        assert work.candidates == 0


@settings(max_examples=50, deadline=None)
@given(
    st.integers(2, 40),
    st.integers(0, 120),
    st.integers(0, 2**16),
)
def test_symmetric_spmsv_property(n, nnz, seed):
    """Triangle storage is semantically invisible: any symmetric matrix,
    any frontier, identical SpMSV output."""
    rows, cols = symmetric_coo(n, nnz, seed)
    full = DCSC.from_coo(n, n, rows, cols)
    sym = SymmetricDCSC.from_full(full)
    rng = np.random.default_rng(seed)
    k = int(rng.integers(0, n))
    fi = np.unique(rng.integers(0, n, size=k)) if k else np.empty(0, np.int64)
    fv = fi + 7
    i_full, v_full, _ = spmsv_heap(full, fi, fv)
    i_sym, v_sym, _ = spmsv_symmetric(sym, fi, fv)
    assert np.array_equal(i_full, i_sym)
    assert np.array_equal(v_full, v_sym)
