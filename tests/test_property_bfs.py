"""Property-based tests for BFS correctness on arbitrary graphs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bfs_serial, run_bfs, validate_bfs
from repro.core.runner import ALGORITHMS
from repro.graphs import Graph, erdos_renyi_edges
from repro.graphs.rmat import rmat_graph
from repro.query import edge_weights, run_query, sssp_serial

from tests.conftest import query_sources

networkx = pytest.importorskip("networkx")

#: Every registered algorithm, serial included: the equivalence harness
#: must cover new variants the moment they land in the registry.
ALL_ALGORITHMS = sorted(ALGORITHMS)


# -- kind-aware oracle checks -------------------------------------------------
#
# The registry carries algorithm families whose results are not a
# single-source (levels, parents) pair; each kind gets its own oracle
# comparison and the sweeps below dispatch through ORACLE_CHECKS, so a
# new family plugs into the equivalence harness by adding one entry.

def _check_bfs(graph, source, algorithm, nprocs, **kwargs):
    ref = run_bfs(graph, source, "serial")
    res = run_bfs(graph, source, algorithm, nprocs=nprocs, validate=True, **kwargs)
    assert np.array_equal(res.levels, ref.levels)
    assert np.array_equal(res.parents, ref.parents)


def _check_msbfs(graph, source, algorithm, nprocs, **kwargs):
    """Every lane of the batched run equals its own serial traversal."""
    sources = query_sources(graph, source, 4)
    res = run_query(
        graph, sources=sources, algorithm=algorithm, nprocs=nprocs,
        validate=True, **kwargs,
    )
    for b, s in enumerate(sources):
        ref = run_bfs(graph, s, "serial")
        assert np.array_equal(res.levels[:, b], ref.levels), f"lane {b}"
        assert np.array_equal(res.parents[:, b], ref.parents), f"lane {b}"


def _cc_oracle(graph):
    """Component labels by repeated serial BFS, in original labels."""
    comp = np.full(graph.n, -1, dtype=np.int64)
    for v in range(graph.n):
        if comp[v] < 0:
            comp[run_bfs(graph, v, "serial").levels >= 0] = v
    return comp


def _check_cc(graph, source, algorithm, nprocs, **kwargs):
    res = run_query(
        graph, algorithm=algorithm, nprocs=nprocs, validate=True, **kwargs
    )
    assert np.array_equal(res.parents, _cc_oracle(graph))


def _check_sssp(graph, source, algorithm, nprocs, **kwargs):
    res = run_query(
        graph, sources=[source], algorithm=algorithm, nprocs=nprocs,
        validate=True, **kwargs,
    )
    src_internal = int(np.asarray(graph.to_internal(source)))
    ref_dist, ref_par = sssp_serial(graph.csr, src_internal, edge_weights(graph.csr))
    assert np.array_equal(res.levels[:, 0], graph.relabel_level_array(ref_dist))
    assert np.array_equal(res.parents[:, 0], graph.relabel_vertex_array(ref_par))


def _check_landmark(graph, source, algorithm, nprocs, **kwargs):
    res = run_query(
        graph, algorithm=algorithm, nprocs=nprocs,
        landmarks=min(4, graph.n), validate=True, **kwargs,
    )
    index = res.meta["index"]
    for i, lm in enumerate(map(int, index.landmarks)):
        ref = run_bfs(graph, lm, "serial")
        assert np.array_equal(res.levels[:, i], ref.levels), f"landmark {i}"
        # Bounds are exact when an endpoint is a landmark.
        lb, ub = index.bounds(lm, source)
        d = int(ref.levels[source])
        if d >= 0:
            assert lb == d == ub
        else:
            assert ub == -1


ORACLE_CHECKS = {
    "bfs": _check_bfs,
    "msbfs": _check_msbfs,
    "cc": _check_cc,
    "sssp": _check_sssp,
    "landmark": _check_landmark,
}


def check_against_oracle(graph, source, algorithm, nprocs, **kwargs):
    ORACLE_CHECKS[ALGORITHMS[algorithm].kind](
        graph, source, algorithm, nprocs, **kwargs
    )


def test_every_kind_has_an_oracle_check():
    """A registry entry with a new kind must extend ORACLE_CHECKS."""
    assert {spec.kind for spec in ALGORITHMS.values()} <= set(ORACLE_CHECKS)


@st.composite
def small_graphs(draw):
    """Random graph + source: up to 40 vertices, arbitrary edges."""
    n = draw(st.integers(min_value=1, max_value=40))
    m = draw(st.integers(min_value=0, max_value=120))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    source = draw(st.integers(0, n - 1))
    shuffle = draw(st.booleans())
    seed = draw(st.integers(0, 2**16))
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    graph = Graph.from_edges(n, src, dst, shuffle=shuffle, seed=seed)
    return graph, source, edges


@settings(max_examples=60, deadline=None)
@given(small_graphs())
def test_serial_levels_match_networkx(case):
    """BFS levels are exactly NetworkX shortest-path lengths."""
    graph, source, edges = case
    nx_graph = networkx.Graph()
    nx_graph.add_nodes_from(range(graph.n))
    nx_graph.add_edges_from((u, v) for u, v in edges if u != v)
    expected = networkx.single_source_shortest_path_length(nx_graph, source)

    res = run_bfs(graph, source, "serial")
    for v in range(graph.n):
        if v in expected:
            assert res.levels[v] == expected[v], f"vertex {v}"
        else:
            assert res.levels[v] == -1, f"vertex {v}"


@settings(max_examples=60, deadline=None)
@given(
    small_graphs(),
    st.sampled_from(ALL_ALGORITHMS),
    st.sampled_from([3, 4]),
)
def test_distributed_equals_serial(case, algorithm, nprocs):
    """EVERY registered algorithm matches its kind's serial oracle,
    on arbitrary random graphs and rank counts that do not divide n."""
    graph, source, _ = case
    check_against_oracle(graph, source, algorithm, nprocs)


def _er_graph(n, avg_degree, seed):
    src, dst = erdos_renyi_edges(n, avg_degree, seed=seed)
    return Graph.from_edges(n, src, dst, shuffle=False)


def _disconnected_graph():
    # Two non-trivial components plus isolated vertices; n = 53 is prime
    # so no rank count divides it.
    rng = np.random.default_rng(11)
    src_a = rng.integers(0, 20, 80)
    dst_a = rng.integers(0, 20, 80)
    src_b = rng.integers(25, 50, 80)
    dst_b = rng.integers(25, 50, 80)
    return Graph.from_edges(
        53,
        np.concatenate([src_a, src_b]),
        np.concatenate([dst_a, dst_b]),
        shuffle=False,
    )


ORACLE_CASES = {
    "er-sparse": (_er_graph(61, 2.0, seed=3), 5),
    "er-dense": (_er_graph(48, 12.0, seed=4), 0),
    "rmat": (rmat_graph(8, 8, seed=2), 17),
    "disconnected": (_disconnected_graph(), 1),
    "isolated-source": (_disconnected_graph(), 52),
}


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("case", sorted(ORACLE_CASES))
def test_oracle_equivalence_deterministic(algorithm, case):
    """Deterministic spot checks behind the hypothesis sweep: ER and
    R-MAT instances, disconnected graphs, an isolated source, and a rank
    count that does not divide n — all algorithms against their kind's
    oracle."""
    graph, source = ORACLE_CASES[case]
    for nprocs in (1, 3):
        check_against_oracle(graph, source, algorithm, nprocs)


#: Families that route their exchanges through ``repro.comm``; the wire
#: format must never change what the traversal computes.  Derived from
#: the registry's declared capabilities (hybrids share their family's
#: wire path, so the flat variant stands for both).
WIRE_ALGORITHMS = sorted(
    name
    for name, spec in ALGORITHMS.items()
    if "wire" in spec.capabilities and not spec.hybrid
)


@pytest.mark.parametrize("codec", ["raw", "delta-varint", "bitmap", "auto"])
@pytest.mark.parametrize("algorithm", WIRE_ALGORITHMS)
@pytest.mark.parametrize("case", ["rmat", "disconnected"])
def test_codecs_preserve_oracle_equivalence(codec, algorithm, case):
    """Every codec (for BFS kinds with the sieve on, the most invasive
    configuration) leaves the result bit-identical to the kind's oracle,
    for every algorithm family that ships through the comm channel.  The
    query kinds refuse the sieve structurally, and the triple-shipping
    kinds refuse the bitmap codec — both asserted here instead."""
    graph, source = ORACLE_CASES[case]
    kind = ALGORITHMS[algorithm].kind
    if kind == "bfs":
        check_against_oracle(
            graph, source, algorithm, 3, codec=codec, sieve=True
        )
        return
    with pytest.raises(ValueError, match="sieve"):
        check_against_oracle(
            graph, source, algorithm, 3, codec=codec, sieve=True
        )
    if codec == "bitmap" and kind in ("msbfs", "sssp", "landmark"):
        with pytest.raises(ValueError, match="bitmap"):
            check_against_oracle(graph, source, algorithm, 3, codec=codec)
        return
    check_against_oracle(graph, source, algorithm, 3, codec=codec)


@settings(max_examples=40, deadline=None)
@given(small_graphs())
def test_output_passes_graph500_validation(case):
    graph, source, _ = case
    src_internal = int(np.asarray(graph.to_internal(source)))
    levels, parents = bfs_serial(graph.csr, src_internal)
    validate_bfs(graph.csr, src_internal, levels, parents)


@settings(max_examples=40, deadline=None)
@given(small_graphs())
def test_tree_edges_span_one_level(case):
    """Invariant: every BFS tree edge advances the level by exactly one,
    and every graph edge spans at most one level."""
    graph, source, _ = case
    res = run_bfs(graph, source, "serial")
    levels, parents = res.levels, res.parents
    for v in range(graph.n):
        if levels[v] > 0:
            assert levels[parents[v]] == levels[v] - 1
    csr = graph.csr
    rows = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
    lv_int, _ = bfs_serial(csr, int(np.asarray(graph.to_internal(source))))
    both = (lv_int[rows] >= 0) & (lv_int[csr.indices] >= 0)
    assert np.all(np.abs(lv_int[rows[both]] - lv_int[csr.indices[both]]) <= 1)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=60),
    st.integers(min_value=0, max_value=2**16),
)
def test_reachable_set_independent_of_partitioning(n, seed):
    """The reachable set from a fixed source never depends on rank count."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 3 * n))
    graph = Graph.from_edges(
        n,
        rng.integers(0, n, m).astype(np.int64),
        rng.integers(0, n, m).astype(np.int64),
        shuffle=False,
    )
    source = int(rng.integers(0, n))
    baseline = run_bfs(graph, source, "1d", nprocs=1).levels >= 0
    for nprocs in (2, 4, 9):
        reached = run_bfs(graph, source, "2d" if nprocs == 9 else "1d", nprocs=nprocs).levels >= 0
        assert np.array_equal(reached, baseline)
