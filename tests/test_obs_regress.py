"""Perf-regression gate: report diffs and the perf-diff CLI."""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.core import run_bfs
from repro.obs import (
    DEFAULT_THRESHOLD,
    GATED_METRICS,
    REPORT_SCHEMA,
    Tracer,
    compare_reports,
    load_run_report,
    perf_diff,
    run_report,
    write_run_report,
)


@pytest.fixture(scope="module")
def report(rmat_small):
    tracer = Tracer()
    result = run_bfs(
        rmat_small, 5, "1d-dirop", nprocs=4, machine="hopper", tracer=tracer
    )
    return run_report(result)


def _slowed(report, factor):
    slow = copy.deepcopy(report)
    slow["time"]["total"] *= factor
    slow["gteps"] /= factor
    return slow


class TestCompareReports:
    def test_self_comparison_is_exact_pass(self, report):
        diff = compare_reports(report, report)
        assert diff.ok and not diff.regressions
        gated = {d.name: d for d in diff.deltas if d.gated}
        # BFS reports have no query section, so the query gate is absent.
        assert set(gated) == {"time.total", "gteps"}
        assert all(d.rel_change == 0.0 for d in gated.values())
        assert "PASS" in diff.render()

    def test_injected_slowdown_fails(self, report):
        diff = compare_reports(report, _slowed(report, 1.10), threshold=0.05)
        assert not diff.ok
        assert {d.name for d in diff.regressions} == {"time.total", "gteps"}
        rendered = diff.render()
        assert "FAIL" in rendered and "time.total" in rendered

    def test_speedup_passes(self, report):
        diff = compare_reports(report, _slowed(report, 0.5))
        assert diff.ok

    def test_gteps_is_lower_is_worse(self, report):
        worse = copy.deepcopy(report)
        worse["gteps"] *= 0.8  # 20% throughput drop, times unchanged
        diff = compare_reports(report, worse, threshold=0.05)
        assert [d.name for d in diff.regressions] == ["gteps"]
        assert diff.regressions[0].rel_change == pytest.approx(0.2)

    def test_threshold_bounds_the_gate(self, report):
        slow = _slowed(report, 1.04)
        assert compare_reports(report, slow, threshold=0.05).ok
        assert not compare_reports(report, slow, threshold=0.01).ok

    def test_phase_and_comm_metrics_are_informational(self, report):
        tweaked = copy.deepcopy(report)
        for phase in tweaked["phases"]:
            tweaked["phases"][phase] *= 10
        tweaked["comm"]["total_wire_words"] *= 10
        diff = compare_reports(report, tweaked)
        assert diff.ok  # shown, never gating
        assert any(d.name.startswith("phase.") for d in diff.deltas)

    def test_negative_threshold_rejected(self, report):
        with pytest.raises(ValueError, match="threshold"):
            compare_reports(report, report, threshold=-0.1)

    def test_missing_metrics_never_gate(self, report):
        bare = {"schema": report["schema"], "time": {}, "gteps": None}
        diff = compare_reports(report, bare)
        assert diff.ok


@pytest.fixture(scope="module")
def recovered_report(rmat_small):
    """Report of a run that crashed at level 3 and recovered."""
    tracer = Tracer()
    result = run_bfs(
        rmat_small, 5, "1d-dirop", nprocs=4, machine="hopper", tracer=tracer,
        faults="crash:rank=1,level=3", checkpoint_every=1,
    )
    return run_report(result)


class TestFaultAccounting:
    """Satellite of the resilience PR: recovery is visible, never gating."""

    def test_schema_is_v2_with_faults_section(self, report, recovered_report):
        assert report["schema"] == REPORT_SCHEMA
        assert report["faults"] is None  # fault-free run, section empty
        faults = recovered_report["faults"]
        assert faults["attempts"] == 2
        assert len(faults["restores"]) == 1
        assert faults["counters"]["restores"] == 4  # one per rank

    def test_recovered_run_is_not_gated_against_fault_free(
        self, report, recovered_report
    ):
        # Recovery overhead (checkpoints, lost work, replay) must not
        # read as a perf regression: the gate downgrades with a note.
        diff = compare_reports(report, recovered_report, threshold=0.05)
        assert diff.ok
        assert not any(d.gated for d in diff.deltas)
        assert any("recovery profiles differ" in note for note in diff.notes)
        assert "note:" in diff.render()

    def test_fault_metrics_are_informational(self, report, recovered_report):
        diff = compare_reports(report, recovered_report)
        names = {d.name for d in diff.deltas}
        assert "faults.restores" in names
        assert "faults.checkpoint_words" in names
        assert not any(
            d.gated for d in diff.deltas if d.name.startswith("faults.")
        )

    def test_equal_recovery_profiles_gate_normally(self, recovered_report):
        diff = compare_reports(recovered_report, recovered_report)
        assert diff.ok and not diff.notes
        assert {d.name for d in diff.deltas if d.gated} == {
            "time.total",
            "gteps",
        }
        slow = _slowed(recovered_report, 1.10)
        assert not compare_reports(recovered_report, slow, threshold=0.05).ok

    def test_v1_reports_still_load(self, report, tmp_path):
        old = copy.deepcopy(report)
        old["schema"] = "repro.obs/run-report/v1"
        del old["faults"]
        path = write_run_report(tmp_path / "v1.json", old)
        loaded = load_run_report(path)
        # A v1 report has no faults section: profile is fault-free and
        # the comparison against a v2 fault-free report gates normally.
        diff = compare_reports(loaded, report)
        assert diff.ok and not diff.notes
        assert any(d.gated for d in diff.deltas)


@pytest.fixture(scope="module")
def query_report(rmat_small):
    from repro.query import run_query

    result = run_query(
        rmat_small, [1, 5, 9], algorithm="msbfs-1d", nprocs=4, machine="hopper"
    )
    return run_report(result)


class TestQueryGate:
    """Satellite: perf-diff covers batched-query (QueryResult) reports."""

    def test_query_report_gates_on_throughput(self, query_report):
        diff = compare_reports(query_report, query_report)
        assert diff.ok
        gated = {d.name for d in diff.deltas if d.gated}
        assert "query.queries_per_second" in gated
        assert "query.queries_per_second" in GATED_METRICS

    def test_throughput_drop_fails(self, query_report):
        worse = copy.deepcopy(query_report)
        worse["query"]["queries_per_second"] *= 0.8
        diff = compare_reports(query_report, worse, threshold=0.05)
        assert not diff.ok
        assert [d.name for d in diff.regressions] == ["query.queries_per_second"]
        assert diff.regressions[0].rel_change == pytest.approx(0.2)

    def test_batch_is_informational(self, query_report):
        bigger = copy.deepcopy(query_report)
        bigger["query"]["batch"] = 64
        diff = compare_reports(query_report, bigger)
        assert diff.ok
        assert "query.batch" in {d.name for d in diff.deltas}

    def test_bfs_vs_query_never_gates_on_query(self, report, query_report):
        # Metric present on only one side: shown at most, never gated.
        diff = compare_reports(report, query_report)
        assert not any(
            d.gated for d in diff.deltas if d.name.startswith("query.")
        )


class TestResolveBaseline:
    def _seed(self, tmp_path, report, names):
        for name in names:
            write_run_report(tmp_path / name, report)

    def test_plain_file_passes_through(self, report, tmp_path):
        path = write_run_report(tmp_path / "a.json", report)
        from repro.obs.regress import resolve_baseline

        assert resolve_baseline(path) == path

    def test_directory_picks_latest_bench(self, report, tmp_path):
        from repro.obs.regress import resolve_baseline

        self._seed(
            tmp_path, report,
            ["BENCH_2026-01.json", "BENCH_2026-03.json", "BENCH_2026-02.json"],
        )
        assert resolve_baseline(tmp_path).name == "BENCH_2026-03.json"

    def test_glob_picks_latest_match(self, report, tmp_path):
        from repro.obs.regress import resolve_baseline

        self._seed(tmp_path, report, ["BENCH_pr1.json", "BENCH_pr2.json"])
        chosen = resolve_baseline(tmp_path / "BENCH_pr*.json")
        assert chosen.name == "BENCH_pr2.json"

    def test_empty_directory_raises(self, tmp_path):
        from repro.obs.regress import resolve_baseline

        with pytest.raises(FileNotFoundError, match="BENCH_"):
            resolve_baseline(tmp_path)

    def test_perf_diff_accepts_directory(self, report, tmp_path):
        self._seed(tmp_path, report, ["BENCH_base.json"])
        candidate = write_run_report(tmp_path / "cand.json", report)
        diff = perf_diff(tmp_path, candidate)
        assert diff.ok and "BENCH_base.json" in diff.baseline


class TestPerfDiffCli:
    def _write(self, tmp_path, name, report):
        return str(write_run_report(tmp_path / name, report))

    def test_self_comparison_exits_zero(self, report, tmp_path, capsys):
        path = self._write(tmp_path, "a.json", report)
        assert main(["perf-diff", path, path]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and f"{DEFAULT_THRESHOLD:.1%}" in out

    def test_regression_exits_nonzero(self, report, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", report)
        b = self._write(tmp_path, "b.json", _slowed(report, 1.15))
        assert main(["perf-diff", a, b, "--threshold", "0.05"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_wide_threshold_tolerates_slowdown(self, report, tmp_path):
        a = self._write(tmp_path, "a.json", report)
        b = self._write(tmp_path, "b.json", _slowed(report, 1.15))
        assert main(["perf-diff", a, b, "--threshold", "0.5"]) == 0

    def test_bad_input_exits_two(self, report, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", report)
        missing = str(tmp_path / "nope.json")
        assert main(["perf-diff", a, missing]) == 2
        assert "perf-diff:" in capsys.readouterr().err
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "nope"}))
        assert main(["perf-diff", a, str(bogus)]) == 2

    def test_file_api_matches_cli(self, report, tmp_path):
        a = self._write(tmp_path, "a.json", report)
        b = self._write(tmp_path, "b.json", _slowed(report, 1.15))
        assert perf_diff(a, a).ok
        assert not perf_diff(a, b, threshold=0.05).ok
