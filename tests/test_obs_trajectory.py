"""Cross-run perf-trajectory analyzer and the ``trajectory`` CLI."""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.core import run_bfs
from repro.obs import (
    Tracer,
    analyze_reports,
    analyze_trajectory,
    resolve_series,
    run_report,
    write_run_report,
)
from repro.obs.trajectory import _sparkline


@pytest.fixture(scope="module")
def report(rmat_small):
    result = run_bfs(
        rmat_small, 5, "1d-dirop", nprocs=4, machine="hopper", tracer=Tracer()
    )
    return run_report(result)


def _series(report, factors):
    """Clone the report with time.total scaled by each factor (gteps /=)."""
    out = []
    for i, factor in enumerate(factors):
        r = copy.deepcopy(report)
        r["time"]["total"] *= factor
        r["gteps"] /= factor
        out.append((f"BENCH_{i:02d}", r))
    return out


class TestAnalyzeReports:
    def test_flat_series_passes(self, report):
        traj = analyze_reports(_series(report, [1, 1, 1, 1]))
        assert traj.ok and not traj.regressions
        trend = traj.trend("time.total")
        assert trend.gated and trend.rel_change == 0.0
        assert trend.reference == report["time"]["total"]
        assert "PASS" in traj.render()

    def test_regressed_latest_point_fails(self, report):
        traj = analyze_reports(_series(report, [1, 1, 1, 1.2]))
        assert not traj.ok
        names = {t.metric for t in traj.regressions}
        assert names == {"time.total", "gteps"}  # gteps is lower-is-worse
        assert "FAIL" in traj.render()

    def test_median_reference_shrugs_off_one_outlier(self, report):
        # One historical spike must not drag the reference the way a
        # mean would: the final on-trend point still passes.
        traj = analyze_reports(_series(report, [1, 5.0, 1, 1, 1]))
        assert traj.ok

    def test_changepoints_localize_the_jump(self, report):
        traj = analyze_reports(_series(report, [1, 1, 1.5, 1.5, 1.5]))
        trend = traj.trend("time.total")
        assert [label for label, _ in trend.changepoints] == ["BENCH_02"]
        jump = trend.changepoints[0][1]
        assert jump == pytest.approx(0.5)
        assert "changepoint" in traj.render()

    def test_improvement_is_a_changepoint_but_not_a_failure(self, report):
        traj = analyze_reports(_series(report, [1.5, 1.5, 1, 1]))
        assert traj.ok
        trend = traj.trend("time.total")
        assert trend.changepoints and trend.changepoints[0][1] < 0

    def test_single_point_cannot_gate(self, report):
        traj = analyze_reports(_series(report, [1]))
        assert traj.ok
        assert traj.trend("time.total").reference is None
        assert any("single point" in note for note in traj.notes)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            analyze_reports([])
        with pytest.raises(ValueError, match="threshold"):
            analyze_reports([("a", {})], threshold=-1)

    def test_sparkline_shape(self):
        assert _sparkline([]) == ""
        assert _sparkline([1.0, 1.0]) == "▁▁"
        line = _sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3 and line[0] == "▁" and line[-1] == "█"


class TestDashboards:
    def test_markdown_contains_table_and_verdict(self, report):
        traj = analyze_reports(_series(report, [1, 1, 1.2]))
        md = traj.render_markdown()
        assert "| metric |" in md
        assert "`time.total`" in md and "**FAIL**" in md
        assert "## Changepoints" in md

    def test_html_is_self_contained(self, report):
        traj = analyze_reports(_series(report, [1, 1, 1]))
        html = traj.render_html()
        assert html.startswith("<!doctype html>")
        assert "<table>" in html and "PASS" in html
        assert "http" not in html  # no external assets


class TestResolveSeries:
    def test_expands_directories_and_globs_in_order(self, report, tmp_path):
        for name, r in _series(report, [1, 1, 1]):
            write_run_report(tmp_path / f"{name}.json", r)
        series = resolve_series(tmp_path)
        assert [p.name for p in series] == [
            "BENCH_00.json", "BENCH_01.json", "BENCH_02.json",
        ]
        assert resolve_series(tmp_path / "BENCH_0*.json") == series
        with pytest.raises(FileNotFoundError):
            resolve_series(tmp_path / "nothing_*.json")


class TestTrajectoryCli:
    def _seed(self, tmp_path, report, factors):
        for name, r in _series(report, factors):
            write_run_report(tmp_path / f"{name}.json", r)
        return str(tmp_path)

    def test_clean_series_exits_zero(self, report, tmp_path, capsys):
        base = self._seed(tmp_path, report, [1, 1, 1])
        assert main(["trajectory", base]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_perturbed_candidate_exits_one(self, report, tmp_path, capsys):
        base = self._seed(tmp_path, report, [1, 1, 1])
        bad = copy.deepcopy(report)
        bad["time"]["total"] *= 1.3
        candidate = str(write_run_report(tmp_path / "candidate.json", bad))
        assert main(["trajectory", base, "--candidate", candidate]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "candidate" in out

    def test_clean_candidate_exits_zero(self, report, tmp_path):
        base = self._seed(tmp_path, report, [1, 1, 1])
        candidate = str(write_run_report(tmp_path / "candidate.json", report))
        assert main(["trajectory", base, "--candidate", candidate]) == 0

    def test_threshold_flag_widens_the_gate(self, report, tmp_path):
        base = self._seed(tmp_path, report, [1, 1, 1.2])
        assert main(["trajectory", base]) == 1
        assert main(["trajectory", base, "--threshold", "0.5"]) == 0

    def test_dashboard_outputs_are_written(self, report, tmp_path):
        base = self._seed(tmp_path, report, [1, 1, 1])
        md = tmp_path / "out" / "dash.md"
        html = tmp_path / "out" / "dash.html"
        assert main([
            "trajectory", base,
            "--markdown-out", str(md), "--html-out", str(html),
        ]) == 0
        assert "# Performance trajectory" in md.read_text()
        assert html.read_text().startswith("<!doctype html>")

    def test_bad_input_exits_two(self, tmp_path, capsys):
        assert main(["trajectory", str(tmp_path / "missing")]) == 2
        assert "trajectory:" in capsys.readouterr().err
        bogus = tmp_path / "BENCH_bogus.json"
        bogus.write_text(json.dumps({"schema": "nope"}))
        assert main(["trajectory", str(tmp_path)]) == 2

    def test_committed_baselines_form_a_clean_trajectory(self):
        # The committed s13 series must load and analyze cleanly with no
        # regression: BENCH_kernels re-runs the exact baseline recipe, so
        # its gated metrics sit on the trajectory; its extra wall-clock
        # section flows through as informational points.
        traj = analyze_trajectory("benchmarks")
        assert traj.ok
        assert traj.names == ["BENCH_baseline", "BENCH_kernels"]
        assert traj.trend("time.total") is not None
        speedup = traj.trend("wallclock.recipe.speedup")
        assert speedup is not None and speedup.latest >= 5.0
        assert not speedup.gated

    def test_committed_scale18_series_is_valid(self):
        # The scale-18 recipe opens its own series (different graph, so
        # its gated metrics must not share a trajectory with the s13
        # points): the kernels anchor plus the runtime-backends point,
        # whose gated metrics are identical (bit-identity contract) and
        # whose wallclock.* measurements never gate.
        traj = analyze_trajectory("benchmarks/scale18")
        assert traj.ok
        assert traj.names == ["BENCH_scale18", "BENCH_scale18_runtime"]
        assert traj.trend("time.total") is not None
        wall = traj.trend("wallclock.recipe.processes_seconds")
        assert wall is not None and not wall.gated
        assert "PASS" in traj.render()
