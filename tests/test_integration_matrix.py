"""Cross-product integration matrix: every algorithm on every graph family.

The heart of the correctness story: all distributed variants must produce
*bit-identical* levels and parents to the serial reference on every
workload shape the paper discusses — skewed (R-MAT), uniform (Erdős–Rényi
and near-regular), high-diameter (web crawl), directed, disconnected —
across rank counts that do and do not divide the vertex count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_bfs
from repro.graphs import (
    Graph,
    erdos_renyi_edges,
    rmat_graph,
    uniform_degree_edges,
    webcrawl_graph,
)

ALGOS_UNDIRECTED = ["1d", "1d-hybrid", "2d", "2d-hybrid", "pbgl", "graph500-ref"]


def _graph_families():
    yield "rmat", rmat_graph(11, 16, seed=5)
    yield "erdos-renyi", Graph.from_edges(
        1500, *erdos_renyi_edges(1500, 10.0, seed=6), shuffle=True, seed=6
    )
    yield "uniform-degree", Graph.from_edges(
        1200, *uniform_degree_edges(1200, 6, seed=7), shuffle=True, seed=7
    )
    yield "webcrawl", webcrawl_graph(2500, n_hosts=12, seed=8)
    # Very sparse: large diameter components + many isolated vertices.
    yield "sparse-er", Graph.from_edges(
        800, *erdos_renyi_edges(800, 1.5, seed=9), shuffle=True, seed=9
    )


@pytest.mark.parametrize("name,graph", list(_graph_families()))
@pytest.mark.parametrize("algo", ALGOS_UNDIRECTED)
def test_algorithm_family_matrix(name, graph, algo):
    source = int(graph.random_nonisolated_vertices(1, seed=1)[0])
    ref = run_bfs(graph, source, "serial")
    nprocs = 9 if algo.startswith("2d") else 6
    res = run_bfs(graph, source, algo, nprocs=nprocs, validate=True)
    assert np.array_equal(res.levels, ref.levels), (name, algo)
    assert np.array_equal(res.parents, ref.parents), (name, algo)


@pytest.mark.parametrize("nprocs", [1, 2, 5, 7, 12])
def test_awkward_rank_counts_1d(nprocs):
    """Rank counts that do not divide n exercise the remainder block."""
    graph = rmat_graph(10, 8, seed=2)
    source = int(graph.random_nonisolated_vertices(1, seed=2)[0])
    ref = run_bfs(graph, source, "serial")
    res = run_bfs(graph, source, "1d", nprocs=nprocs)
    assert np.array_equal(res.levels, ref.levels)


@pytest.mark.parametrize("side", [1, 2, 5, 7])
def test_awkward_grid_sides_2d(side):
    graph = rmat_graph(10, 8, seed=3)
    source = int(graph.random_nonisolated_vertices(1, seed=3)[0])
    ref = run_bfs(graph, source, "serial")
    res = run_bfs(graph, source, "2d", nprocs=side * side)
    assert np.array_equal(res.levels, ref.levels)
    assert np.array_equal(res.parents, ref.parents)


def test_timed_and_untimed_agree_functionally():
    """The cost model must never change what is computed, only the clock."""
    graph = rmat_graph(11, 16, seed=4)
    source = int(graph.random_nonisolated_vertices(1, seed=4)[0])
    for algo in ("1d", "2d", "2d-hybrid"):
        untimed = run_bfs(graph, source, algo, nprocs=9)
        timed = run_bfs(graph, source, algo, nprocs=9, machine="hopper")
        assert np.array_equal(untimed.levels, timed.levels), algo
        assert np.array_equal(untimed.parents, timed.parents), algo
        assert untimed.time_total == 0.0
        assert timed.time_total > 0.0


def test_every_source_in_component_gives_same_component():
    graph = rmat_graph(10, 16, seed=5)
    sources = graph.random_nonisolated_vertices(4, seed=5)
    reached_sets = []
    for source in sources:
        res = run_bfs(graph, int(source), "2d", nprocs=4)
        reached_sets.append(frozenset(np.flatnonzero(res.levels >= 0)))
    # All sampled sources land in the giant component of this graph.
    assert len(set(reached_sets)) == 1


def test_deterministic_across_repeats():
    """Thread scheduling must never leak into results or virtual times."""
    graph = rmat_graph(11, 16, seed=6)
    source = int(graph.random_nonisolated_vertices(1, seed=6)[0])
    runs = [
        run_bfs(graph, source, "2d-hybrid", nprocs=9, machine="franklin")
        for _ in range(3)
    ]
    for other in runs[1:]:
        assert np.array_equal(runs[0].levels, other.levels)
        assert runs[0].time_total == other.time_total
        assert runs[0].time_comm == other.time_comm


def test_self_loops_and_multi_edges_ignored_gracefully():
    src = np.array([0, 0, 0, 1, 1, 2], dtype=np.int64)
    dst = np.array([0, 1, 1, 2, 2, 2], dtype=np.int64)  # loops + dups
    graph = Graph.from_edges(4, src, dst, shuffle=False)
    ref = run_bfs(graph, 0, "serial")
    assert np.array_equal(ref.levels, [0, 1, 2, -1])
    for algo in ("1d", "2d"):
        res = run_bfs(graph, 0, algo, nprocs=4, validate=True)
        assert np.array_equal(res.levels, ref.levels)


def test_star_hub_source_single_level():
    """A hub source discovers everything in one exchange — the extreme
    load-imbalance case random shuffling exists to handle."""
    n = 600
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    graph = Graph.from_edges(n, src, dst, shuffle=True, seed=10)
    res = run_bfs(graph, 0, "1d", nprocs=8, validate=True)
    assert res.levels[0] == 0
    assert np.all(res.levels[1:] == 1)
