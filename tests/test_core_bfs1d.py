"""Tests for the 1D distributed BFS (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import bfs_serial
from repro.core.bfs1d import bfs_1d
from repro.mpsim import run_spmd

from tests.conftest import make_disconnected_graph, make_path_graph, make_star_graph


def run_1d(graph, source_internal, nranks, **kwargs):
    res = run_spmd(nranks, bfs_1d, graph.csr, source_internal, **kwargs)
    levels = np.empty(graph.n, dtype=np.int64)
    parents = np.empty(graph.n, dtype=np.int64)
    for out in res.returns:
        levels[out["lo"] : out["hi"]] = out["levels"]
        parents[out["lo"] : out["hi"]] = out["parents"]
    return levels, parents, res.stats


class TestBfs1dCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 5, 8])
    def test_matches_serial_on_rmat(self, rmat_small, nranks):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 1)[0])
        )
        ref_levels, ref_parents = bfs_serial(rmat_small.csr, src)
        levels, parents, _ = run_1d(rmat_small, src, nranks)
        assert np.array_equal(levels, ref_levels)
        assert np.array_equal(parents, ref_parents)

    def test_path_graph(self):
        g = make_path_graph(23)
        levels, parents, _ = run_1d(g, 0, 4)
        assert np.array_equal(levels, np.arange(23))

    def test_star_graph(self):
        g = make_star_graph(40)
        levels, _, _ = run_1d(g, 0, 8)
        assert np.all(levels[1:] == 1)

    def test_disconnected(self):
        g = make_disconnected_graph()
        levels, parents, _ = run_1d(g, 0, 3)
        assert np.array_equal(levels, [0, 1, 1, -1, -1, -1])

    def test_source_on_last_rank(self):
        g = make_path_graph(10)
        levels, _, _ = run_1d(g, 9, 4)
        assert np.array_equal(levels, np.arange(10)[::-1])

    def test_more_ranks_than_vertices(self):
        g = make_path_graph(3)
        levels, _, _ = run_1d(g, 0, 6)
        assert np.array_equal(levels, [0, 1, 2])

    def test_dedup_off_same_result(self, rmat_small):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 2)[0])
        )
        lv_on, pa_on, _ = run_1d(rmat_small, src, 4, dedup_sends=True)
        lv_off, pa_off, _ = run_1d(rmat_small, src, 4, dedup_sends=False)
        assert np.array_equal(lv_on, lv_off)
        assert np.array_equal(pa_on, pa_off)


class TestBfs1dCommunication:
    def test_dedup_reduces_volume(self, rmat_small):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 3)[0])
        )
        _, _, stats_on = run_1d(rmat_small, src, 4, dedup_sends=True)
        _, _, stats_off = run_1d(rmat_small, src, 4, dedup_sends=False)
        # Send-side dedup is what separates the paper's 1D code from the
        # reference implementation: strictly less all-to-all traffic.
        assert stats_on.words_sent("alltoallv") < stats_off.words_sent("alltoallv")
        # Without dedup the volume is exactly 2 words per traversed edge
        # aimed off-rank.
        assert stats_off.counter("candidates") == stats_off.counter("unique_sends")

    def test_alltoallv_calls_equal_levels(self, rmat_small):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 4)[0])
        )
        ref_levels, _ = bfs_serial(rmat_small.csr, src)
        _, _, stats = run_1d(rmat_small, src, 4)
        # One alltoallv per executed level (last one finds nothing new).
        assert stats.calls("alltoallv") == ref_levels.max() + 1

    def test_edges_scanned_counts_every_adjacency(self, rmat_small):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 5)[0])
        )
        levels, _, stats = run_1d(rmat_small, src, 4)
        reached = levels >= 0
        expected = int(rmat_small.degrees()[reached].sum())
        assert stats.counter("edges_scanned") == expected

    def test_volume_conservation(self, rmat_medium):
        src = int(
            rmat_medium.to_internal(rmat_medium.random_nonisolated_vertices(1, 0)[0])
        )
        _, _, stats = run_1d(rmat_medium, src, 8)
        # Everything sent is received (off-rank traffic both ways).
        assert stats.words_sent("alltoallv") == stats.words_recv("alltoallv")


class TestBfs1dTimed:
    def test_machine_model_produces_times(self, rmat_small):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 6)[0])
        )
        from repro.model import FRANKLIN, NetworkCostModel

        res = run_spmd(
            4,
            bfs_1d,
            rmat_small.csr,
            src,
            machine=FRANKLIN,
            cost_model=NetworkCostModel(FRANKLIN, total_ranks=4),
        )
        stats = res.stats
        assert stats.makespan > 0
        assert stats.max_mpi_time > 0
        assert stats.max_compute_time > 0
        # Virtual clocks end within one collective of each other (the
        # final allreduce synchronizes everyone).
        times = [c.time for c in stats.clocks]
        assert max(times) - min(times) < 1e-9

    def test_hybrid_threads_reduce_comm_time(self, rmat_medium):
        """At equal rank counts the hybrid's ranks stop sharing a NIC, so
        its collectives are cheaper; compute changes little at this scale
        (modest thread efficiency + per-level overhead, Section 6)."""
        src = int(
            rmat_medium.to_internal(rmat_medium.random_nonisolated_vertices(1, 1)[0])
        )
        from repro.model import FRANKLIN, NetworkCostModel

        flat = run_spmd(
            4, bfs_1d, rmat_medium.csr, src,
            machine=FRANKLIN, threads=1,
            cost_model=NetworkCostModel(FRANKLIN, threads=1, total_ranks=4),
        ).stats
        hybrid = run_spmd(
            4, bfs_1d, rmat_medium.csr, src,
            machine=FRANKLIN, threads=4,
            cost_model=NetworkCostModel(FRANKLIN, threads=4, total_ranks=4),
        ).stats
        assert hybrid.max_mpi_time < flat.max_mpi_time
        # Thread-parallel phases are divided by the modeled speedup while
        # per-level overhead pushes the other way; compute stays bounded.
        assert hybrid.max_compute_time < 1.5 * flat.max_compute_time
