"""Critical-path, imbalance, and comm/comp analyses over traced runs."""

from __future__ import annotations

import pytest

from repro.core import run_bfs
from repro.obs import (
    COMM_PHASES,
    UNTRACED,
    Tracer,
    check_critical_path,
    comm_comp_summary,
    critical_path,
    load_imbalance,
)


def _traced(graph, algorithm, **kwargs):
    tracer = Tracer()
    result = run_bfs(
        graph, 5, algorithm, nprocs=4, machine="hopper", tracer=tracer, **kwargs
    )
    return result, tracer


class TestCriticalPath:
    @pytest.mark.parametrize(
        "algorithm",
        ["1d", "1d-hybrid", "1d-dirop", "1d-dirop-hybrid", "2d", "2d-hybrid"],
    )
    def test_sums_to_modeled_total(self, rmat_small, algorithm):
        """The acceptance bar: init + per-level phase times == makespan
        within 1e-6 relative tolerance (here they match to fp roundoff)."""
        result, tracer = _traced(rmat_small, algorithm)
        path = check_critical_path(tracer, result.time_total, rel_tol=1e-6)
        assert path.total == pytest.approx(result.time_total, rel=1e-9)
        for lc in path.levels:
            assert sum(lc.phases.values()) == pytest.approx(lc.duration, rel=1e-9)

    def test_mismatch_raises(self, rmat_small):
        result, tracer = _traced(rmat_small, "1d")
        with pytest.raises(ValueError, match="critical path sums"):
            check_critical_path(tracer, result.time_total * 1.5)

    def test_level_structure(self, rmat_small):
        result, tracer = _traced(rmat_small, "1d-dirop")
        path = critical_path(tracer)
        assert [lc.level for lc in path.levels] == list(
            range(1, result.nlevels + 1)
        )
        assert path.init > 0  # dirop's initial frontier-stats allreduce
        for prev, cur in zip(path.levels, path.levels[1:]):
            assert cur.t_start == pytest.approx(prev.t_end)
        for lc in path.levels:
            assert lc.rank in tracer.ranks
            assert UNTRACED in lc.phases
            assert lc.bounding_phase in lc.phases

    def test_phase_names_match_algorithm(self, rmat_small):
        _result, tracer = _traced(rmat_small, "2d")
        totals = critical_path(tracer).phase_totals()
        assert {"transpose", "expand", "spmsv", "fold-exchange", "sync"} <= set(
            totals
        )
        _result, tracer = _traced(rmat_small, "1d")
        totals = critical_path(tracer).phase_totals()
        assert {"td-scan", "td-pack", "td-exchange", "td-update", "sync"} <= set(
            totals
        )

    def test_empty_tracer(self):
        path = critical_path(Tracer())
        assert path.init == 0.0 and path.levels == [] and path.total == 0.0

    def test_untimed_run_checks_out_at_zero(self, rmat_small):
        tracer = Tracer()
        result = run_bfs(rmat_small, 5, "1d", nprocs=4, tracer=tracer)
        path = check_critical_path(tracer, result.time_total)
        assert path.total == 0.0


class TestImbalance:
    def test_per_level_per_phase_records(self, rmat_small):
        result, tracer = _traced(rmat_small, "1d")
        records = load_imbalance(tracer)
        assert records
        levels = {r.level for r in records}
        assert levels == set(range(1, result.nlevels + 1))
        for rec in records:
            assert rec.max_seconds >= rec.mean_seconds >= 0
            assert rec.imbalance >= 1.0
            assert rec.straggler in tracer.ranks

    def test_skewed_workload_attributes_straggler(self):
        """A rank doing 4x the compute of its peers must be named the
        straggler with the matching max/mean factor."""
        from repro.model import FRANKLIN, NetworkCostModel
        from repro.mpsim import run_spmd

        tracer = Tracer()

        def fn(comm):
            rt = tracer.for_rank(comm)
            with rt.span("level", level=1):
                with rt.span("work"):
                    comm.charge_compute(4e-5 if comm.rank == 2 else 1e-5)
                with rt.span("sync"):
                    comm.allreduce(1)
            return True

        # Pinned to the shared-memory runtime: the tracer here is a
        # closure capture, which only the runner's ``tracer=`` kwarg
        # plumbing can ship back from process workers.
        run_spmd(
            4,
            fn,
            cost_model=NetworkCostModel(FRANKLIN, total_ranks=4),
            runtime="threads",
        )
        (work,) = [r for r in load_imbalance(tracer) if r.phase == "work"]
        assert work.straggler == 2
        assert work.imbalance == pytest.approx(4 / ((3 * 1 + 4) / 4))
        # The fast ranks absorb the skew as waiting inside the sync.
        (sync,) = [r for r in load_imbalance(tracer) if r.phase == "sync"]
        assert sync.straggler != 2


class TestCommComp:
    def test_totals_accumulate_levels(self, rmat_small):
        _result, tracer = _traced(rmat_small, "2d")
        summary = comm_comp_summary(tracer)
        levels = summary["levels"]
        assert levels
        assert summary["totals"]["comm_max"] == pytest.approx(
            sum(lv["comm_max"] for lv in levels)
        )
        for lv in levels:
            assert lv["comm_max"] >= 0 and lv["comp_max"] >= 0
            assert lv["comm_mean"] <= lv["comm_max"] + 1e-18

    def test_means_tile_levels_exactly(self, rmat_small):
        """Sync-aligned level spans have identical durations on every
        rank, so comm_mean + comp_mean reproduces each level exactly."""
        _result, tracer = _traced(rmat_small, "1d")
        summary = comm_comp_summary(tracer)
        path = critical_path(tracer)
        assert len(summary["levels"]) == len(path.levels)
        for lv, lc in zip(summary["levels"], path.levels):
            assert lv["comm_mean"] + lv["comp_mean"] == pytest.approx(
                lc.duration, rel=1e-9
            )
            # Maxes are over different ranks, so they bound from above.
            assert lv["comm_max"] + lv["comp_max"] >= lc.duration - 1e-15
        assert summary["totals"]["comm_max"] > 0

    def test_comm_phase_classifier_covers_instrumentation(self):
        assert {"alltoallv", "allgatherv", "allreduce", "transpose"} <= COMM_PHASES
