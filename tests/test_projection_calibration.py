"""Cross-validation of the closed-form volume model against functional
simulations — the glue that justifies projecting to paper-scale core
counts (Section 5's "our analysis successfully captures ...").
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.model import RmatVolumeModel
from repro.model.projection import fit_dedup_curve, measure_level_profile


@pytest.fixture(scope="module")
def measured():
    """One scale-14 R-MAT graph traversed at several rank counts."""
    graph = repro.rmat_graph(14, 16, seed=11)
    source = int(graph.random_nonisolated_vertices(1, 0)[0])
    runs_1d = {
        p: repro.run_bfs(graph, source, "1d", nprocs=p) for p in (4, 16, 64)
    }
    runs_2d = {
        p: repro.run_bfs(graph, source, "2d", nprocs=p) for p in (4, 16, 64)
    }
    return graph, source, runs_1d, runs_2d


class TestVolumeModelAgainstSimulation:
    def test_dedup_survival_close_to_model(self, measured):
        graph, _source, runs_1d, _ = measured
        model = RmatVolumeModel()
        for p, run in runs_1d.items():
            meas = run.stats.counter("unique_sends") / run.stats.counter(
                "candidates"
            )
            pred = model.survival(p)
            assert meas == pytest.approx(pred, rel=0.35), f"p={p}"

    def test_reach_fraction(self, measured):
        graph, _source, runs_1d, _ = measured
        model = RmatVolumeModel()
        reach = float((runs_1d[4].levels >= 0).mean())
        assert reach == pytest.approx(model.reach(16), abs=0.08)

    def test_1d_a2a_volume_within_factor(self, measured):
        """Closed-form per-rank all-to-all words vs exact measurement."""
        graph, _source, runs_1d, _ = measured
        model = RmatVolumeModel()
        for p, run in runs_1d.items():
            profile = measure_level_profile(run.stats)
            vol = model.volumes_1d(graph.n, graph.m_input, p)
            # The closed form ignores the self-destined share (1/p) and
            # uses the fitted survival curve: agree within 40%.
            assert profile["a2a_words_per_rank"] == pytest.approx(
                vol.a2a_words, rel=0.4
            ), f"p={p}"

    def test_2d_expand_volume_within_factor(self, measured):
        graph, _source, _runs_1d, runs_2d = measured
        model = RmatVolumeModel()
        for p, run in runs_2d.items():
            profile = measure_level_profile(run.stats)
            vol = model.volumes_2d(graph.n, graph.m_input, p)
            # Expand volume model: n_reach / pc words received per rank
            # (indices only; the payload is implicit).
            assert profile["ag_words_per_rank"] == pytest.approx(
                vol.ag_words, rel=0.45
            ), f"p={p}"

    def test_2d_fold_cheaper_than_1d_a2a_measured(self, measured):
        """The paper's central mechanism, on exact measured volumes."""
        _graph, _source, runs_1d, runs_2d = measured
        for p in (16, 64):
            v1 = runs_1d[p].stats.words_sent("alltoallv")
            v2 = runs_2d[p].stats.words_sent("alltoallv")
            assert v2 < v1, f"p={p}"

    def test_level_counts_match(self, measured):
        graph, _source, runs_1d, _ = measured
        model = RmatVolumeModel()
        measured_levels = runs_1d[4].nlevels
        assert model.nlevels(graph.n, 16) == pytest.approx(measured_levels, abs=2)

    def test_fitted_curve_matches_defaults(self, measured):
        """Re-fit the dedup curve from this run; the shipped constants
        should be in the same ballpark."""
        _graph, _source, runs_1d, _ = measured
        ps = np.array(sorted(runs_1d))
        survs = np.array(
            [
                runs_1d[p].stats.counter("unique_sends")
                / runs_1d[p].stats.counter("candidates")
                for p in ps
            ]
        )
        s1, gamma = fit_dedup_curve(ps, survs)
        model = RmatVolumeModel()
        assert s1 == pytest.approx(model.dedup_s1, rel=0.5)
        assert gamma == pytest.approx(model.dedup_gamma, rel=0.4)
