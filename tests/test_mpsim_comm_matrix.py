"""Tests for rank-to-rank traffic recording (comm_matrix)."""

from __future__ import annotations

import numpy as np

import repro
from repro.mpsim import run_spmd


def _fn(comm):
    send = [np.arange(comm.rank + j) for j in range(comm.size)]
    comm.alltoallv(send)
    return None


class TestCommMatrix:
    def test_disabled_by_default(self):
        res = run_spmd(3, _fn)
        assert res.stats.comm_matrix().sum() == 0

    def test_records_per_destination(self):
        res = run_spmd(4, _fn, record_peers=True)
        matrix = res.stats.comm_matrix()
        for i in range(4):
            for j in range(4):
                assert matrix[i, j] == (0 if i == j else i + j)

    def test_exchange_recorded(self):
        def fn(comm):
            dest = (comm.rank + 1) % comm.size
            comm.exchange(dest, np.arange(comm.rank + 1))
            return None

        res = run_spmd(3, fn, record_peers=True)
        matrix = res.stats.comm_matrix()
        assert matrix[0, 1] == 1 and matrix[1, 2] == 2 and matrix[2, 0] == 3

    def test_subcommunicator_traffic_uses_global_ranks(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2)
            send = [np.arange(3) for _ in range(sub.size)]
            sub.alltoallv(send)
            return None

        res = run_spmd(4, fn, record_peers=True)
        matrix = res.stats.comm_matrix()
        # Even group {0, 2} and odd group {1, 3}: traffic stays in-group.
        assert matrix[0, 2] == 3 and matrix[2, 0] == 3
        assert matrix[1, 3] == 3 and matrix[3, 1] == 3
        assert matrix[0, 1] == 0 and matrix[2, 3] == 0

    def test_bfs_1d_traffic_is_all_to_all_shaped(self, rmat_small):
        """With random shuffling, every rank talks to every other rank
        (the Section 4.4 trade: balanced but cut-heavy)."""
        from repro.core.bfs1d import bfs_1d

        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 0)[0])
        )
        res = run_spmd(4, bfs_1d, rmat_small.csr, src, record_peers=True)
        matrix = res.stats.comm_matrix()
        off_diag = matrix[~np.eye(4, dtype=bool)]
        assert np.all(off_diag > 0)
        # Shuffled R-MAT traffic is near-uniform across pairs.
        assert off_diag.max() < 2.0 * off_diag.min()

    def test_runner_exposes_record_peers(self, rmat_small):
        src = int(rmat_small.random_nonisolated_vertices(1, 0)[0])
        res = repro.run_bfs(rmat_small, src, "1d", nprocs=4)
        assert res.stats.comm_matrix().sum() == 0  # not recorded by default
