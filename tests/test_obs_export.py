"""Chrome-trace and run-report exporters."""

from __future__ import annotations

import json

import pytest

from repro.core import run_bfs
from repro.obs import (
    REPORT_SCHEMA,
    Tracer,
    chrome_trace,
    load_run_report,
    run_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_run_report,
)


def _traced_run(graph, algorithm, **kwargs):
    tracer = Tracer()
    result = run_bfs(
        graph, 5, algorithm, nprocs=4, machine="hopper", tracer=tracer, **kwargs
    )
    return result, tracer


class TestChromeTrace:
    @pytest.mark.parametrize("algorithm", ["1d-dirop", "2d"])
    def test_schema_valid_for_bfs_runs(self, rmat_small, algorithm):
        result, tracer = _traced_run(rmat_small, algorithm)
        trace = chrome_trace(tracer)
        validate_chrome_trace(trace)
        events = trace["traceEvents"]
        # One thread_name metadata record per rank, tids = ranks.
        names = [e for e in events if e["ph"] == "M"]
        assert [e["tid"] for e in names] == list(range(result.nranks))
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["tid"] for e in complete} == set(range(result.nranks))
        assert all(e["pid"] == 0 for e in events)
        # ts/dur are microseconds of the virtual clocks: the latest span
        # end equals the modeled makespan.
        latest = max(e["ts"] + e["dur"] for e in complete)
        assert latest == pytest.approx(result.time_total * 1e6)
        assert {e["name"] for e in complete} >= {"level", "sync", "allreduce"}

    def test_2d_trace_has_spmsv_kernel_instants(self, rmat_small):
        _result, tracer = _traced_run(rmat_small, "2d")
        trace = chrome_trace(tracer)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instants, "spmsv-kernel markers missing"
        assert all(e["name"] == "spmsv-kernel" for e in instants)
        assert all(e["args"]["kernel"] in ("spa", "heap") for e in instants)

    def test_level_and_meta_in_args(self, rmat_small):
        _result, tracer = _traced_run(rmat_small, "1d", codec="delta-varint")
        trace = chrome_trace(tracer)
        exchanges = [
            e for e in trace["traceEvents"] if e.get("name") == "alltoallv"
        ]
        assert exchanges
        assert all("level" in e["args"] for e in exchanges)
        encodes = [e for e in trace["traceEvents"] if e.get("name") == "encode"]
        assert all(e["args"]["codec"] == "delta-varint" for e in encodes)

    def test_write_is_loadable_json(self, rmat_small, tmp_path):
        _result, tracer = _traced_run(rmat_small, "1d-dirop")
        path = write_chrome_trace(tmp_path / "sub" / "trace.json", tracer)
        validate_chrome_trace(json.loads(path.read_text()))

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError, match="no traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="missing 'tid'"):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "pid": 0}]})
        with pytest.raises(ValueError, match="missing 'dur'"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": 0}]}
            )
        bad = {"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": 0.0, "dur": -1.0}
        with pytest.raises(ValueError, match="negative duration"):
            validate_chrome_trace({"traceEvents": [bad]})

    def test_validate_rejects_bad_span_metadata(self):
        ok = {"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": 0.0, "dur": 1.0}
        for args, match in [
            ({"level": -1}, "non-integer level"),
            ({"level": 1.5}, "non-integer level"),
            ({"lanes": 0}, "lanes outside"),
            ({"lanes": 65}, "lanes outside"),
        ]:
            with pytest.raises(ValueError, match=match):
                validate_chrome_trace({"traceEvents": [{**ok, "args": args}]})
        validate_chrome_trace(
            {"traceEvents": [{**ok, "args": {"level": 3, "lanes": 64}}]}
        )

    def test_validate_instant_scope(self):
        instant = {"ph": "i", "pid": 0, "tid": 0, "name": "x", "ts": 0.0}
        with pytest.raises(ValueError, match="valid scope"):
            validate_chrome_trace({"traceEvents": [instant]})
        validate_chrome_trace({"traceEvents": [{**instant, "s": "t"}]})


class TestQueryChromeTrace:
    """Satellite: traces of the batched-query kinds validate too."""

    def _traced_query(self, graph, algorithm, **kwargs):
        from tests.conftest import launch_any

        tracer = Tracer()
        result = launch_any(
            graph, 5, algorithm, nprocs=4, machine="hopper",
            tracer=tracer, **kwargs,
        )
        return result, tracer

    @pytest.mark.parametrize("algorithm", ["msbfs-1d", "cc", "sssp-delta"])
    def test_query_traces_validate(self, rmat_small, algorithm):
        result, tracer = self._traced_query(rmat_small, algorithm, batch=8)
        trace = chrome_trace(tracer)
        validate_chrome_trace(trace)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in complete} == set(range(result.nranks))

    def test_msbfs_levels_carry_lane_metadata(self, rmat_small):
        result, tracer = self._traced_query(rmat_small, "msbfs-1d", batch=8)
        trace = chrome_trace(tracer)
        validate_chrome_trace(trace)
        levels = [
            e for e in trace["traceEvents"] if e.get("name") == "level"
        ]
        assert levels
        assert all(e["args"]["lanes"] == result.batch for e in levels)

    def test_landmark_trace_validates_with_lanes(self, rmat_small):
        result, tracer = self._traced_query(rmat_small, "landmark", batch=8)
        trace = chrome_trace(tracer)
        validate_chrome_trace(trace)
        levels = [
            e for e in trace["traceEvents"] if e.get("name") == "level"
        ]
        # The index build is one inner msbfs sweep: one lane per landmark.
        assert all(e["args"]["lanes"] == result.batch for e in levels)


class TestRunReport:
    def test_report_contents(self, rmat_small):
        result, _tracer = _traced_run(
            rmat_small, "1d-dirop", codec="delta-varint", sieve=True
        )
        report = run_report(result)  # tracer found in result.meta
        assert report["schema"] == REPORT_SCHEMA
        assert report["machine"] == "Hopper (Cray XE6)"
        assert report["algorithm"] == "1d-dirop"
        assert report["config"]["codec"] == "delta-varint"
        assert report["config"]["sieve"] is True
        assert report["time"]["total"] > 0
        assert report["gteps"] == pytest.approx(result.gteps())
        assert report["comm"]["total_wire_words"] > 0
        # Span-derived sections populated, and exactly one entry per level.
        assert len(report["levels"]) == result.nlevels
        assert sum(report["phases"].values()) == pytest.approx(
            result.time_total, rel=1e-9
        )
        assert report["comm_comp"]["totals"]["comm_max"] > 0
        assert report["imbalance"]

    def test_report_without_tracer_still_has_stats(self, rmat_small):
        result = run_bfs(rmat_small, 5, "1d", nprocs=4, machine="hopper")
        report = run_report(result)
        assert report["phases"] == {} and report["levels"] == []
        assert report["comm"]["total_words_sent"] > 0
        assert report["gteps"] > 0

    def test_write_load_round_trip(self, rmat_small, tmp_path):
        result, _tracer = _traced_run(rmat_small, "2d")
        report = run_report(result)
        path = write_run_report(tmp_path / "report.json", report)
        assert load_run_report(path) == json.loads(json.dumps(report))

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="not a run report"):
            load_run_report(path)

    def test_older_schemas_still_load(self, rmat_small, tmp_path):
        result, _tracer = _traced_run(rmat_small, "1d")
        for old in ("repro.obs/run-report/v1", "repro.obs/run-report/v2"):
            report = run_report(result)
            report["schema"] = old
            path = write_run_report(tmp_path / "old.json", report)
            assert load_run_report(path)["schema"] == old

    def test_bfs_report_has_empty_query_section(self, rmat_small):
        result, _tracer = _traced_run(rmat_small, "1d")
        report = run_report(result)
        assert report["query"] is None
        assert report["metrics"] is None  # no registry installed

    def test_query_report_carries_throughput(self, rmat_small):
        from repro.query import run_query
        from tests.conftest import query_sources

        result = run_query(
            rmat_small, query_sources(rmat_small, 5, 8),
            algorithm="msbfs-1d", nprocs=4, machine="hopper", tracer=Tracer(),
        )
        report = run_report(result)
        assert report["query"]["kind"] == "msbfs"
        assert report["query"]["batch"] == 8
        assert report["query"]["queries_per_second"] == pytest.approx(
            result.queries_per_second()
        )
        assert report["graph"]["batch"] == 8
        # Vertex count stays the vertex count despite lane columns.
        assert report["graph"]["n"] == rmat_small.n

    def test_metered_report_embeds_metrics_snapshot(self, rmat_small):
        from repro.obs import METRICS_SCHEMA, MetricsRegistry

        registry = MetricsRegistry()
        result = run_bfs(
            rmat_small, 5, "1d", nprocs=4, machine="hopper", metrics=registry
        )
        report = run_report(result)
        assert report["metrics"]["schema"] == METRICS_SCHEMA
        wire = report["metrics"]["metrics"]["comm_wire_words"]
        assert wire["type"] == "counter"
        assert sum(wire["series"].values()) == result.stats.wire_words()
