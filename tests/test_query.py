"""The batched-query subsystem: lanes, wire triples, and the driver API.

The centerpiece is the acceptance criterion of the ``repro.query``
subsystem: a full 64-lane ``msbfs-1d`` run is **lane-for-lane
bit-identical** to 64 independent single-source serial oracle runs —
batching is a pure throughput device, never an approximation.  Around it
sit the supporting contracts: the sender-side lane-dominance prune
preserves every lane's (select, max) winner, the triple wire format
keeps its raw extra column row-aligned through every codec and rejects
damaged buffers, and the driver surfaces the structural refusals
(sieve, bitmap, missing sources) as friendly config-time errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import CodecError, CommChannel, Sieve, VertexRange
from repro.core import run_bfs
from repro.graphs.rmat import rmat_graph
from repro.mpsim import run_spmd
from repro.query import (
    WORD_LANES,
    close_lane_classes,
    lane_bit,
    msbfs_serial,
    prune_lane_candidates,
    run_query,
)

NPROCS = 4


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(9, 8, seed=5)


@pytest.fixture(scope="module")
def batch64(graph):
    return [int(s) for s in graph.random_nonisolated_vertices(64, seed=1)]


class TestBitParallelEquivalence:
    def test_full_batch_matches_64_serial_runs(self, graph, batch64):
        """The acceptance criterion: every lane of one 64-way traversal
        is bit-identical to its own single-source serial oracle run."""
        res = run_query(graph, sources=batch64, nprocs=NPROCS, validate=True)
        assert res.batch == WORD_LANES
        assert res.levels.shape == res.parents.shape == (graph.n, WORD_LANES)
        for b, s in enumerate(batch64):
            ref = run_bfs(graph, s, "serial")
            lane_levels, lane_parents = res.lane(b)
            assert np.array_equal(lane_levels, ref.levels), f"lane {b}"
            assert np.array_equal(lane_parents, ref.parents), f"lane {b}"

    def test_batch_composition_is_irrelevant(self, graph, batch64):
        """A lane's result depends only on its own source: the same
        source embedded in two different batches yields identical lanes."""
        res_full = run_query(graph, sources=batch64, nprocs=NPROCS)
        res_small = run_query(graph, sources=batch64[:3], nprocs=NPROCS)
        for b in range(3):
            assert np.array_equal(res_full.levels[:, b], res_small.levels[:, b])
            assert np.array_equal(res_full.parents[:, b], res_small.parents[:, b])

    def test_serial_oracle_matches_per_source_bfs(self, graph, batch64):
        """``msbfs_serial`` (the validator's reference) is itself just a
        stack of single-source serial traversals."""
        srcs = np.array(
            [int(np.asarray(graph.to_internal(s))) for s in batch64[:5]],
            dtype=np.int64,
        )
        levels, parents = msbfs_serial(graph.csr, srcs)
        for b, s in enumerate(batch64[:5]):
            ref = run_bfs(graph, s, "serial")
            assert np.array_equal(
                graph.relabel_level_array(levels[:, b]), ref.levels
            )
            assert np.array_equal(
                graph.relabel_vertex_array(parents[:, b]), ref.parents
            )


class TestLaneDominancePrune:
    def _random_triples(self, rng, nlanes, size):
        targets = rng.integers(0, 12, size).astype(np.int64)
        sources = rng.integers(0, 100, size).astype(np.int64)
        words = rng.integers(1, 1 << nlanes, size).astype(np.uint64)
        return targets, sources, words

    def test_per_lane_winners_survive_and_runs_are_bounded(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            nlanes = int(rng.integers(1, 9))
            t, s, w = self._random_triples(rng, nlanes, int(rng.integers(1, 80)))
            pt, ps, pw = prune_lane_candidates(t, s, w, nlanes)
            # At most nlanes survivors per target.
            _, counts = np.unique(pt, return_counts=True)
            assert counts.max() <= nlanes
            # Every lane's max-source contributor per target survives
            # with its full word, so the owner-side (select, max) race
            # has the same winner from the pruned set.
            for b in range(nlanes):
                has = (w & lane_bit(b)) != 0
                for target in np.unique(t[has]):
                    want = s[has & (t == target)].max()
                    kept = (pw & lane_bit(b)) != 0
                    got = ps[kept & (pt == target)].max()
                    assert got == want, (trial, b, target)

    def test_prune_is_deterministic_and_sorted(self):
        rng = np.random.default_rng(3)
        t, s, w = self._random_triples(rng, 4, 50)
        perm = rng.permutation(t.size)
        a = prune_lane_candidates(t, s, w, 4)
        b = prune_lane_candidates(t[perm], s[perm], w[perm], 4)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
        pt, ps, _ = a
        order = np.lexsort((-ps, pt))
        assert np.array_equal(order, np.arange(pt.size))

    def test_empty_input_passes_through(self):
        e = np.empty(0, dtype=np.int64)
        ew = np.empty(0, dtype=np.uint64)
        pt, ps, pw = prune_lane_candidates(e, e, ew, 8)
        assert pt.size == ps.size == pw.size == 0


class TestTripleWire:
    """The (target, value, extra) exchange: alignment and damage detection."""

    @pytest.mark.parametrize("codec", ["raw", "delta-varint", "auto"])
    def test_roundtrip_keeps_extras_row_aligned(self, codec):
        def fn(comm):
            per = 16
            ranges = [VertexRange(per * r, per) for r in range(comm.size)]
            channel = CommChannel(comm, ranges, codec=codec)
            dst = (comm.rank + 1) % comm.size
            # Duplicate targets with distinct values — exactly what a
            # lane batch ships — tied to their extras by construction.
            targets = np.repeat(
                np.arange(per * dst, per * dst + 6, dtype=np.int64), 2
            )
            values = np.arange(12, dtype=np.int64) + 50 * comm.rank
            extras = values * 13 + 2
            owners = np.full(12, dst, dtype=np.int64)
            send, info = channel.pack_triples(targets, values, extras, owners)
            rt, rv, rx = channel.exchange_triples(send, info, level=0)
            assert rt.size == rv.size == rx.size == 12
            assert np.array_equal(rx, rv * 13 + 2)  # row alignment held
            assert np.all((per * comm.rank <= rt) & (rt < per * comm.rank + 6))
            assert info.payload_words == 3.0 * 12
            return True

        res = run_spmd(3, fn)
        assert all(res.returns)

    def test_damaged_buffers_raise_codec_error(self):
        def fn(comm):
            per = 8
            ranges = [VertexRange(per * r, per) for r in range(comm.size)]
            channel = CommChannel(comm, ranges, codec="delta-varint")
            dst = (comm.rank + 1) % comm.size
            targets = np.arange(per * dst, per * dst + 4, dtype=np.int64)
            values = targets * 7 + 1
            extras = targets * 13 + 2
            owners = np.full(4, dst, dtype=np.int64)
            send, _ = channel.pack_triples(targets, values, extras, owners)
            buf, ctx = send[dst], ranges[dst]
            # Truncation desyncs the extras column behind the header.
            with pytest.raises(CodecError):
                channel._decode_triples_piece(buf[:-1], ctx)
            # A header claiming more pair words than the buffer holds.
            bad = buf.copy()
            bad[0] = buf.size + 5
            with pytest.raises(CodecError):
                channel._decode_triples_piece(bad, ctx)
            # A negative header is equally out of bounds.
            bad = buf.copy()
            bad[0] = -1
            with pytest.raises(CodecError):
                channel._decode_triples_piece(bad, ctx)
            return True

        res = run_spmd(2, fn)
        assert all(res.returns)

    def test_channel_refuses_sieve_and_bitmap(self):
        def fn(comm):
            ranges = [VertexRange(8 * r, 8) for r in range(comm.size)]
            t = np.array([0], dtype=np.int64)
            owners = np.array([0], dtype=np.int64)
            sieved = CommChannel(
                comm, ranges, codec="raw", sieve=Sieve(8 * comm.size)
            )
            with pytest.raises(ValueError, match="sieve"):
                sieved.pack_triples(t, t, t, owners)
            bitmapped = CommChannel(comm, ranges, codec="bitmap")
            with pytest.raises(ValueError, match="bitmap"):
                bitmapped.pack_triples(t, t, t, owners)
            return True

        res = run_spmd(2, fn)
        assert all(res.returns)


class TestCloseLaneClasses:
    def test_chain_merges_into_one_class(self):
        # Lane 0 co-occurs with 1, lane 1 with 2: all three share a
        # component and must close to the same mask.
        masks = np.array(
            [0b011, 0b111, 0b110, 0b1000], dtype=np.uint64
        )
        closed = close_lane_classes(masks)
        assert closed[0] == closed[1] == closed[2] == np.uint64(0b111)
        assert closed[3] == np.uint64(0b1000)  # untouched singleton

    def test_closure_is_idempotent(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            k = int(rng.integers(1, 16))
            masks = rng.integers(0, 1 << k, k).astype(np.uint64)
            masks |= np.uint64(1) << np.arange(k, dtype=np.uint64)  # self bits
            once = close_lane_classes(masks)
            assert np.array_equal(close_lane_classes(once), once)


class TestDriverApi:
    def test_sources_required_and_bounded(self, graph):
        with pytest.raises(ValueError, match="sources"):
            run_query(graph, nprocs=2)
        with pytest.raises(ValueError, match="batch size"):
            run_query(graph, sources=list(range(WORD_LANES + 1)), nprocs=2)
        with pytest.raises(ValueError, match="out of range"):
            run_query(graph, sources=[graph.n], nprocs=2)

    def test_config_and_kwargs_are_exclusive(self, graph):
        from repro.core.runner import RunConfig

        config = RunConfig(algorithm="msbfs-1d", sources=(1,), nprocs=2)
        with pytest.raises(TypeError, match="not both"):
            run_query(graph, config=config, nprocs=2)
        res = run_query(graph, config=config)
        assert res.batch == 1

    def test_bfs_kinds_are_redirected(self, graph):
        with pytest.raises(ValueError, match="single-source BFS"):
            run_query(graph, sources=[1], algorithm="1d", nprocs=2)
        with pytest.raises(ValueError, match="single-source BFS"):
            run_query(graph, algorithm="1d", nprocs=2)

    def test_structural_refusals_surface_at_config_time(self, graph):
        with pytest.raises(ValueError, match="sieve"):
            run_query(graph, sources=[1], nprocs=2, sieve=True)
        with pytest.raises(ValueError, match="bitmap"):
            run_query(graph, sources=[1], nprocs=2, codec="bitmap")
        with pytest.raises(ValueError, match="sources"):
            run_query(graph, sources=[1], algorithm="cc", nprocs=2)
        with pytest.raises(ValueError, match="landmarks"):
            run_query(
                graph, sources=[1], nprocs=2, landmarks=4
            )

    def test_result_helpers(self, graph, batch64):
        res = run_query(
            graph, sources=batch64[:4], nprocs=2, machine="hopper"
        )
        assert res.source == batch64[0]
        assert res.modeled_cores == res.nranks * res.threads
        assert res.gteps() > 0
        assert res.queries_per_second() == pytest.approx(4 / res.time_total)
        untimed = run_query(graph, sources=batch64[:2], nprocs=2)
        with pytest.raises(ValueError, match="untimed"):
            untimed.gteps()
        with pytest.raises(ValueError, match="untimed"):
            untimed.queries_per_second()
        cc = run_query(graph, algorithm="cc", nprocs=2)
        with pytest.raises(ValueError, match="lanes"):
            cc.lane(0)

    def test_batching_amortizes_modeled_latency(self, graph, batch64):
        """More lanes per traversal means more queries per modeled
        second — the whole point of the subsystem.  (The full 1..64
        sweep with the >= 8x acceptance bar lives in
        ``benchmarks/test_query_throughput.py``.)"""
        one = run_query(graph, sources=batch64[:1], nprocs=NPROCS, machine="hopper")
        sixteen = run_query(
            graph, sources=batch64[:16], nprocs=NPROCS, machine="hopper"
        )
        assert (
            sixteen.queries_per_second() > 2.0 * one.queries_per_second()
        )
