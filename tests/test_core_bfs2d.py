"""Tests for the 2D distributed BFS (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bfs_serial
from repro.core.bfs2d import bfs_2d, build_2d_blocks
from repro.core.partition import Decomp2D
from repro.mpsim import run_spmd

from tests.conftest import make_disconnected_graph, make_path_graph, make_star_graph


def run_2d(graph, source_internal, side, threads=1, **kwargs):
    decomp = Decomp2D(graph.n, side, diagonal_vectors=kwargs.pop("diagonal", False))
    blocks = build_2d_blocks(graph.csr, decomp, threads=threads)
    res = run_spmd(
        side * side,
        bfs_2d,
        blocks,
        decomp,
        source_internal,
        threads=threads,
        **kwargs,
    )
    levels = np.empty(graph.n, dtype=np.int64)
    parents = np.empty(graph.n, dtype=np.int64)
    for out in res.returns:
        levels[out["plo"] : out["phi"]] = out["levels"]
        parents[out["plo"] : out["phi"]] = out["parents"]
    return levels, parents, res.stats


class TestBuild2dBlocks:
    def test_blocks_partition_all_entries(self, rmat_small):
        decomp = Decomp2D(rmat_small.n, 3)
        blocks = build_2d_blocks(rmat_small.csr, decomp)
        assert sum(b.nnz for b in blocks) == rmat_small.nnz

    def test_block_contents_match_ranges(self, rmat_small):
        decomp = Decomp2D(rmat_small.n, 2)
        blocks = build_2d_blocks(rmat_small.csr, decomp)
        # Reconstruct all (row=v, col=u) entries and compare with the CSR.
        entries = []
        for rank, local in enumerate(blocks):
            i, j = divmod(rank, 2)
            rlo, _ = decomp.block(i)
            clo, _ = decomp.block(j)
            for piece, off in zip(local.pieces, local.band_offsets):
                rr, cc = piece.to_coo()
                entries.append(
                    np.stack([rr + rlo + off, cc + clo])
                )
        got = np.concatenate(entries, axis=1)
        got = got[:, np.lexsort((got[1], got[0]))]
        rows = np.repeat(
            np.arange(rmat_small.n, dtype=np.int64), rmat_small.degrees()
        )
        # Stored matrix is A^T: entry (v, u) per adjacency u -> v.
        exp = np.stack([rmat_small.csr.indices, rows])
        exp = exp[:, np.lexsort((exp[1], exp[0]))]
        assert np.array_equal(got, exp)

    def test_thread_split_preserves_entries(self, rmat_small):
        decomp = Decomp2D(rmat_small.n, 2)
        flat = build_2d_blocks(rmat_small.csr, decomp, threads=1)
        split = build_2d_blocks(rmat_small.csr, decomp, threads=4)
        for a, b in zip(flat, split):
            assert a.nnz == b.nnz
            assert len(b.pieces) == 4


class TestBfs2dCorrectness:
    @pytest.mark.parametrize("side", [1, 2, 3, 4])
    def test_matches_serial_on_rmat(self, rmat_small, side):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 1)[0])
        )
        ref_levels, ref_parents = bfs_serial(rmat_small.csr, src)
        levels, parents, _ = run_2d(rmat_small, src, side)
        assert np.array_equal(levels, ref_levels)
        assert np.array_equal(parents, ref_parents)

    @pytest.mark.parametrize("kernel", ["spa", "heap", "auto"])
    def test_kernels_agree(self, rmat_small, kernel):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 2)[0])
        )
        ref_levels, ref_parents = bfs_serial(rmat_small.csr, src)
        levels, parents, _ = run_2d(rmat_small, src, 3, kernel=kernel)
        assert np.array_equal(levels, ref_levels)
        assert np.array_equal(parents, ref_parents)

    @pytest.mark.parametrize("threads", [2, 3])
    def test_hybrid_thread_split_correct(self, rmat_small, threads):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 3)[0])
        )
        ref_levels, ref_parents = bfs_serial(rmat_small.csr, src)
        levels, parents, _ = run_2d(rmat_small, src, 2, threads=threads)
        assert np.array_equal(levels, ref_levels)
        assert np.array_equal(parents, ref_parents)

    def test_diagonal_vector_distribution_correct(self, rmat_small):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 4)[0])
        )
        ref_levels, _ = bfs_serial(rmat_small.csr, src)
        levels, _, _ = run_2d(rmat_small, src, 3, diagonal=True)
        assert np.array_equal(levels, ref_levels)

    def test_path_graph(self):
        g = make_path_graph(29)
        levels, _, _ = run_2d(g, 0, 3)
        assert np.array_equal(levels, np.arange(29))

    def test_star_graph(self):
        g = make_star_graph(30)
        levels, _, _ = run_2d(g, 0, 2)
        assert np.all(levels[1:] == 1)

    def test_disconnected(self):
        g = make_disconnected_graph()
        levels, _, _ = run_2d(g, 0, 2)
        assert np.array_equal(levels, [0, 1, 1, -1, -1, -1])

    def test_high_diameter(self, crawl_graph):
        src = int(crawl_graph.to_internal(0))
        ref_levels, _ = bfs_serial(crawl_graph.csr, src)
        levels, _, stats = run_2d(crawl_graph, src, 2)
        assert np.array_equal(levels, ref_levels)
        # Many levels => many expand/fold rounds.
        assert stats.calls("allgatherv") == ref_levels.max() + 1


class TestBfs2dCommunication:
    def test_expand_volume_bounded_by_frontier(self, rmat_small):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 5)[0])
        )
        levels, _, stats = run_2d(rmat_small, src, 3)
        n_reach = int((levels >= 0).sum())
        # Aggregate allgatherv input is the frontier total = reached
        # vertices; every rank receives its column's share, so the
        # aggregate received volume is bounded by side * n_reach.
        assert stats.words_recv("allgatherv") <= 3 * n_reach

    def test_fold_traffic_less_than_1d(self, rmat_medium):
        """The headline claim: 2D moves less all-to-all data than 1D."""
        from repro.core.bfs1d import bfs_1d

        src = int(
            rmat_medium.to_internal(rmat_medium.random_nonisolated_vertices(1, 6)[0])
        )
        res1d = run_spmd(16, bfs_1d, rmat_medium.csr, src)
        _, _, stats2d = run_2d(rmat_medium, src, 4)
        assert stats2d.words_sent("alltoallv") < res1d.stats.words_sent("alltoallv")

    def test_transpose_is_pairwise(self, rmat_small):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 7)[0])
        )
        _, _, stats = run_2d(rmat_small, src, 3)
        assert stats.calls("exchange") >= 1

    def test_diagonal_distribution_idles_offdiagonal(self, rmat_medium):
        """Figure 4: diagonal-only vectors create severe MPI-time imbalance."""
        from repro.model import FRANKLIN, NetworkCostModel

        src = int(
            rmat_medium.to_internal(rmat_medium.random_nonisolated_vertices(1, 8)[0])
        )
        side = 4
        _, _, stats_diag = run_2d(
            rmat_medium, src, side, diagonal=True,
            machine=FRANKLIN,
            cost_model=NetworkCostModel(FRANKLIN, total_ranks=side * side),
        )
        _, _, stats_2d = run_2d(
            rmat_medium, src, side,
            machine=FRANKLIN,
            cost_model=NetworkCostModel(FRANKLIN, total_ranks=side * side),
        )
        diag_ranks = [i * side + i for i in range(side)]
        off_ranks = [r for r in range(side * side) if r not in diag_ranks]
        # Diagonal-only vectors funnel the entire fold output to the
        # diagonal ranks: off-diagonal ranks receive nothing and idle
        # while the diagonal does the additional local merging phase.
        recv_diag = [stats_diag.comm[r].words_recv["alltoallv"] for r in diag_ranks]
        recv_off = [stats_diag.comm[r].words_recv["alltoallv"] for r in off_ranks]
        assert min(recv_diag) > 0
        assert max(recv_off) == 0
        comp_diag = np.mean([stats_diag.clocks[r].compute_time for r in diag_ranks])
        comp_off = np.mean([stats_diag.clocks[r].compute_time for r in off_ranks])
        assert comp_diag > comp_off
        wait_off_diagmode = np.mean(
            [stats_diag.clocks[r].mpi_wait_time for r in off_ranks]
        )
        wait_off_2dmode = np.mean(
            [stats_2d.clocks[r].mpi_wait_time for r in off_ranks]
        )
        assert wait_off_diagmode > 2.0 * wait_off_2dmode
        # The 2D vector distribution spreads the fold traffic evenly.
        recv_2d = [
            stats_2d.comm[r].words_recv["alltoallv"] for r in range(side * side)
        ]
        assert max(recv_2d) < 3.0 * (min(recv_2d) + 1)


class TestRectangularGrids:
    """The paper's general (pr != pc) formulation: the vector transpose
    becomes an all-to-all along the processor row (Section 3.2)."""

    @pytest.mark.parametrize("pr,pc", [(2, 3), (3, 2), (4, 2), (1, 4), (5, 1)])
    def test_matches_serial(self, rmat_small, pr, pc):
        src = int(
            rmat_small.to_internal(rmat_small.random_nonisolated_vertices(1, 9)[0])
        )
        ref_levels, ref_parents = bfs_serial(rmat_small.csr, src)
        decomp = Decomp2D(rmat_small.n, pr, pc)
        blocks = build_2d_blocks(rmat_small.csr, decomp)
        res = run_spmd(pr * pc, bfs_2d, blocks, decomp, src)
        levels = np.empty(rmat_small.n, dtype=np.int64)
        parents = np.empty(rmat_small.n, dtype=np.int64)
        for out in res.returns:
            levels[out["plo"] : out["phi"]] = out["levels"]
            parents[out["plo"] : out["phi"]] = out["parents"]
        assert np.array_equal(levels, ref_levels)
        assert np.array_equal(parents, ref_parents)

    def test_runner_grid_shape(self, rmat_small):
        from repro.core import run_bfs

        src = int(rmat_small.random_nonisolated_vertices(1, 10)[0])
        ref = run_bfs(rmat_small, src, "serial")
        res = run_bfs(
            rmat_small, src, "2d", nprocs=6, grid_shape=(2, 3), validate=True
        )
        assert res.nranks == 6
        assert np.array_equal(res.levels, ref.levels)

    def test_hybrid_rectangular(self, rmat_small):
        from repro.core import run_bfs

        src = int(rmat_small.random_nonisolated_vertices(1, 11)[0])
        ref = run_bfs(rmat_small, src, "serial")
        res = run_bfs(
            rmat_small, src, "2d-hybrid", nprocs=6, grid_shape=(3, 2), threads=2
        )
        assert np.array_equal(res.levels, ref.levels)

    def test_diagonal_vectors_need_square(self):
        with pytest.raises(ValueError, match="square"):
            Decomp2D(100, 2, 3, diagonal_vectors=True)

    def test_timed_rectangular(self, rmat_small):
        from repro.core import run_bfs

        src = int(rmat_small.random_nonisolated_vertices(1, 12)[0])
        res = run_bfs(
            rmat_small, src, "2d", nprocs=8, grid_shape=(4, 2), machine="hopper"
        )
        assert res.time_total > 0
        # Rectangular expand gathers over pr=4 parties, fold over pc=2.
        assert res.stats.calls("allgatherv") >= 1
