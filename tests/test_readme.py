"""The README's code blocks must actually work."""

from __future__ import annotations

import re
from pathlib import Path

README = (Path(__file__).resolve().parent.parent / "README.md").read_text()


def python_blocks() -> list[str]:
    return re.findall(r"```python\n(.*?)```", README, flags=re.DOTALL)


def test_readme_has_python_examples():
    assert len(python_blocks()) >= 1


def test_readme_quickstart_executes():
    namespace: dict = {}
    for block in python_blocks():
        exec(compile(block, "<README>", "exec"), namespace)  # noqa: S102
    # The quickstart leaves a timed result behind.
    assert "result" in namespace
    assert namespace["result"].gteps() > 0


def test_readme_mentions_the_deliverables():
    for anchor in (
        "DESIGN.md",
        "EXPERIMENTS.md",
        "repro-bench",
        "pytest benchmarks/ --benchmark-only",
        "examples/quickstart.py",
    ):
        assert anchor in README, anchor


def test_readme_experiment_ids_exist():
    from repro.bench.experiments import EXPERIMENTS

    for exp_id in re.findall(r"repro-bench (fig\d+|table\d+)", README):
        assert exp_id in EXPERIMENTS, exp_id


def test_version_consistency():
    import importlib.metadata as md

    import repro

    assert repro.__version__ == md.version("repro")


def test_design_doc_module_inventory_is_real():
    """Every module DESIGN.md's inventory names must exist on disk."""
    import re
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    design = (root / "DESIGN.md").read_text()
    for module in re.findall(r"^\s{4}(\w+\.py)", design, flags=re.MULTILINE):
        hits = list((root / "src" / "repro").rglob(module))
        assert hits, f"DESIGN.md names {module} but no such file exists"


def test_experiments_doc_covers_every_experiment():
    from pathlib import Path

    from repro.bench.experiments import EXPERIMENTS

    root = Path(__file__).resolve().parent.parent
    text = (root / "EXPERIMENTS.md").read_text()
    for exp_id in EXPERIMENTS:
        assert f"`{exp_id}`" in text, f"{exp_id} missing from EXPERIMENTS.md"
