"""Backend-equivalence sweep: full runs under both kernel backends.

For every registered algorithm, one complete timed traversal is run
under ``REPRO_KERNELS=numpy`` and again under ``REPRO_KERNELS=python``
and the *entire* observable output is asserted identical — levels,
parents, level count, traversed-edge count, and the modeled time
breakdown.  This is the end-to-end half of the kernels bit-identity
contract (the per-kernel half is ``tests/test_kernels_differential.py``):
swapping the backend may change wall-clock only, never results.

``KERNEL_BACKEND_ALGORITHMS`` is an import-time snapshot of the
registry, wired into ``tests/test_registry_coverage.py`` as the
``kernel-backend`` harness — registering an algorithm that skips this
sweep fails the coverage meta-test by name.
"""

from __future__ import annotations

import pytest

from repro import kernels
from repro.core import run_bfs
from repro.core.runner import ALGORITHMS
from repro.graphs.rmat import rmat_graph
from repro.query import run_query

from tests.conftest import query_sources

#: Every registered algorithm; the registry coverage meta-test compares
#: this import-time list against the live registry.
KERNEL_BACKEND_ALGORITHMS = sorted(ALGORITHMS)

#: Small-but-structured instance: R-MAT keeps hubs (dense middle levels,
#: bottom-up switches) while staying cheap enough for the pure-python
#: backend at full registry width.
GRAPH = rmat_graph(8, 8, seed=2)
SOURCE = 17
NPROCS = 4


def _run(algorithm: str, **kwargs):
    """One timed run of ``algorithm``, dispatched by registry kind."""
    kind = ALGORITHMS[algorithm].kind
    common = dict(algorithm=algorithm, nprocs=NPROCS, machine="hopper")
    common.update(kwargs)
    if kind == "bfs":
        return run_bfs(GRAPH, SOURCE, **common)
    if kind == "msbfs":
        return run_query(
            GRAPH, sources=query_sources(GRAPH, SOURCE, 4), **common
        )
    if kind == "cc":
        return run_query(GRAPH, **common)
    if kind == "sssp":
        return run_query(GRAPH, sources=[SOURCE], **common)
    if kind == "landmark":
        return run_query(GRAPH, landmarks=4, **common)
    raise AssertionError(f"kind {kind!r} has no backend-sweep runner")


def _observe(result) -> dict:
    """Everything a backend switch must leave bit-identical."""
    return {
        "levels": result.levels.tolist(),
        "parents": result.parents.tolist(),
        "nlevels": result.nlevels,
        "m_traversed": result.m_traversed,
        "time_total": result.time_total,
        "time_comm": result.time_comm,
        "time_comp": result.time_comp,
    }


def test_every_kind_has_a_backend_sweep_runner():
    """A registry entry with a new kind must extend :func:`_run`."""
    for kind in {spec.kind for spec in ALGORITHMS.values()}:
        assert kind in ("bfs", "msbfs", "cc", "sssp", "landmark"), kind


@pytest.mark.parametrize("algorithm", KERNEL_BACKEND_ALGORITHMS)
def test_backend_switch_preserves_full_run(algorithm):
    """numpy-backend and python-backend runs agree on every observable:
    parents, levels, counts, and the modeled time breakdown."""
    with kernels.use_backend("numpy"):
        vectorized = _observe(_run(algorithm))
    with kernels.use_backend("python"):
        reference = _observe(_run(algorithm))
    assert vectorized == reference


@pytest.mark.parametrize(
    "algorithm",
    sorted(
        name
        for name, spec in ALGORITHMS.items()
        if "wire" in spec.capabilities and not spec.hybrid
    ),
)
def test_backend_switch_preserves_codec_runs(algorithm):
    """The compressed wire path (auto codec picks per buffer, so raw,
    delta-varint and bitmap images are all built) is backend-invariant
    too — the varint/delta kernels feed real exchanges here."""
    with kernels.use_backend("numpy"):
        vectorized = _observe(_run(algorithm, codec="auto"))
    with kernels.use_backend("python"):
        reference = _observe(_run(algorithm, codec="auto"))
    assert vectorized == reference
