"""Failure injection and robustness tests for the SPMD engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import RawCodec
from repro.core.bfs1d import bfs_1d
from repro.core.bfs_dirop import bfs_1d_dirop
from repro.graphs.rmat import rmat_graph
from repro.mpsim import run_spmd
from repro.mpsim.engine import SimEngine


class TestAbortPaths:
    def test_exception_in_combine_phase(self):
        """A rank crashing mid-collective releases peers blocked in it."""

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("dies before the collective")
            comm.allreduce(1)

        with pytest.raises(RuntimeError, match="rank 0 failed"):
            run_spmd(4, fn)

    def test_exception_in_subcommunicator(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2)
            if comm.rank == 1:
                raise ValueError("odd group member dies")
            sub.barrier()
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            run_spmd(4, fn)

    def test_exception_while_peer_waits_on_recv(self):
        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("sender never sends")
            comm.recv(source=0)

        with pytest.raises(RuntimeError, match="rank 0 failed"):
            run_spmd(2, fn)

    def test_multiple_failures_report_first(self):
        def fn(comm):
            raise KeyError(f"rank {comm.rank}")

        with pytest.raises(RuntimeError, match="failed"):
            run_spmd(3, fn)

    def test_mismatched_collectives_abort_not_hang(self):
        """Rank 0 calls a different collective than the others; the
        deterministic protocol still exchanges payloads (the mismatch is
        a semantic bug), but a hard *count* mismatch — one rank exiting
        early — must abort via the timeout rather than hang."""

        def fn(comm):
            if comm.rank == 0:
                return None  # leaves the group short-handed
            comm.barrier()

        with pytest.raises(RuntimeError, match="failed|Barrier"):
            run_spmd(2, fn, timeout=0.5)


class TestBottomUpExpandFailure:
    def test_crash_inside_bitmap_allgatherv_releases_peers(self):
        """A rank dying inside the bottom-up expand must not leave the
        other ranks hung in the bitmap ``Allgatherv``: the engine aborts
        the collective and surfaces the originating rank."""

        class FailingComm:
            """Delegating wrapper whose allgatherv raises on one rank."""

            def __init__(self, comm, fail_rank):
                self._comm = comm
                self._fail_rank = fail_rank

            def __getattr__(self, name):
                return getattr(self._comm, name)

            def allgatherv(self, buf, concat=True):
                if self._comm.rank == self._fail_rank:
                    raise RuntimeError("NIC falls over mid-expand")
                return self._comm.allgatherv(buf, concat=concat)

        graph = rmat_graph(9, 16, seed=1)
        source = int(
            np.asarray(
                graph.to_internal(
                    int(graph.random_nonisolated_vertices(1, seed=2)[0])
                )
            )
        )

        def fn(comm):
            # alpha huge -> the very first level runs bottom-up, so every
            # surviving rank is parked inside the real allgatherv when
            # rank 1 raises.
            return bfs_1d_dirop(
                FailingComm(comm, fail_rank=1),
                graph.csr,
                source,
                alpha=1e9,
            )

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            run_spmd(4, fn)

    def test_healthy_ranks_complete_without_injection(self):
        # Control: the same harness with no failing rank terminates.
        graph = rmat_graph(9, 16, seed=1)
        source = int(
            np.asarray(
                graph.to_internal(
                    int(graph.random_nonisolated_vertices(1, seed=2)[0])
                )
            )
        )
        res = run_spmd(4, bfs_1d_dirop, graph.csr, source, alpha=1e9)
        assert all(r["nlevels"] >= 1 for r in res.returns)


def _rmat_case():
    graph = rmat_graph(9, 16, seed=1)
    source = int(
        np.asarray(
            graph.to_internal(
                int(graph.random_nonisolated_vertices(1, seed=2)[0])
            )
        )
    )
    return graph, source


class TestMidDecodeFailure:
    def test_crash_mid_decode_releases_peers(self):
        """A rank raising while decoding its received buffers dies *after*
        the Alltoallv but before the termination Allreduce; the peers are
        already parked in (or heading into) the next collective and must
        be released with the originating rank reported, not deadlock."""
        graph, source = _rmat_case()

        def fn(comm):
            class FailingDecode(RawCodec):
                def decode_pairs(self, wire, ctx=None):
                    if comm.rank == 1:
                        raise RuntimeError("bit flip in the receive buffer")
                    return super().decode_pairs(wire, ctx)

            # Codec *instances* are accepted wherever names are; that is
            # what makes this injection possible from outside the comm
            # package.
            return bfs_1d(comm, graph.csr, source, codec=FailingDecode())

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            run_spmd(4, fn)

    def test_codec_instance_control_completes(self):
        # Control: the same harness minus the injected raise terminates
        # and matches the name-configured raw codec.
        graph, source = _rmat_case()
        res = run_spmd(4, bfs_1d, graph.csr, source, codec=RawCodec())
        ref = run_spmd(4, bfs_1d, graph.csr, source, codec="raw")
        for got, want in zip(res.returns, ref.returns):
            assert np.array_equal(got["levels"], want["levels"])
            assert np.array_equal(got["parents"], want["parents"])


class TestTimeout:
    def test_timeout_breaks_deadlock(self):
        def fn(comm):
            if comm.rank == 0:
                comm.recv(source=1)  # never sent
            else:
                comm.barrier()  # rank 0 never joins

        with pytest.raises(RuntimeError):
            run_spmd(2, fn, timeout=0.5)


class TestEngineValidation:
    def test_bad_nranks(self):
        with pytest.raises(ValueError, match="nranks"):
            SimEngine(0)

    def test_results_preserved_before_failure(self):
        """Ranks that returned before the abort keep their results...
        but the run as a whole still raises."""

        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("late failure")
            return comm.rank

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(2, fn)

    def test_non_collective_work_unaffected_by_abort_machinery(self):
        def fn(comm):
            data = np.arange(100)
            comm.charge_compute(0.0, touched=float(data.sum()))
            return int(data.sum())

        res = run_spmd(3, fn)
        assert res.returns == [4950] * 3
        assert res.stats.counter("touched") == 3 * 4950


class TestCommunicatorValidation:
    def test_bad_destinations(self):
        def fn(comm):
            with pytest.raises(ValueError, match="out of range"):
                comm.send(np.array([1]), dest=5)
            with pytest.raises(ValueError, match="out of range"):
                comm.recv(source=-1)
            with pytest.raises(ValueError, match="out of range"):
                comm.exchange(9, np.array([1]))
            return True

        assert all(run_spmd(2, fn).returns)

    def test_alltoallv_wrong_buffer_count(self):
        def fn(comm):
            with pytest.raises(ValueError, match="send buffers"):
                comm.alltoallv([np.array([1])])  # needs comm.size buffers
            return True

        assert all(run_spmd(3, fn).returns)


class TestFailurePickling:
    """Failure exceptions cross process boundaries intact (the process
    runtime ships them over a pipe; the default exception reduction
    would replay ``__init__`` with the formatted message and crash)."""

    def test_spmd_failure_round_trips_rank_exc_stats(self):
        import pickle

        from repro.mpsim import SpmdFailure

        def fn(comm):
            comm.allreduce(comm.rank)
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(SpmdFailure) as info:
            run_spmd(3, fn)
        failure = info.value
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.rank == failure.rank == 1
        assert isinstance(clone.exc, ValueError)
        assert clone.exc.args == ("boom",)
        assert str(clone) == str(failure)
        # The partial stats a recovery driver needs survive too.
        assert clone.stats.makespan == failure.stats.makespan
        assert len(clone.stats.clocks) == 3

    def test_fault_exceptions_round_trip(self):
        import pickle

        from repro.faults import RankCrashError, RetryExhaustedError

        crash = RankCrashError(2, 5, 7)
        crash_clone = pickle.loads(pickle.dumps(crash))
        assert (crash_clone.rank, crash_clone.level, crash_clone.event_index) == (2, 5, 7)
        assert str(crash_clone) == str(crash)

        retry = RetryExhaustedError("allreduce", 3, 4)
        retry_clone = pickle.loads(pickle.dumps(retry))
        assert (retry_clone.site, retry_clone.level, retry_clone.attempts) == ("allreduce", 3, 4)
        assert str(retry_clone) == str(retry)
