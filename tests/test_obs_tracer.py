"""Tracer mechanics: nesting, level inheritance, null-object path."""

from __future__ import annotations

import numpy as np

from repro.mpsim import run_spmd
from repro.obs import (
    NULL_RANK_TRACER,
    NULL_TRACER,
    Tracer,
    resolve_tracer,
)
from repro.obs.tracer import _NULL_HANDLE


class _Clock:
    """Stand-in for a RankClock: only ``.time`` is read by the tracer."""

    def __init__(self):
        self.time = 0.0


class _Comm:
    def __init__(self, rank, clock):
        self.global_rank = rank
        self.clock = clock


class TestSpans:
    def test_nesting_depth_and_parent_indices(self):
        clock = _Clock()
        rt = Tracer().for_rank(_Comm(0, clock))
        with rt.span("level", level=1):
            clock.time = 1.0
            with rt.span("td-scan"):
                clock.time = 2.0
            with rt.span("td-exchange"):
                clock.time = 5.0
        outer, scan, exch = rt.spans
        assert (outer.depth, scan.depth, exch.depth) == (0, 1, 1)
        assert outer.parent is None
        assert scan.parent == exch.parent == 0
        assert outer.t_start == 0.0 and outer.t_end == 5.0
        assert scan.duration == 1.0 and exch.duration == 3.0

    def test_level_inherited_from_enclosing_span(self):
        clock = _Clock()
        rt = Tracer().for_rank(_Comm(0, clock))
        with rt.span("level", level=7):
            with rt.span("td-exchange"):
                with rt.span("alltoallv"):
                    pass
            with rt.span("sync", level=8):
                pass
        levels = [s.level for s in rt.spans]
        assert levels == [7, 7, 7, 8]  # explicit level wins

    def test_instant_marker(self):
        clock = _Clock()
        rt = Tracer().for_rank(_Comm(0, clock))
        with rt.span("level", level=2):
            clock.time = 3.0
            mark = rt.instant("spmsv-kernel", kernel="spa", candidates=9)
        assert mark.instant and mark.duration == 0.0
        assert mark.t_start == 3.0
        assert mark.level == 2 and mark.parent == 0
        assert mark.meta == {"kernel": "spa", "candidates": 9}

    def test_meta_kwargs_stored(self):
        rt = Tracer().for_rank(_Comm(0, _Clock()))
        with rt.span("encode", codec="bitmap") as span:
            pass
        assert span.meta == {"codec": "bitmap"}


class TestTracer:
    def test_for_rank_returns_same_handle(self):
        tracer = Tracer()
        comm = _Comm(3, _Clock())
        assert tracer.for_rank(comm) is tracer.for_rank(comm)
        assert tracer.ranks == [3] and tracer.nranks == 1

    def test_makespan_and_reset(self):
        tracer = Tracer()
        clock = _Clock()
        rt = tracer.for_rank(_Comm(0, clock))
        with rt.span("level", level=1):
            clock.time = 4.0
        assert tracer.makespan == 4.0
        assert len(tracer.all_spans()) == 1
        tracer.reset()
        assert tracer.nranks == 0 and tracer.makespan == 0.0

    def test_records_under_spmd_threads(self):
        tracer = Tracer()

        def fn(comm):
            rt = tracer.for_rank(comm)
            with rt.span("level", level=1):
                comm.allreduce(np.int64(comm.rank))
            return True

        # Pinned to the shared-memory runtime: the tracer here is a
        # closure capture, which only the runner's ``tracer=`` kwarg
        # plumbing can ship back from process workers.
        assert all(run_spmd(4, fn, runtime="threads").returns)
        assert tracer.ranks == [0, 1, 2, 3]
        for rank in tracer.ranks:
            (span,) = tracer.spans_for(rank)
            assert span.phase == "level" and span.rank == rank


class TestNullPath:
    def test_resolve_none_is_shared_null(self):
        assert resolve_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer

    def test_null_handles_are_shared_singletons(self):
        rt = NULL_TRACER.for_rank(_Comm(0, _Clock()))
        assert rt is NULL_RANK_TRACER
        # The hot path allocates nothing: every span() is the same object.
        assert rt.span("level", level=1) is _NULL_HANDLE
        assert rt.span("other", meta=1) is _NULL_HANDLE
        with rt.span("x") as span:
            assert span is None
        assert rt.instant("spmsv-kernel", kernel="spa") is None
