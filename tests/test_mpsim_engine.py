"""Engine tests: SPMD execution, clocks, stats, aborts, sub-communicators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpsim import ProcessorGrid, RankClock, run_spmd
from repro.mpsim.engine import CollectiveCostModel


class TestRunSpmd:
    def test_returns_per_rank_values(self):
        res = run_spmd(5, lambda comm: comm.rank * 2)
        assert res.returns == [0, 2, 4, 6, 8]
        assert list(res) == res.returns
        assert res[3] == 6

    def test_single_rank(self):
        res = run_spmd(1, lambda comm: comm.allreduce(7))
        assert res.returns == [7]

    def test_invalid_nranks(self):
        with pytest.raises(ValueError, match="nranks"):
            run_spmd(0, lambda comm: None)

    def test_alltoallv_round_trip(self):
        def fn(comm):
            send = [np.array([comm.rank * 100 + j]) for j in range(comm.size)]
            recv = comm.alltoallv(send)
            return [int(r[0]) for r in recv]

        res = run_spmd(4, fn)
        for j in range(4):
            assert res[j] == [i * 100 + j for i in range(4)]

    def test_allgatherv_concat_order(self):
        def fn(comm):
            return comm.allgatherv(np.full(comm.rank + 1, comm.rank))

        res = run_spmd(3, fn)
        expected = np.array([0, 1, 1, 2, 2, 2])
        for out in res.returns:
            assert np.array_equal(out, expected)

    def test_allreduce_array(self):
        def fn(comm):
            return comm.allreduce(np.array([comm.rank, 1]), op="sum")

        res = run_spmd(4, fn)
        assert np.array_equal(res[0], [6, 4])

    def test_bcast_non_root_payload_ignored(self):
        def fn(comm):
            return comm.bcast({"n": 42} if comm.rank == 2 else None, root=2)

        res = run_spmd(4, fn)
        assert all(out == {"n": 42} for out in res.returns)

    def test_gather_and_scatter(self):
        def fn(comm):
            gathered = comm.gather(comm.rank**2, root=0)
            items = None
            if comm.rank == 0:
                items = [g + 1 for g in gathered]
            return comm.scatter(items, root=0)

        res = run_spmd(4, fn)
        assert res.returns == [1, 2, 5, 10]

    def test_exception_aborts_run(self):
        def fn(comm):
            if comm.rank == 2:
                raise KeyError("kaput")
            comm.barrier()
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 2 failed"):
            run_spmd(4, fn)

    def test_exception_before_any_collective(self):
        with pytest.raises(RuntimeError, match="ZeroDivisionError"):
            run_spmd(3, lambda comm: 1 // 0)


class TestPointToPoint:
    def test_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.array([1, 2, 3]), dest=1)
                return None
            return comm.recv(source=0)

        res = run_spmd(2, fn)
        assert np.array_equal(res[1], [1, 2, 3])

    def test_two_messages_fifo(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.array([1]), dest=1)
                comm.send(np.array([2]), dest=1)
                return None
            first = comm.recv(source=0)
            second = comm.recv(source=0)
            return (int(first[0]), int(second[0]))

        res = run_spmd(2, fn)
        assert res[1] == (1, 2)


class TestSplit:
    def test_split_by_parity(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.size, sub.rank, sub.allreduce(comm.rank))

        res = run_spmd(6, fn)
        for rank, (size, sub_rank, total) in enumerate(res.returns):
            assert size == 3
            assert sub_rank == rank // 2
            assert total == (0 + 2 + 4 if rank % 2 == 0 else 1 + 3 + 5)

    def test_split_none_color(self):
        def fn(comm):
            sub = comm.split(color=None if comm.rank == 0 else 1)
            if comm.rank == 0:
                return sub  # None (MPI_UNDEFINED)
            return sub.allreduce(1)

        res = run_spmd(3, fn)
        assert res[0] is None
        assert res[1] == res[2] == 2

    def test_split_key_reorders(self):
        def fn(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        res = run_spmd(4, fn)
        assert res.returns == [3, 2, 1, 0]


class TestGrid:
    def test_grid_geometry(self):
        def fn(comm):
            grid = ProcessorGrid(comm)
            return (grid.row, grid.col, grid.row_comm.size, grid.col_comm.size)

        res = run_spmd(9, fn)
        for rank, (i, j, rs, cs) in enumerate(res.returns):
            assert (i, j) == divmod(rank, 3)
            assert rs == cs == 3

    def test_transpose_vector_swaps(self):
        def fn(comm):
            grid = ProcessorGrid(comm)
            out = grid.transpose_vector(np.array([grid.row, grid.col]))
            return (int(out[0]), int(out[1]))

        res = run_spmd(4, fn)
        for rank, (i, j) in enumerate(res.returns):
            my_i, my_j = divmod(rank, 2)
            assert (i, j) == (my_j, my_i)  # received P(j,i)'s coordinates

    def test_non_square_rejected_without_dims(self):
        def fn(comm):
            with pytest.raises(ValueError, match="perfect square"):
                ProcessorGrid(comm)
            return True

        assert all(run_spmd(6, fn).returns)

    def test_rectangular_grid(self):
        def fn(comm):
            grid = ProcessorGrid(comm, pr=2, pc=3)
            return (grid.row_comm.size, grid.col_comm.size, grid.is_square)

        res = run_spmd(6, fn)
        assert res[0] == (3, 2, False)

    def test_row_col_comm_sums(self):
        def fn(comm):
            grid = ProcessorGrid(comm)
            return (
                grid.row_comm.allreduce(comm.rank),
                grid.col_comm.allreduce(comm.rank),
            )

        res = run_spmd(4, fn)
        # Grid: ranks [[0,1],[2,3]]: row sums 1, 5; col sums 2, 4.
        assert res[0] == (1, 2)
        assert res[3] == (5, 4)


class TestClockAccounting:
    def test_charge_compute_accumulates(self):
        clock = RankClock()
        clock.charge_compute(1.5, edges=10)
        clock.charge_compute(0.5, edges=5)
        assert clock.time == 2.0
        assert clock.compute_time == 2.0
        assert clock.counters["edges"] == 15

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            RankClock().charge_compute(-1.0)

    def test_collective_wait_attribution(self):
        clock = RankClock()
        clock.charge_compute(1.0)
        clock.complete_collective(completion_time=3.0, transfer_cost=0.5)
        assert clock.time == 3.0
        assert clock.mpi_transfer_time == 0.5
        assert clock.mpi_wait_time == pytest.approx(1.5)
        assert clock.mpi_time == pytest.approx(2.0)

    def test_slow_ranks_make_fast_ranks_wait(self):
        class UnitCost(CollectiveCostModel):
            def cost(self, kind, parties, s, r):
                return 0.25

        def fn(comm):
            comm.charge_compute(float(comm.rank))  # rank r is r seconds behind
            comm.barrier()
            return comm.clock.snapshot()

        res = run_spmd(3, fn, cost_model=UnitCost())
        # Everyone completes at max(arrivals) + 0.25 = 2.25.
        for rank, snap in enumerate(res.returns):
            assert snap["time"] == pytest.approx(2.25)
            assert snap["mpi_wait_time"] == pytest.approx(2.0 - rank)
            assert snap["mpi_transfer_time"] == pytest.approx(0.25)

    def test_stats_volumes_exact(self):
        def fn(comm):
            send = [np.arange(5) for _ in range(comm.size)]
            comm.alltoallv(send)
            comm.allgatherv(np.arange(3))
            return None

        res = run_spmd(4, fn)
        # alltoallv: each rank sends 5 words to 3 peers (self excluded).
        assert res.stats.words_sent("alltoallv") == 4 * 3 * 5
        # allgatherv: each rank receives 4 pieces of 3 words.
        assert res.stats.words_recv("allgatherv") == 4 * 12
        assert res.stats.calls("alltoallv") == 1

    def test_determinism_across_runs(self):
        class SizedCost(CollectiveCostModel):
            def cost(self, kind, parties, s, r):
                return 1e-6 * (s + r) + 1e-7 * parties

        def fn(comm):
            rng = np.random.default_rng(comm.rank)
            for _ in range(5):
                comm.charge_compute(1e-5 * comm.rank)
                comm.alltoallv(
                    [rng.integers(0, 10, size=j + comm.rank) for j in range(comm.size)]
                )
            return comm.clock.time

        first = run_spmd(6, fn, cost_model=SizedCost()).returns
        second = run_spmd(6, fn, cost_model=SizedCost()).returns
        assert first == second
