"""Tests for the ASCII figure renderer."""

from __future__ import annotations

import pytest

from repro.bench.plotting import (
    bar_chart,
    line_chart,
    render_figure,
    series_from_table,
)
from repro.bench.report import Table


class TestLineChart:
    def test_basic_structure(self):
        chart = line_chart(
            "T", [1, 10, 100], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]}
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "legend: o=a   *=b" in lines[-1]
        # Extremes labeled on the y axis.
        assert any(line.lstrip().startswith("3 |") for line in lines)
        assert any(line.lstrip().startswith("1 |") for line in lines)

    def test_markers_at_extremes(self):
        chart = line_chart("T", [1, 100], {"up": [0.0, 10.0]}, width=40, height=8)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("o")  # max at top-right
        assert "o" in rows[-1]  # min at bottom-left

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one series"):
            line_chart("T", [1, 2], {})
        with pytest.raises(ValueError, match="points"):
            line_chart("T", [1, 2], {"a": [1.0]})
        with pytest.raises(ValueError, match="two x"):
            line_chart("T", [1], {"a": [1.0]})
        with pytest.raises(ValueError, match="positive"):
            line_chart("T", [0, 2], {"a": [1.0, 2.0]})

    def test_flat_series_does_not_crash(self):
        chart = line_chart("T", [1, 2, 4], {"flat": [5.0, 5.0, 5.0]}, log_x=True)
        assert "o" in chart


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart(
            "B", ["one", "two"], {"x": [1.0, 2.0], "y": [4.0, 0.0]}, width=8
        )
        lines = chart.splitlines()
        x_one = next(line for line in lines if line.strip().startswith("x") and "1" in line)
        y_one = next(line for line in lines if line.strip().startswith("y") and "4" in line)
        assert y_one.count("#") == 8  # the peak fills the width
        assert 1 <= x_one.count("#") <= 3

    def test_zero_value_renders_no_bar(self):
        chart = bar_chart("B", ["c"], {"z": [0.0]})
        line = next(ln for ln in chart.splitlines() if ln.strip().startswith("z"))
        assert "#" not in line

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one series"):
            bar_chart("B", ["c"], {})
        with pytest.raises(ValueError, match="values"):
            bar_chart("B", ["c", "d"], {"x": [1.0]})


class TestSeriesFromTable:
    def make_table(self):
        t = Table(title="T", headers=["scale", "cores", "1d", "2d", "label"])
        t.add_row(29, 512, 1.0, 2.0, "a")
        t.add_row(29, 1024, 3.0, 4.0, "b")
        t.add_row(32, 512, 9.0, 9.5, "c")
        return t

    def test_where_filters_panel(self):
        xs, series = series_from_table(
            self.make_table(), "cores", where={"scale": 29}
        )
        assert xs == [512.0, 1024.0]
        assert series["1d"] == [1.0, 3.0]

    def test_auto_series_skip_non_numeric(self):
        _xs, series = series_from_table(
            self.make_table(), "cores", where={"scale": 29}
        )
        assert "label" not in series

    def test_explicit_columns(self):
        _xs, series = series_from_table(
            self.make_table(), "cores", series_columns=["2d"], where={"scale": 29}
        )
        assert list(series) == ["2d"]

    def test_no_matching_rows(self):
        with pytest.raises(ValueError, match="no rows match"):
            series_from_table(self.make_table(), "cores", where={"scale": 99})


class TestRenderFigure:
    def test_known_figures_render(self):
        from repro.bench.experiments import run_experiment

        for exp_id in ("fig5", "fig10"):
            table = run_experiment(exp_id, quick=True)
            chart = render_figure(table, exp_id)
            assert chart is not None
            assert table.title.split(" [")[0] in chart

    def test_series_are_algorithms_only(self):
        from repro.bench.experiments import run_experiment

        table = run_experiment("fig5", quick=True)
        chart = render_figure(table, "fig5")
        assert "o=1d" in chart
        assert "edgefactor" not in chart.splitlines()[-1]

    def test_tables_without_charts_return_none(self):
        t = Table(title="misc", headers=["a"])
        t.add_row(1)
        assert render_figure(t, "table1") is None
