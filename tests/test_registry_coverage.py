"""Meta-test: every ``ALGORITHMS`` entry must be covered by the suite.

The property/fault/trace harnesses derive their algorithm lists from
:data:`repro.core.runner.ALGORITHMS` *at import time*, and the golden
parity battery runs whatever ``tests/golden/capture.py`` configures.
These tests compare those frozen lists against the live registry, per
declared capability:

* every algorithm appears in the oracle-equivalence sweep;
* every ``"wire"``-capable family appears in the codec/sieve sweep;
* every ``"faults"``-capable algorithm appears in the random-fault
  battery, its flat variant in the crash-at-every-level sweep;
* every ``"trace-profile"``-capable family appears in the trace
  invariants;
* every engine family has a committed golden fixture configuration;
* every algorithm appears in the kernel-backend equivalence sweep
  (numpy vs pure-python kernels, ``tests/test_property_kernels.py``);
* every algorithm appears in the runtime-backend equivalence sweep
  (threads vs sequential vs processes execution runtimes,
  ``tests/test_property_runtimes.py``).

Because the harness lists are import-time snapshots, registering an
algorithm without extending the harness predicates (or, for golden,
without a capture config) makes :func:`harness_gaps` non-empty — the
demonstration test below proves the failure mode by injecting a dummy
registry entry and asserting every gap is reported.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

from repro.core.runner import ALGORITHMS, ENGINE_CAPABILITIES, AlgorithmSpec

from tests import (
    test_property_bfs,
    test_property_faults,
    test_property_kernels,
    test_property_runtimes,
    test_trace_invariants,
)

_spec = importlib.util.spec_from_file_location(
    "registry_coverage_capture",
    Path(__file__).resolve().parent / "golden" / "capture.py",
)
golden_capture = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden_capture)


def required_coverage(registry: dict[str, AlgorithmSpec]) -> dict[str, set]:
    """harness name -> algorithms the registry says it must cover."""
    return {
        "oracle": set(registry),
        "wire": {
            name
            for name, spec in registry.items()
            if "wire" in spec.capabilities and not spec.hybrid
        },
        "faults": {
            name
            for name, spec in registry.items()
            if "faults" in spec.capabilities
        },
        "crash-sweep": {
            name
            for name, spec in registry.items()
            if "faults" in spec.capabilities and not spec.hybrid
        },
        "trace": {
            name
            for name, spec in registry.items()
            if "trace-profile" in spec.capabilities and not spec.hybrid
        },
        "golden": {
            name
            for name, spec in registry.items()
            if {"wire", "faults"} <= spec.capabilities and not spec.hybrid
        },
        "kernel-backend": set(registry),
        "runtime-backend": set(registry),
    }


def harness_coverage() -> dict[str, set]:
    """harness name -> algorithms the harness modules actually list."""
    return {
        "oracle": set(test_property_bfs.ALL_ALGORITHMS),
        "wire": set(test_property_bfs.WIRE_ALGORITHMS),
        "faults": set(test_property_faults.FAULT_ALGORITHMS),
        "crash-sweep": set(test_property_faults.SWEEP_ALGORITHMS),
        "trace": set(test_trace_invariants.TRACE_ALGORITHMS),
        "golden": set(golden_capture.CONFIGS),
        "kernel-backend": set(test_property_kernels.KERNEL_BACKEND_ALGORITHMS),
        "runtime-backend": set(test_property_runtimes.RUNTIME_BACKEND_ALGORITHMS),
    }


def harness_gaps(registry: dict[str, AlgorithmSpec]) -> list[tuple[str, str]]:
    """(harness, algorithm) pairs the suite fails to cover for ``registry``."""
    covered = harness_coverage()
    return sorted(
        (harness, name)
        for harness, required in required_coverage(registry).items()
        for name in required - covered[harness]
    )


def test_every_algorithm_covered():
    """The live registry has no coverage gaps; a plugin merged without
    harness coverage fails here, by name and by missing harness."""
    assert harness_gaps(ALGORITHMS) == []


def test_harness_lists_carry_no_stale_entries():
    """The harness lists never name algorithms the registry dropped."""
    for harness, covered in harness_coverage().items():
        assert covered <= set(ALGORITHMS), harness


def test_dummy_registration_is_caught(monkeypatch):
    """Demonstrate the failure mode: a full-capability algorithm
    registered without any harness coverage is reported as a gap in
    every harness (the import-time lists predate the registration)."""
    monkeypatch.setitem(
        ALGORITHMS,
        "dummy-uncovered",
        AlgorithmSpec("dummy-uncovered", False, None, ENGINE_CAPABILITIES),
    )
    gaps = harness_gaps(ALGORITHMS)
    for harness in required_coverage(ALGORITHMS):
        assert (harness, "dummy-uncovered") in gaps, harness
    # ... and nothing else is newly missing.
    assert all(name == "dummy-uncovered" for _, name in gaps)


def test_dummy_hybrid_registration_is_caught(monkeypatch):
    """Hybrid variants are exempt from the flat-only sweeps but must
    still appear in the oracle and random-fault batteries."""
    monkeypatch.setitem(
        ALGORITHMS,
        "dummy-hybrid",
        AlgorithmSpec("dummy", True, None, ENGINE_CAPABILITIES),
    )
    gaps = harness_gaps(ALGORITHMS)
    assert ("oracle", "dummy-hybrid") in gaps
    assert ("faults", "dummy-hybrid") in gaps
    assert ("crash-sweep", "dummy-hybrid") not in gaps
    assert ("wire", "dummy-hybrid") not in gaps
