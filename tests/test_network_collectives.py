"""Tests for the collective-algorithm selection (Section 7 extension)."""

from __future__ import annotations

import pytest

from repro.model import NetworkCostModel
from repro.model.machine import FRANKLIN, HOPPER
from repro.model.network import a2a_time, allgather_time, effective_a2a_nodes


class TestA2aAlgorithms:
    def test_bruck_wins_small_messages(self):
        _, algo = a2a_time(HOPPER, 4096, 100, 4, 1024)
        assert algo == "bruck"

    def test_pairwise_wins_large_messages(self):
        _, algo = a2a_time(HOPPER, 4096, 1e7, 4, 1024)
        assert algo == "pairwise"

    def test_auto_is_min(self):
        for words in (10, 1e4, 1e7):
            auto, _ = a2a_time(FRANKLIN, 1024, words, 4, 256)
            pairwise, _ = a2a_time(FRANKLIN, 1024, words, 4, 256, algorithm="pairwise")
            bruck, _ = a2a_time(FRANKLIN, 1024, words, 4, 256, algorithm="bruck")
            assert auto == pytest.approx(min(pairwise, bruck))

    def test_forced_algorithm_respected(self):
        t, algo = a2a_time(HOPPER, 4096, 100, 4, 1024, algorithm="pairwise")
        assert algo == "pairwise"
        assert t > a2a_time(HOPPER, 4096, 100, 4, 1024)[0]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown all-to-all"):
            a2a_time(HOPPER, 64, 1e3, 4, 16, algorithm="hypercube")


class TestAllgatherAlgorithms:
    def test_ring_wins_large_messages(self):
        _, algo = allgather_time(HOPPER, 64, 1e6, 4, 1024)
        assert algo == "ring"

    def test_recursive_doubling_wins_tiny_messages(self):
        _, algo = allgather_time(HOPPER, 4096, 10, 4, 1024)
        assert algo == "recursive-doubling"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown allgather"):
            allgather_time(HOPPER, 64, 1e3, 4, 16, algorithm="star")


class TestEffectiveNodes:
    def test_geometric_mean(self):
        assert effective_a2a_nodes(16, 1024) == 128
        assert effective_a2a_nodes(1024, 1024) == 1024
        assert effective_a2a_nodes(1, 1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_a2a_nodes(0, 4)


class TestModelPlumbing:
    def test_cost_model_accepts_algorithm_choice(self):
        auto = NetworkCostModel(HOPPER, total_ranks=4096)
        forced = NetworkCostModel(
            HOPPER, total_ranks=4096, a2a_algorithm="pairwise"
        )
        # Tiny payload: auto picks bruck, beating the forced pairwise.
        assert auto.cost("alltoallv", 4096, 10.0, 10.0) < forced.cost(
            "alltoallv", 4096, 10.0, 10.0
        )
        # Large payload: identical (auto picks pairwise too).
        assert auto.cost("alltoallv", 4096, 1e8, 1e8) == pytest.approx(
            forced.cost("alltoallv", 4096, 1e8, 1e8)
        )
