"""Ablation: locality relabeling vs the paper's randomization (§4.4, §7)."""


def test_ablation_ordering(reproduce):
    table = reproduce("abl-ordering")
    rows = {(r[0], r[1]): {"cut": r[2], "balance": r[3]} for r in table.rows}
    # Randomization makes the cut near-worst-case but the balance tight
    # (Section 4.4's trade, on both graphs).
    for graph in ("web crawl", "R-MAT"):
        assert rows[(graph, "random (paper)")]["balance"] < 1.4, graph
        assert rows[(graph, "random (paper)")]["cut"] > 0.85, graph
    # The crawl has structure to exploit: its natural order cuts far less.
    assert (
        rows[("web crawl", "natural")]["cut"]
        < 0.6 * rows[("web crawl", "random (paper)")]["cut"]
    )
    # RCM recovers some crawl locality but barely moves R-MAT ("the
    # graphs lack good separators", Section 6).
    assert (
        rows[("web crawl", "RCM")]["cut"]
        < 0.85 * rows[("web crawl", "random (paper)")]["cut"]
    )
    assert rows[("R-MAT", "RCM")]["cut"] > 0.8 * rows[("R-MAT", "random (paper)")]["cut"]
    # Without randomization, R-MAT's skew wrecks the balance.
    assert rows[("R-MAT", "natural")]["balance"] > 2.0
