"""Figure 5: strong scaling on Franklin (GTEPS)."""


def _panel(table, scale):
    return {
        row[2]: dict(zip(table.headers[3:], row[3:]))
        for row in table.rows
        if row[0] == scale
    }


def test_fig5_franklin_strong(reproduce):
    table = reproduce("fig5")
    s29 = _panel(table, 29)

    # Flat 1D is the fastest flat code at small/medium concurrency and is
    # roughly 1.5-1.8x the flat 2D code (paper's headline for Franklin).
    for cores in (512, 1024, 2048):
        assert s29[cores]["1d"] > s29[cores]["2d"]
    ratio = s29[1024]["1d"] / s29[1024]["2d"]
    assert 1.2 < ratio < 2.5

    # The 1D hybrid is slower than flat 1D at 512 cores but overtakes it
    # at the largest concurrency.
    assert s29[512]["1d-hybrid"] < s29[512]["1d"]
    assert s29[4096]["1d-hybrid"] > s29[4096]["1d"]

    # Everything strong-scales: more cores, more GTEPS.
    for algo in ("1d", "1d-hybrid", "2d", "2d-hybrid"):
        series = [s29[c][algo] for c in (512, 1024, 2048, 4096)]
        assert all(b > a for a, b in zip(series, series[1:]))

    # Absolute rates in the paper's band (flat 1D: ~2.5 -> ~7.5 GTEPS).
    assert 1.5 < s29[512]["1d"] < 4.0
    assert 5.0 < s29[4096]["1d"] < 9.5

    # Larger problem (scale 32): flat 1D still leads the 2D codes.
    s32 = _panel(table, 32)
    assert s32[4096]["1d"] > s32[4096]["2d"]
