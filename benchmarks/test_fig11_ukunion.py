"""Figure 11: the high-diameter web crawl (uk-union stand-in)."""


def test_fig11_ukunion(reproduce):
    table = reproduce("fig11")
    flat = [row for row in table.rows if row[0] == "2d"]
    hybrid = [row for row in table.rows if row[0] == "2d-hybrid"]
    time_col = table.headers.index("mean time (s)")
    comm_pct_col = table.headers.index("comm %")
    iters_col = table.headers.index("iterations")

    # ~140 level-synchronous iterations (the dataset's defining property).
    assert all(row[iters_col] > 100 for row in table.rows)
    # Communication is a small fraction of the execution for every run.
    assert all(row[comm_pct_col] < 20.0 for row in table.rows)
    # "Since communication is not the most important factor, the hybrid
    # algorithm is slower than flat MPI" at matched core budgets (rows
    # are paired by position: ~25/~50/~100 modeled cores).
    for frow, hrow in zip(flat, hybrid):
        assert hrow[time_col] > frow[time_col]
    # Flat MPI keeps speeding up across the sweep (paper: ~4x from 500 to
    # 4000 cores).
    flat_times = [row[time_col] for row in flat]
    assert flat_times[-1] < flat_times[0]
