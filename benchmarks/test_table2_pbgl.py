"""Table 2: flat 2D vs the PBGL-style baseline (Carver model)."""


def test_table2_pbgl(reproduce):
    table = reproduce("table2")
    scale_cols = [h for h in table.headers if h.startswith("scale")]
    by_key = {(row[0], row[1]): row[2:] for row in table.rows}
    cores_list = sorted({k[0] for k in by_key})
    for cores in cores_list:
        pbgl = by_key[(cores, "PBGL(-like)")]
        two_d = by_key[(cores, "Flat 2D")]
        for i, col in enumerate(scale_cols):
            ratio = two_d[i] / pbgl[i]
            # Paper: flat 2D is "up to 16x faster than PBGL even on these
            # small problem instances"; require a solid order-of-magnitude
            # class gap.
            assert ratio > 5.0, (cores, col, ratio)
        # PBGL sits in the tens-of-MTEPS regime (paper: 22-40 MTEPS).
        assert all(10.0 < v < 200.0 for v in pbgl), (cores, pbgl)
