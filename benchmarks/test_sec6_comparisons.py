"""Section 6 text comparisons: reference MPI code and single-node BFS."""


def test_sec6_reference_mpi(reproduce):
    table = reproduce("sec6-ref")
    functional = [row for row in table.rows if row[0].startswith("functional")]
    projected = [row for row in table.rows if row[0].startswith("projected")]
    # The tuned code wins everywhere.
    assert all(row[4] > 1.0 for row in table.rows)
    # At paper scale the advantage *grows* with core count
    # (paper: 2.72x -> 3.43x -> 4.13x at 512/1024/2048).
    speedups = [row[4] for row in projected]
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    assert speedups[0] > 1.5
    assert functional  # both regimes exercised


def test_sec6_single_node(reproduce):
    table = reproduce("sec6-node")
    speedups = {row[0]: row[3] for row in table.rows}
    rmat_key = next(k for k in speedups if k.startswith("R-MAT"))
    # The tuned multithreaded single-node code clearly beats the untuned
    # queue discipline on the Agarwal-style R-MAT input (the paper beats
    # even *tuned* external codes by 1.3x; our baseline is weaker, so the
    # gap is larger)...
    assert speedups[rmat_key] > 1.3
    # ... and wins on every Leiserson-style structured instance too,
    for name, speedup in speedups.items():
        assert speedup > 1.0, name
    # ... though by less: structured meshes have fewer duplicate
    # candidates for dedup to exploit and many more levels of thread
    # overhead to pay.
    assert all(
        speedups[k] < speedups[rmat_key] for k in speedups if k != rmat_key
    )
