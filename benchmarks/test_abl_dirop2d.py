"""2D + direction-optimization vs plain 2D and 1D + dirop.

The follow-up work (arXiv:1705.04590) reports that folding Beamer's
bottom-up sweep into the 2D SpMSV loop wins the end-to-end comparison on
R-MAT; these shape assertions pin that modeled reproduction target at
every (scale, nprocs) point above the small-p crossover.
"""


def test_dirop2d_wins_end_to_end(reproduce):
    table = reproduce("abl-dirop2d")
    for row in table.rows:
        rows = dict(zip(table.headers, row))
        # Strictly faster than the plain 2D decomposition...
        assert rows["time 2d-dirop (ms)"] < rows["time 2d (ms)"], rows
        assert rows["speedup vs 2d"] > 1.0, rows
        # ... and no slower than 1D + dirop at p >= 16 (the 2D collectives
        # involve only sqrt(p) participants).
        assert rows["time 2d-dirop (ms)"] <= rows["time 1d-dirop (ms)"], rows
        # The win comes from the bottom-up early exit: materially fewer
        # modeled edge scans than the always-top-down 2D SpMSV.
        assert rows["scan ratio vs 2d"] > 2.0, rows


def test_dirop2d_quick_point_holds_the_bar():
    # The CI smoke configuration (scale 12, p = 16) satisfies the same
    # bar the full sweep does, so the quick job is a faithful gate.
    # Run directly (not via the reproduce fixture) so the committed
    # results/abl-dirop2d.txt artifact keeps the full-scale table.
    from repro.bench.experiments import run_experiment

    table = run_experiment("abl-dirop2d", quick=True)
    (row,) = table.rows
    rows = dict(zip(table.headers, row))
    assert rows["time 2d-dirop (ms)"] < rows["time 2d (ms)"], rows
    assert rows["time 2d-dirop (ms)"] <= rows["time 1d-dirop (ms)"], rows
