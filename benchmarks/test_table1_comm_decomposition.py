"""Table 1: Allgatherv/Alltoallv decomposition of the flat 2D algorithm."""


def test_table1_comm_decomposition(reproduce):
    table = reproduce("table1")
    rows = {
        (row[0], row[2]): {"time": row[3], "ag": row[4], "a2a": row[5]}
        for row in table.rows  # keyed by (cores, edgefactor)
    }
    # At fixed edge count, BFS time grows as the graph gets sparser
    # (larger vectors, more levels) — at every core count.
    for cores in (1024, 2025, 4096):
        assert rows[(cores, 4)]["time"] > rows[(cores, 16)]["time"] > rows[(cores, 64)]["time"]
    # The Allgatherv share grows with sparsity ("increased sparsity only
    # affects the Allgatherv performance")...
    for cores in (1024, 2025, 4096):
        assert rows[(cores, 16)]["ag"] > rows[(cores, 64)]["ag"]
        assert rows[(cores, 4)]["ag"] > rows[(cores, 64)]["ag"]
    # (strict ef4 > ef16 monotonicity holds at 1024 cores; at 4096 the
    # extra computation of the very sparse graph dilutes the percentage —
    # a documented deviation.)
    assert rows[(1024, 4)]["ag"] > rows[(1024, 16)]["ag"]
    # ... and with core count.
    for ef in (4, 16, 64):
        assert rows[(4096, ef)]["ag"] > rows[(1024, ef)]["ag"]
    # For the Graph 500 configuration the expand phase outweighs the fold
    # ("Allgatherv always consumes a higher percentage ... than Alltoallv,
    # with the gap widening as the matrix gets sparser").
    for cores in (1024, 2025, 4096):
        assert rows[(cores, 4)]["ag"] > rows[(cores, 4)]["a2a"]
        gap4 = rows[(cores, 4)]["ag"] - rows[(cores, 4)]["a2a"]
        gap16 = rows[(cores, 16)]["ag"] - rows[(cores, 16)]["a2a"]
        assert gap4 > gap16
