"""Batched multi-source query throughput: the repro.query acceptance bar.

One bit-parallel traversal advances up to 64 sources at once, paying the
per-level Alltoallv startup and termination Allreduce once per batch.
The shape assertions pin the subsystem's acceptance criterion: modeled
queries/sec at batch 64 must beat unbatched operation by >= 8x on R-MAT,
with throughput monotone in the batch size and the per-traversal time
growing sublinearly (the whole point of lane packing).
"""


def _by_batch(table):
    return {row[0]: dict(zip(table.headers, row)) for row in table.rows}


def test_batch64_clears_the_8x_bar(reproduce):
    table = reproduce("query-throughput")
    rows = _by_batch(table)
    assert rows[64]["speedup"] >= 8.0, rows[64]
    # Throughput is monotone in the batch size...
    qps = [dict(zip(table.headers, row))["queries/s"] for row in table.rows]
    assert qps == sorted(qps), qps
    # ... because one traversal amortizes the batch: 64 lanes cost far
    # less than 64 traversals (sublinear growth of the traversal time).
    assert (
        rows[64]["time/traversal (ms)"] < 16 * rows[1]["time/traversal (ms)"]
    ), rows[64]


def test_quick_point_holds_the_bar():
    # The CI smoke configuration satisfies the same bar the full sweep
    # does, so the quick job is a faithful gate.  Run directly (not via
    # the reproduce fixture) so the committed results artifact keeps the
    # full-scale table.
    from repro.bench.experiments import run_experiment

    table = run_experiment("query-throughput", quick=True)
    rows = _by_batch(table)
    assert rows[64]["speedup"] >= 8.0, rows[64]
