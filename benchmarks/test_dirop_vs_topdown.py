"""Direction-optimizing 1D BFS vs the paper's top-down 1D.

The follow-up work (Buluc, Beamer, Madduri et al.) shows switching to a
bottom-up sweep on dense frontiers cuts edges scanned by an order of
magnitude; these shape assertions pin that reproduction target, plus the
threshold ablation's monotone degeneration to pure top-down.
"""


def test_dirop_vs_topdown(reproduce):
    table = reproduce("dirop")
    for row in table.rows:
        rows = dict(zip(table.headers, row))
        # Strictly fewer modeled edges scanned, at every scale...
        assert rows["edges 1d-dirop"] < rows["edges 1d"], rows
        # ... by a wide margin on the hub-dominated R-MAT middle levels,
        assert rows["scan ratio"] > 4.0, rows
        # ... and a strictly faster modeled traversal.
        assert rows["time 1d-dirop (ms)"] < rows["time 1d (ms)"], rows
    # The saving grows with scale (denser middle levels at equal
    # edgefactor mean more to skip).
    ratios = table.column("scan ratio")
    assert ratios == sorted(ratios), ratios


def test_dirop_threshold_ablation(reproduce):
    table = reproduce("abl-dirop")
    by_alpha = {row[0]: dict(zip(table.headers, row)) for row in table.rows}
    never = by_alpha[1e-9]
    tuned = by_alpha[14.0]
    # alpha -> 0 never switches: it is the top-down baseline.
    assert never["bottom-up levels"] == 0
    # The tuned threshold actually runs bottom-up levels and scans fewer
    # edges than never switching.
    assert tuned["bottom-up levels"] >= 1
    assert tuned["edges scanned"] < never["edges scanned"]
    # Every switching configuration beats never-switching on scans.
    for alpha, row in by_alpha.items():
        if alpha > 1e-9:
            assert row["edges scanned"] < never["edges scanned"], alpha
