"""Ablation: collective algorithm selection (§7 future work)."""


def test_ablation_collectives(reproduce):
    table = reproduce("abl-collectives")
    picks = dict(zip(table.column("words/rank/level"), table.column("auto picks")))
    # Tiny messages (latency-bound): Bruck's log(p) rounds win.
    assert picks[10] == "bruck"
    assert picks[100] == "bruck"
    # Bulk messages (bandwidth-bound): pairwise moves each word once.
    assert picks[100_000] == "pairwise"
    assert picks[1_000_000] == "pairwise"
    # Auto never exceeds either fixed algorithm.
    for row in table.rows:
        _w, pairwise, bruck, _pick = row
        assert min(pairwise, bruck) > 0
