"""Frontier compression + sieve: wire-volume reproduction targets.

The compression/sieve layer (Lv et al., arXiv:1208.5542) must (a) never
change the traversal — the property harness pins bit-identical parents —
and (b) cut the priced communication volume enough to matter under the
alpha-beta model.  These shape assertions pin (b): the acceptance target
is >= 2x reduction in alltoallv wire words for delta-varint vs raw on
R-MAT, with the sieve only ever shrinking volume further.
"""


def _rows_by_config(table):
    return {
        (row[0], row[1], row[2]): dict(zip(table.headers, row))
        for row in table.rows
    }


def test_comm_compress(reproduce):
    table = reproduce("comm-compress")
    rows = _rows_by_config(table)
    algorithms = {key[0] for key in rows}
    for algo in algorithms:
        raw = rows[(algo, "raw", "off")]
        dv = rows[(algo, "delta-varint", "off")]
        auto = rows[(algo, "auto", "off")]
        # Raw is the identity: wire == payload.
        assert raw["a2a wire"] == raw["a2a payload"], raw
        # Every codec must beat (or match) raw on the wire, and
        # delta-varint by the >= 2x acceptance margin on the all-to-all.
        assert dv["a2a wire"] < dv["a2a payload"], dv
        assert dv["a2a ratio"] >= 2.0, dv
        # The polyalgorithm picks the best codec per buffer (plus a
        # one-word tag), so it never loses to delta-varint by more than
        # the tag overhead — in practice it wins or ties.
        assert auto["a2a wire"] <= dv["a2a wire"] * 1.05, (auto, dv)
        # The sieve only removes candidates: wire volume shrinks further.
        dv_sieve = rows[(algo, "delta-varint", "on")]
        assert dv_sieve["a2a wire"] <= dv["a2a wire"], (dv_sieve, dv)
    # Less priced volume must surface as modeled speedup where
    # communication dominates: the flat 1D exchange at these rank counts.
    # (2D/dirop are compute-bound here and only break even — the codec
    # compute it trades for wire words pays off at paper-scale ranks.)
    comm_bound = "1d" if ("1d", "raw", "off") in rows else sorted(algorithms)[0]
    assert rows[(comm_bound, "delta-varint", "off")]["speedup vs raw"] > 1.0
    assert rows[(comm_bound, "delta-varint", "on")]["speedup vs raw"] > 1.0
