"""Figure 4: diagonal-only vs 2D vector distribution load balance."""


def test_fig4_vector_distribution(reproduce):
    table = reproduce("fig4")
    rows = {row[0]: row[1:] for row in table.rows}
    diag_pct, off_pct, idle_ratio = rows["diagonal only (1D)"]
    diag2d_pct, off2d_pct, idle_ratio_2d = rows["2D (all ranks)"]
    # Diagonal-only: off-diagonal ranks spend more of their time in MPI
    # (idling for the diagonal's merge) than the diagonal ranks do.
    assert off_pct > diag_pct
    # Their MPI time is dominated by idling, several times the transfer
    # (paper: "approximately 3-4 times").
    assert idle_ratio > 1.5
    # The 2D vector distribution removes the imbalance almost entirely.
    assert idle_ratio_2d < 0.5 * idle_ratio
    assert abs(off2d_pct - diag2d_pct) < 10.0
