"""Figure 6: MPI communication time on Franklin."""


def _panel(table, scale):
    return {
        row[2]: dict(zip(table.headers[3:], row[3:]))
        for row in table.rows
        if row[0] == scale
    }


def test_fig6_franklin_comm(reproduce):
    table = reproduce("fig6")
    for scale in (29, 32):
        panel = _panel(table, scale)
        for cores, row in panel.items():
            # 2D variants consistently communicate less than their 1D
            # counterparts (paper: "30-60% less for scale 32").
            assert row["2d comm(s)"] < row["1d comm(s)"], (scale, cores)
            assert row["2d-hybrid comm(s)"] < row["1d-hybrid comm(s)"], (scale, cores)
            # Hybrids communicate less than their flat counterparts.
            assert row["1d-hybrid comm(s)"] < row["1d comm(s)"], (scale, cores)
    s32 = _panel(table, 32)
    for cores, row in s32.items():
        saving = 1.0 - row["2d comm(s)"] / row["1d comm(s)"]
        assert 0.25 < saving < 0.75, (cores, saving)
    # Headline: the hybrid 2D cuts communication up to ~3.5x vs flat 1D.
    best = max(
        row["1d comm(s)"] / row["2d-hybrid comm(s)"] for row in s32.values()
    )
    assert best > 2.5
