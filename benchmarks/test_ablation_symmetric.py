"""Ablation: triangle-only symmetric storage (§7 "Exploiting symmetry")."""


def test_ablation_symmetric(reproduce):
    table = reproduce("abl-symmetric")
    rows = {r[0]: dict(zip(table.headers[1:], r[1:])) for r in table.rows}
    for name, row in rows.items():
        # The storage half of the paper's claim: ~50% index memory saved.
        assert 40.0 < row["memory saving %"] < 55.0, name
        # The algorithmic price: the mirror pass makes the kernel slower.
        assert row["measured kernel slowdown"] > 1.0, name
    # The overhead grows with the traversal's level count — why the paper
    # calls the communication-side saving "not well-studied".
    assert rows["web crawl"]["levels"] > 3 * rows["R-MAT"]["levels"]
    assert (
        rows["web crawl"]["measured kernel slowdown"]
        > rows["R-MAT"]["measured kernel slowdown"]
    )
