"""Ablation benches for the design choices called out in DESIGN.md."""


def test_ablation_dedup(reproduce):
    table = reproduce("abl-dedup")
    rows = {
        (row[0], row[1]): {"words": row[2], "gteps": row[3]}
        for row in table.rows
    }
    for ranks in (8, 32):
        on, off = rows[(ranks, "on")], rows[(ranks, "off")]
        # Dedup strictly reduces wire volume and improves the rate.
        assert on["words"] < off["words"], ranks
        assert on["gteps"] >= off["gteps"], ranks
    # The relative saving shrinks as ranks grow (duplicates spread out).
    saving_8 = rows[(8, "off")]["words"] / rows[(8, "on")]["words"]
    saving_32 = rows[(32, "off")]["words"] / rows[(32, "on")]["words"]
    assert saving_8 > saving_32 > 1.0


def test_ablation_shuffle(reproduce):
    table = reproduce("abl-shuffle")
    rows = {row[0]: {"edges": row[1], "comp": row[2]} for row in table.rows}
    # Random relabeling flattens both the edge distribution and the
    # resulting per-rank compute times (Section 4.4).
    assert rows["on"]["edges"] < 1.5
    assert rows["off"]["edges"] > 2.0
    assert rows["on"]["comp"] < rows["off"]["comp"]
