"""Figure 9: weak scaling on Franklin (~17M edges per core)."""


def test_fig9_weak_scaling(reproduce):
    table = reproduce("fig9")
    rows = {row[0]: dict(zip(table.headers[2:], row[2:])) for row in table.rows}
    for cores, row in rows.items():
        # Weak-scaling regime: flat 1D beats hybrid 1D "both in terms of
        # overall performance and communication costs".
        assert row["1d time(s)"] < row["1d-hybrid time(s)"], cores
        # 2D communicates far less than 1D...
        assert row["2d comm(s)"] < 0.7 * row["1d comm(s)"], cores
        # ... but comes later in overall performance on Franklin.
        assert row["2d time(s)"] > 0.9 * row["1d time(s)"], cores
    # Weak scaling is not flat: communication grows with the machine.
    assert rows[4096]["1d comm(s)"] > rows[512]["1d comm(s)"]
    # Mean search times stay in the paper's single-digit-seconds band.
    assert 1.0 < rows[512]["1d time(s)"] < 8.0
    assert 3.0 < rows[4096]["1d time(s)"] < 16.0
