"""Figure 3: SPA vs heap SpMSV polyalgorithm crossover."""


def test_fig3_spa_vs_heap(reproduce):
    table = reproduce("fig3")
    cores = table.column("cores")
    speedup = table.column("modeled speedup")
    by_cores = dict(zip(cores, speedup))
    # SPA clearly preferable at the low end...
    assert by_cores[2116] > 1.2
    # ... the crossover falls in the paper's ~10K-core region ...
    assert by_cores[5041] > 0.95
    assert by_cores[20164] < 1.0
    # ... and the heap is preferable (if 'marginal') at the top end.
    assert by_cores[40000] < 0.9
    # Monotone decline: SPA's per-level dense-vector costs stop shrinking
    # while the heap's work tracks the frontier.
    assert all(b <= a for a, b in zip(speedup, speedup[1:]))
