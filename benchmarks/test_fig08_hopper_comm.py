"""Figure 8: MPI communication time on Hopper."""

from repro.bench import harness
from repro.model.machine import HOPPER


def _panel(table, scale):
    return {
        row[2]: dict(zip(table.headers[3:], row[3:]))
        for row in table.rows
        if row[0] == scale
    }


def test_fig8_hopper_comm(reproduce):
    table = reproduce("fig8")
    for scale in (30, 32):
        panel = _panel(table, scale)
        for cores, row in panel.items():
            assert row["2d comm(s)"] < row["1d comm(s)"], (scale, cores)
            assert row["2d-hybrid comm(s)"] < row["2d comm(s)"], (scale, cores)

    # Flat 1D at 20K cores: communication consumes >90% of execution
    # (the reason the paper skipped the 40K flat-1D run).
    c1 = harness.projected_costs("1d", 32, 16, 20000, HOPPER)
    assert c1.comm / c1.total > 0.9
    # The 2D hybrid stays under ~50% at the same concurrency.
    c2h = harness.projected_costs("2d-hybrid", 32, 16, 20000, HOPPER)
    assert c2h.comm / c2h.total < 0.55
