"""Shared machinery for the benchmark suite.

Every file under ``benchmarks/`` regenerates one paper artifact: it runs
the corresponding experiment through pytest-benchmark (one timed round —
the experiments are deterministic), prints the reproduced table, writes it
to ``results/<exp_id>.txt``, and asserts the paper's qualitative *shape*
(orderings, crossovers, ratios).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import run_experiment
from repro.bench.report import Table

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def reproduce(benchmark):
    """Run one experiment under the benchmark timer and persist its table."""

    def _run(exp_id: str, quick: bool = False) -> Table:
        table = benchmark.pedantic(
            run_experiment, args=(exp_id,), kwargs={"quick": quick},
            rounds=1, iterations=1,
        )
        print()
        print(table.render())
        table.save(RESULTS_DIR, exp_id)
        return table

    return _run
