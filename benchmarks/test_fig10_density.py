"""Figure 10: sensitivity to the average degree."""


def test_fig10_density(reproduce):
    table = reproduce("fig10")
    rows = {
        (row[0], row[2]): dict(zip(table.headers[3:], row[3:]))
        for row in table.rows  # keyed by (cores, degree)
    }
    for cores in (1024, 4096):
        # 1D wins decisively on the sparsest graphs...
        assert rows[(cores, 4)]["1d"] > 1.5 * rows[(cores, 4)]["2d"], cores
        # ... still wins at the Graph 500 default on 1024 cores ...
        if cores == 1024:
            assert rows[(cores, 16)]["1d"] > rows[(cores, 16)]["2d"]
        # ... and flat 2D beats flat 1D "for the first time" at degree 64.
        assert rows[(cores, 64)]["2d"] > rows[(cores, 64)]["1d"], cores
        # The margin moves monotonically in 1D's favour as the graph
        # sparsifies (the paper's stated trend).
        margins = [
            rows[(cores, deg)]["1d"] / rows[(cores, deg)]["2d"]
            for deg in (64, 16, 4)
        ]
        assert margins[0] < margins[1] < margins[2], (cores, margins)
