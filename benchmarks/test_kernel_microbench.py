"""Kernel micro-benchmarks: raw throughput of the hot primitives.

These are classic pytest-benchmark timings (many rounds, statistics) of
the kernels every traversal is built from — useful both as a regression
guard for the substrate and as the "profile before optimizing" baseline
the HPC workflow prescribes.  The backend-comparison smoke at the bottom
additionally pins the *point* of the numpy backend: the vectorized
kernels must beat the pure-python reference by a wide margin on a
realistic composite workload, or the dispatch layer is dead weight.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import kernels
from repro.core.frontier import build_send_buffers, dedup_candidates
from repro.graphs.csr import build_csr
from repro.graphs.rmat import rmat_edges
from repro.sparse.dcsc import DCSC
from repro.sparse.spmsv import spmsv_heap, spmsv_spa

SCALE = 16


@pytest.fixture(scope="module")
def workload():
    src, dst = rmat_edges(SCALE, 16, seed=9)
    csr = build_csr(1 << SCALE, src, dst)
    rng = np.random.default_rng(1)
    frontier = np.unique(rng.integers(0, csr.n, 4096))
    targets, sources = csr.gather(frontier)
    block = DCSC.from_coo(csr.n, csr.n, csr.indices,
                          np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees()))
    return {
        "src": src,
        "dst": dst,
        "csr": csr,
        "frontier": frontier,
        "targets": targets,
        "sources": sources,
        "block": block,
    }


def test_kernel_rmat_generation(benchmark):
    src, dst = benchmark(rmat_edges, 14, 16, seed=3)
    assert src.size == 16 << 14


def test_kernel_csr_build(benchmark, workload):
    csr = benchmark(build_csr, 1 << SCALE, workload["src"], workload["dst"])
    assert csr.n == 1 << SCALE


def test_kernel_frontier_gather(benchmark, workload):
    targets, sources = benchmark(workload["csr"].gather, workload["frontier"])
    assert targets.size == sources.size > 0


def test_kernel_dedup(benchmark, workload):
    t, p = benchmark(dedup_candidates, workload["targets"], workload["sources"])
    assert np.all(np.diff(t) > 0)


def test_kernel_send_buffers(benchmark, workload):
    targets, sources = workload["targets"], workload["sources"]
    owners = targets % 64
    send = benchmark(build_send_buffers, targets, sources, owners, 64)
    assert sum(buf.size for buf in send) == 2 * targets.size


def test_kernel_spmsv_spa(benchmark, workload):
    idx, val, work = benchmark(
        spmsv_spa, workload["block"], workload["frontier"], workload["frontier"] + 1
    )
    assert work.candidates > 0


def test_kernel_spmsv_heap(benchmark, workload):
    idx, val, work = benchmark(
        spmsv_heap, workload["block"], workload["frontier"], workload["frontier"] + 1
    )
    assert work.candidates > 0


# -- backend-comparison smoke -------------------------------------------------

#: Composite scale for the numpy-vs-python wall-clock smoke: large
#: enough that vectorization dominates dispatch overhead, small enough
#: for the pure-python rounds to stay CI-friendly.
SMOKE_SCALE = 14

#: Loose CI-safe bar; the recorded scale-16 recipe comparison in
#: ``benchmarks/BENCH_kernels.json`` lands far above it (>=5x).
MIN_SMOKE_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def smoke_load():
    src, dst = rmat_edges(SMOKE_SCALE, 16, seed=5)
    csr = build_csr(1 << SMOKE_SCALE, src, dst)
    rng = np.random.default_rng(7)
    frontier = np.unique(rng.integers(0, csr.n, 2048))
    targets, sources = csr.gather(frontier)
    words = rng.integers(1, 1 << 62, targets.size, dtype=np.uint64)
    return {"n": csr.n, "targets": targets, "sources": sources, "words": words}


def _composite_pass(load):
    """One pass over every kernel family a traversal level exercises."""
    targets, sources = load["targets"], load["sources"]
    unique, parents = kernels.dedup_max(targets, sources)
    owners = targets % 64
    kernels.bucket_by_owner(owners, 64, targets, sources)
    stream = kernels.varint_encode(kernels.delta_encode(unique))
    decoded = kernels.delta_decode(kernels.varint_decode(stream))
    bitmap = kernels.pack_bitmap(unique, 0, load["n"])
    kernels.unpack_bitmap(bitmap, load["n"])
    kernels.popcount(bitmap)
    pt, ps, pw = kernels.lane_prune(targets, sources, load["words"], 64)
    return (
        np.asarray(unique).tolist(),
        np.asarray(decoded).tolist(),
        np.asarray(bitmap).tolist(),
        np.asarray(pt).tolist(),
        int(np.asarray(pw).size),
    )


def _best_of(fn, rounds):
    best, result = None, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_numpy_backend_beats_reference_wallclock(smoke_load):
    """The vectorized backend is >= 2x the pure-python reference on a
    scale-14 composite pass (dedup + bucketing + codec roundtrip +
    bitmap scan + lane prune), with bit-identical results."""
    with kernels.use_backend("numpy"):
        _composite_pass(smoke_load)  # warm-up, untimed
        vec_time, vec_result = _best_of(lambda: _composite_pass(smoke_load), 3)
    with kernels.use_backend("python"):
        ref_time, ref_result = _best_of(lambda: _composite_pass(smoke_load), 2)
    assert vec_result == ref_result
    speedup = ref_time / vec_time
    assert speedup >= MIN_SMOKE_SPEEDUP, (
        f"numpy backend only {speedup:.1f}x the reference "
        f"({vec_time:.4f}s vs {ref_time:.4f}s); expected "
        f">= {MIN_SMOKE_SPEEDUP}x"
    )
