"""Kernel micro-benchmarks: raw throughput of the hot primitives.

These are classic pytest-benchmark timings (many rounds, statistics) of
the kernels every traversal is built from — useful both as a regression
guard for the substrate and as the "profile before optimizing" baseline
the HPC workflow prescribes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frontier import build_send_buffers, dedup_candidates
from repro.graphs.csr import build_csr
from repro.graphs.rmat import rmat_edges
from repro.sparse.dcsc import DCSC
from repro.sparse.spmsv import spmsv_heap, spmsv_spa

SCALE = 16


@pytest.fixture(scope="module")
def workload():
    src, dst = rmat_edges(SCALE, 16, seed=9)
    csr = build_csr(1 << SCALE, src, dst)
    rng = np.random.default_rng(1)
    frontier = np.unique(rng.integers(0, csr.n, 4096))
    targets, sources = csr.gather(frontier)
    block = DCSC.from_coo(csr.n, csr.n, csr.indices,
                          np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees()))
    return {
        "src": src,
        "dst": dst,
        "csr": csr,
        "frontier": frontier,
        "targets": targets,
        "sources": sources,
        "block": block,
    }


def test_kernel_rmat_generation(benchmark):
    src, dst = benchmark(rmat_edges, 14, 16, seed=3)
    assert src.size == 16 << 14


def test_kernel_csr_build(benchmark, workload):
    csr = benchmark(build_csr, 1 << SCALE, workload["src"], workload["dst"])
    assert csr.n == 1 << SCALE


def test_kernel_frontier_gather(benchmark, workload):
    targets, sources = benchmark(workload["csr"].gather, workload["frontier"])
    assert targets.size == sources.size > 0


def test_kernel_dedup(benchmark, workload):
    t, p = benchmark(dedup_candidates, workload["targets"], workload["sources"])
    assert np.all(np.diff(t) > 0)


def test_kernel_send_buffers(benchmark, workload):
    targets, sources = workload["targets"], workload["sources"]
    owners = targets % 64
    send = benchmark(build_send_buffers, targets, sources, owners, 64)
    assert sum(buf.size for buf in send) == 2 * targets.size


def test_kernel_spmsv_spa(benchmark, workload):
    idx, val, work = benchmark(
        spmsv_spa, workload["block"], workload["frontier"], workload["frontier"] + 1
    )
    assert work.candidates > 0


def test_kernel_spmsv_heap(benchmark, workload):
    idx, val, work = benchmark(
        spmsv_heap, workload["block"], workload["frontier"], workload["frontier"] + 1
    )
    assert work.candidates > 0
