"""Figure 7: strong scaling on Hopper (GTEPS)."""


def _panel(table, scale):
    return {
        row[2]: dict(zip(table.headers[3:], row[3:]))
        for row in table.rows
        if row[0] == scale
    }


def test_fig7_hopper_strong(reproduce):
    table = reproduce("fig7")
    for scale in (30, 32):
        panel = _panel(table, scale)
        for cores, row in panel.items():
            # "By contrast to Franklin results, the 2D algorithms score
            # higher than their 1D counterparts" on Hopper.
            assert row["2d"] > row["1d"], (scale, cores)
            assert row["2d-hybrid"] > row["1d-hybrid"], (scale, cores)
            # The hybrid 2D is the overall winner.
            assert row["2d-hybrid"] == max(row.values()), (scale, cores)
    # The headline number: ~17.8 GTEPS at 40,000 cores on scale 32
    # (reproduction target: same order, within ~50%).
    s32 = _panel(table, 32)
    assert 12.0 < s32[40000]["2d-hybrid"] < 27.0
    # BFS scales all the way to 40K cores.
    series = [s32[c]["2d-hybrid"] for c in (5040, 10008, 20000, 40000)]
    assert all(b > a for a, b in zip(series, series[1:]))
