"""Sparse matrix - sparse vector multiplication kernels (Section 4.2).

The local computation of the 2D algorithm forms the union
``U_k A(:, k)`` over the frontier columns ``k``.  Two kernels, matching
the paper's design-space exploration:

* :func:`spmsv_spa` — scatter into a dense sparse-accumulator; fastest at
  low concurrency but with an ``O(n/pr)`` dense working set;
* :func:`spmsv_heap` — multiway merge of the (sorted) selected columns;
  pays a ``log k`` comparison factor but keeps memory ``O(nnz)``.

Both return identical results under the (select, max) semiring, plus a
:class:`SpMSVWork` record of the operations performed so the caller can
charge the memory model.  :func:`spmsv` is the polyalgorithm: Figure 3
locates the crossover near 10,000 cores, so the default predicate switches
on the modeled concurrency (and memory pressure).

The per-element combines run through the semiring's kernel ops
(:mod:`repro.kernels`: ``scatter_reduce`` for the SPA scatter,
``reduce_runs`` for the heap's run merge), so the ``REPRO_KERNELS``
backend switch covers both kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sparse.dcsc import DCSC
from repro.sparse.semiring import SELECT_MAX, Semiring
from repro.sparse.spa import SPA

#: Concurrency beyond which the heap kernel wins (Figure 3: "a transition
#: point around 10000 cores ... after which the priority-queue approach is
#: more efficient, both in terms of speed and memory footprint").
SPA_HEAP_CROSSOVER_CORES = 10_000


@dataclass(frozen=True)
class SpMSVWork:
    """Operation counts of one local SpMSV (for the alpha-beta model).

    Attributes
    ----------
    candidates:
        (row, payload) pairs generated before merging — one per nonzero in
        a frontier column.
    lookups:
        Binary-search probes into ``JC``.
    merge_ws_words:
        Working-set size of the merge structure: the dense accumulator
        length for the SPA kernel, the candidate count for the heap.
    heap_k:
        Number of merged runs (frontier columns) for the heap kernel; 0
        for the SPA kernel.
    kernel:
        Which kernel ran (``"spa"`` / ``"heap"``).
    """

    candidates: int
    lookups: int
    merge_ws_words: int
    heap_k: int
    kernel: str

    @property
    def heap_comparisons(self) -> float:
        """Modeled comparison count of the multiway merge."""
        if self.kernel != "heap" or self.candidates == 0:
            return 0.0
        return self.candidates * math.log2(max(2, self.heap_k))


def spmsv_spa(
    block: DCSC,
    frontier_idx: np.ndarray,
    frontier_val: np.ndarray,
    semiring: Semiring = SELECT_MAX,
    spa: SPA | None = None,
) -> tuple[np.ndarray, np.ndarray, SpMSVWork]:
    """SPA-based kernel: scatter candidates into a dense accumulator."""
    rows, payload, lookups = block.extract_columns(frontier_idx, frontier_val)
    acc = spa if spa is not None else SPA(block.nrows, semiring)
    acc.accumulate(rows, payload)
    out_idx, out_val = acc.extract_and_reset()
    work = SpMSVWork(
        candidates=int(rows.size),
        lookups=lookups,
        merge_ws_words=block.nrows,
        heap_k=0,
        kernel="spa",
    )
    return out_idx, out_val, work


def spmsv_heap(
    block: DCSC,
    frontier_idx: np.ndarray,
    frontier_val: np.ndarray,
    semiring: Semiring = SELECT_MAX,
) -> tuple[np.ndarray, np.ndarray, SpMSVWork]:
    """Heap/merge-based kernel: k-way merge of the selected columns.

    The vectorized realization sorts the concatenated candidates by row
    and combines equal-row runs; the cost model charges it as the
    ``candidates * log2(k)`` unbalanced multiway merge the paper
    implements with a cache-efficient heap.
    """
    rows, payload, lookups = block.extract_columns(frontier_idx, frontier_val)
    out_idx, out_val = semiring.reduce_sorted_runs(rows, payload)
    work = SpMSVWork(
        candidates=int(rows.size),
        lookups=lookups,
        merge_ws_words=int(rows.size),
        heap_k=int(frontier_idx.size),
        kernel="heap",
    )
    return out_idx, out_val, work


def choose_spmsv_kernel(
    modeled_cores: int,
    spa_words: int | None = None,
    memory_budget_words: int | None = None,
) -> str:
    """Polyalgorithm predicate (Section 4.2).

    Prefers the SPA below the Figure-3 crossover, unless its dense vector
    would blow the per-core memory budget.  A budget can only be enforced
    against a known SPA working set, so passing ``memory_budget_words``
    without ``spa_words`` is an error rather than a silent no-op.
    """
    if memory_budget_words is not None:
        if spa_words is None:
            raise ValueError(
                "memory_budget_words requires spa_words (the SPA working-set "
                "size) to be enforceable"
            )
        if spa_words > memory_budget_words:
            return "heap"
    return "spa" if modeled_cores < SPA_HEAP_CROSSOVER_CORES else "heap"


def spmsv(
    block: DCSC,
    frontier_idx: np.ndarray,
    frontier_val: np.ndarray,
    semiring: Semiring = SELECT_MAX,
    kernel: str = "auto",
    modeled_cores: int = 1,
    memory_budget_words: int | None = None,
    spa: SPA | None = None,
    tracer=None,
) -> tuple[np.ndarray, np.ndarray, SpMSVWork]:
    """Dispatching SpMSV: ``kernel`` in {"auto", "spa", "heap"}.

    ``memory_budget_words`` caps the dense accumulator: ``"auto"`` falls
    back to the heap kernel when this block's SPA working set
    (``block.nrows`` words) would exceed it.  ``tracer`` is an optional
    :class:`~repro.obs.tracer.RankTracer`; when given, the kernel that
    actually ran (polyalgorithm choice included) is recorded as a
    zero-duration ``spmsv-kernel`` marker with its work counts, so a
    Chrome trace shows the SPA-vs-heap decision per level.
    """
    if kernel == "auto":
        kernel = choose_spmsv_kernel(
            modeled_cores,
            spa_words=block.nrows,
            memory_budget_words=memory_budget_words,
        )
    if kernel == "spa":
        out = spmsv_spa(block, frontier_idx, frontier_val, semiring, spa=spa)
    elif kernel == "heap":
        out = spmsv_heap(block, frontier_idx, frontier_val, semiring)
    else:
        raise ValueError(f"unknown SpMSV kernel {kernel!r}")
    if tracer is not None:
        work = out[2]
        tracer.instant(
            "spmsv-kernel",
            kernel=work.kernel,
            candidates=work.candidates,
            lookups=work.lookups,
        )
    return out
