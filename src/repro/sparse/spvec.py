"""Sorted sparse vector — the 2D algorithm's frontier representation.

Section 4.1: "We use a stack in the 1D implementation and a sorted sparse
vector in the 2D implementation.  Any extra data that are piggybacked to
the frontier vectors adversely affect the performance" — so the vector
stores exactly (index, value) pairs, nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SparseVector:
    """Immutable sparse vector with sorted unique ``int64`` indices.

    ``indices`` are positions (vertex ids); ``values`` carry the semiring
    payload (for BFS: the proposed parent vertex id).
    """

    length: int
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        if self.indices.shape != self.values.shape or self.indices.ndim != 1:
            raise ValueError(
                f"indices/values must be equal-length 1-D, got "
                f"{self.indices.shape} vs {self.values.shape}"
            )
        if self.indices.size:
            if self.indices[0] < 0 or self.indices[-1] >= self.length:
                raise ValueError(
                    f"indices out of range [0, {self.length})"
                )
            if np.any(self.indices[1:] <= self.indices[:-1]):
                raise ValueError("indices must be strictly increasing")

    @classmethod
    def empty(cls, length: int) -> "SparseVector":
        return cls(
            length,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )

    @classmethod
    def from_pairs(
        cls, length: int, indices: np.ndarray, values: np.ndarray, reduce: str = "max"
    ) -> "SparseVector":
        """Build from possibly unsorted, possibly duplicated pairs.

        Duplicates are combined with ``reduce`` (the (select, max) semiring
        uses ``"max"``).
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if indices.size == 0:
            return cls.empty(length)
        if reduce == "max":
            order = np.lexsort((values, indices))
            indices, values = indices[order], values[order]
            # The last entry of each equal-index run holds the max value.
            last = np.empty(indices.size, dtype=bool)
            last[-1] = True
            np.not_equal(indices[1:], indices[:-1], out=last[:-1])
            return cls(length, indices[last], values[last])
        raise ValueError(f"unknown reduce {reduce!r}")

    @classmethod
    def from_dense(cls, dense: np.ndarray, empty_value: int = -1) -> "SparseVector":
        """Sparsify a dense vector, dropping entries equal to the sentinel."""
        dense = np.asarray(dense)
        idx = np.flatnonzero(dense != empty_value).astype(np.int64)
        return cls(dense.size, idx, dense[idx].astype(np.int64))

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def to_dense(self, empty_value: int = -1) -> np.ndarray:
        dense = np.full(self.length, empty_value, dtype=np.int64)
        dense[self.indices] = self.values
        return dense

    def restrict(self, lo: int, hi: int, rebase: bool = False) -> "SparseVector":
        """Entries with indices in ``[lo, hi)``; optionally rebased to 0."""
        if not 0 <= lo <= hi <= self.length:
            raise ValueError(f"bad range [{lo}, {hi}) for length {self.length}")
        a = np.searchsorted(self.indices, lo)
        b = np.searchsorted(self.indices, hi)
        idx = self.indices[a:b]
        if rebase:
            return SparseVector(hi - lo, idx - lo, self.values[a:b])
        return SparseVector(self.length, idx, self.values[a:b])

    def mask_out(self, occupied_dense: np.ndarray) -> "SparseVector":
        """Element-wise product with the *complement* of a dense vector.

        Keeps entries whose position is still unvisited (``== -1`` in the
        parents array): Algorithm 3's ``t <- t (x) pi-bar`` step.
        """
        if occupied_dense.shape != (self.length,):
            raise ValueError(
                f"mask length {occupied_dense.shape} != vector length {self.length}"
            )
        keep = occupied_dense[self.indices] == -1
        return SparseVector(self.length, self.indices[keep], self.values[keep])
