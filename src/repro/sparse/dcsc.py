"""Doubly-compressed sparse columns (Buluc & Gilbert [7]; Section 4.1).

After 2D decomposition each processor's block is *hypersparse*: the block
has ``n/sqrt(p)`` columns but only ``m/p`` nonzeros, so most columns are
empty and a conventional CSC's ``O(n/sqrt(p))`` column-pointer array would
dominate memory (aggregate ``O(n * sqrt(p) + m)`` instead of ``O(n + m)``).
DCSC stores:

* ``JC`` — the ids of the ``nzc`` columns that have at least one nonzero,
  sorted ascending;
* ``CP`` — ``nzc + 1`` pointers into ``IR``;
* ``IR`` — row ids, sorted within each column.

Column lookup is a binary search in ``JC``; the SpMSV extracts all
frontier columns in one vectorized searchsorted + range-gather pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DCSC:
    """Hypersparse boolean matrix block in doubly-compressed form."""

    nrows: int
    ncols: int
    jc: np.ndarray  # distinct non-empty column ids, sorted
    cp: np.ndarray  # column pointers into ir, length nzc + 1
    ir: np.ndarray  # row ids, sorted within each column

    def __post_init__(self):
        if self.cp.size != self.jc.size + 1:
            raise ValueError(
                f"CP length {self.cp.size} != nzc + 1 = {self.jc.size + 1}"
            )
        if self.cp.size and (self.cp[0] != 0 or self.cp[-1] != self.ir.size):
            raise ValueError("CP does not span IR")
        if self.jc.size and (self.jc[0] < 0 or self.jc[-1] >= self.ncols):
            raise ValueError(f"column ids out of range [0, {self.ncols})")

    @property
    def nnz(self) -> int:
        return int(self.ir.size)

    @property
    def nzc(self) -> int:
        """Number of columns with at least one nonzero."""
        return int(self.jc.size)

    @classmethod
    def from_coo(
        cls, nrows: int, ncols: int, rows: np.ndarray, cols: np.ndarray
    ) -> "DCSC":
        """Build from (row, col) pairs; duplicates are collapsed."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("rows/cols must be equal-length 1-D")
        if rows.size and (
            rows.min() < 0 or rows.max() >= nrows or cols.min() < 0 or cols.max() >= ncols
        ):
            raise ValueError(f"entries out of range {nrows}x{ncols}")
        if rows.size and nrows <= (1 << 31) and ncols <= (1 << 31):
            # Single quicksort of the composite (col, row) key: ~20x
            # faster than lexsort's two stable passes; dedup collapses to
            # one comparison per neighbour on the sorted keys.
            key = cols * np.int64(nrows) + rows
            key.sort()
            keep = np.empty(key.size, dtype=bool)
            keep[0] = True
            np.not_equal(key[1:], key[:-1], out=keep[1:])
            key = key[keep]
            cols = key // nrows
            rows = key - cols * nrows
        else:
            order = np.lexsort((rows, cols))
            rows, cols = rows[order], cols[order]
            if rows.size:
                keep = np.empty(rows.size, dtype=bool)
                keep[0] = True
                np.not_equal(cols[1:], cols[:-1], out=keep[1:])
                keep[1:] |= rows[1:] != rows[:-1]
                rows, cols = rows[keep], cols[keep]
        jc, counts = np.unique(cols, return_counts=True)
        cp = np.zeros(jc.size + 1, dtype=np.int64)
        np.cumsum(counts, out=cp[1:])
        return cls(nrows=nrows, ncols=ncols, jc=jc, cp=cp, ir=rows)

    def to_coo(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (rows, cols) pairs, column-major sorted."""
        counts = np.diff(self.cp)
        return self.ir.copy(), np.repeat(self.jc, counts)

    def extract_columns(
        self, col_ids: np.ndarray, col_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Gather all nonzeros in the requested columns.

        Parameters
        ----------
        col_ids:
            Sorted frontier column ids (block-local).
        col_values:
            Semiring payload attached to each column (the parent id).

        Returns
        -------
        (rows, values, lookups):
            One (row, payload) pair per selected nonzero, plus the number
            of binary-search probes performed (for cost accounting).
        """
        col_ids = np.asarray(col_ids, dtype=np.int64)
        col_values = np.asarray(col_values, dtype=np.int64)
        if col_ids.shape != col_values.shape:
            raise ValueError("col_ids/col_values must be equal length")
        if col_ids.size == 0 or self.nzc == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, int(col_ids.size)
        pos = np.searchsorted(self.jc, col_ids)
        pos_clipped = np.minimum(pos, self.nzc - 1)
        hit = self.jc[pos_clipped] == col_ids
        pos, values = pos_clipped[hit], col_values[hit]
        starts = self.cp[pos]
        counts = self.cp[pos + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, int(col_ids.size)
        ends = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        flat = np.repeat(starts, counts) + offsets
        rows = self.ir[flat]
        payload = np.repeat(values, counts)
        return rows, payload, int(col_ids.size)

    def split_rowwise(self, pieces: int) -> list["DCSC"]:
        """Split into ``pieces`` row bands (the hybrid's per-thread blocks).

        Figure 2 / Section 4.1: "we split the node local matrix rowwise to
        t pieces ... each thread local n/(pr*t) x n/pc sparse matrix is
        stored in DCSC format."  Bands partition the row space evenly;
        the last band absorbs the remainder.
        """
        if pieces < 1:
            raise ValueError(f"pieces must be >= 1, got {pieces}")
        if pieces == 1:
            return [self]
        rows, cols = self.to_coo()
        band = max(1, self.nrows // pieces)
        out = []
        for t in range(pieces):
            lo = min(t * band, self.nrows)
            hi = self.nrows if t == pieces - 1 else min((t + 1) * band, self.nrows)
            mask = (rows >= lo) & (rows < hi)
            out.append(
                DCSC.from_coo(max(hi - lo, 0), self.ncols, rows[mask] - lo, cols[mask])
            )
        return out
