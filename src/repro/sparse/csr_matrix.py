"""Local CSR matrix block (the 1D-side sparse matrix view).

The 1D algorithm stores each rank's rows in plain CSR (Section 4.1: CSR
is space-efficient for 1D because the aggregate pointer storage stays
``O(n)``).  This class adds the small amount of matrix algebra the tests
and examples use to cross-validate the graph kernels: boolean SpMV and
semiring SpMSV over a CSR block, plus conversion to DCSC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.dcsc import DCSC
from repro.sparse.semiring import SELECT_MAX, Semiring


@dataclass(frozen=True)
class CSRMatrix:
    """Boolean sparse matrix in CSR with 64-bit indices."""

    nrows: int
    ncols: int
    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self):
        if self.indptr.shape != (self.nrows + 1,):
            raise ValueError(f"indptr length {self.indptr.size} != nrows+1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr does not span indices")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.ncols
        ):
            raise ValueError(f"column ids out of range [0, {self.ncols})")

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @classmethod
    def from_coo(
        cls, nrows: int, ncols: int, rows: np.ndarray, cols: np.ndarray
    ) -> "CSRMatrix":
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        if rows.size:
            keep = np.empty(rows.size, dtype=bool)
            keep[0] = True
            np.not_equal(rows[1:], rows[:-1], out=keep[1:])
            keep[1:] |= cols[1:] != cols[:-1]
            rows, cols = rows[keep], cols[keep]
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=nrows), out=indptr[1:])
        return cls(nrows=nrows, ncols=ncols, indptr=indptr, indices=cols)

    def to_coo(self) -> tuple[np.ndarray, np.ndarray]:
        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.indptr)
        )
        return rows, self.indices.copy()

    def transpose(self) -> "CSRMatrix":
        rows, cols = self.to_coo()
        return CSRMatrix.from_coo(self.ncols, self.nrows, cols, rows)

    def to_dcsc(self) -> DCSC:
        """Convert to the hypersparse representation (column-oriented)."""
        rows, cols = self.to_coo()
        return DCSC.from_coo(self.nrows, self.ncols, rows, cols)

    def spmv_bool(self, x: np.ndarray) -> np.ndarray:
        """Boolean matrix-vector product: ``y_i = OR_j A_ij & x_j``."""
        x = np.asarray(x, dtype=bool)
        if x.shape != (self.ncols,):
            raise ValueError(f"x length {x.shape} != ncols {self.ncols}")
        hits = x[self.indices].astype(np.int64)
        if hits.size == 0:
            return np.zeros(self.nrows, dtype=bool)
        # reduceat requires in-bounds offsets (empty trailing rows point at
        # hits.size) and copies the operand for empty rows; clip, then zero
        # the empty rows explicitly.
        starts = np.minimum(self.indptr[:-1], hits.size - 1)
        sums = np.add.reduceat(hits, starts, dtype=np.int64)
        sums[np.diff(self.indptr) == 0] = 0
        return sums > 0

    def spmsv_reference(
        self,
        frontier_idx: np.ndarray,
        frontier_val: np.ndarray,
        semiring: Semiring = SELECT_MAX,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Slow-but-obvious semiring SpMSV used as the test oracle.

        Treats this matrix in *column* orientation (like DCSC): output row
        ``r`` combines the payloads of all frontier columns ``c`` with
        ``A[r, c] != 0``.
        """
        dense = np.full(self.nrows, semiring.identity, dtype=np.int64)
        lookup = {int(c): int(v) for c, v in zip(frontier_idx, frontier_val)}
        rows, cols = self.to_coo()
        for r, c in zip(rows, cols):
            if int(c) in lookup:
                val = np.int64(lookup[int(c)])
                dense[r] = semiring.combine(
                    np.asarray(dense[r]), np.asarray(val)
                )
        out_idx = np.flatnonzero(dense != semiring.identity).astype(np.int64)
        return out_idx, dense[out_idx]
