"""Sparse accumulator (Gilbert, Moler & Schreiber [17]; Section 4.2).

The SPA forms the column-union of the SpMSV with a dense value vector, an
"occupied" bitmask, and a list of touched indices.  It is the fast kernel
at low concurrency, but its dense vector is ``n/pr`` words — at 10K cores
on a scale-33 graph that is >750 MB per core (Section 4.2), which is why
the polyalgorithm switches to the heap kernel at scale.

The batched interface (:meth:`SPA.accumulate`) is the vectorized
equivalent of scattering one candidate at a time; the combine is the
(select, max) semiring so results are deterministic.  The dense vector
takes its dtype from the semiring, so the same accumulator forms lane
unions over ``uint64`` words for the 64-way batched traversals of
:mod:`repro.query`.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.sparse.semiring import SELECT_MAX, Semiring


class SPA:
    """Reusable sparse accumulator over a fixed-size index space."""

    def __init__(self, length: int, semiring: Semiring = SELECT_MAX):
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        self.length = length
        self.semiring = semiring
        self._dense = np.full(length, semiring.identity, dtype=semiring.dtype)
        self._touched: list[np.ndarray] = []

    @property
    def memory_words(self) -> int:
        """Dense footprint in words (the Section 4.2 memory concern)."""
        return self.length

    def accumulate(self, positions: np.ndarray, values: np.ndarray) -> None:
        """Scatter-combine a batch of (position, value) contributions."""
        positions = np.asarray(positions, dtype=np.int64)
        values = np.asarray(values, dtype=self.semiring.dtype)
        if positions.shape != values.shape:
            raise ValueError("positions/values must be equal length")
        if positions.size == 0:
            return
        if positions.min() < 0 or positions.max() >= self.length:
            raise ValueError(f"positions out of range [0, {self.length})")
        if np.any(values == self.semiring.identity):
            raise ValueError("values must not equal the semiring identity")
        self.semiring.reduce_at(self._dense, positions, values)
        self._touched.append(positions)

    def extract(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (sorted unique positions, combined values).

        Section 4.2 notes the SPA must "explicitly sort the indices at the
        end of the iteration" — that sort happens here.
        """
        if not self._touched:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=self.semiring.dtype),
            )
        touched = kernels.unique_sorted(np.concatenate(self._touched))
        return touched, self._dense[touched]

    def reset(self) -> None:
        """Clear for reuse, touching only previously-occupied entries."""
        if self._touched:
            touched = np.concatenate(self._touched)
            self._dense[touched] = self.semiring.identity
            self._touched.clear()

    def extract_and_reset(self) -> tuple[np.ndarray, np.ndarray]:
        out = self.extract()
        self.reset()
        return out
