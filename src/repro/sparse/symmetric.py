"""Triangle-only storage for undirected graphs (Section 7, future work).

"If the graph is undirected, then one can save 50% space by storing only
the upper (or lower) triangle of the sparse adjacency matrix, effectively
doubling the size of the maximum problem that can be solved in-memory ...
The algorithmic modifications needed to save a comparable amount in
communication costs for BFS iterations is not well-studied."

:class:`SymmetricDCSC` realizes the storage half of that trade-off for a
*square, symmetric* block: it keeps only the lower triangle in DCSC form
(halving the index arrays) and answers the SpMSV column extraction in two
passes:

1. **column pass** — the stored triangle's columns, exactly as the full
   DCSC would (emits candidates with ``row >= col``);
2. **row pass** — the mirrored entries, found by scanning the stored
   nonzeros for rows that are frontier members (emits ``row < col``
   candidates).

The row pass touches every stored nonzero once per call — that is the
algorithmic price the paper anticipated; :class:`SymWork` reports it so
the cost model can weigh ~50% memory against ~O(nnz) extra streaming per
level (see ``repro-bench abl-symmetric``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.dcsc import DCSC
from repro.sparse.semiring import SELECT_MAX, Semiring


@dataclass(frozen=True)
class SymWork:
    """Operation counts of one symmetric extraction."""

    candidates: int  # (row, payload) pairs emitted (both passes)
    lookups: int  # binary-search probes (column pass)
    scanned: int  # stored nonzeros streamed by the row pass


class SymmetricDCSC:
    """Lower-triangle DCSC of a symmetric boolean matrix."""

    def __init__(self, triangle: DCSC):
        if triangle.nrows != triangle.ncols:
            raise ValueError(
                f"symmetric blocks must be square, got "
                f"{triangle.nrows}x{triangle.ncols}"
            )
        rows, cols = triangle.to_coo()
        if np.any(rows < cols):
            raise ValueError("triangle must contain only entries with row >= col")
        self.triangle = triangle
        # Cached COO view for the row pass (shares the triangle's memory
        # budget in spirit; materialized here for vectorized scanning).
        self._rows = rows
        self._cols = cols

    @property
    def n(self) -> int:
        return self.triangle.nrows

    @property
    def stored_nnz(self) -> int:
        return self.triangle.nnz

    @property
    def logical_nnz(self) -> int:
        """Nonzeros of the full symmetric matrix this block represents."""
        diagonal = int((self._rows == self._cols).sum())
        return 2 * self.stored_nnz - diagonal

    @property
    def memory_words(self) -> int:
        """Index storage of the triangle (IR + JC + CP)."""
        tri = self.triangle
        return int(tri.ir.size + tri.jc.size + tri.cp.size)

    @classmethod
    def from_coo(cls, n: int, rows: np.ndarray, cols: np.ndarray) -> "SymmetricDCSC":
        """Build from (possibly unsymmetrized) entries of a square matrix.

        Every entry (r, c) is folded into the lower triangle as
        ``(max(r,c), min(r,c))``; duplicates collapse.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        lo = np.minimum(rows, cols)
        hi = np.maximum(rows, cols)
        return cls(DCSC.from_coo(n, n, hi, lo))

    @classmethod
    def from_full(cls, full: DCSC) -> "SymmetricDCSC":
        """Fold a full symmetric DCSC into triangle storage."""
        rows, cols = full.to_coo()
        return cls.from_coo(full.nrows, rows, cols)

    def to_full(self) -> DCSC:
        """Expand back to the full symmetric DCSC (for tests/interop)."""
        off = self._rows != self._cols
        rows = np.concatenate([self._rows, self._cols[off]])
        cols = np.concatenate([self._cols, self._rows[off]])
        return DCSC.from_coo(self.n, self.n, rows, cols)

    def extract_columns(
        self, col_ids: np.ndarray, col_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, SymWork]:
        """All nonzeros of the *full* matrix in the requested columns.

        Semantically identical to ``to_full().extract_columns(...)`` but
        served from the triangle: a column pass plus a row-scan pass.
        """
        col_ids = np.asarray(col_ids, dtype=np.int64)
        col_values = np.asarray(col_values, dtype=np.int64)
        if col_ids.shape != col_values.shape:
            raise ValueError("col_ids/col_values must be equal length")

        # Pass 1: stored columns (candidates with row >= col).
        r1, v1, lookups = self.triangle.extract_columns(col_ids, col_values)

        # Pass 2: mirrored entries — stored rows that are frontier
        # members contribute their *column* as the discovered vertex.
        # Strictly-lower entries only, to avoid double-emitting diagonals.
        if col_ids.size and self._rows.size:
            strict = self._rows != self._cols
            rows = self._rows[strict]
            cols = self._cols[strict]
            pos = np.searchsorted(col_ids, rows)
            pos_clipped = np.minimum(pos, col_ids.size - 1)
            hit = col_ids[pos_clipped] == rows
            r2 = cols[hit]
            v2 = col_values[pos_clipped[hit]]
        else:
            r2 = np.empty(0, dtype=np.int64)
            v2 = np.empty(0, dtype=np.int64)

        rows_out = np.concatenate([r1, r2])
        vals_out = np.concatenate([v1, v2])
        work = SymWork(
            candidates=int(rows_out.size),
            lookups=lookups,
            scanned=self.stored_nnz,
        )
        return rows_out, vals_out, work


def spmsv_symmetric(
    block: SymmetricDCSC,
    frontier_idx: np.ndarray,
    frontier_val: np.ndarray,
    semiring: Semiring = SELECT_MAX,
) -> tuple[np.ndarray, np.ndarray, SymWork]:
    """SpMSV over a triangle-stored symmetric block (heap-style merge)."""
    rows, vals, work = block.extract_columns(frontier_idx, frontier_val)
    out_idx, out_val = semiring.reduce_sorted_runs(rows, vals)
    return out_idx, out_val, work
