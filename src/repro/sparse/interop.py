"""SciPy sparse interoperability.

Downstream users live in the `scipy.sparse` ecosystem; these converters
bridge it with the repo's structures so graphs and blocks can be
round-tripped without touching raw index arrays:

* :func:`csr_to_scipy` / :func:`csr_from_scipy` — the graph adjacency
  structure (:class:`repro.graphs.csr.CSR`);
* :func:`dcsc_to_scipy` / :func:`dcsc_from_scipy` — hypersparse 2D blocks;
* :func:`graph_to_scipy` — a traversal-ready
  :class:`~repro.graphs.graph.Graph` as a boolean adjacency matrix in the
  caller's (original) vertex labels.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.csr import CSR
from repro.graphs.graph import Graph
from repro.sparse.dcsc import DCSC


def csr_to_scipy(csr: CSR) -> sp.csr_matrix:
    """Boolean scipy CSR with the same adjacency structure."""
    data = np.ones(csr.nnz, dtype=bool)
    return sp.csr_matrix(
        (data, csr.indices.copy(), csr.indptr.copy()), shape=(csr.n, csr.n)
    )


def csr_from_scipy(matrix: sp.spmatrix) -> CSR:
    """Build a :class:`CSR` from any square scipy sparse matrix.

    Values are ignored (the graph is boolean); duplicates collapse and
    adjacencies come out sorted, as Section 4.1 requires.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency matrices must be square, got {matrix.shape}")
    coo = matrix.tocoo()
    from repro.graphs.csr import build_csr

    return build_csr(
        matrix.shape[0],
        coo.row.astype(np.int64),
        coo.col.astype(np.int64),
        symmetrize=False,
        dedup=True,
        drop_self_loops=False,
    )


def dcsc_to_scipy(block: DCSC) -> sp.csc_matrix:
    """Boolean scipy CSC of a hypersparse block (column pointers expand)."""
    rows, cols = block.to_coo()
    data = np.ones(rows.size, dtype=bool)
    return sp.csc_matrix(
        (data, (rows, cols)), shape=(block.nrows, block.ncols)
    )


def dcsc_from_scipy(matrix: sp.spmatrix) -> DCSC:
    """Compress any scipy sparse matrix into DCSC (values ignored)."""
    coo = matrix.tocoo()
    return DCSC.from_coo(
        matrix.shape[0],
        matrix.shape[1],
        coo.row.astype(np.int64),
        coo.col.astype(np.int64),
    )


def graph_to_scipy(graph: Graph, original_labels: bool = True) -> sp.csr_matrix:
    """Adjacency matrix of a :class:`Graph`.

    With ``original_labels=True`` (default) the matrix uses the caller's
    vertex ids, undoing the internal load-balancing shuffle.
    """
    matrix = csr_to_scipy(graph.csr)
    if original_labels and graph.perm is not None:
        # internal = perm[original]  =>  A_orig = P^T A_int P with
        # P[i, perm[i]] = 1.
        n = graph.n
        perm = graph.perm
        p_mat = sp.csr_matrix(
            (np.ones(n, dtype=bool), (np.arange(n), perm)), shape=(n, n)
        )
        matrix = (p_mat @ matrix @ p_mat.T).tocsr()
    return matrix
