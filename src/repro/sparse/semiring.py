"""Algebraic semirings for graph traversal (Section 3.2).

A BFS level is ``x_{k+1} = A^T (x) x_k  .*  not(visited)`` over a
(select, max) semiring: "multiplication" selects the frontier value
(the parent id) attached to a nonzero, and "addition" combines competing
parents for the same row with ``max``.  Any associative, commutative,
idempotent-friendly combine works for BFS correctness; ``max`` makes every
kernel deterministic, so the SPA and heap paths produce bit-identical
results (handy for Figure 3's apples-to-apples comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Semiring:
    """Reduction semiring acting on ``int64`` payloads.

    Attributes
    ----------
    name:
        Identifier used in dispatch and reports.
    identity:
        The "zero": payload value meaning *no contribution* (must compare
        below every real payload for ``max``-style combines).
    """

    name: str
    identity: int

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise combine of two payload arrays."""
        raise NotImplementedError

    def reduce_at(self, dense: np.ndarray, positions: np.ndarray, values: np.ndarray) -> None:
        """In-place scatter-combine ``dense[positions] (+)= values``."""
        raise NotImplementedError

    def reduce_sorted_runs(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Combine values sharing a key (input order is irrelevant).

        Returns unique keys in ascending order with their combined values.
        """
        raise NotImplementedError


class _SelectMax(Semiring):
    """The paper's (select, max) semiring with identity -1."""

    def __init__(self):
        super().__init__(name="select-max", identity=-1)

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.maximum(a, b)

    def reduce_at(self, dense: np.ndarray, positions: np.ndarray, values: np.ndarray) -> None:
        np.maximum.at(dense, positions, values)

    def reduce_sorted_runs(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if keys.size == 0:
            return keys, values
        span = np.int64(values.max()) + 1
        if 0 <= values.min() and keys.max() < (1 << 62) // max(span, 1):
            # Composite-key quicksort; the max value of each key run is
            # the run's last entry (see core.frontier.dedup_candidates).
            composite = keys * span + values
            composite.sort()
            out_keys = composite // span
            last = np.empty(composite.size, dtype=bool)
            last[-1] = True
            np.not_equal(out_keys[1:], out_keys[:-1], out=last[:-1])
            composite = composite[last]
            out_keys = out_keys[last]
            return out_keys, composite - out_keys * span
        order = np.lexsort((values, keys))
        keys, values = keys[order], values[order]
        last = np.empty(keys.size, dtype=bool)
        last[-1] = True
        np.not_equal(keys[1:], keys[:-1], out=last[:-1])
        return keys[last], values[last]


#: Singleton instance used throughout the 2D algorithm.
SELECT_MAX = _SelectMax()
