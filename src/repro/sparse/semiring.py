"""Algebraic semirings for graph traversal (Section 3.2).

A BFS level is ``x_{k+1} = A^T (x) x_k  .*  not(visited)`` over a
(select, max) semiring: "multiplication" selects the frontier value
(the parent id) attached to a nonzero, and "addition" combines competing
parents for the same row with ``max``.  Any associative, commutative,
idempotent-friendly combine works for BFS correctness; ``max`` makes every
kernel deterministic, so the SPA and heap paths produce bit-identical
results (handy for Figure 3's apples-to-apples comparison).

The same machinery generalizes to a *family* of traversals by swapping
the combine (the paper's own motivation for the algebraic formulation):

* :data:`SELECT_MAX` — the paper's BFS semiring;
* :data:`BIT_OR` — bitwise OR over ``uint64`` lane words: bit *b* of a
  payload tracks source *b* of a 64-way batched traversal, so one
  scatter-combine advances 64 searches at once (``repro.query``'s
  multi-source BFS and connected components);
* :data:`MIN_LEVEL` — ``min`` over hop counts (batched level merges,
  landmark distance tables);
* :data:`MIN_PLUS` — the tropical semiring for shortest paths:
  "multiplication" is weight addition (done by the caller along each
  edge), "addition" keeps the minimum tentative distance
  (``repro.query``'s delta-stepping-style SSSP).

Every instance is registered in :data:`SEMIRINGS` so kernels, tests and
docs can enumerate the zoo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels

#: "Infinity" for the min-combining semirings: large enough to dominate
#: every real payload, small enough that ``identity + max_weight`` can
#: never wrap int64 in a careless caller.
INF = 1 << 62


@dataclass(frozen=True)
class Semiring:
    """Reduction semiring acting on fixed-width integer payloads.

    Attributes
    ----------
    name:
        Identifier used in dispatch and reports.
    identity:
        The "zero": payload value meaning *no contribution* (must be
        absorbed by :meth:`combine`: ``combine(x, identity) == x``).
    """

    name: str
    identity: int

    #: Payload dtype of the dense accumulator and the value arrays; the
    #: lane-word semiring overrides this with ``uint64``.
    dtype = np.int64

    #: Reduction op name dispatched to :mod:`repro.kernels`
    #: (``scatter_reduce`` / ``reduce_runs``).
    kernel_op = "max"

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise combine of two payload arrays."""
        raise NotImplementedError

    def reduce_at(self, dense: np.ndarray, positions: np.ndarray, values: np.ndarray) -> None:
        """In-place scatter-combine ``dense[positions] (+)= values``."""
        kernels.scatter_reduce(dense, positions, values, self.kernel_op)

    def reduce_sorted_runs(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Combine values sharing a key (input order is irrelevant).

        Returns unique keys in ascending order with their combined values.
        """
        if keys.size == 0:
            return keys, values
        return kernels.reduce_runs(keys, values, self.kernel_op)


class _SelectMax(Semiring):
    """The paper's (select, max) semiring with identity -1."""

    kernel_op = "max"

    def __init__(self):
        super().__init__(name="select-max", identity=-1)

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.maximum(a, b)


class _BitOr(Semiring):
    """Bitwise-OR over ``uint64`` lane words; identity is the empty word.

    The word-parallel workhorse of :mod:`repro.query`: bit *b* of every
    payload belongs to batched source *b*, and one OR combines all 64
    lanes' reachability at once.
    """

    dtype = np.uint64
    kernel_op = "or"

    def __init__(self):
        super().__init__(name="bit-or", identity=0)

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.bitwise_or(a, b)


class _MinCombine(Semiring):
    """Shared ``min`` combine for the level- and distance-merging semirings."""

    kernel_op = "min"

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.minimum(a, b)


class _MinLevel(_MinCombine):
    """``min`` over hop counts: merges batched BFS levels and landmark tables."""

    def __init__(self):
        super().__init__(name="min-level", identity=INF)


class _MinPlus(_MinCombine):
    """Tropical semiring: callers add edge weights, the combine keeps the min.

    The "multiplication" (``dist[u] + w(u, v)``) happens at the call
    site while enumerating nonzeros — exactly how the BFS kernels attach
    the parent payload — so this class only owns the additive ``min``.
    """

    def __init__(self):
        super().__init__(name="min-plus", identity=INF)


#: Singleton instance used throughout the 2D algorithm.
SELECT_MAX = _SelectMax()

#: Bitwise-OR lane-word semiring (64-way batched traversals).
BIT_OR = _BitOr()

#: Min-over-levels semiring (batched level / landmark-table merges).
MIN_LEVEL = _MinLevel()

#: Tropical (min, +) semiring (delta-stepping-style SSSP).
MIN_PLUS = _MinPlus()

#: Registry of every shipped semiring, keyed by name; the property tests
#: sweep this so a new semiring is algebra-checked the moment it lands.
SEMIRINGS: dict[str, Semiring] = {
    s.name: s for s in (SELECT_MAX, BIT_OR, MIN_LEVEL, MIN_PLUS)
}
