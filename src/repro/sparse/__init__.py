"""Sparse linear-algebra substrate (the CombBLAS-like layer, Section 4).

The 2D BFS formulates each level as a sparse matrix-sparse vector product
(SpMSV) over a (select, max) semiring:

* :class:`~repro.sparse.dcsc.DCSC` — doubly-compressed sparse columns, the
  O(nnz) structure required for hypersparse 2D blocks (a plain CSC would
  waste O(n * sqrt(p)) on column pointers; Section 4.1);
* :class:`~repro.sparse.spa.SPA` — the Gilbert-Moler-Schreiber sparse
  accumulator used for the column-union at low concurrency;
* :func:`~repro.sparse.spmsv.spmsv_heap` — the sort/merge-based kernel
  that wins past ~10K cores (Figure 3);
* :func:`~repro.sparse.spmsv.spmsv` — the polyalgorithm that picks
  between them (Section 4.2);
* :class:`~repro.sparse.spvec.SparseVector` — the sorted sparse frontier.
"""

from repro.sparse.csr_matrix import CSRMatrix
from repro.sparse.dcsc import DCSC
from repro.sparse.semiring import (
    BIT_OR,
    MIN_LEVEL,
    MIN_PLUS,
    SELECT_MAX,
    SEMIRINGS,
    Semiring,
)
from repro.sparse.spa import SPA
from repro.sparse.spmsv import (
    SpMSVWork,
    choose_spmsv_kernel,
    spmsv,
    spmsv_heap,
    spmsv_spa,
)
from repro.sparse.spvec import SparseVector

__all__ = [
    "BIT_OR",
    "CSRMatrix",
    "DCSC",
    "MIN_LEVEL",
    "MIN_PLUS",
    "SELECT_MAX",
    "SEMIRINGS",
    "Semiring",
    "SPA",
    "SpMSVWork",
    "choose_spmsv_kernel",
    "spmsv",
    "spmsv_heap",
    "spmsv_spa",
    "SparseVector",
]
