"""Memory-reference cost model (the ``alpha_L,x`` / ``beta_L`` terms).

Section 5 of the paper qualifies the memory latency term by the size of
the data structure being accessed: ``alpha_{L,x}`` is the latency of an
irregular reference into a logically contiguous chunk of ``x`` words.
We realize that with a cache-hierarchy ladder: an irregular access into a
working set that fits in L1 costs L1 latency, and so on up to DRAM, with a
smooth (logarithmic) interpolation between levels so the model has no
artificial cliffs.

``beta_L`` is the per-word cost of a unit-stride streaming access.
"""

from __future__ import annotations

import math

from repro.model.machine import MachineConfig


def beta_L(machine: MachineConfig) -> float:
    """Seconds per word of streamed (unit-stride) memory traffic."""
    return 1.0 / machine.stream_words_per_sec


def alpha_L(ws_words: float, machine: MachineConfig) -> float:
    """Latency of one irregular access into a working set of ``ws_words``.

    Piecewise log-linear interpolation through the (capacity, latency)
    points of the cache hierarchy; constant below L1 capacity and above
    DRAM-resident sizes.
    """
    if ws_words < 0:
        raise ValueError(f"negative working set: {ws_words}")
    points = [
        (float(machine.l1_words), machine.lat_l1),
        (float(machine.l2_words), machine.lat_l2),
        (float(machine.l3_words), machine.lat_l3),
        # Beyond ~32x the L3 share everything misses to DRAM...
        (float(machine.l3_words) * 32.0, machine.lat_dram),
        # ... and very large working sets additionally blow the TLB reach,
        # so the effective per-access cost keeps growing slowly.  This is
        # what separates 1D's n/p-sized distance array from 2D's
        # n/sqrt(p)-sized SPA at the same core count (Section 5.2).
        (float(machine.l3_words) * 2048.0, machine.lat_dram * machine.tlb_penalty),
    ]
    ws = float(ws_words)
    if ws <= points[0][0]:
        return points[0][1]
    if ws >= points[-1][0]:
        return points[-1][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= ws <= x1:
            # Interpolate latency linearly in log(working set).
            frac = (math.log(ws) - math.log(x0)) / (math.log(x1) - math.log(x0))
            return y0 + frac * (y1 - y0)
    raise AssertionError("unreachable")  # pragma: no cover


def random_access_cost(count: float, ws_words: float, machine: MachineConfig) -> float:
    """Cost of ``count`` irregular accesses into a ``ws_words`` structure."""
    if count < 0:
        raise ValueError(f"negative access count: {count}")
    return count * alpha_L(ws_words, machine)


def stream_cost(words: float, machine: MachineConfig) -> float:
    """Cost of streaming ``words`` with unit stride."""
    if words < 0:
        raise ValueError(f"negative stream volume: {words}")
    return words * beta_L(machine)


def int_op_cost(ops: float, machine: MachineConfig) -> float:
    """Cost of ``ops`` integer/branch operations (bucketing, heap moves)."""
    if ops < 0:
        raise ValueError(f"negative op count: {ops}")
    return ops / machine.int_ops_per_sec
