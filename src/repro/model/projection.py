"""Workload-volume models: from measured runs and closed forms.

The benches regenerate the paper's large-scale figures by combining

* :class:`RmatVolumeModel` — closed-form per-rank volumes for Graph 500
  R-MAT traversals as a function of ``(n, m, p, threads)``, with a small
  set of constants calibrated against functional simulations, and
* :func:`repro.model.analytic.cost_1d` / ``cost_2d`` — the Section 5
  machine-model arithmetic.

:func:`measure_level_profile` extracts the same per-rank volumes from a
functional simulation's :class:`~repro.mpsim.stats.SimStats`, which is how
the tests validate the closed forms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.model.analytic import WorkloadVolumes
from repro.mpsim.stats import SimStats


def measure_level_profile(stats: SimStats) -> dict[str, float]:
    """Per-rank average traffic measured by a functional simulation."""
    p = max(1, stats.nranks)
    return {
        "a2a_words_per_rank": stats.words_sent("alltoallv") / p,
        "ag_words_per_rank": stats.words_recv("allgatherv") / p,
        "transpose_words_per_rank": stats.words_sent("exchange") / p,
        "nlevels": float(stats.calls("alltoallv")),
        "edges_scanned_per_rank": stats.counter("edges_scanned") / p,
        "candidates_per_rank": stats.counter("candidates") / p,
        "unique_sends_per_rank": stats.counter("unique_sends") / p,
    }


def fit_dedup_curve(
    parties: np.ndarray, survival: np.ndarray
) -> tuple[float, float]:
    """Fit ``s(p) = s1 * p**gamma`` to measured duplicate-survival points.

    ``survival`` is the fraction of candidate sends that remain after
    send-side deduplication.  Returns ``(s1, gamma)``.
    """
    parties = np.asarray(parties, dtype=float)
    survival = np.asarray(survival, dtype=float)
    if parties.size < 2:
        raise ValueError("need at least two measurement points")
    if np.any(parties <= 0) or np.any(survival <= 0):
        raise ValueError("parties and survival must be positive")
    gamma, log_s1 = np.polyfit(np.log(parties), np.log(survival), 1)
    return float(math.exp(log_s1)), float(gamma)


@dataclass
class RmatVolumeModel:
    """Closed-form volumes for Graph 500 R-MAT BFS traversals.

    The deduplication-survival curve ``s(g) = 1 - exp(-s1 * g**gamma)`` is
    the workload's only non-trivial ingredient: a candidate edge to vertex
    ``v`` survives send-side dedup when no other edge to ``v`` was already
    queued by the same rank in the same level, so survival grows with the
    number of communicating parties ``g`` (p for 1D's all-to-all, only
    ``pc = sqrt(p/t)`` for the 2D fold — which is exactly why 2D moves
    less data; Section 5.2).

    Constants calibrated against functional simulations on R-MAT graphs
    (``tests/test_projection_calibration.py`` re-measures them):

    * dedup survival fitted on scale-15/ef-16 R-MAT at p = 2..64:
      ``s1 = 0.0592, gamma = 0.585`` (the saturating-exponent fit;
      re-derivable via :mod:`repro.model.calibration`);
    * reachable fraction ``1 - exp(-0.34 sqrt(ef))`` matches the measured
      0.49 / 0.74 / 0.92 at edge factors 4 / 16 / 64;
    * the level-count formula reproduces the measured 5-7 levels for
      Graph 500 R-MAT and grows as the graph sparsifies (Figure 10's
      regime ordering).
    """

    reach_frac: float | None = None  # None => derived from the edgefactor
    #: Fraction of input edges surviving into the traversed structure.
    #: 1.0 is correct at the paper's scales (duplicate R-MAT edges are
    #: vanishingly rare when m << n^2); *toy* instances collapse many
    #: duplicates (e.g. 45% at scale 12 / edgefactor 64), so small-scale
    #: volume validations must compare against measured stored/2m ratios.
    edge_frac: float = 1.0
    dedup_s1: float = 0.0592
    dedup_gamma: float = 0.585
    #: Density exponent: denser graphs deduplicate better ("in-node
    #: aggregation is less effective for sparser graphs", Section 5.2).
    #: Measured on R-MAT at edge factors 4..64, p = 8..64.
    dedup_density_delta: float = 0.25
    words_per_send: float = 2.0  # (vertex, parent) pairs

    def reach(self, edgefactor: float) -> float:
        """Fraction of vertices in the traversed (giant) component."""
        if self.reach_frac is not None:
            return self.reach_frac
        return 1.0 - math.exp(-0.34 * math.sqrt(edgefactor))

    def survival(self, parties: int, edgefactor: float = 16.0) -> float:
        """Fraction of candidates surviving send-side dedup among ``parties``.

        Saturating form ``1 - exp(-s1 * g^gamma * (16/ef)^delta)``: grows
        with the number of communicating parties (duplicates of a hub
        vertex land on more distinct ranks), shrinks with density (denser
        graphs pile more duplicates per rank-level), and never quite
        reaches 1 — even at high ``g`` the heaviest hubs keep absorbing
        duplicates within a rank-level.
        """
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        if edgefactor <= 0:
            raise ValueError(f"edgefactor must be > 0, got {edgefactor}")
        exponent = (
            self.dedup_s1
            * parties**self.dedup_gamma
            * (16.0 / edgefactor) ** self.dedup_density_delta
        )
        return float(1.0 - math.exp(-exponent))

    def nlevels(self, n: int, edgefactor: float) -> int:
        """Level count ``D`` of an R-MAT traversal (small diameter, growing
        as the graph sparsifies)."""
        if edgefactor <= 1:
            raise ValueError(f"edgefactor must be > 1, got {edgefactor}")
        return max(4, round(3 + 0.45 * math.log2(n) / math.log2(edgefactor)))

    # -- per-algorithm volumes -------------------------------------------
    def volumes_1d(
        self, n: int, m: int, p_cores: int, threads: int = 1
    ) -> WorkloadVolumes:
        """Per-rank volumes of the 1D algorithm at ``p_cores`` total cores."""
        ranks = max(1, p_cores // threads)
        edgefactor = m / n
        m_eff = self.edge_frac * m
        n_reach = self.reach(edgefactor) * n
        candidates = 2.0 * m_eff  # both directions of every traversed edge
        unique = candidates * self.survival(ranks, edgefactor)
        nlev = self.nlevels(n, edgefactor)
        return WorkloadVolumes(
            nlevels=nlev,
            edges_scanned=2.0 * m_eff / ranks,
            frontier_vertices=n_reach / ranks,
            random_checks=unique / ranks,
            random_ws_words=max(1.0, n / ranks),
            candidate_ops=candidates / ranks,
            # The paper's own accounting: "a cumulative data volume of
            # m(p-1)/p words sent on the network" — the 1/p share a rank
            # owes itself never hits the wire.
            a2a_words=self.words_per_send * unique / ranks * (ranks - 1) / max(1, ranks),
        )

    def volumes_2d(
        self, n: int, m: int, p_cores: int, threads: int = 1
    ) -> WorkloadVolumes:
        """Per-rank volumes of the 2D algorithm on the closest square grid."""
        ranks = max(1, p_cores // threads)
        side = max(1, math.isqrt(ranks))
        pr = pc = side
        ranks = side * side
        edgefactor = m / n
        m_eff = self.edge_frac * m
        n_reach = self.reach(edgefactor) * n
        candidates = 2.0 * m_eff
        fold_unique = candidates * self.survival(pc, edgefactor)
        nlev = self.nlevels(n, edgefactor)
        return WorkloadVolumes(
            nlevels=nlev,
            edges_scanned=2.0 * m_eff / ranks,
            frontier_vertices=n_reach / ranks,
            random_checks=fold_unique / ranks + n_reach / ranks,
            random_ws_words=max(1.0, n / pr),  # the SPA dense accumulator
            candidate_ops=candidates / ranks,
            a2a_words=self.words_per_send
            * fold_unique
            / ranks
            * (pc - 1)
            / max(1, pc),
            # Expand ships frontier *indices* only (the payload is implicit:
            # a frontier vertex proposes itself as parent), hence 1 word.
            ag_words=n_reach / pc,
            transpose_words=self.words_per_send * n_reach / ranks,
            heap_frontier_cols=max(2.0, n_reach / (nlev * pc)),
        )

    def volumes(
        self, algorithm: str, n: int, m: int, p_cores: int, threads: int = 1
    ) -> WorkloadVolumes:
        """Dispatch on ``"1d"`` / ``"2d"`` algorithm family."""
        if algorithm.startswith("1d"):
            return self.volumes_1d(n, m, p_cores, threads)
        if algorithm.startswith("2d"):
            return self.volumes_2d(n, m, p_cores, threads)
        raise ValueError(f"unknown algorithm family {algorithm!r}")
