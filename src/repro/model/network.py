"""Network cost model (the ``alpha_N`` / ``beta_N,pattern(p)`` terms).

Section 5 qualifies the network bandwidth term by communication pattern
and participant count.  The key physical input (Section 5.1) is that on a
3D torus the bisection bandwidth scales as ``p^(2/3)``, so the *per-node*
share of bisection-crossing traffic degrades as the job grows — this is
what makes collectives over fewer participants (the 2D algorithm's
sqrt(p)-sized rows/columns, the hybrid's fewer ranks) progressively
cheaper at scale, the paper's central observation.

Two modeling details worth spelling out:

* **Contention is job-global.**  A row/column collective involves only
  ``sqrt(p)`` ranks, but *every* row (or column) group runs its collective
  simultaneously, and with randomly shuffled vertices the traffic crosses
  the whole machine.  The bisection derating therefore uses the total
  job's node count; only the latency term scales with the group size.
* **NIC contention.**  Several MPI ranks driving one NIC lose more than
  their fair bandwidth share ("saturation of the network interface card
  when using more cores (hence more outstanding communication requests)
  per node", Section 6) — the mechanism behind the hybrid variants'
  communication advantage.
"""

from __future__ import annotations

import math

from repro.model.machine import MachineConfig

#: Fractional bandwidth loss per extra rank sharing a NIC.
NIC_CONTENTION = 0.04


def effective_a2a_nodes(group_nodes: int, job_nodes: int) -> int:
    """Torus span whose bisection an all-to-all among a sub-group crosses.

    A processor row/column of the 2D grid occupies consecutive ranks and
    therefore a compact region of the torus, but with every group
    communicating simultaneously part of the traffic still crosses wider
    links.  The geometric mean of the group span and the job span
    interpolates between the two extremes (group == job recovers the
    world collective).
    """
    if group_nodes < 1 or job_nodes < 1:
        raise ValueError("node counts must be >= 1")
    return max(1, round(math.sqrt(group_nodes * job_nodes)))


def per_rank_injection(machine: MachineConfig, ranks_per_node: int) -> float:
    """Words/s one MPI rank can inject when ``ranks_per_node`` share a NIC."""
    if ranks_per_node < 1:
        raise ValueError(f"ranks_per_node must be >= 1, got {ranks_per_node}")
    contention = 1.0 + NIC_CONTENTION * (ranks_per_node - 1)
    return machine.nic_words_per_sec / (ranks_per_node * contention)


def bisection_factor(machine: MachineConfig, job_nodes: int) -> float:
    """Contention multiplier <= 1 for traffic crossing the bisection."""
    if job_nodes < 1:
        raise ValueError(f"job_nodes must be >= 1, got {job_nodes}")
    if job_nodes <= machine.torus_reference_nodes:
        return 1.0
    return (machine.torus_reference_nodes / job_nodes) ** machine.torus_bisection_exponent


def beta_a2a(
    machine: MachineConfig, parties: int, ranks_per_node: int, job_nodes: int | None = None
) -> float:
    """Seconds/word of all-to-all traffic per rank.

    All-to-all is bisection-limited: nearly all traffic crosses the
    network midplane, so the sustained per-rank rate is the injection
    share derated by the job-wide bisection factor.
    """
    nodes = job_nodes if job_nodes is not None else max(
        1, parties // max(1, ranks_per_node)
    )
    rate = per_rank_injection(machine, ranks_per_node) * bisection_factor(
        machine, nodes
    )
    return 1.0 / rate


def beta_ag(
    machine: MachineConfig, parties: int, ranks_per_node: int, job_nodes: int | None = None
) -> float:
    """Seconds/word received in an allgather.

    Ring allgathers only move data between ring *neighbors*, so — unlike
    all-to-all — their traffic does not cross the torus bisection and the
    sustained rate is simply the (contended) NIC injection share.
    ``job_nodes`` is accepted for signature symmetry with
    :func:`beta_a2a`; the ring pattern makes it irrelevant.
    """
    del parties, job_nodes  # pattern is neighbor-local
    return 1.0 / per_rank_injection(machine, ranks_per_node)


def beta_p2p(machine: MachineConfig, ranks_per_node: int) -> float:
    """Seconds/word of point-to-point (pairwise) traffic per rank."""
    return 1.0 / per_rank_injection(machine, ranks_per_node)


def latency_a2a(machine: MachineConfig, parties: int) -> float:
    """Latency component of an all-to-all: ``p * alpha_N`` (Section 5.1)."""
    return parties * machine.net_latency


def latency_ag(machine: MachineConfig, parties: int) -> float:
    """Latency component of an allgather: ``p * alpha_N`` (ring, Sec 5.2)."""
    return parties * machine.net_latency


def latency_tree(machine: MachineConfig, parties: int) -> float:
    """Latency of a tree-structured collective (bcast/reduce/barrier)."""
    return math.ceil(math.log2(max(2, parties))) * machine.net_latency


# ---------------------------------------------------------------------------
# Collective algorithm selection (Section 7's "interprocessor collective
# communication optimization" future-work direction).
#
# Real MPI libraries switch collective algorithms by message size: a
# pairwise-exchange all-to-all moves each byte once but pays p-1 rounds of
# per-message latency, while Bruck's algorithm finishes in log2(p) rounds
# at the price of forwarding every word ~log2(p)/2 times.  The functions
# below expose both (plus ring vs recursive-doubling allgather) and an
# "auto" mode that — like a tuned MPI — takes the cheaper one.
# ---------------------------------------------------------------------------


def a2a_time(
    machine: MachineConfig,
    parties: int,
    send_words: float,
    ranks_per_node: int,
    job_nodes: int | None = None,
    algorithm: str = "auto",
) -> tuple[float, str]:
    """Seconds for one all-to-all where each rank sends ``send_words``.

    Returns ``(seconds, algorithm_used)``; ``algorithm`` is one of
    ``"pairwise"``, ``"bruck"``, or ``"auto"`` (pick the cheaper).
    """
    beta = beta_a2a(machine, parties, ranks_per_node, job_nodes)
    log_p = math.ceil(math.log2(max(2, parties)))
    pairwise = parties * machine.net_latency + send_words * beta
    bruck = log_p * machine.net_latency + send_words * (log_p / 2.0) * beta
    if algorithm == "pairwise":
        return pairwise, "pairwise"
    if algorithm == "bruck":
        return bruck, "bruck"
    if algorithm != "auto":
        raise ValueError(f"unknown all-to-all algorithm {algorithm!r}")
    return (pairwise, "pairwise") if pairwise <= bruck else (bruck, "bruck")


def allgather_time(
    machine: MachineConfig,
    parties: int,
    recv_words: float,
    ranks_per_node: int,
    job_nodes: int | None = None,
    algorithm: str = "auto",
) -> tuple[float, str]:
    """Seconds for one allgather where each rank receives ``recv_words``.

    ``"ring"`` pays p-1 latency rounds and moves each word once between
    neighbors; ``"recursive-doubling"`` finishes in log2(p) rounds but its
    pairings span the machine, so it pays the (softened) bisection factor.
    """
    log_p = math.ceil(math.log2(max(2, parties)))
    ring = parties * machine.net_latency + recv_words * beta_ag(
        machine, parties, ranks_per_node, job_nodes
    )
    nodes = job_nodes if job_nodes is not None else max(
        1, parties // max(1, ranks_per_node)
    )
    rd_beta = 1.0 / (
        per_rank_injection(machine, ranks_per_node)
        * math.sqrt(bisection_factor(machine, nodes))
    )
    rdoubling = log_p * machine.net_latency + recv_words * rd_beta
    if algorithm == "ring":
        return ring, "ring"
    if algorithm == "recursive-doubling":
        return rdoubling, "recursive-doubling"
    if algorithm != "auto":
        raise ValueError(f"unknown allgather algorithm {algorithm!r}")
    return (ring, "ring") if ring <= rdoubling else (rdoubling, "recursive-doubling")
