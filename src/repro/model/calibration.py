"""Calibration workflow: fit the volume model from functional runs.

The projection pipeline (Figures 5-10) rests on a handful of workload
constants — the dedup-survival curve, the reachable fraction, the level
count.  They ship pre-fitted in :class:`~repro.model.projection.
RmatVolumeModel`, but graphs change and generators evolve; this module
packages the measure-and-fit loop so the constants can be re-derived (and
the shipped ones audited) with one call::

    from repro.model.calibration import calibrate_volume_model

    model, report = calibrate_volume_model(scale=14, rank_counts=(4, 16, 64))
    print(report.summary())
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.runner import run_bfs
from repro.graphs.rmat import rmat_graph
from repro.model.projection import RmatVolumeModel


@dataclass
class CalibrationReport:
    """Measured points and fit quality of one calibration run."""

    scale: int
    edgefactor: float
    rank_counts: tuple[int, ...]
    survival_measured: dict[int, float] = field(default_factory=dict)
    survival_fitted_s1: float = 0.0
    survival_fitted_gamma: float = 0.0
    reach_measured: float = 0.0
    nlevels_measured: int = 0
    a2a_relative_errors: dict[int, float] = field(default_factory=dict)

    @property
    def max_a2a_error(self) -> float:
        return max(self.a2a_relative_errors.values(), default=0.0)

    def summary(self) -> str:
        lines = [
            f"calibration @ scale {self.scale}, edgefactor {self.edgefactor:g}",
            f"  reach fraction        : {self.reach_measured:.3f}",
            f"  levels                : {self.nlevels_measured}",
            f"  survival fit          : s1={self.survival_fitted_s1:.4f}, "
            f"gamma={self.survival_fitted_gamma:.3f}",
        ]
        for p in self.rank_counts:
            lines.append(
                f"  p={p:>4}: survival {self.survival_measured[p]:.3f}, "
                f"a2a volume error {100 * self.a2a_relative_errors[p]:+.1f}%"
            )
        return "\n".join(lines)


def _fit_saturating_survival(
    parties: np.ndarray, survival: np.ndarray
) -> tuple[float, float]:
    """Fit ``s(g) = 1 - exp(-s1 * g^gamma)`` by linearizing the exponent."""
    if np.any(survival >= 1.0) or np.any(survival <= 0.0):
        raise ValueError("survival points must lie strictly in (0, 1)")
    exponent = -np.log(1.0 - survival)  # = s1 * g^gamma
    gamma, log_s1 = np.polyfit(np.log(parties), np.log(exponent), 1)
    return float(math.exp(log_s1)), float(gamma)


def calibrate_volume_model(
    scale: int = 14,
    edgefactor: float = 16,
    rank_counts: tuple[int, ...] = (4, 16, 64),
    seed: int = 11,
    nsources: int = 1,
) -> tuple[RmatVolumeModel, CalibrationReport]:
    """Measure an R-MAT instance and fit a fresh :class:`RmatVolumeModel`.

    Runs the 1D algorithm functionally at each rank count, measures the
    dedup survival and traffic, fits the saturating survival curve, and
    cross-checks the fitted model's all-to-all volume prediction against
    the exact measured volumes.
    """
    if len(rank_counts) < 2:
        raise ValueError("need at least two rank counts to fit the curve")
    graph = rmat_graph(scale, edgefactor, seed=seed)
    sources = graph.random_nonisolated_vertices(nsources, seed=seed + 1)

    report = CalibrationReport(
        scale=scale, edgefactor=edgefactor, rank_counts=tuple(rank_counts)
    )
    runs: dict[int, list] = {p: [] for p in rank_counts}
    for p in rank_counts:
        for source in sources:
            runs[p].append(run_bfs(graph, int(source), "1d", nprocs=p))

    for p in rank_counts:
        cand = np.mean([r.stats.counter("candidates") for r in runs[p]])
        uniq = np.mean([r.stats.counter("unique_sends") for r in runs[p]])
        report.survival_measured[p] = float(uniq / cand)

    parties = np.array(rank_counts, dtype=float)
    surv = np.array([report.survival_measured[p] for p in rank_counts])
    s1, gamma = _fit_saturating_survival(parties, surv)
    report.survival_fitted_s1 = s1
    report.survival_fitted_gamma = gamma

    first = runs[rank_counts[0]][0]
    report.reach_measured = float((first.levels >= 0).mean())
    report.nlevels_measured = int(first.nlevels)

    model = RmatVolumeModel(dedup_s1=s1, dedup_gamma=gamma)
    for p in rank_counts:
        measured = np.mean(
            [r.stats.words_sent("alltoallv") for r in runs[p]]
        ) / p
        predicted = model.volumes_1d(graph.n, graph.m_input, p).a2a_words
        report.a2a_relative_errors[p] = float(predicted / measured - 1.0)
    return model, report


def audit_shipped_constants(
    scale: int = 13, rank_counts: tuple[int, ...] = (4, 16, 64), seed: int = 11
) -> dict[str, float]:
    """Compare a fresh fit against the constants shipped in the package.

    Returns relative differences; large values mean the shipped defaults
    have drifted from what the current generator produces.
    """
    fitted, _report = calibrate_volume_model(
        scale=scale, rank_counts=rank_counts, seed=seed
    )
    shipped = RmatVolumeModel()
    return {
        "s1_rel_diff": fitted.dedup_s1 / shipped.dedup_s1 - 1.0,
        "gamma_rel_diff": fitted.dedup_gamma / shipped.dedup_gamma - 1.0,
    }
