"""Closed-form cost expressions of Section 5.1 / 5.2.

The paper's per-BFS costs, in our notation (all "per rank, whole
traversal" unless stated):

1D (Section 5.1)
    local:    (m/p) beta_L  +  (n/p) alpha_L(n/p)  +  (m/p) alpha_L(n/p)
    network:  D * p * alpha_N  +  V_a2a * beta_{N,a2a}(p)

2D (Section 5.2), grid pr x pc:
    local:    (m/p) beta_L  +  (n/p) alpha_L(n/pc)  +  (m/p) alpha_L(n/pr)
    expand:   D * pr * alpha_N  +  V_ag  * beta_{N,ag}(pr)
    fold:     D * pc * alpha_N  +  V_fold * beta_{N,a2a}(pc)
    transpose: D pairwise messages of ~ V_f / D words

The volumes ``V_*`` and work counts are supplied by a
:class:`WorkloadVolumes` record — produced either from a functional
simulation (exact) or from :class:`repro.model.projection.RmatVolumeModel`
(calibrated closed forms) — so this module contains no workload-specific
magic, just the machine-model arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.model import memory, network
from repro.model.costmodel import DEFAULT_THREAD_EFFICIENCY, LEVEL_THREAD_OVERHEAD
from repro.model.machine import MachineConfig, get_machine


@dataclass
class WorkloadVolumes:
    """Per-rank work and traffic of one BFS traversal.

    Attributes
    ----------
    nlevels:
        Number of level-synchronous iterations ``D``.
    edges_scanned:
        Adjacency words streamed by this rank over the run (~``2m/p``
        for undirected graphs stored both ways).
    frontier_vertices:
        Vertices this rank pushes through its frontier (~``n_reach/p``).
    random_checks:
        Irregular accesses into the distance/parents structure.
    random_ws_words:
        Working-set size (words) those accesses hit: ``n/p`` for 1D,
        ``n/pr`` for the 2D SPA.
    candidate_ops:
        Candidate (row, parent) pairs generated before local merging —
        drives the SPA/heap cost in 2D and bucketing cost in 1D.
    a2a_words:
        Words this rank sends into fold/all-to-all exchanges over the run.
    ag_words:
        Words this rank *receives* from expand/allgather phases (2D only).
    transpose_words:
        Words this rank exchanges in TransposeVector (2D only).
    heap_frontier_cols:
        When the heap SpMSV kernel is modeled, the average number of
        frontier columns merged per level (the ``log k`` factor); 0 with
        the SPA kernel.
    """

    nlevels: int
    edges_scanned: float
    frontier_vertices: float
    random_checks: float
    random_ws_words: float
    candidate_ops: float
    a2a_words: float
    ag_words: float = 0.0
    transpose_words: float = 0.0
    heap_frontier_cols: float = 0.0


@dataclass
class AnalyticCosts:
    """Modeled time breakdown of one BFS traversal (seconds)."""

    comp: float
    a2a: float
    ag: float = 0.0
    transpose: float = 0.0
    sync: float = 0.0
    parts: dict[str, float] = field(default_factory=dict)

    @property
    def comm(self) -> float:
        return self.a2a + self.ag + self.transpose + self.sync

    @property
    def total(self) -> float:
        return self.comp + self.comm


def gteps(m_edges: float, seconds: float) -> float:
    """Traversed-edges-per-second rate in billions (Graph 500 measure)."""
    if seconds <= 0:
        raise ValueError(f"non-positive traversal time: {seconds}")
    return m_edges / seconds / 1e9


def _thread_speedup(threads: int, efficiency: float) -> float:
    return 1.0 if threads <= 1 else threads * efficiency


def _ranks_per_node(machine: MachineConfig, threads: int, ranks: int) -> int:
    return min(max(1, machine.cores_per_node // threads), max(1, ranks))


def cost_1d(
    vol: WorkloadVolumes,
    p_cores: int,
    machine: MachineConfig | str,
    threads: int = 1,
    thread_efficiency: float = DEFAULT_THREAD_EFFICIENCY,
) -> AnalyticCosts:
    """Section 5.1 cost of the 1D algorithm for one rank's volumes.

    ``p_cores`` is the total core count; with ``threads`` > 1 the rank
    count is ``p_cores / threads`` (the hybrid variant).
    """
    m = get_machine(machine)
    assert m is not None
    ranks = max(1, p_cores // threads)
    rpn = _ranks_per_node(m, threads, ranks)
    job_nodes = m.nodes_for_cores(p_cores)

    speedup = _thread_speedup(threads, thread_efficiency)
    comp = (
        memory.stream_cost(vol.edges_scanned, m)
        + memory.random_access_cost(vol.frontier_vertices, vol.random_ws_words, m)
        + memory.random_access_cost(vol.random_checks, vol.random_ws_words, m)
        + memory.int_op_cost(vol.candidate_ops, m)  # owner computation & packing
    ) / speedup
    if threads > 1:
        # Serial merge of thread-local stacks once per level (Section 4.2)
        # plus fixed per-level intra-node synchronization.
        comp += memory.stream_cost(vol.frontier_vertices, m)
        comp += vol.nlevels * LEVEL_THREAD_OVERHEAD

    per_call, _algo = network.a2a_time(
        m, ranks, vol.a2a_words / max(1, vol.nlevels), rpn, job_nodes
    )
    a2a = vol.nlevels * per_call
    sync = 2 * vol.nlevels * network.latency_tree(m, ranks)  # allreduce + barrier
    return AnalyticCosts(
        comp=comp,
        a2a=a2a,
        sync=sync,
        parts={
            "stream": memory.stream_cost(vol.edges_scanned, m) / speedup,
            "random": memory.random_access_cost(
                vol.frontier_vertices + vol.random_checks, vol.random_ws_words, m
            )
            / speedup,
        },
    )


#: Intra-node threading efficiency of the 2D hybrid: the row-split DCSC
#: pieces are fully independent (no shared queue, no atomics), so SpMSV
#: threads scale far better than the 1D hybrid's merge-bound packing
#: (which uses DEFAULT_THREAD_EFFICIENCY).
THREAD_EFFICIENCY_2D = 0.75

#: Fraction of the SPA's dense accumulator touched (reset, flag scans,
#: index sort spill) per BFS level — the kernel's fixed per-level cost
#: that stops shrinking with the frontier and eventually hands the win to
#: the heap kernel (Figure 3, Section 4.2).
SPA_DENSE_TOUCH = 1.2

#: Integer/branch operations charged per heap comparison: the multiway
#: merge is a *dependent* pointer chase, so each logical compare costs
#: several core operations even with the paper's cache-efficient heap.
HEAP_OPS_PER_COMPARE = 20.0


def spmsv_merge_cost(
    vol: WorkloadVolumes, machine: MachineConfig, spmsv_kernel: str
) -> float:
    """Modeled local-merge seconds of one traversal's SpMSV calls.

    ``"spa"`` scatters every candidate into the dense ``n/pr`` accumulator
    (irregular accesses into a large working set) plus the per-level dense
    touch; ``"heap"`` pays ``candidates * log2(k)`` dependent comparisons
    but keeps the working set compact.
    """
    if spmsv_kernel == "spa":
        # ~2.5 irregular accesses per candidate: occupied-flag probe,
        # value scatter-combine, and the index-list append that spills
        # out of cache (Section 4.2's SPA structure).
        return memory.random_access_cost(
            2.5 * vol.candidate_ops, vol.random_ws_words, machine
        ) + vol.nlevels * memory.stream_cost(
            SPA_DENSE_TOUCH * vol.random_ws_words, machine
        )
    if spmsv_kernel == "heap":
        k = max(2.0, vol.heap_frontier_cols)
        return memory.int_op_cost(
            HEAP_OPS_PER_COMPARE * vol.candidate_ops * math.log2(k), machine
        ) + memory.stream_cost(vol.candidate_ops, machine)
    raise ValueError(f"unknown spmsv kernel {spmsv_kernel!r}")


def cost_2d(
    vol: WorkloadVolumes,
    p_cores: int,
    machine: MachineConfig | str,
    threads: int = 1,
    thread_efficiency: float = THREAD_EFFICIENCY_2D,
    spmsv_kernel: str = "spa",
) -> AnalyticCosts:
    """Section 5.2 cost of the 2D algorithm for one rank's volumes.

    The processor grid is the closest square: ``pr = pc = sqrt(ranks)``.
    ``spmsv_kernel`` selects how candidate merging is charged: ``"spa"``
    scatters into a dense ``n/pr`` accumulator (irregular accesses into a
    large working set), ``"heap"`` pays a ``log k`` comparison factor but
    keeps the working set compact (Figure 3's trade-off).
    """
    m = get_machine(machine)
    assert m is not None
    ranks = max(1, p_cores // threads)
    side = max(1, math.isqrt(ranks))
    pr = pc = side
    rpn = _ranks_per_node(m, threads, ranks)
    job_nodes = m.nodes_for_cores(p_cores)

    speedup = _thread_speedup(threads, thread_efficiency)
    merge_cost = spmsv_merge_cost(vol, m, spmsv_kernel)

    comp = (
        memory.stream_cost(vol.edges_scanned, m)
        + merge_cost
        + memory.random_access_cost(vol.random_checks, vol.random_ws_words, m)
    ) / speedup
    if threads > 1:
        comp += vol.nlevels * LEVEL_THREAD_OVERHEAD

    # Expand: processor columns are strided across the machine, so the
    # allgather pays the job-global (softened) bisection factor.  Fold:
    # processor rows are consecutive ranks on neighboring nodes, so the
    # row all-to-all is topologically local.
    ag_call, _ag_algo = network.allgather_time(
        m, pr, vol.ag_words / max(1, vol.nlevels), rpn, job_nodes
    )
    ag = vol.nlevels * ag_call
    row_nodes = network.effective_a2a_nodes(
        max(1, (pc * threads) // m.cores_per_node), job_nodes
    )
    a2a_call, _a2a_algo = network.a2a_time(
        m, pc, vol.a2a_words / max(1, vol.nlevels), rpn, row_nodes
    )
    a2a = vol.nlevels * a2a_call
    p2p_beta = network.beta_p2p(m, rpn)
    transpose = vol.nlevels * m.net_latency + vol.transpose_words * p2p_beta
    sync = vol.nlevels * network.latency_tree(m, ranks)  # frontier-empty allreduce
    return AnalyticCosts(
        comp=comp,
        a2a=a2a,
        ag=ag,
        transpose=transpose,
        sync=sync,
        parts={"merge": merge_cost / speedup},
    )
