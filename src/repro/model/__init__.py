"""Performance model (Section 5 of the paper).

The paper proposes a linear model with terms ``alpha`` (latency) and
``beta`` (inverse bandwidth) for both memory references and network
messages, qualified by working-set size (``alpha_{L,x}``) and by collective
pattern and participant count (``beta_{N,a2a}(p)``, ``beta_{N,ag}(p)``).

This package provides:

* :mod:`~repro.model.machine` — calibrated machine descriptions for the
  paper's testbeds (Franklin/XT4, Hopper/XE6, Carver/Nehalem);
* :mod:`~repro.model.memory` — the cache-hierarchy latency model
  ``alpha_L(x)`` and streaming cost ``beta_L``;
* :mod:`~repro.model.network` — ``alpha_N`` and pattern-dependent
  ``beta_N`` including 3D-torus bisection scaling;
* :mod:`~repro.model.costmodel` — the live charging layer used by the
  simulator (compute charger + collective cost model);
* :mod:`~repro.model.analytic` — the closed-form Section 5.1/5.2 cost
  expressions used to project to paper-scale core counts;
* :mod:`~repro.model.projection` — glue that takes volumes measured by a
  functional simulation and re-times them under a machine model.
"""

from repro.model.analytic import (
    AnalyticCosts,
    cost_1d,
    cost_2d,
    gteps,
)
from repro.model.costmodel import Charger, NetworkCostModel
from repro.model.machine import CARVER, FRANKLIN, HOPPER, MachineConfig
from repro.model.memory import alpha_L, beta_L
from repro.model.network import beta_a2a, beta_ag, beta_p2p
from repro.model.projection import RmatVolumeModel, measure_level_profile

__all__ = [
    "AnalyticCosts",
    "cost_1d",
    "cost_2d",
    "gteps",
    "Charger",
    "NetworkCostModel",
    "MachineConfig",
    "FRANKLIN",
    "HOPPER",
    "CARVER",
    "alpha_L",
    "beta_L",
    "beta_a2a",
    "beta_ag",
    "beta_p2p",
    "RmatVolumeModel",
    "measure_level_profile",
]
