"""Machine descriptions for the paper's testbeds (Section 6).

The constants are derived from the hardware description in the paper and
public specifications of the systems; they are *calibration inputs* to the
alpha-beta model, not measurements of this repository's host.  Absolute
projected times therefore carry the model's error, but the orderings and
crossovers the paper reports are driven by the ratios encoded here
(cores-to-bandwidth, integer speed, torus bisection scaling), which come
straight from Section 6:

* Franklin — Cray XT4: one quad-core 2.3 GHz Opteron "Budapest" per node,
  SeaStar2 interconnect (6.4 GB/s HyperTransport injection, 7.6 GB/s
  links, 3D torus), DDR2-800 (12.8 GB/s/node), MPI latency 4.5-8.5 us.
* Hopper — Cray XE6: two 12-core 2.1 GHz "MagnyCours" per node (four
  6-core NUMA domains), Gemini interconnect (9.8 GB/s per chip, *shared by
  two nodes*), bisection bandwidth 1-20% lower than Franklin while core
  count is 4x — the paper's "cores to bandwidth ratio increases" regime.
* Carver — IBM iDataPlex: two quad-core Intel Nehalem per node, QDR
  InfiniBand fat-tree (used only for the PBGL comparison, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

WORD_BYTES = 8  # the paper counts 64-bit memory words


@dataclass(frozen=True)
class MachineConfig:
    """Alpha-beta parameters of one parallel system.

    All rates are in words (8 bytes) per second, all latencies in seconds.

    Attributes
    ----------
    cores_per_node:
        Cores sharing one network injection point.
    l1_words, l2_words, l3_words:
        Cache capacities (per core for L1/L2, per-core *share* for L3)
        in 8-byte words; thresholds for the ``alpha_L(x)`` ladder.
    lat_l1 .. lat_dram:
        *Effective* cost of one irregular access served by each level of
        the hierarchy.  These are amortized values: BFS's scatters and
        gathers are independent accesses, so out-of-order cores overlap
        ~6-10 misses (memory-level parallelism) and the effective per-
        access cost is well below the raw load-to-use latency.  Dependent
        pointer-chasing (the heap kernel's compares) is charged separately
        through ``int_ops_per_sec``.
    stream_words_per_sec:
        Per-core sustained streaming rate (the ``1/beta_L`` term); DRAM
        bandwidth divided by cores, bounded by what one core can issue.
    int_ops_per_sec:
        Per-core sustained rate for the integer/branch work of buffer
        packing, bucketing and sorting.
    nic_words_per_sec:
        Per-node network injection bandwidth (``1/beta_N`` before any
        contention scaling).
    net_latency:
        Per-message MPI latency ``alpha_N``.
    torus_bisection_exponent:
        ``b`` in the per-node all-to-all bandwidth scaling ``(n0/n)^b``;
        1/3 for a 3D torus (bisection ~ p^(2/3)), 0 for a full-bisection
        fat-tree.
    torus_reference_nodes:
        Node count ``n0`` at which all-to-all still achieves full
        injection bandwidth.
    """

    name: str
    cores_per_node: int
    clock_hz: float
    l1_words: int
    l2_words: int
    l3_words: int
    lat_l1: float
    lat_l2: float
    lat_l3: float
    lat_dram: float
    stream_words_per_sec: float
    int_ops_per_sec: float
    nic_words_per_sec: float
    net_latency: float
    torus_bisection_exponent: float
    torus_reference_nodes: int
    #: Multiplier on lat_dram for working sets far beyond the TLB reach.
    #: Budapest's small TLBs punish giant working sets much harder than
    #: Magny-Cours/Nehalem (which have larger TLBs and 1 GB pages).
    tlb_penalty: float = 3.0

    def __post_init__(self):
        if self.cores_per_node < 1:
            raise ValueError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        for name in (
            "clock_hz",
            "l1_words",
            "l2_words",
            "l3_words",
            "lat_l1",
            "lat_l2",
            "lat_l3",
            "lat_dram",
            "stream_words_per_sec",
            "int_ops_per_sec",
            "nic_words_per_sec",
            "net_latency",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if not 0.0 <= self.torus_bisection_exponent <= 1.0:
            raise ValueError(
                "torus_bisection_exponent must be in [0, 1], got "
                f"{self.torus_bisection_exponent}"
            )
        if self.torus_reference_nodes < 1:
            raise ValueError(
                f"torus_reference_nodes must be >= 1, got "
                f"{self.torus_reference_nodes}"
            )
        if self.tlb_penalty < 1.0:
            raise ValueError(f"tlb_penalty must be >= 1, got {self.tlb_penalty}")

    def with_overrides(self, **kwargs) -> "MachineConfig":
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)

    def nodes_for_cores(self, cores: int) -> int:
        """Number of nodes hosting ``cores`` cores (ceiling division)."""
        return max(1, -(-cores // self.cores_per_node))


def _gb_per_s_to_words(gb: float) -> float:
    return gb * 1e9 / WORD_BYTES


FRANKLIN = MachineConfig(
    name="Franklin (Cray XT4)",
    cores_per_node=4,
    clock_hz=2.3e9,
    l1_words=64 * 1024 // WORD_BYTES,
    l2_words=512 * 1024 // WORD_BYTES,
    l3_words=2 * 1024 * 1024 // (4 * WORD_BYTES),  # 2 MB L3 shared by 4 cores
    lat_l1=1.5e-9,
    lat_l2=3.0e-9,
    lat_l3=6.0e-9,
    lat_dram=1.5e-8,
    # DDR2-800: 12.8 GB/s per node over 4 cores, ~60% sustained.
    stream_words_per_sec=_gb_per_s_to_words(12.8 * 0.6 / 4),
    int_ops_per_sec=1.0e9,
    nic_words_per_sec=_gb_per_s_to_words(6.4 * 0.25),
    net_latency=6.5e-6,
    torus_bisection_exponent=0.5,
    torus_reference_nodes=32,
    tlb_penalty=5.0,
)

HOPPER = MachineConfig(
    name="Hopper (Cray XE6)",
    cores_per_node=24,
    clock_hz=2.1e9,
    l1_words=64 * 1024 // WORD_BYTES,
    l2_words=512 * 1024 // WORD_BYTES,
    l3_words=6 * 1024 * 1024 // (6 * WORD_BYTES),  # 6 MB L3 per 6-core die
    lat_l1=1.2e-9,
    lat_l2=2.5e-9,
    lat_l3=5.0e-9,
    lat_dram=1.1e-8,
    # DDR3: ~4x Franklin per-node bandwidth over 6x the cores.
    stream_words_per_sec=_gb_per_s_to_words(51.2 * 0.6 / 24),
    # MagnyCours is "clearly faster in integer calculations" (Section 6).
    int_ops_per_sec=1.7e9,
    # 9.8 GB/s Gemini chip shared by two nodes; Gemini sustains a
    # larger fraction of peak for MPI traffic than SeaStar2.
    nic_words_per_sec=_gb_per_s_to_words(9.8 * 0.4 / 2),
    net_latency=1.5e-6,
    torus_bisection_exponent=0.5,
    torus_reference_nodes=32,
)

CARVER = MachineConfig(
    name="Carver (IBM iDataPlex, Nehalem)",
    cores_per_node=8,
    clock_hz=2.67e9,
    l1_words=32 * 1024 // WORD_BYTES,
    l2_words=256 * 1024 // WORD_BYTES,
    l3_words=8 * 1024 * 1024 // (4 * WORD_BYTES),
    lat_l1=1.1e-9,
    lat_l2=2.2e-9,
    lat_l3=4.5e-9,
    lat_dram=1.0e-8,
    stream_words_per_sec=_gb_per_s_to_words(32.0 * 0.6 / 8),
    int_ops_per_sec=1.8e9,
    nic_words_per_sec=_gb_per_s_to_words(4.0 * 0.7),
    net_latency=2.0e-6,
    torus_bisection_exponent=0.0,  # full-bisection fat tree
    torus_reference_nodes=1,
)

#: All predefined machines, by short key.
MACHINES: dict[str, MachineConfig] = {
    "franklin": FRANKLIN,
    "hopper": HOPPER,
    "carver": CARVER,
}


def get_machine(name: str | MachineConfig | None) -> MachineConfig | None:
    """Resolve a machine by short name, pass through configs and ``None``."""
    if name is None or isinstance(name, MachineConfig):
        return name
    try:
        return MACHINES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        ) from None
