"""Live cost charging for functional simulations.

Two pieces:

* :class:`NetworkCostModel` — plugged into the simulation engine; prices
  every collective from its *actual* buffer sizes using
  :mod:`repro.model.network`.
* :class:`Charger` — handed to the BFS algorithms; converts operation
  counts (words streamed, irregular accesses, integer ops) into virtual
  compute seconds using :mod:`repro.model.memory`, dividing
  thread-parallel work by the intra-node thread count (the hybrid model).

With ``machine=None`` both are inert: the simulation still runs, volumes
and counters are still recorded, but virtual time stays at zero — that is
the pure-functional mode used by the correctness tests.
"""

from __future__ import annotations

import math

from repro.model import memory, network
from repro.model.machine import MachineConfig, get_machine
from repro.mpsim.engine import CollectiveCostModel

#: Fraction of ideal speedup intra-node threading achieves on the
#: thread-parallel phases (buffer packing/unpacking, SpMSV row pieces).
#: Deliberately conservative: it folds in OpenMP barrier/merge overheads
#: and NUMA effects, which is why the hybrid variants lose to flat MPI at
#: small scale and only win once communication dominates — exactly the
#: crossover the paper reports (Figures 5 and 7).
DEFAULT_THREAD_EFFICIENCY = 0.3

#: Fixed seconds of intra-node overhead charged per BFS level when
#: threading is active: OpenMP fork/join, the three thread barriers of
#: Algorithm 2, and NUMA traffic on the shared buffers.  Negligible for
#: low-diameter R-MAT traversals (< 10 levels) but decisive for
#: high-diameter traversals with small per-level frontiers — the
#: ~140-level uk-union crawl (Figure 11) and the structured single-node
#: meshes — where it is why the hybrid loses to flat MPI.
LEVEL_THREAD_OVERHEAD = 2e-5

#: Serial-work grain (seconds) below which intra-node threading stops
#: paying: parallelizing a loop whose serial time is comparable to the
#: fork/steal/imbalance costs yields no speedup.  The charged speedup
#: follows the Amdahl-style ramp ``1 + (S - 1) * w / (w + grain)`` — full
#: ``S`` for bulk per-level work (R-MAT), ~1 for the tiny frontiers of
#: high-diameter traversals.
PARALLEL_GRAIN_SECONDS = 1e-3

#: Default top-down -> bottom-up switching threshold of the
#: direction-optimizing 1D variant: flip to the bottom-up sweep once the
#: frontier's incident edges exceed ``1/alpha`` of the edges incident to
#: still-unvisited vertices.  14 is the value tuned by Beamer et al.
#: (the follow-up direction-optimizing BFS work); the `abl-dirop`
#: experiment sweeps it.
DIROP_ALPHA = 14.0

#: Default bottom-up -> top-down switching threshold: return to the
#: top-down candidate exchange once the frontier holds fewer than
#: ``n / beta`` vertices, where scanning every unvisited vertex against
#: the frontier bitmap no longer pays for the saved edge traffic.
DIROP_BETA = 24.0


class NetworkCostModel(CollectiveCostModel):
    """Prices collectives with the Section 5 alpha-beta network model."""

    def __init__(
        self,
        machine: MachineConfig | str,
        threads: int = 1,
        total_ranks: int | None = None,
        a2a_algorithm: str = "auto",
        allgather_algorithm: str = "auto",
    ):
        resolved = get_machine(machine)
        if resolved is None:
            raise ValueError("NetworkCostModel requires a machine")
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.machine = resolved
        self.threads = threads
        self.a2a_algorithm = a2a_algorithm
        self.allgather_algorithm = allgather_algorithm
        per_node = max(1, resolved.cores_per_node // threads)
        if total_ranks is not None:
            per_node = min(per_node, max(1, total_ranks))
        self.ranks_per_node = per_node
        self.total_ranks = total_ranks if total_ranks is not None else 1
        # Bisection contention is job-global (every row/column group
        # communicates simultaneously across the whole torus).
        total = total_ranks if total_ranks is not None else per_node
        self.job_nodes = max(1, (total * threads) // resolved.cores_per_node)

    def cost(
        self, kind: str, parties: int, max_send_words: float, max_recv_words: float
    ) -> float:
        m = self.machine
        if parties <= 1:
            return 0.0  # a single-rank "collective" never touches the wire
        if kind == "alltoallv":
            # Sub-communicator exchanges (the 2D fold along a processor
            # row) run between consecutive ranks on a compact torus region
            # and see less bisection contention than a world collective.
            if parties >= self.total_ranks:
                nodes = self.job_nodes
            else:
                group_nodes = max(1, (parties * self.threads) // m.cores_per_node)
                nodes = network.effective_a2a_nodes(group_nodes, self.job_nodes)
            seconds, _algo = network.a2a_time(
                m,
                parties,
                max_send_words,
                self.ranks_per_node,
                nodes,
                algorithm=self.a2a_algorithm,
            )
            return seconds
        if kind == "allgatherv":
            seconds, _algo = network.allgather_time(
                m,
                parties,
                max_recv_words,
                self.ranks_per_node,
                self.job_nodes,
                algorithm=self.allgather_algorithm,
            )
            return seconds
        if kind in ("allreduce", "bcast", "gather", "scatter"):
            # Small control-plane payloads: tree latency plus a token
            # bandwidth term for the payload itself.
            return network.latency_tree(m, parties) + max(
                max_send_words, max_recv_words
            ) * network.beta_p2p(m, self.ranks_per_node)
        if kind in ("barrier", "split"):
            return network.latency_tree(m, parties)
        if kind == "exchange":  # handled pairwise via p2p_cost, per pair
            return 0.0
        raise ValueError(f"unknown collective kind {kind!r}")

    def p2p_cost(self, words: float) -> float:
        m = self.machine
        return m.net_latency + words * network.beta_p2p(m, self.ranks_per_node)


class Charger:
    """Algorithm-facing compute charging with hybrid-threading semantics.

    Every method records counters on the rank's clock; when a machine is
    configured it also advances virtual time.  Work flagged as
    thread-parallel is divided by ``threads * efficiency`` — the paper's
    hybrid variants parallelize buffer packing/unpacking and the SpMSV row
    pieces across OpenMP threads, while merges and MPI calls stay serial.
    """

    def __init__(
        self,
        comm,
        machine: MachineConfig | str | None = None,
        threads: int = 1,
        thread_efficiency: float = DEFAULT_THREAD_EFFICIENCY,
    ):
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if not 0 < thread_efficiency <= 1:
            raise ValueError(f"thread_efficiency must be in (0, 1], got {thread_efficiency}")
        self.comm = comm
        self.machine = get_machine(machine)
        self.threads = threads
        self.thread_efficiency = thread_efficiency

    @property
    def enabled(self) -> bool:
        return self.machine is not None

    def _speedup(self, parallel: bool, seconds: float = float("inf")) -> float:
        """Grain-aware thread speedup for a charge of ``seconds`` serial work."""
        if not parallel or self.threads == 1:
            return 1.0
        full = self.threads * self.thread_efficiency
        if seconds == float("inf"):
            return full
        ramp = seconds / (seconds + PARALLEL_GRAIN_SECONDS)
        return 1.0 + (full - 1.0) * ramp

    def _charge(self, seconds: float, parallel: bool, **counters: float) -> None:
        if self.machine is not None and seconds > 0:
            self.comm.charge_compute(
                seconds / self._speedup(parallel, seconds), **counters
            )
        else:
            self.comm.count(**counters)

    # -- charging primitives ------------------------------------------------
    def count(self, **counters: float) -> None:
        """Record counters without any time charge."""
        self.comm.count(**counters)

    def stream(self, words: float, parallel: bool = True, **counters: float) -> None:
        """Unit-stride traffic of ``words`` (adjacency scans, buffer packs)."""
        seconds = memory.stream_cost(words, self.machine) if self.machine else 0.0
        self._charge(seconds, parallel, stream_words=words, **counters)

    def random(
        self, count: float, ws_words: float, parallel: bool = True, **counters: float
    ) -> None:
        """``count`` irregular accesses into a ``ws_words`` structure.

        This is the paper's ``count * alpha_{L,ws}`` term — the dominant
        local cost of BFS (distance checks in 1D, SPA updates in 2D).
        """
        seconds = (
            memory.random_access_cost(count, ws_words, self.machine)
            if self.machine
            else 0.0
        )
        self._charge(seconds, parallel, random_accesses=count, **counters)

    def intops(self, ops: float, parallel: bool = True, **counters: float) -> None:
        """Integer/branch work (owner computation, comparisons)."""
        seconds = memory.int_op_cost(ops, self.machine) if self.machine else 0.0
        self._charge(seconds, parallel, int_ops=ops, **counters)

    def sort(self, nitems: float, parallel: bool = True, **counters: float) -> None:
        """Comparison sort of ``nitems`` (frontier sorting, heap merges)."""
        ops = nitems * math.log2(nitems) if nitems > 1 else nitems
        self.intops(ops, parallel, sort_items=nitems, **counters)

    def level_overhead(self) -> None:
        """Per-level intra-node synchronization overhead (hybrid only)."""
        if self.threads > 1 and self.machine is not None:
            self.comm.charge_compute(LEVEL_THREAD_OVERHEAD, thread_levels=1)
        else:
            self.comm.count(thread_levels=1)

    def thread_merge(self, words: float, **counters: float) -> None:
        """Serial merge of thread-local buffers (hybrid only; Section 4.2).

        Charged only when threading is active: with one thread there are no
        thread-local stacks to merge.
        """
        if self.threads <= 1:
            self.comm.count(**counters)
            return
        seconds = memory.stream_cost(words, self.machine) if self.machine else 0.0
        self._charge(seconds, parallel=False, merge_words=words, **counters)
