"""Terminal rendering of the paper's figures.

The experiments return tabular data; this module draws them as ASCII
charts so ``repro-bench --plot`` regenerates the *figures* and not just
their numbers:

* :func:`line_chart` — multi-series chart on a log-x axis (the strong-
  scaling GTEPS/seconds plots, Figures 5-9);
* :func:`bar_chart` — grouped horizontal bars (Figures 10 and 11);
* :func:`series_from_table` — adapter from a
  :class:`~repro.bench.report.Table` to plottable series.

Everything is pure string manipulation (no plotting dependencies) and is
deliberately deterministic so the outputs can be golden-tested.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.bench.report import Table

#: Glyphs assigned to series, in order.
MARKERS = "o*x+#@%&"


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.2g}"
    return f"{value:.3g}"


def line_chart(
    title: str,
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    y_label: str = "",
) -> str:
    """Render named series against shared x positions as an ASCII chart.

    ``log_x=True`` spaces the x axis logarithmically — core counts in the
    paper's scaling studies double per tick, so linear spacing would
    crush the left half of every figure.
    """
    if not series:
        raise ValueError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} x values"
            )
    if len(x_values) < 2:
        raise ValueError("need at least two x positions")
    if log_x and min(x_values) <= 0:
        raise ValueError("log-x axis needs positive x values")

    xs = [math.log10(x) if log_x else float(x) for x in x_values]
    x_lo, x_hi = min(xs), max(xs)
    all_y = [y for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return round((x - x_lo) / (x_hi - x_lo) * (width - 1))

    def row(y: float) -> int:
        return (height - 1) - round((y - y_lo) / (y_hi - y_lo) * (height - 1))

    for marker, (name, ys) in zip(MARKERS, series.items()):
        # Connect consecutive points with interpolated dots, then stamp
        # the markers on top so crossings stay readable.
        for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
            steps = max(2, abs(col(x1) - col(x0)))
            for s in range(steps + 1):
                t = s / steps
                c = col(x0 + t * (x1 - x0))
                r = row(y0 + t * (y1 - y0))
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for x, y in zip(xs, ys):
            grid[row(y)][col(x)] = marker

    y_axis_width = max(len(_format_value(y_hi)), len(_format_value(y_lo)))
    lines = [title, "=" * len(title)]
    for r, grid_row in enumerate(grid):
        if r == 0:
            label = _format_value(y_hi)
        elif r == height - 1:
            label = _format_value(y_lo)
        else:
            label = ""
        lines.append(f"{label.rjust(y_axis_width)} |" + "".join(grid_row))
    lines.append(" " * y_axis_width + " +" + "-" * width)
    x_left = _format_value(x_values[0])
    x_right = _format_value(x_values[-1])
    pad = width - len(x_left) - len(x_right)
    lines.append(
        " " * (y_axis_width + 2) + x_left + " " * max(1, pad) + x_right
    )
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, series)
    )
    lines.append(f"legend: {legend}" + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)


def bar_chart(
    title: str,
    categories: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 48,
) -> str:
    """Grouped horizontal bars, one block per category."""
    if not series:
        raise ValueError("need at least one series")
    for name, vals in series.items():
        if len(vals) != len(categories):
            raise ValueError(
                f"series {name!r} has {len(vals)} values for "
                f"{len(categories)} categories"
            )
    peak = max(max(vals) for vals in series.values())
    if peak <= 0:
        peak = 1.0
    name_width = max(len(n) for n in series)
    lines = [title, "=" * len(title)]
    for i, category in enumerate(categories):
        lines.append(f"{category}:")
        for name, vals in series.items():
            bar = "#" * max(1 if vals[i] > 0 else 0, round(width * vals[i] / peak))
            lines.append(
                f"  {name.ljust(name_width)} {bar} {_format_value(vals[i])}"
            )
    return "\n".join(lines)


def series_from_table(
    table: Table, x_column: str, series_columns: Sequence[str] | None = None,
    where: dict | None = None,
) -> tuple[list[float], dict[str, list[float]]]:
    """Extract plottable (x, {name: ys}) data from an experiment table.

    ``where`` filters rows by exact column values (e.g. one scale panel
    of a two-panel figure).
    """
    rows = table.rows
    if where:
        indices = [table.headers.index(k) for k in where]
        rows = [
            r
            for r in rows
            if all(r[i] == v for i, v in zip(indices, where.values()))
        ]
    if not rows:
        raise ValueError(f"no rows match {where!r}")
    x_idx = table.headers.index(x_column)
    if series_columns is None:
        skip = set(where or {}) | {x_column}
        series_columns = [
            h
            for i, h in enumerate(table.headers)
            if h not in skip and isinstance(rows[0][i], (int, float))
        ]
    xs = [float(r[x_idx]) for r in rows]
    series = {
        name: [float(r[table.headers.index(name)]) for r in rows]
        for name in series_columns
    }
    return xs, series


def render_figure(table: Table, exp_id: str) -> str | None:
    """Best-effort chart for a known experiment's table (None if the
    experiment has no natural chart form)."""
    if exp_id in ("fig5", "fig7"):
        panels = sorted({row[0] for row in table.rows})
        charts = []
        for scale in panels:
            xs, series = series_from_table(
                table,
                "cores",
                series_columns=table.headers[3:],
                where={"scale": scale},
            )
            charts.append(
                line_chart(
                    f"{table.title} [scale {scale}]",
                    xs,
                    series,
                    y_label="GTEPS",
                )
            )
        return "\n\n".join(charts)
    if exp_id in ("fig6", "fig8"):
        panels = sorted({row[0] for row in table.rows})
        charts = []
        for scale in panels:
            xs, series = series_from_table(
                table,
                "cores",
                series_columns=table.headers[3:],
                where={"scale": scale},
            )
            charts.append(
                line_chart(
                    f"{table.title} [scale {scale}]",
                    xs,
                    series,
                    y_label="seconds",
                )
            )
        return "\n\n".join(charts)
    if exp_id == "fig3":
        xs, series = series_from_table(
            table, "cores", series_columns=["modeled speedup"]
        )
        return line_chart(table.title, xs, series, y_label="SPA/heap speedup")
    if exp_id == "fig10":
        categories = [f"p={r[0]}, deg {r[2]}" for r in table.rows]
        series = {
            algo: [float(r[table.headers.index(algo)]) for r in table.rows]
            for algo in table.headers[3:]
        }
        return bar_chart(table.title, categories, series)
    if exp_id == "fig11":
        categories = [f"{r[0]} @ {r[2]} cores" for r in table.rows]
        idx_comp = table.headers.index("computation (s)")
        idx_comm = table.headers.index("communication (s)")
        series = {
            "computation": [float(r[idx_comp]) for r in table.rows],
            "communication": [float(r[idx_comm]) for r in table.rows],
        }
        return bar_chart(table.title, categories, series)
    return None
