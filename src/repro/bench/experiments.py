"""Per-figure/table experiment definitions.

Each function regenerates one paper artifact and returns a
:class:`~repro.bench.report.Table` with the same rows/series the paper
reports.  Two kinds of experiments:

* **functional** (Figures 3, 4, 11; Table 2; Section 6 comparisons):
  run the real algorithms on the simulated MPI substrate at laptop-scale
  rank counts and downscaled graphs — volumes are exact, times come from
  the machine model;
* **projected** (Figures 5-10, Table 1): evaluate the calibrated
  closed-form Section 5 model at the paper's exact core counts and graph
  scales (scale-29..32 graphs cannot be materialized on a laptop, but the
  volume model was validated against functional runs — see
  ``tests/test_projection_calibration.py``).

Absolute numbers carry the machine-model calibration error; the *shape*
(orderings, crossovers, ratios) is the reproduction target and is checked
by ``tests/test_experiments.py``.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.bench import harness
from repro.bench.report import Table
from repro.core.runner import run_bfs
from repro.graphs.rmat import rmat_graph
from repro.graphs.webcrawl import webcrawl_graph
from repro.model.analytic import spmsv_merge_cost
from repro.model.machine import FRANKLIN, HOPPER
from repro.model.projection import RmatVolumeModel
from repro.sparse.dcsc import DCSC
from repro.sparse.spmsv import spmsv_heap, spmsv_spa

# ---------------------------------------------------------------------------
# Figure 3 — SPA vs heap local SpMSV
# ---------------------------------------------------------------------------


def fig3_spa_vs_heap(quick: bool = False) -> Table:
    """Figure 3: speedup of the SPA kernel over the heap kernel vs cores.

    The modeled column evaluates the Section 4.2 cost terms for a scale-33
    R-MAT on Hopper (the paper's setting); the measured column runs the
    *actual* kernels on a downscaled local block with the same hypersparse
    shape and reports real wall-clock.
    """
    model = RmatVolumeModel()
    scale, ef = 33, 16
    n, m = 1 << scale, 16 << scale
    table = Table(
        title="Figure 3: SPA over heap speedup for the local SpMSV (Hopper, scale 33)",
        headers=["cores", "modeled speedup", "measured speedup (downscaled)"],
    )
    core_counts = [2116, 5041, 10000, 20164, 40000]
    rng = np.random.default_rng(7)
    for cores in core_counts:
        vol = model.volumes_2d(n, m, cores)
        t_spa = spmsv_merge_cost(vol, HOPPER, "spa")
        t_heap = spmsv_merge_cost(vol, HOPPER, "heap")
        modeled = t_heap / t_spa

        # Downscaled measured kernel run: one block with the right shape.
        down = 14 if quick else 18
        side = math.isqrt(cores)
        nloc = max(64, (1 << down) // side)
        nnz_local = max(64, (16 << down) // cores)
        rows = rng.integers(0, nloc, nnz_local)
        cols = rng.integers(0, nloc, nnz_local)
        block = DCSC.from_coo(nloc, nloc, rows, cols)
        frontier = np.unique(rng.integers(0, nloc, max(8, nloc // 8)))
        values = frontier + 1
        reps = 3
        t0 = time.perf_counter()
        for _ in range(reps):
            spmsv_spa(block, frontier, values)
        spa_wall = (time.perf_counter() - t0) / reps
        t0 = time.perf_counter()
        for _ in range(reps):
            spmsv_heap(block, frontier, values)
        heap_wall = (time.perf_counter() - t0) / reps
        table.add_row(cores, modeled, heap_wall / max(spa_wall, 1e-12))
    table.notes.append(
        "paper: SPA wins below ~10K cores; 'after 10K processors the "
        "difference becomes marginal and heap becomes preferable'"
    )
    table.notes.append(
        "modeled speedup > 1 means SPA faster; the crossover to <= ~1 "
        "should fall near 10,000 cores"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 4 — 1D vs 2D vector distribution load balance
# ---------------------------------------------------------------------------


def fig4_vector_distribution(quick: bool = False) -> Table:
    """Figure 4: time in MPI with diagonal-only vs 2D vector distribution.

    Functional simulation on a 16x16 processor grid (the paper's 256
    ranks).  The paper's heat map isolates the *load-imbalance* effect —
    SpMSV iterations followed by a globally synchronizing Allreduce — so
    the machine variant here zeroes the per-message latency (which at
    laptop graph sizes would otherwise drown the imbalance signal) and
    keeps the bandwidth and memory models.
    """
    side = 8 if quick else 16
    scale = 13 if quick else 16
    machine = FRANKLIN.with_overrides(net_latency=1e-9)
    graph = rmat_graph(scale, 16, seed=3)
    source = harness.pick_sources(graph, 1)[0]
    table = Table(
        title=f"Figure 4: MPI time share on a {side}x{side} grid (R-MAT scale {scale}, Franklin model)",
        headers=[
            "vector distribution",
            "diag MPI% (norm)",
            "off-diag MPI% (norm)",
            "off-diag idle/transfer ratio",
        ],
    )
    for dist in ("1d", "2d"):
        res = run_bfs(
            graph,
            source,
            "2d",
            nprocs=side * side,
            machine=machine,
            vector_dist=dist,
        )
        stats = res.stats
        assert stats is not None
        diag = [i * side + i for i in range(side)]
        off = [r for r in range(side * side) if r not in diag]
        mpi = np.array(
            [100.0 * stats.mpi_fraction(r) for r in range(side * side)]
        )
        mpi_norm = 100.0 * mpi / mpi.max()
        wait = np.array([stats.clocks[r].mpi_wait_time for r in off])
        xfer = np.array([stats.clocks[r].mpi_transfer_time for r in off])
        table.add_row(
            "diagonal only (1D)" if dist == "1d" else "2D (all ranks)",
            float(mpi_norm[diag].mean()),
            float(mpi_norm[off].mean()),
            float(wait.sum() / max(xfer.sum(), 1e-15)),
        )
    table.notes.append(
        "paper: with diagonal-only vectors the off-diagonal ranks idle "
        "3-4x longer than they communicate; the 2D distribution shows "
        "almost no load imbalance"
    )
    return table


# ---------------------------------------------------------------------------
# Table 1 — communication decomposition of the flat 2D algorithm
# ---------------------------------------------------------------------------


def table1_comm_decomposition(quick: bool = False) -> Table:
    """Table 1: Allgatherv vs Alltoallv share of flat 2D BFS on Franklin."""
    table = Table(
        title="Table 1: flat 2D communication decomposition (Franklin, fixed edge count)",
        headers=[
            "cores",
            "scale",
            "edgefactor",
            "BFS time (s)",
            "Allgatherv %",
            "Alltoallv %",
        ],
    )
    for cores in (1024, 2025, 4096):
        for scale, ef in ((27, 64), (29, 16), (31, 4)):
            costs = harness.projected_costs("2d", scale, ef, cores, FRANKLIN)
            table.add_row(
                cores,
                scale,
                ef,
                costs.total,
                100.0 * costs.ag / costs.total,
                100.0 * costs.a2a / costs.total,
            )
    table.notes.append(
        "paper (1024 cores): 2.67s/7.0%/6.8% at scale 27 -> 7.18s/16.6%/9.1% "
        "at scale 31; Allgatherv share grows with sparsity and cores while "
        "Alltoallv stays roughly flat"
    )
    return table


# ---------------------------------------------------------------------------
# Figures 5-8 — strong scaling (performance and communication time)
# ---------------------------------------------------------------------------

_ALGOS = ("1d", "1d-hybrid", "2d", "2d-hybrid")


def _strong_scaling(
    machine, panels: list[tuple[int, int, list[int]]], metric: str, title: str
) -> Table:
    headers = ["scale", "edgefactor", "cores"] + [
        {"gteps": a, "comm": f"{a} comm(s)"}[metric] for a in _ALGOS
    ]
    table = Table(title=title, headers=headers)
    for scale, ef, cores_list in panels:
        for cores in cores_list:
            row: list = [scale, ef, cores]
            for algo in _ALGOS:
                if metric == "gteps":
                    row.append(
                        harness.projected_gteps(algo, scale, ef, cores, machine)
                    )
                else:
                    row.append(
                        harness.projected_costs(algo, scale, ef, cores, machine).comm
                    )
            table.add_row(*row)
    return table


def fig5_franklin_strong(quick: bool = False) -> Table:
    table = _strong_scaling(
        FRANKLIN,
        [
            (29, 16, [512, 1024, 2048, 4096]),
            (32, 16, [4096, 6400, 8192]),
        ],
        "gteps",
        "Figure 5: strong scaling on Franklin (GTEPS, higher is better)",
    )
    table.notes.append(
        "paper: flat 1D 1.5-1.8x faster than 2D on Franklin; 1D-hybrid "
        "overtakes flat 1D at the largest concurrencies"
    )
    return table


def fig6_franklin_comm(quick: bool = False) -> Table:
    table = _strong_scaling(
        FRANKLIN,
        [
            (29, 16, [512, 1024, 2048, 4096]),
            (32, 16, [4096, 6400, 8192]),
        ],
        "comm",
        "Figure 6: MPI communication time on Franklin (seconds, lower is better)",
    )
    table.notes.append(
        "paper: 2D algorithms consistently spend 30-60% less time in "
        "communication than their 1D counterparts"
    )
    return table


def fig7_hopper_strong(quick: bool = False) -> Table:
    table = _strong_scaling(
        HOPPER,
        [
            (30, 16, [1224, 2500, 5040, 10008]),
            (32, 16, [5040, 10008, 20000, 40000]),
        ],
        "gteps",
        "Figure 7: strong scaling on Hopper (GTEPS, higher is better)",
    )
    table.notes.append(
        "paper: on Hopper the 2D algorithms beat their 1D counterparts; "
        "2D-hybrid reaches 17.8 GTEPS at 40,000 cores (scale 32)"
    )
    return table


def fig8_hopper_comm(quick: bool = False) -> Table:
    table = _strong_scaling(
        HOPPER,
        [
            (30, 16, [1224, 2500, 5040, 10008]),
            (32, 16, [5040, 10008, 20000, 40000]),
        ],
        "comm",
        "Figure 8: MPI communication time on Hopper (seconds, lower is better)",
    )
    # Comm fraction notes (the paper's flat-1D-at-20K observation).
    c1 = harness.projected_costs("1d", 32, 16, 20000, HOPPER)
    c2h = harness.projected_costs("2d-hybrid", 32, 16, 20000, HOPPER)
    table.notes.append(
        f"measured comm fraction at 20,000 cores: flat 1D "
        f"{100 * c1.comm / c1.total:.0f}% (paper: >90%), 2D hybrid "
        f"{100 * c2h.comm / c2h.total:.0f}% (paper: <50%)"
    )
    table.notes.append(
        "the paper did not run flat 1D at 40K cores because communication "
        "already consumed >90% of execution at 20K"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 9 — weak scaling on Franklin
# ---------------------------------------------------------------------------


def fig9_weak_scaling(quick: bool = False) -> Table:
    """Figure 9: weak scaling at ~17M edges per core on Franklin."""
    edges_per_core = 17_000_000
    table = Table(
        title="Figure 9: weak scaling on Franklin (~17M edges/core)",
        headers=["cores", "scale(approx)"]
        + [f"{a} time(s)" for a in _ALGOS]
        + [f"{a} comm(s)" for a in _ALGOS],
    )
    model = harness.VOLUME_MODEL
    from repro.model.analytic import cost_1d, cost_2d

    for cores in (512, 1024, 2048, 4096):
        m = cores * edges_per_core
        n = m // 16
        scale = math.log2(n)
        times, comms = [], []
        for algo in _ALGOS:
            threads = harness.paper_threads(FRANKLIN) if algo.endswith("hybrid") else 1
            vol = model.volumes(algo, n, m, cores, threads)
            if algo.startswith("1d"):
                costs = cost_1d(vol, cores, FRANKLIN, threads=threads)
            else:
                costs = cost_2d(vol, cores, FRANKLIN, threads=threads)
            times.append(costs.total)
            comms.append(costs.comm)
        table.add_row(cores, round(scale, 1), *times, *comms)
    table.notes.append(
        "paper: in the weak-scaling regime flat 1D beats hybrid 1D both "
        "overall and in communication; 2D communicates least but loses "
        "overall on Franklin due to higher computation"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 10 — sensitivity to graph density
# ---------------------------------------------------------------------------


def fig10_density(quick: bool = False) -> Table:
    table = Table(
        title="Figure 10: GTEPS vs average degree (Franklin, fixed edges/core)",
        headers=["cores", "scale", "degree"] + list(_ALGOS),
    )
    for cores in (1024, 4096):
        for scale, degree in ((31, 4), (29, 16), (27, 64)):
            row: list = [cores, scale, degree]
            for algo in _ALGOS:
                row.append(
                    harness.projected_gteps(algo, scale, degree, cores, FRANKLIN)
                )
            table.add_row(*row)
    table.notes.append(
        "paper: the 1D advantage grows as the graph sparsifies; flat 2D "
        "beats flat 1D for the first time at degree 64"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 11 — high-diameter web crawl (uk-union stand-in)
# ---------------------------------------------------------------------------


def fig11_ukunion(quick: bool = False) -> Table:
    """Figure 11: 2D flat vs hybrid on the high-diameter crawl.

    Functional simulation on the synthetic uk-union stand-in (~140 BFS
    iterations).  Rank counts are laptop-scale; the modeled-cores column
    maps each run onto the Hopper model's accounting.
    """
    n = 30_000 if quick else 100_000
    hosts = 60 if quick else 138
    # The graph is ~1000x smaller than uk-union, so per-level volumes are
    # ~1000x smaller too; scale the per-message latency and the network
    # bandwidth so the machine serves the downscaled problem the way the
    # full-size Hopper serves uk-union (otherwise fixed-size effects of
    # the tiny per-level frontiers distort the compute/comm balance).
    machine = HOPPER.with_overrides(
        net_latency=HOPPER.net_latency / 1000.0,
        nic_words_per_sec=HOPPER.nic_words_per_sec * 50.0,
    )
    graph = webcrawl_graph(n, n_hosts=hosts, host_reach=1, seed=5)
    # Traverse from the crawl seed (host 0) so the BFS walks the whole
    # host chain — that is what gives uk-union its ~140 iterations.
    sources = [0]
    table = Table(
        title="Figure 11: synthetic uk-union crawl, 2D flat vs hybrid (Hopper model)",
        headers=[
            "algorithm",
            "ranks",
            "modeled cores",
            "mean time (s)",
            "computation (s)",
            "communication (s)",
            "comm %",
            "iterations",
        ],
    )
    # Matched *core* budgets, the paper's axis: the hybrid runs 6 threads
    # per rank, so it gets ~6x fewer ranks at the same core count.
    flat_ranks = [16, 49] if quick else [25, 49, 100]
    hybrid_ranks = [4, 9] if quick else [4, 9, 16]
    for algo, threads, rank_list in (
        ("2d", 1, flat_ranks),
        ("2d-hybrid", 6, hybrid_ranks),
    ):
        for ranks in rank_list:
            run = harness.average_bfs(
                graph,
                algo,
                ranks,
                machine,
                sources=sources,
                threads=threads if algo.endswith("hybrid") else None,
            )
            # Communication here is data movement (transfer); the paper's
            # bars split "Computa./Communi." the same way.  Wait time at
            # this downscale is dominated by the tiny per-rank work's
            # relative jitter, which vanishes at full problem size.
            comp = run.time_comp
            comm = float(
                np.mean(
                    [
                        max(c.mpi_transfer_time for c in r.stats.clocks)
                        for r in run.results
                    ]
                )
            )
            table.add_row(
                algo,
                run.nranks,
                run.nranks * run.threads,
                comp + comm,
                comp,
                comm,
                100.0 * comm / (comp + comm),
                run.nlevels,
            )
    table.notes.append(
        "paper: ~140 iterations; communication is a small fraction of the "
        "total even at 4K cores, so the hybrid is slower than flat MPI "
        "(intra-node overheads with no comm to save); ~4x speedup from "
        "500 to 4000 cores"
    )
    return table


# ---------------------------------------------------------------------------
# Table 2 — PBGL comparison
# ---------------------------------------------------------------------------


def table2_pbgl(quick: bool = False) -> Table:
    """Table 2: flat 2D vs PBGL-style BFS (Carver model), MTEPS.

    Graphs are downscaled (scale 15/17 instead of 22/24) so the functional
    simulation stays laptop-sized; the comparison ratio is the target.
    """
    scales = (13, 15) if quick else (15, 17)
    core_counts = (64, 121)
    table = Table(
        title="Table 2: PBGL-style baseline vs flat 2D on Carver (MTEPS)",
        headers=["cores", "code"] + [f"scale {s}" for s in scales],
    )
    graphs = {s: rmat_graph(s, 16, seed=21 + s) for s in scales}
    sources = {s: harness.pick_sources(graphs[s], 2, seed=3) for s in scales}
    for cores in core_counts:
        for code, algo in (("PBGL(-like)", "pbgl"), ("Flat 2D", "2d")):
            row: list = [cores, code]
            for s in scales:
                run = harness.average_bfs(
                    graphs[s], algo, cores, "carver", sources=sources[s]
                )
                row.append(run.mteps)
            table.add_row(*row)
    table.notes.append(
        "paper (scale 22/24 at 128/256 cores): PBGL 22-39 MTEPS vs flat 2D "
        "267-604 MTEPS, i.e. 10-16x; the ratio is the reproduction target"
    )
    return table


# ---------------------------------------------------------------------------
# Section 6 text comparisons
# ---------------------------------------------------------------------------


def sec6_reference_mpi(quick: bool = False) -> Table:
    """Flat 1D vs the Graph 500 reference-style code (Franklin model).

    Functional rows run both codes on the simulator; projected rows apply
    the same cost arithmetic at the paper's scale (scale-29 graph,
    512-2048 cores), where the reference code's per-level visited-bitmap
    allreduce — whose ``n/64``-word volume does not shrink with ``p`` —
    and its duplicate traffic dominate.
    """
    scale = 13 if quick else 16
    graph = rmat_graph(scale, 16, seed=9)
    sources = harness.pick_sources(graph, 2, seed=4)
    table = Table(
        title="Section 6: tuned flat 1D vs Graph500 reference-style code (Franklin)",
        headers=["setting", "cores", "tuned GTEPS", "reference GTEPS", "speedup"],
    )
    for ranks in (8, 16, 32):
        tuned = harness.average_bfs(graph, "1d", ranks, FRANKLIN, sources=sources)
        ref = harness.average_bfs(
            graph, "graph500-ref", ranks, FRANKLIN, sources=sources
        )
        table.add_row(
            f"functional s{scale}", ranks, tuned.gteps, ref.gteps,
            tuned.gteps / ref.gteps,
        )

    # Projected at paper scale (scale 29, edgefactor 16).
    from repro.baselines.graph500_ref import QUEUE_OPS_PER_PAIR
    from repro.model import network
    from repro.model.analytic import cost_1d, gteps
    from repro.model.memory import int_op_cost

    n, m = 1 << 29, 16 << 29
    model = harness.VOLUME_MODEL
    no_dedup = RmatVolumeModel(dedup_s1=1e6)  # survival == 1 everywhere
    for cores in (512, 1024, 2048):
        tuned_costs = cost_1d(model.volumes_1d(n, m, cores), cores, FRANKLIN)
        ref_vol = no_dedup.volumes_1d(n, m, cores)
        ref_costs = cost_1d(ref_vol, cores, FRANKLIN)
        nlev = ref_vol.nlevels
        # Scalar per-edge queue handling...
        extra = int_op_cost(QUEUE_OPS_PER_PAIR * ref_vol.random_checks, FRANKLIN)
        # ... and the full-bitmap allreduce every level (2 V words moved,
        # flat MPI: 4 ranks share each Franklin NIC).
        extra += nlev * 2.0 * (n / 64) * network.beta_p2p(
            FRANKLIN, FRANKLIN.cores_per_node
        )
        ref_total = ref_costs.total + extra
        table.add_row(
            "projected s29",
            cores,
            gteps(m, tuned_costs.total),
            gteps(m, ref_total),
            ref_total / tuned_costs.total,
        )
    table.notes.append(
        "paper (512/1024/2048 cores): 2.72x / 3.43x / 4.13x, *growing* "
        "with scale; the growth comes from the reference code's "
        "constant-volume bitmap synchronization meeting per-core bandwidth "
        "that shrinks with p"
    )
    return table


def sec6_single_node(quick: bool = False) -> Table:
    """Single-node multithreaded BFS vs a queue-per-edge baseline.

    The paper compares against Agarwal et al. (R-MAT, 32M vertices) and
    Leiserson-Schardl on the SuiteSparse instances KKt_power, Freescale1
    and Cage14; neither code nor the matrices are redistributable, so the
    workloads are structural stand-ins (see ``repro.graphs.meshes``) and
    the baseline is the untuned queue discipline.
    """
    from repro.graphs.meshes import mesh_graph

    scale = 13 if quick else 16
    mesh_n = 30_000 if quick else 400_000
    workloads = [
        ("R-MAT (Agarwal et al. setting)", rmat_graph(scale, 16, seed=31)),
        ("power-grid (KKt_power-like)", mesh_graph("power", mesh_n, seed=32)),
        ("near-planar (Freescale1-like)", mesh_graph("grid2d", mesh_n, seed=33)),
        ("banded (Cage14-like)", mesh_graph("banded", mesh_n, seed=34)),
    ]
    table = Table(
        title="Section 6: single-node BFS (Carver/Nehalem model, MTEPS)",
        headers=["workload", "this work (8 threads)", "baseline", "speedup"],
    )
    for name, graph in workloads:
        sources = harness.pick_sources(graph, 2, seed=5)
        ours = harness.average_bfs(
            graph, "1d-hybrid", 1, "carver", sources=sources, threads=8
        )
        baseline = harness.average_bfs(
            graph, "graph500-ref", 1, "carver", sources=sources
        )
        table.add_row(name, ours.mteps, baseline.mteps, ours.mteps / baseline.mteps)
    table.notes.append(
        "paper: ~1.30x Agarwal et al. on R-MAT and up to 1.47x "
        "Leiserson-Schardl on KKt_power/Freescale1/Cage14; against the "
        "*untuned* queue baseline available here the gaps are larger, and "
        "they shrink on the structured meshes (fewer duplicate candidates "
        "for dedup to win on)"
    )
    return table


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md section 7)
# ---------------------------------------------------------------------------


def ablation_dedup(quick: bool = False) -> Table:
    """Send-side deduplication on/off: volumes and modeled time."""
    scale = 13 if quick else 15
    graph = rmat_graph(scale, 16, seed=17)
    sources = harness.pick_sources(graph, 2, seed=6)
    table = Table(
        title="Ablation: 1D send-side deduplication (Franklin model)",
        headers=["ranks", "dedup", "a2a words", "GTEPS"],
    )
    for ranks in (8, 32):
        for dedup in (True, False):
            run = harness.average_bfs(
                graph, "1d", ranks, FRANKLIN, sources=sources, dedup_sends=dedup
            )
            words = np.mean(
                [r.stats.words_sent("alltoallv") for r in run.results]
            )
            table.add_row(ranks, "on" if dedup else "off", float(words), run.gteps)
    table.notes.append(
        "dedup is the tuned code's main volume saving over the reference "
        "implementation (Section 4); its benefit shrinks as ranks grow"
    )
    return table


def comm_compress(quick: bool = False) -> Table:
    """Wire-format ablation: codec x sieve volumes and modeled time.

    The compression + sieve layer of Lv et al. (arXiv:1208.5542) on this
    repo's exchanges: each codec re-runs the same traversals (parents are
    verified bit-identical by the property harness) while the alpha-beta
    model prices the *encoded* buffers — so the a2a ratio column is
    modeled speedup, not an estimate.  ``delta-varint`` compresses the
    sparse top-down levels severalfold; ``bitmap`` wins on the dense
    middle levels; ``auto`` picks per buffer and should trail neither.
    """
    scale = 14 if quick else 16
    nprocs = 8
    graph = rmat_graph(scale, 16, seed=1)
    sources = harness.pick_sources(graph, 1 if quick else 2, seed=8)
    algos = ["1d"] if quick else ["1d", "1d-dirop", "2d"]
    configs = [
        ("raw", False),
        ("delta-varint", False),
        ("bitmap", False),
        ("auto", False),
        ("delta-varint", True),
        ("auto", True),
    ]
    table = Table(
        title=(
            f"Frontier compression + sieve (R-MAT scale {scale}, "
            f"{nprocs} ranks, Hopper model)"
        ),
        headers=[
            "algorithm",
            "codec",
            "sieve",
            "a2a payload",
            "a2a wire",
            "a2a ratio",
            "total wire",
            "time (ms)",
            "speedup vs raw",
        ],
    )
    for algo in algos:
        base_time = None
        for codec, sieve in configs:
            run = harness.average_bfs(
                graph, algo, nprocs, HOPPER,
                sources=sources, codec=codec, sieve=sieve,
            )
            payload = float(np.mean(
                [r.stats.payload_words("alltoallv") for r in run.results]
            ))
            wire = float(np.mean(
                [r.stats.wire_words("alltoallv") for r in run.results]
            ))
            total_wire = float(np.mean(
                [r.stats.words_sent() for r in run.results]
            ))
            if base_time is None:
                base_time = run.time_total
            table.add_row(
                algo,
                codec,
                "on" if sieve else "off",
                payload,
                wire,
                payload / wire if wire > 0 else 1.0,
                total_wire,
                run.time_total * 1e3,
                base_time / run.time_total if run.time_total > 0 else 1.0,
            )
    table.notes.append(
        "parents/levels are bit-identical to the serial oracle for every "
        "row; only the wire volume (and therefore the modeled time) moves"
    )
    table.notes.append(
        "compression trades codec compute for wire words, so it speeds up "
        "the comm-bound flat 1D at these rank counts while the "
        "compute-bound 2D/dirop rows only break even — the paper-scale "
        "regime (thousands of ranks, beta_N-dominated) is where every "
        "algorithm pays"
    )
    return table


def ablation_shuffle(quick: bool = False) -> Table:
    """Random vertex relabeling on/off: load balance (Section 4.4)."""
    scale = 13 if quick else 15
    table = Table(
        title="Ablation: random vertex shuffling (Section 4.4, 16 ranks)",
        headers=["shuffle", "max/mean edges per rank", "max/mean compute time"],
    )
    for shuffle in (True, False):
        graph = rmat_graph(scale, 16, seed=23, shuffle=shuffle)
        source = harness.pick_sources(graph, 1, seed=7)[0]
        res = run_bfs(graph, source, "1d", nprocs=16, machine=FRANKLIN)
        stats = res.stats
        assert stats is not None
        from repro.core.partition import Partition1D

        part = Partition1D(graph.n, 16)
        deg = graph.degrees()
        edges = np.array(
            [deg[part.range_of(r)[0] : part.range_of(r)[1]].sum() for r in range(16)]
        )
        comp = np.array([stats.clocks[r].compute_time for r in range(16)])
        table.add_row(
            "on" if shuffle else "off",
            float(edges.max() / max(edges.mean(), 1)),
            float(comp.max() / max(comp.mean(), 1e-12)),
        )
    table.notes.append(
        "paper: random relabeling gives every process roughly the same "
        "number of vertices and edges regardless of the skewed degrees"
    )
    return table


def ablation_ordering(quick: bool = False) -> Table:
    """Locality relabeling vs the paper's randomization (Sections 4.4, 7).

    Measures the 1D edge cut (the fraction of candidates that must cross
    the network) and the per-rank load balance under three orderings, on
    a structured crawl and on R-MAT — reproducing the paper's reasoning:
    randomization trades communication volume for load balance, and on
    R-MAT there is no locality to recover anyway.
    """
    import numpy as np

    from repro.graphs import build_csr
    from repro.graphs.ordering import edge_cut, rcm_ordering
    from repro.graphs.permutation import apply_permutation

    n_crawl = 4000 if quick else 20_000
    scale = 12 if quick else 14
    nparts = 16
    table = Table(
        title=f"Ablation: vertex ordering vs edge cut and balance ({nparts} ranks)",
        headers=["graph", "ordering", "edge cut", "max/mean edges per rank"],
    )

    def relabel(csr, perm):
        rows = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
        src, dst = apply_permutation(perm, rows, csr.indices)
        return build_csr(csr.n, src, dst, symmetrize=False, dedup=False)

    def balance(csr):
        from repro.core.partition import Partition1D

        part = Partition1D(csr.n, nparts)
        deg = csr.degrees()
        per_rank = np.array(
            [deg[part.range_of(r)[0] : part.range_of(r)[1]].sum() for r in range(nparts)]
        )
        return float(per_rank.max() / max(per_rank.mean(), 1.0))

    cases = [
        ("web crawl", webcrawl_graph(n_crawl, n_hosts=20, seed=1, shuffle=False)),
        ("R-MAT", rmat_graph(scale, 16, seed=1, shuffle=False)),
    ]
    for name, natural in cases:
        orderings = {
            "natural": natural.csr,
            "random (paper)": relabel(
                natural.csr,
                np.random.default_rng(0).permutation(natural.n).astype(np.int64),
            ),
            "RCM": relabel(natural.csr, rcm_ordering(natural.csr)),
        }
        for label, csr in orderings.items():
            table.add_row(name, label, edge_cut(csr, nparts), balance(csr))
    table.notes.append(
        "paper (Sections 4.4, 6): randomization evens the load at the "
        "price of a worst-case cut; relabeling heuristics help little on "
        "R-MAT because 'the graphs lack good separators'"
    )
    return table


def ablation_collectives(quick: bool = False) -> Table:
    """Collective-algorithm selection (Section 7 future work).

    Shows the pairwise/Bruck all-to-all crossover and where each BFS
    workload sits: bandwidth-bound R-MAT exchanges stay pairwise, the
    tiny per-level messages of a high-diameter traversal at scale prefer
    Bruck's log(p)-round schedule.
    """
    from repro.model import network

    parties, rpn, nodes = 4096, 4, 1024
    table = Table(
        title=f"Ablation: all-to-all algorithm selection (Hopper, {parties} ranks)",
        headers=[
            "words/rank/level",
            "pairwise (s)",
            "bruck (s)",
            "auto picks",
        ],
    )
    for words in (10, 100, 1_000, 10_000, 100_000, 1_000_000):
        pairwise, _ = network.a2a_time(
            HOPPER, parties, words, rpn, nodes, algorithm="pairwise"
        )
        bruck, _ = network.a2a_time(
            HOPPER, parties, words, rpn, nodes, algorithm="bruck"
        )
        _, chosen = network.a2a_time(HOPPER, parties, words, rpn, nodes)
        table.add_row(words, pairwise, bruck, chosen)
    # Where the two BFS workloads actually sit.
    model = RmatVolumeModel()
    vol = model.volumes_1d(1 << 32, 16 << 32, parties)
    rmat_words = vol.a2a_words / vol.nlevels
    _, rmat_algo = network.a2a_time(HOPPER, parties, rmat_words, rpn, nodes)
    crawl_words = 2 * 0.9 * (1 << 27) / 140 / parties  # uk-union-like level
    _, crawl_algo = network.a2a_time(HOPPER, parties, crawl_words, rpn, nodes)
    table.notes.append(
        f"R-MAT scale 32 sends ~{rmat_words:.3g} words/rank/level -> "
        f"{rmat_algo}; a 140-level crawl sends ~{crawl_words:.3g} -> "
        f"{crawl_algo}"
    )
    table.notes.append(
        "the paper's Section 7 names collective algorithm tuning as an "
        "open direction; the crossover sits where Bruck's log2(p)/2 "
        "forwarding overhead equals the saved p-round latency"
    )
    return table


def ablation_symmetric(quick: bool = False) -> Table:
    """Triangle-only storage (Section 7: "Exploiting symmetry").

    Quantifies the trade the paper flags as open: storing only the lower
    triangle halves the index memory, but serving the mirrored direction
    of every SpMSV costs one full scan of the stored nonzeros *per
    level* — cheap for a 7-level R-MAT traversal's ~2 extractions per
    nonzero, ruinous for a 140-level crawl.
    """
    from repro.core import bfs_serial
    from repro.sparse.symmetric import SymmetricDCSC, spmsv_symmetric
    from repro.sparse.spmsv import spmsv_heap

    scale = 11 if quick else 13
    crawl_n = 3000 if quick else 8000
    table = Table(
        title="Ablation: triangle-only symmetric storage (Section 7)",
        headers=[
            "workload",
            "levels",
            "memory saving %",
            "extra streamed words / stored nnz",
            "measured kernel slowdown",
        ],
    )
    workloads = [
        ("R-MAT", rmat_graph(scale, 16, seed=5)),
        (
            "web crawl",
            webcrawl_graph(crawl_n, n_hosts=40, host_reach=1, seed=5),
        ),
    ]
    for name, graph in workloads:
        csr = graph.csr
        rows = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
        from repro.sparse.dcsc import DCSC as _DCSC

        full = _DCSC.from_coo(csr.n, csr.n, csr.indices, rows)
        sym = SymmetricDCSC.from_full(full)
        full_words = full.ir.size + full.jc.size + full.cp.size
        saving = 100.0 * (1.0 - sym.memory_words / full_words)

        # Replay the real BFS frontier sequence through both kernels.
        source = int(
            np.asarray(graph.to_internal(graph.random_nonisolated_vertices(1, 0)[0]))
        )
        levels, _ = bfs_serial(csr, source)
        nlevels = int(levels.max())
        frontiers = [
            np.flatnonzero(levels == lvl).astype(np.int64)
            for lvl in range(nlevels)
        ]
        t0 = time.perf_counter()
        for f in frontiers:
            spmsv_heap(full, f, f + 1)
        t_full = time.perf_counter() - t0
        t0 = time.perf_counter()
        for f in frontiers:
            spmsv_symmetric(sym, f, f + 1)
        t_sym = time.perf_counter() - t0
        # The mirror pass streams every stored nonzero once per level.
        table.add_row(name, nlevels, saving, nlevels, t_sym / max(t_full, 1e-12))
    table.notes.append(
        "paper: 'one can save 50% space by storing only the upper (or "
        "lower) triangle ... the algorithmic modifications needed to save "
        "a comparable amount in communication is not well-studied' — the "
        "mirror pass scans every stored nonzero once per level, so the "
        "overhead grows with the traversal's level count"
    )
    return table


# ---------------------------------------------------------------------------
# Direction-optimizing 1D — bottom-up/top-down switching (follow-up work)
# ---------------------------------------------------------------------------


def ablation_faults(quick: bool = False) -> Table:
    """Fault ablation: recovery overhead vs checkpoint interval.

    Three runs per (algorithm, interval): a fault-free baseline, a
    checkpointing-only run (pure insurance cost: the modeled snapshot
    traffic), and a run where one rank dies mid-traversal and the driver
    restarts from the last complete checkpoint.  Recovered parents are
    asserted bit-identical to the baseline, so the overhead columns are
    the whole story: denser checkpoints cost more insurance but replay
    fewer levels after the crash.
    """
    scale = 12 if quick else 14
    nprocs = 8
    graph = rmat_graph(scale, 16, seed=23)
    source = harness.pick_sources(graph, 1, seed=9)[0]
    algos = ["1d"] if quick else ["1d", "1d-dirop", "2d"]
    table = Table(
        title=(
            f"Fault ablation: checkpoint interval vs recovery overhead "
            f"(R-MAT scale {scale}, {nprocs} ranks, Hopper model)"
        ),
        headers=[
            "algorithm",
            "ckpt every",
            "ckpt overhead",
            "crash level",
            "resume level",
            "recovery overhead",
        ],
    )
    for algo in algos:
        base = run_bfs(graph, source, algo, nprocs=nprocs, machine=HOPPER)
        # Crash late so even the sparsest interval has a checkpoint to
        # restart from (no checkpoint before the crash level = outage).
        crash_level = max(2, base.nlevels - 1)
        spec = f"crash:rank=1,level={crash_level}"
        for every in (e for e in (1, 2, 4) if e < crash_level):
            clean = run_bfs(
                graph, source, algo, nprocs=nprocs, machine=HOPPER,
                checkpoint_every=every,
            )
            recovered = run_bfs(
                graph, source, algo, nprocs=nprocs, machine=HOPPER,
                faults=spec, checkpoint_every=every,
            )
            if not np.array_equal(recovered.parents, base.parents):
                raise AssertionError(
                    f"{algo}: recovered parents diverge from fault-free run"
                )
            restore = recovered.meta["faults"]["restores"][0]
            table.add_row(
                algo,
                every,
                f"{clean.time_total / base.time_total - 1.0:+.1%}",
                crash_level,
                restore["resume_level"],
                f"{recovered.time_total / base.time_total - 1.0:+.1%}",
            )
    table.notes.append(
        "recovery overhead = modeled time of the crashed-and-restarted run "
        "over the fault-free baseline; it includes the checkpoint traffic, "
        "the lost work up to the crash, the restore, and the replayed levels"
    )
    return table


def dirop_vs_topdown(quick: bool = False) -> Table:
    """Direction-optimizing 1D vs the paper's top-down 1D on R-MAT.

    Functional runs on Hopper's machine model: the ``edges scanned``
    column is the modeled early-exit edge-scan count (the paper's
    dominant local term), ``time`` the modeled traversal makespan.  The
    follow-up work reports an order-of-magnitude reduction in edges
    scanned on the hub-dominated middle levels; the ratios here are the
    reproduction target.
    """
    scales = [12] if quick else [14, 15, 16]
    nprocs = 4 if quick else 8
    table = Table(
        title="Direction-optimizing 1D vs top-down 1D (Hopper, R-MAT)",
        headers=[
            "scale", "edges 1d", "edges 1d-dirop", "scan ratio",
            "time 1d (ms)", "time 1d-dirop (ms)", "speedup",
        ],
    )
    for scale in scales:
        graph = rmat_graph(scale, 16, seed=1)
        source = int(graph.random_nonisolated_vertices(1, seed=2)[0])
        td = run_bfs(graph, source, "1d", nprocs=nprocs, machine=HOPPER)
        do = run_bfs(graph, source, "1d-dirop", nprocs=nprocs, machine=HOPPER)
        e_td = td.stats.counter("edges_scanned")
        e_do = do.stats.counter("edges_scanned")
        table.add_row(
            scale, int(e_td), int(e_do), e_td / max(e_do, 1.0),
            td.time_total * 1e3, do.time_total * 1e3,
            td.time_total / do.time_total,
        )
    table.notes.append(
        "bottom-up sweeps on the dense middle levels early-exit at the "
        "maximum frontier neighbour, so the scan ratio tracks the "
        "follow-up work's order-of-magnitude reduction while parents stay "
        "bit-identical to the serial oracle"
    )
    return table


def ablation_dirop_thresholds(quick: bool = False) -> Table:
    """Switching-threshold ablation for the direction-optimizing 1D.

    Sweeps ``alpha`` (top-down -> bottom-up) with ``beta`` fixed, plus a
    never-switch row (``alpha`` tiny) that degenerates to pure top-down.
    """
    scale = 12 if quick else 14
    nprocs = 4 if quick else 8
    graph = rmat_graph(scale, 16, seed=1)
    source = int(graph.random_nonisolated_vertices(1, seed=2)[0])
    table = Table(
        title=f"Direction-optimizing thresholds (Hopper, R-MAT scale {scale})",
        headers=[
            "alpha", "beta", "bottom-up levels", "edges scanned", "time (ms)",
        ],
    )
    from repro.model.costmodel import DIROP_BETA

    for alpha in (1e-9, 2.0, 14.0, 100.0):
        res = run_bfs(
            graph, source, "1d-dirop", nprocs=nprocs, machine=HOPPER,
            dirop_alpha=alpha, dirop_beta=DIROP_BETA, trace=True,
        )
        bottom_up = sum(
            1 for lvl in res.meta["level_profile"]
            if lvl.get("direction") == "bottom-up"
        )
        table.add_row(
            alpha, DIROP_BETA, bottom_up,
            int(res.stats.counter("edges_scanned")), res.time_total * 1e3,
        )
    table.notes.append(
        "alpha -> 0 never leaves top-down (the 1d baseline); overly eager "
        "switching (large alpha) flips before the frontier is dense enough "
        "and rescans sparse levels bottom-up"
    )
    return table


def ablation_dirop2d(quick: bool = False) -> Table:
    """2D + direction-optimization vs plain 2D and 1D + dirop.

    The follow-up work (arXiv:1705.04590) folds Beamer's bottom-up sweep
    into the 2D SpMSV loop and reports that the combination wins the
    end-to-end comparison on R-MAT: the 2D decomposition caps the
    collective cost at ``sqrt(p)`` participants while the bottom-up
    middle levels slash the scan and fold volume.  This table reproduces
    that modeled claim on Hopper at ``p >= 16`` (at small ``p`` the
    expand/transpose overhead of 2D still dominates and 1D + dirop can
    win; the crossover is the point of the comparison).
    """
    cases = [(12, 16)] if quick else [(13, 16), (13, 36), (14, 64)]
    table = Table(
        title="2D direction-optimizing BFS vs 2D and 1D-dirop (Hopper, R-MAT)",
        headers=[
            "scale", "nprocs",
            "time 2d (ms)", "time 1d-dirop (ms)", "time 2d-dirop (ms)",
            "speedup vs 2d", "speedup vs 1d-dirop", "scan ratio vs 2d",
        ],
    )
    for scale, nprocs in cases:
        graph = rmat_graph(scale, 16, seed=1)
        source = int(graph.random_nonisolated_vertices(1, seed=2)[0])
        td2d = run_bfs(graph, source, "2d", nprocs=nprocs, machine=HOPPER)
        do1d = run_bfs(graph, source, "1d-dirop", nprocs=nprocs, machine=HOPPER)
        do2d = run_bfs(graph, source, "2d-dirop", nprocs=nprocs, machine=HOPPER)
        table.add_row(
            scale, nprocs,
            td2d.time_total * 1e3, do1d.time_total * 1e3,
            do2d.time_total * 1e3,
            td2d.time_total / do2d.time_total,
            do1d.time_total / do2d.time_total,
            td2d.stats.counter("edges_scanned")
            / max(do2d.stats.counter("edges_scanned"), 1.0),
        )
    table.notes.append(
        "all three runs produce bit-identical parents; 2d-dirop combines "
        "the sqrt(p) collective participants of the 2D decomposition with "
        "the bottom-up early-exit scans, so it wins the modeled end-to-end "
        "comparison at every (scale, p) point above the small-p crossover"
    )
    return table


def query_throughput(quick: bool = False) -> Table:
    """Batched multi-source query throughput: modeled queries/sec vs batch.

    The ``repro.query`` subsystem packs up to 64 sources into one
    bit-parallel traversal (one ``uint64`` lane word per vertex), so the
    per-level latency terms — the Alltoallv startup and the termination
    Allreduce — are paid once per *batch* instead of once per query.
    This sweep runs the same source pool at batches 1..64 and reports
    the modeled queries/sec and the speedup over unbatched operation;
    every run validates each lane against its serial oracle, so the
    throughput column never trades away exactness.
    """
    from repro.query import run_query

    scale = 11 if quick else 13
    nprocs = 4 if quick else 8
    graph = rmat_graph(scale, 16, seed=31)
    pool = harness.pick_sources(graph, 64, seed=6)
    batches = [1, 4, 16, 64] if quick else [1, 2, 4, 8, 16, 32, 64]
    table = Table(
        title=(
            f"Batched query throughput, msbfs-1d "
            f"(R-MAT scale {scale}, {nprocs} ranks, Hopper model)"
        ),
        headers=[
            "batch",
            "nlevels",
            "time/traversal (ms)",
            "time/query (ms)",
            "queries/s",
            "speedup",
        ],
    )
    baseline_qps = None
    for batch in batches:
        res = run_query(
            graph,
            sources=pool[:batch],
            algorithm="msbfs-1d",
            nprocs=nprocs,
            machine=HOPPER,
            validate=True,
        )
        qps = res.queries_per_second()
        if baseline_qps is None:
            baseline_qps = qps
        table.add_row(
            batch,
            res.nlevels,
            res.time_total * 1e3,
            res.time_total / batch * 1e3,
            qps,
            qps / baseline_qps,
        )
    table.notes.append(
        "one traversal advances all lanes at once: the frontier union of "
        "the batch is scanned once per level and the per-level collectives "
        "amortize across lanes, so time/traversal grows sublinearly in the "
        "batch while time/query collapses; every lane is validated "
        "bit-identical to its single-source serial oracle"
    )
    return table


#: Experiment registry: id -> (function, description).
EXPERIMENTS: dict[str, tuple] = {
    "fig3": (fig3_spa_vs_heap, "SPA vs heap SpMSV crossover"),
    "fig4": (fig4_vector_distribution, "1D vs 2D vector distribution balance"),
    "table1": (table1_comm_decomposition, "2D communication decomposition"),
    "fig5": (fig5_franklin_strong, "Franklin strong scaling (GTEPS)"),
    "fig6": (fig6_franklin_comm, "Franklin communication times"),
    "fig7": (fig7_hopper_strong, "Hopper strong scaling (GTEPS)"),
    "fig8": (fig8_hopper_comm, "Hopper communication times"),
    "fig9": (fig9_weak_scaling, "Franklin weak scaling"),
    "fig10": (fig10_density, "Sensitivity to graph density"),
    "fig11": (fig11_ukunion, "High-diameter web crawl (uk-union stand-in)"),
    "table2": (table2_pbgl, "PBGL comparison"),
    "sec6-ref": (sec6_reference_mpi, "vs Graph500 reference code"),
    "sec6-node": (sec6_single_node, "single-node multithreaded BFS"),
    "dirop": (dirop_vs_topdown, "direction-optimizing 1D vs top-down 1D"),
    "comm-compress": (comm_compress, "frontier compression codecs + sieve dedup"),
    "abl-dirop": (ablation_dirop_thresholds, "ablation: dirop switching thresholds"),
    "abl-dirop2d": (ablation_dirop2d, "ablation: 2D + direction-optimization vs 2D and 1D-dirop"),
    "abl-dedup": (ablation_dedup, "ablation: send-side dedup"),
    "abl-shuffle": (ablation_shuffle, "ablation: vertex shuffling"),
    "abl-ordering": (ablation_ordering, "ablation: locality relabeling vs randomization"),
    "abl-collectives": (ablation_collectives, "ablation: collective algorithm selection"),
    "abl-symmetric": (ablation_symmetric, "ablation: triangle-only symmetric storage"),
    "abl-faults": (ablation_faults, "ablation: crash recovery vs checkpoint interval"),
    "query-throughput": (query_throughput, "batched multi-source query throughput (1..64 lanes)"),
}


def run_experiment(exp_id: str, quick: bool = False) -> Table:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    try:
        fn, _desc = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(quick=quick)
