"""Benchmark harness: regenerates every table and figure of the paper.

* :mod:`~repro.bench.report` — fixed-width table rendering and result
  files;
* :mod:`~repro.bench.harness` — shared machinery (source selection,
  multi-source averaging, projection sweeps);
* :mod:`~repro.bench.experiments` — one entry per paper artifact
  (Figures 3-11, Tables 1-2, and the Section 6 text comparisons), each
  returning a :class:`~repro.bench.report.Table`.

Run everything with ``repro-bench all`` or a single experiment with e.g.
``repro-bench fig5``; the pytest-benchmark suite under ``benchmarks/``
wraps the same entry points.
"""

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import average_bfs, pick_sources, projected_gteps
from repro.bench.report import Table

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "average_bfs",
    "pick_sources",
    "projected_gteps",
    "Table",
]
