"""Shared benchmark machinery.

Every paper experiment combines the same ingredients:

* **source selection** following the Graph 500 methodology ("we only
  consider traversal times from vertices that appear in the large
  component, compute the average time using at least 16 randomly-chosen
  source vertices" — scaled down here);
* **functional simulation** of the real algorithms at laptop-scale rank
  counts (exact volumes, modeled virtual time), and
* **closed-form projection** to paper-scale core counts through the
  calibrated :class:`~repro.model.projection.RmatVolumeModel` +
  Section 5 analytic machine model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.runner import BFSResult, run_bfs
from repro.core.serial import bfs_serial
from repro.graphs.graph import Graph
from repro.model.analytic import AnalyticCosts, cost_1d, cost_2d, gteps
from repro.model.machine import MachineConfig, get_machine
from repro.model.projection import RmatVolumeModel

#: Sources averaged per benchmark configuration.  The paper uses >= 16;
#: functional simulation is deterministic modulo the source, so a handful
#: suffices for stable means at bench runtimes.
DEFAULT_SOURCES = 3


def pick_sources(graph: Graph, count: int = DEFAULT_SOURCES, seed: int = 1) -> list[int]:
    """Choose BFS sources inside the graph's largest component.

    Mirrors the Graph 500 pipeline: sample non-isolated vertices, then
    keep those whose traversal reaches the giant component (detected with
    one serial BFS).
    """
    candidates = graph.random_nonisolated_vertices(max(4 * count, 8), seed=seed)
    probe = int(candidates[0])
    levels, _ = bfs_serial(graph.csr, int(np.asarray(graph.to_internal(probe))))
    component = levels >= 0
    # If the probe landed outside the giant component, re-probe from the
    # highest-degree vertex (always inside it for our generators).
    if component.sum() < 0.05 * graph.n:
        hub = int(np.argmax(graph.degrees()))
        levels, _ = bfs_serial(graph.csr, hub)
        component = levels >= 0
    chosen: list[int] = []
    for source in candidates:
        internal = int(np.asarray(graph.to_internal(int(source))))
        if component[internal]:
            chosen.append(int(source))
        if len(chosen) == count:
            break
    if not chosen:
        raise ValueError(f"no sources found in the large component of {graph.name}")
    return chosen


@dataclass
class AveragedRun:
    """Mean metrics of several single-source traversals."""

    algorithm: str
    nranks: int
    threads: int
    time_total: float
    time_comm: float
    time_comp: float
    gteps: float
    mteps: float
    nlevels: float
    results: list[BFSResult]

    @property
    def comm_fraction(self) -> float:
        return self.time_comm / self.time_total if self.time_total else 0.0


def average_bfs(
    graph: Graph,
    algorithm: str,
    nprocs: int,
    machine: MachineConfig | str,
    sources: list[int] | None = None,
    tracer=None,
    **kwargs,
) -> AveragedRun:
    """Run one configuration over several sources and average the metrics.

    ``tracer`` (an optional :class:`~repro.obs.Tracer`) records phase
    spans for the *first* source only: virtual time restarts at zero each
    traversal, so one tracer describes one run.
    """
    if sources is None:
        sources = pick_sources(graph)
    results = [
        run_bfs(
            graph, s, algorithm, nprocs=nprocs, machine=machine,
            tracer=tracer if i == 0 else None, **kwargs,
        )
        for i, s in enumerate(sources)
    ]
    times = np.array([r.time_total for r in results])
    comms = np.array([r.time_comm for r in results])
    comps = np.array([r.time_comp for r in results])
    rates = np.array([r.gteps() for r in results])
    return AveragedRun(
        algorithm=algorithm,
        nranks=results[0].nranks,
        threads=results[0].threads,
        time_total=float(times.mean()),
        time_comm=float(comms.mean()),
        time_comp=float(comps.mean()),
        gteps=float(rates.mean()),
        mteps=float(rates.mean() * 1e3),
        nlevels=float(np.mean([r.nlevels for r in results])),
        results=results,
    )


#: Shared calibrated volume model used by all projections.
VOLUME_MODEL = RmatVolumeModel()

#: Paper threading defaults (Section 6).
PAPER_THREADS = {"franklin": 4, "hopper": 6, "carver": 4}


def paper_threads(machine: MachineConfig | str) -> int:
    resolved = get_machine(machine)
    assert resolved is not None
    for key, threads in PAPER_THREADS.items():
        if get_machine(key) is resolved:
            return threads
    return 4


def projected_costs(
    algorithm: str,
    scale: int,
    edgefactor: float,
    p_cores: int,
    machine: MachineConfig | str,
    kernel: str = "auto",
) -> AnalyticCosts:
    """Closed-form Section 5 cost of one paper-scale configuration.

    ``algorithm`` is a runner-style name (``"1d"``, ``"2d-hybrid"``, ...);
    hybrids use the paper's per-machine thread counts.  ``kernel="auto"``
    applies the Figure 3 polyalgorithm crossover.
    """
    n = 1 << scale
    m = int(edgefactor * n)
    threads = paper_threads(machine) if algorithm.endswith("hybrid") else 1
    vol = VOLUME_MODEL.volumes(algorithm, n, m, p_cores, threads)
    if algorithm.startswith("1d"):
        return cost_1d(vol, p_cores, machine, threads=threads)
    if kernel == "auto":
        from repro.sparse.spmsv import choose_spmsv_kernel

        kernel = choose_spmsv_kernel(p_cores)
    return cost_2d(vol, p_cores, machine, threads=threads, spmsv_kernel=kernel)


def projected_gteps(
    algorithm: str,
    scale: int,
    edgefactor: float,
    p_cores: int,
    machine: MachineConfig | str,
    kernel: str = "auto",
) -> float:
    """Projected GTEPS of one paper-scale configuration (TEPS counts the
    directed input edge count ``m = edgefactor * n``, Section 6)."""
    costs = projected_costs(algorithm, scale, edgefactor, p_cores, machine, kernel)
    return gteps((1 << scale) * edgefactor, costs.total)


def closest_square_cores(p: int) -> int:
    """The paper runs 2D codes on the closest square processor count."""
    return math.isqrt(p) ** 2
