"""Result rendering: fixed-width tables plus persisted result files."""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isfinite, isnan
from pathlib import Path


def _format_cell(value) -> str:
    if isinstance(value, float):
        if isnan(value):
            return "nan"
        if not isfinite(value):
            return "inf" if value > 0 else "-inf"
        if value == 0:  # covers -0.0: a sign on zero is table noise
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A paper artifact reproduction: title, columns, rows, commentary.

    ``notes`` carries the paper-vs-measured commentary that also lands in
    ``EXPERIMENTS.md``.
    """

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        """Values of one column, by header name."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {self.headers}") from None
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        cells = [[_format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.rjust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def save(self, directory: str | Path, name: str) -> Path:
        """Write the rendered table to ``<directory>/<name>.txt``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.txt"
        path.write_text(self.render() + "\n")
        return path

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def comm_breakdown_table(stats, title: str = "Communication breakdown") -> Table:
    """Per-kind (and per-level, when traced) word volumes of one run.

    ``stats`` is a :class:`~repro.mpsim.stats.SimStats`.  The per-kind
    rows cover every collective the run made; payload/ratio columns are
    populated for the exchanges routed through :class:`repro.comm`'s
    channel (``-`` elsewhere).  Per-level rows appear when the channel
    recorded levels (i.e. the run came from a 1d/2d BFS family).
    """
    table = Table(
        title=title,
        headers=["scope", "kind", "payload words", "wire words", "ratio"],
    )
    payload_by_kind = stats.payload_by_kind()
    for kind, words in stats.words_by_kind().items():
        payload = payload_by_kind.get(kind)
        table.add_row(
            "total",
            kind,
            payload if payload is not None else "-",
            words,
            stats.compression_ratio(kind) if payload is not None else "-",
        )
    payload_by_level = stats.payload_by_level()
    for level, by_kind in stats.words_by_level().items():
        for kind, wire in sorted(by_kind.items()):
            payload = payload_by_level.get(level, {}).get(kind, 0.0)
            table.add_row(
                f"level {level}",
                kind,
                payload,
                wire,
                (payload / wire) if wire > 0 else 1.0,
            )
    dropped = stats.sieve_dropped
    if dropped:
        table.notes.append(f"sieve dropped {dropped:.0f} candidates before encoding")
    return table
