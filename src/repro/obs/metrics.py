"""Typed, labeled runtime metrics for simulated BFS runs.

A :class:`MetricsRegistry` collects numeric metrics — monotonic
**counters**, last-value **gauges**, and bucketed **histograms** — from
the instrumented subsystems: the
:class:`~repro.core.engine.TraversalEngine` (levels, frontier sizes,
candidates, checkpoint saves/restores, active query lanes), the
:class:`~repro.comm.channel.CommChannel` (payload/wire words, codec
encodes, sieve probes/drops), :mod:`repro.faults` (retries, delays,
recovery virtual-time cost) and the :mod:`repro.query` steps
(lane-prune hit rates).

The design mirrors :class:`~repro.obs.tracer.Tracer` exactly:

* one :class:`RankMetrics` recording handle per simulated rank, obtained
  through :meth:`MetricsRegistry.for_rank`, so the hot path never locks;
* metrics are **passive** — they never touch the virtual clocks, so a
  metered run is bit-identical (parents, clocks, spans, stats) to an
  unmetered one (``tests/test_obs_metrics.py`` asserts it per family);
* when no registry is installed the instrumented code paths go through
  the shared no-op :data:`NULL_RANK_METRICS` — zero state, zero charges.

Every sample may carry string **labels** (``kind="alltoallv"``,
``codec="raw"``, ``level=3``); a metric name is bound to exactly one
type on first use and re-use under a different type raises.  Read the
results back aggregated across ranks::

    from repro.obs import MetricsRegistry

    metrics = MetricsRegistry()
    result = repro.run_bfs(graph, src, "1d-dirop", nprocs=8,
                           machine="hopper", metrics=metrics)
    metrics.counter_value("comm_wire_words", kind="alltoallv")
    print(metrics.render_openmetrics())        # text exposition
    snapshot = metrics.snapshot()              # JSON-able dict

The counters reconcile *exactly* with the independently-derived
quantities of the run: ``comm_wire_words`` sums to
``result.stats.wire_words()``, ``fault_retries`` to the clock counter of
the same name, and so on — the cross-check tests lock this in.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

#: Metric type tags (the "typed" in typed metrics).
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram bucket upper bounds: one per decade across the
#: dynamic range of the quantities observed here (virtual seconds at the
#: small end, wire words at the large end).  A ``+Inf`` bucket is
#: implicit: every observation lands in some bucket.
DEFAULT_BUCKETS = tuple(10.0**e for e in range(-9, 10))

#: Schema tag stamped into :meth:`MetricsRegistry.snapshot`.
METRICS_SCHEMA = "repro.obs/metrics/v1"


def _label_key(labels: dict) -> tuple:
    """Canonical hashable form of a label set (values stringified)."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Histogram:
    """One histogram series: cumulative bucket counts plus count/sum.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    (non-cumulative storage; the exposition cumulates), with one
    overflow slot at the end for observations above every bound.
    """

    bounds: tuple = DEFAULT_BUCKETS
    bucket_counts: list = field(default_factory=list)
    count: int = 0
    sum: float = 0.0

    def __post_init__(self):
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.count += other.count
        self.sum += other.sum

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
        }


class RankMetrics:
    """Per-rank recording handle (one per simulated rank, lock-free).

    Obtained through :meth:`MetricsRegistry.for_rank`; each simulated
    rank writes only to its own series maps, exactly like
    :class:`~repro.obs.tracer.RankTracer` and its span lists.
    """

    __slots__ = ("rank", "_registry", "counters", "gauges", "histograms")

    def __init__(self, rank: int, registry: "MetricsRegistry"):
        self.rank = rank
        self._registry = registry
        self.counters: dict[str, dict[tuple, float]] = {}
        self.gauges: dict[str, dict[tuple, float]] = {}
        self.histograms: dict[str, dict[tuple, Histogram]] = {}

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to a counter series (must be non-negative)."""
        if value < 0:
            raise ValueError(f"counter {name!r} increment must be >= 0: {value}")
        self._registry._bind(name, COUNTER)
        series = self.counters.setdefault(name, {})
        key = _label_key(labels)
        series[key] = series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge series to its latest value."""
        self._registry._bind(name, GAUGE)
        self.gauges.setdefault(name, {})[_label_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a histogram series."""
        self._registry._bind(name, HISTOGRAM)
        series = self.histograms.setdefault(name, {})
        key = _label_key(labels)
        hist = series.get(key)
        if hist is None:
            hist = series[key] = Histogram(self._registry.buckets_for(name))
        hist.observe(value)


class NullRankMetrics:
    """Disabled per-rank handle: every call is a shared no-op."""

    __slots__ = ()

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        return None

    def set_gauge(self, name: str, value: float, **labels) -> None:
        return None

    def observe(self, name: str, value: float, **labels) -> None:
        return None


NULL_RANK_METRICS = NullRankMetrics()


class MetricsRegistry:
    """Run-wide metric collector: one :class:`RankMetrics` per rank.

    Pass one instance to ``run_bfs(..., metrics=registry)`` (or
    ``run_query``); after the run, read series back aggregated across
    ranks.  Like a tracer, a registry records exactly one run — call
    :meth:`reset` (or build a fresh one) before reusing it.
    """

    def __init__(self):
        self._ranks: dict[int, RankMetrics] = {}
        self._types: dict[str, str] = {}
        self._buckets: dict[str, tuple] = {}
        self._lock = threading.Lock()

    # -- recording side -----------------------------------------------------
    def for_rank(self, comm) -> RankMetrics:
        """The recording handle of ``comm``'s global rank (thread-safe).

        ``comm`` may be a communicator or a bare rank id — handy for
        tests and offline tooling that have no communicator in hand.
        """
        rank = comm if isinstance(comm, int) else comm.global_rank
        with self._lock:
            rm = self._ranks.get(rank)
            if rm is None:
                rm = RankMetrics(rank, self)
                self._ranks[rank] = rm
            return rm

    def declare_histogram(self, name: str, buckets) -> None:
        """Pre-bind a histogram's bucket bounds (before first observe)."""
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        with self._lock:
            self._bind(name, HISTOGRAM)
            existing = self._buckets.get(name)
            if existing is not None and existing != bounds:
                raise ValueError(
                    f"histogram {name!r} already declared with buckets {existing}"
                )
            self._buckets[name] = bounds

    def buckets_for(self, name: str) -> tuple:
        return self._buckets.get(name, DEFAULT_BUCKETS)

    def _bind(self, name: str, mtype: str) -> None:
        """Bind ``name`` to one metric type; conflicting re-use raises."""
        bound = self._types.get(name)
        if bound is None:
            self._types[name] = mtype
        elif bound != mtype:
            raise TypeError(
                f"metric {name!r} is a {bound}, not a {mtype}; "
                "one name maps to one type"
            )

    # -- reading side -------------------------------------------------------
    @property
    def nranks(self) -> int:
        return len(self._ranks)

    @property
    def ranks(self) -> list[int]:
        return sorted(self._ranks)

    def names(self) -> dict[str, str]:
        """``{metric name: type}`` for everything recorded so far."""
        return dict(sorted(self._types.items()))

    def _series(self, kind: str, name: str) -> dict[tuple, list]:
        """``{label key: [(rank, value)...]}`` across ranks for one metric."""
        out: dict[tuple, list] = {}
        for rank in self.ranks:
            rm = self._ranks[rank]
            store = getattr(rm, kind).get(name, {})
            for key, value in store.items():
                out.setdefault(key, []).append((rank, value))
        return out

    def counter_value(self, name: str, rank: int | None = None, **labels) -> float:
        """A counter summed across ranks and matching label sets.

        With labels given, only series carrying *all* of them (exact
        values) contribute; without labels, every series of the name
        contributes — so ``counter_value("comm_wire_words")`` is the
        run-wide total and ``counter_value("comm_wire_words",
        kind="alltoallv")`` one collective's share.  ``rank`` restricts
        the sum to one rank's contributions.
        """
        want = dict(_label_key(labels))
        total = 0.0
        for key, pairs in self._series("counters", name).items():
            have = dict(key)
            if all(have.get(k) == v for k, v in want.items()):
                total += sum(v for r, v in pairs if rank is None or r == rank)
        return total

    def gauge_value(self, name: str, rank: int | None = None, **labels) -> float | None:
        """A gauge's value: max across ranks and matching label sets.

        Label matching is a subset test like :meth:`counter_value`; pass
        ``rank`` to read one rank's view only.
        """
        want = dict(_label_key(labels))
        values = []
        for key, pairs in self._series("gauges", name).items():
            have = dict(key)
            if all(have.get(k) == v for k, v in want.items()):
                values.extend(v for r, v in pairs if rank is None or r == rank)
        return max(values) if values else None

    def histogram_value(self, name: str, **labels) -> Histogram | None:
        """A histogram merged across ranks for one exact label set."""
        key = _label_key(labels)
        merged: Histogram | None = None
        for _rank, hist in self._series("histograms", name).get(key, []):
            if merged is None:
                merged = Histogram(hist.bounds)
            merged.merge(hist)
        return merged

    def label_sets(self, name: str) -> list[dict]:
        """Every label combination recorded for one metric name."""
        mtype = self._types.get(name)
        if mtype is None:
            return []
        kind = {COUNTER: "counters", GAUGE: "gauges", HISTOGRAM: "histograms"}[mtype]
        return [dict(key) for key in sorted(self._series(kind, name))]

    def reset(self) -> None:
        """Drop all recorded series so the registry can meter another run."""
        with self._lock:
            self._ranks.clear()
            self._types.clear()

    # -- exposition ---------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able aggregate of every metric (embedded in run reports).

        Counters are summed across ranks per label set; gauges keep the
        per-rank maximum (the straggler's view); histograms merge bucket
        counts.  Label sets render as sorted ``k=v`` strings so the
        snapshot is deterministic and diff-friendly.
        """
        metrics: dict[str, dict] = {}
        for name, mtype in sorted(self._types.items()):
            entry: dict = {"type": mtype, "series": {}}
            if mtype == COUNTER:
                for key, pairs in sorted(self._series("counters", name).items()):
                    entry["series"][_render_labels(key)] = sum(v for _, v in pairs)
            elif mtype == GAUGE:
                for key, pairs in sorted(self._series("gauges", name).items()):
                    entry["series"][_render_labels(key)] = max(v for _, v in pairs)
            else:
                for key, pairs in sorted(self._series("histograms", name).items()):
                    merged = Histogram(pairs[0][1].bounds)
                    for _rank, hist in pairs:
                        merged.merge(hist)
                    entry["series"][_render_labels(key)] = merged.as_dict()
            metrics[name] = entry
        return {"schema": METRICS_SCHEMA, "nranks": self.nranks, "metrics": metrics}

    def render_openmetrics(self) -> str:
        """OpenMetrics-style text exposition of the aggregated metrics.

        One ``# TYPE`` line per metric, then one sample per label set;
        histograms expose cumulative ``_bucket{le=...}`` samples plus
        ``_count``/``_sum``, following the Prometheus text format.  Rank
        aggregation matches :meth:`snapshot`.
        """
        lines: list[str] = []
        for name, mtype in sorted(self._types.items()):
            lines.append(f"# TYPE {name} {mtype}")
            if mtype == COUNTER:
                for key, pairs in sorted(self._series("counters", name).items()):
                    total = sum(v for _, v in pairs)
                    lines.append(f"{name}{_openmetrics_labels(key)} {total:g}")
            elif mtype == GAUGE:
                for key, pairs in sorted(self._series("gauges", name).items()):
                    value = max(v for _, v in pairs)
                    lines.append(f"{name}{_openmetrics_labels(key)} {value:g}")
            else:
                for key, pairs in sorted(self._series("histograms", name).items()):
                    merged = Histogram(pairs[0][1].bounds)
                    for _rank, hist in pairs:
                        merged.merge(hist)
                    cumulative = 0
                    for bound, count in zip(merged.bounds, merged.bucket_counts):
                        cumulative += count
                        labels = _openmetrics_labels(key + (("le", f"{bound:g}"),))
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    labels = _openmetrics_labels(key + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{labels} {merged.count}")
                    suffix = _openmetrics_labels(key)
                    lines.append(f"{name}_count{suffix} {merged.count}")
                    lines.append(f"{name}_sum{suffix} {merged.sum:g}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def _render_labels(key: tuple) -> str:
    """Snapshot series key: ``"kind=alltoallv,level=3"`` ("" when bare)."""
    return ",".join(f"{k}={v}" for k, v in key)


def _openmetrics_labels(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class NullMetrics:
    """Drop-in disabled registry (what ``metrics=None`` resolves to)."""

    def for_rank(self, comm) -> NullRankMetrics:
        return NULL_RANK_METRICS


NULL_METRICS = NullMetrics()


def resolve_metrics(metrics) -> MetricsRegistry | NullMetrics:
    """Normalize a ``metrics`` argument: ``None`` means the null registry."""
    return metrics if metrics is not None else NULL_METRICS
