"""Structured tracing + metrics for simulated BFS runs (``repro.obs``).

Layered on the virtual clocks of :mod:`repro.mpsim`:

* :mod:`~repro.obs.tracer` — nested per-rank, per-level phase spans
  stamped in virtual time; the 1D/2D/direction-optimizing algorithms,
  the comm channel and the SpMSV kernels are instrumented.  Installing
  no tracer costs nothing (shared no-op handles).
* :mod:`~repro.obs.metrics` — labeled counters/gauges/histograms behind
  the same null-object pattern; engine, comm channel, fault injector
  and query steps are instrumented, and every counter reconciles
  exactly with the span/stats-derived quantities.
* :mod:`~repro.obs.export` — Chrome ``trace_event`` JSON (one track per
  rank; open in Perfetto) and the machine-readable run report.
* :mod:`~repro.obs.events` — the schema-versioned JSONL event log and
  the collapsed-stack flamegraph exporter (speedscope/flamegraph.pl).
* :mod:`~repro.obs.analysis` — per-level critical paths that sum exactly
  to the modeled makespan, load-imbalance metrics with straggler
  attribution, and comm/comp decompositions (programmatic Figure 6/8).
* :mod:`~repro.obs.regress` — the perf gate: ``repro-bench perf-diff``
  compares two run reports and fails on regression.
* :mod:`~repro.obs.trajectory` — the cross-run analyzer behind
  ``repro-bench trajectory``: committed ``BENCH_*.json`` baselines
  become per-metric time series with median-reference gating,
  changepoint detection and a markdown/HTML dashboard.

Typical flow::

    from repro.obs import Tracer, run_report, write_chrome_trace

    tracer = Tracer()
    result = repro.run_bfs(graph, src, "1d-dirop", nprocs=8,
                           machine="hopper", tracer=tracer)
    write_chrome_trace("trace.json", tracer)
    report = run_report(result)          # feeds repro-bench perf-diff

See ``docs/observability.md`` for the span taxonomy and file schemas.
"""

from repro.obs.analysis import (
    COMM_PHASES,
    UNTRACED,
    CriticalPath,
    LevelCritical,
    PhaseImbalance,
    check_critical_path,
    comm_comp_summary,
    critical_path,
    load_imbalance,
)
from repro.obs.events import (
    EVENTS_SCHEMA,
    collapsed_stacks,
    load_events_jsonl,
    run_events,
    validate_collapsed_stacks,
    validate_events,
    write_events_jsonl,
    write_flamegraph,
)
from repro.obs.export import (
    REPORT_SCHEMA,
    chrome_trace,
    load_run_report,
    run_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_run_report,
)
from repro.obs.metrics import (
    METRICS_SCHEMA,
    NULL_METRICS,
    NULL_RANK_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    NullRankMetrics,
    RankMetrics,
    resolve_metrics,
)
from repro.obs.regress import (
    DEFAULT_THRESHOLD,
    GATED_METRICS,
    MetricDelta,
    PerfDiff,
    compare_reports,
    perf_diff,
    resolve_baseline,
)
from repro.obs.tracer import (
    NULL_RANK_TRACER,
    NULL_TRACER,
    NullRankTracer,
    NullTracer,
    RankTracer,
    Span,
    Tracer,
    resolve_tracer,
)
from repro.obs.trajectory import (
    MetricTrend,
    Trajectory,
    analyze_reports,
    analyze_trajectory,
    resolve_series,
)

__all__ = [
    "COMM_PHASES",
    "UNTRACED",
    "CriticalPath",
    "LevelCritical",
    "PhaseImbalance",
    "check_critical_path",
    "comm_comp_summary",
    "critical_path",
    "load_imbalance",
    "REPORT_SCHEMA",
    "chrome_trace",
    "load_run_report",
    "run_report",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_run_report",
    "DEFAULT_THRESHOLD",
    "GATED_METRICS",
    "MetricDelta",
    "PerfDiff",
    "compare_reports",
    "perf_diff",
    "resolve_baseline",
    "EVENTS_SCHEMA",
    "collapsed_stacks",
    "load_events_jsonl",
    "run_events",
    "validate_collapsed_stacks",
    "validate_events",
    "write_events_jsonl",
    "write_flamegraph",
    "MetricTrend",
    "Trajectory",
    "analyze_reports",
    "analyze_trajectory",
    "resolve_series",
    "METRICS_SCHEMA",
    "NULL_METRICS",
    "NULL_RANK_METRICS",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NullRankMetrics",
    "RankMetrics",
    "resolve_metrics",
    "NULL_RANK_TRACER",
    "NULL_TRACER",
    "NullRankTracer",
    "NullTracer",
    "RankTracer",
    "Span",
    "Tracer",
    "resolve_tracer",
]
