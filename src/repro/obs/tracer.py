"""Span-based tracing of simulated BFS runs, stamped in virtual time.

A :class:`Tracer` collects nested :class:`Span` records — one stack per
simulated rank — whose start/end times are read off the rank's virtual
:class:`~repro.mpsim.clock.RankClock`.  Because spans never charge the
clock themselves, tracing is *passive*: a traced run produces bit-identical
``levels``/``parents``/stats to an untraced one (asserted by
``tests/test_obs_overhead.py``).

The BFS rank bodies open one depth-0 ``"level"`` span per BFS level and
depth-1 phase spans inside it (``td-scan``, ``td-pack``, ``td-exchange``,
``bu-expand``, ``spmsv``, ``sync``, ...); the comm channel and the SpMSV
kernel add depth-2 children (``sieve``, ``encode``, ``alltoallv``,
``decode``, ``allgatherv``, ``spmsv-kernel``).  Export the result with
:mod:`repro.obs.export` and analyze it with :mod:`repro.obs.analysis`.

Usage::

    from repro.obs import Tracer

    tracer = Tracer()
    result = repro.run_bfs(graph, src, "1d-dirop", nprocs=8,
                           machine="hopper", tracer=tracer)
    print(tracer.nranks, len(tracer.spans_for(0)))

When no tracer is installed the algorithms fall back to the module-level
:data:`NULL_TRACER`, whose span handles are shared no-op context managers
— zero allocations, zero state, zero overhead on the hot path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class Span:
    """One traced phase on one rank's virtual clock.

    ``parent`` is the index of the enclosing span in the same rank's span
    list (``None`` at depth 0).  ``level`` is inherited from the enclosing
    span when not given explicitly, so channel-internal spans carry the
    BFS level of the exchange they serve.  ``instant`` marks zero-duration
    marker events (e.g. the SpMSV kernel choice).
    """

    rank: int
    phase: str
    t_start: float
    t_end: float
    level: int | None = None
    depth: int = 0
    parent: int | None = None
    instant: bool = False
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class _SpanHandle:
    """Context manager recording one span on a :class:`RankTracer`."""

    __slots__ = ("_rt", "_phase", "_level", "_meta", "_index")

    def __init__(self, rt: "RankTracer", phase: str, level: int | None, meta: dict):
        self._rt = rt
        self._phase = phase
        self._level = level
        self._meta = meta

    def __enter__(self) -> Span:
        rt = self._rt
        stack = rt._stack
        level = self._level
        parent = stack[-1] if stack else None
        if level is None and parent is not None:
            level = rt.spans[parent].level
        span = Span(
            rank=rt.rank,
            phase=self._phase,
            t_start=rt._clock.time,
            t_end=rt._clock.time,
            level=level,
            depth=len(stack),
            parent=parent,
            meta=self._meta,
        )
        self._index = len(rt.spans)
        rt.spans.append(span)
        stack.append(self._index)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        rt = self._rt
        span = rt.spans[self._index]
        span.t_end = rt._clock.time
        rt._stack.pop()
        return False


class _NullHandle:
    """Shared no-op span handle: the zero-overhead disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class RankTracer:
    """Per-rank recording handle bound to one virtual clock.

    Obtained through :meth:`Tracer.for_rank`; each simulated rank writes
    only to its own span list, so no locking is needed on the hot path.
    """

    __slots__ = ("rank", "spans", "_clock", "_stack")

    def __init__(self, rank: int, clock):
        self.rank = rank
        self.spans: list[Span] = []
        self._clock = clock
        self._stack: list[int] = []

    def span(self, phase: str, level: int | None = None, **meta) -> _SpanHandle:
        """Open a nested phase span (use as a context manager)."""
        return _SpanHandle(self, phase, level, meta)

    def instant(self, phase: str, level: int | None = None, **meta) -> Span:
        """Record a zero-duration marker at the current nesting depth."""
        stack = self._stack
        parent = stack[-1] if stack else None
        if level is None and parent is not None:
            level = self.spans[parent].level
        span = Span(
            rank=self.rank,
            phase=phase,
            t_start=self._clock.time,
            t_end=self._clock.time,
            level=level,
            depth=len(stack),
            parent=parent,
            instant=True,
            meta=meta,
        )
        self.spans.append(span)
        return span


class NullRankTracer:
    """Disabled per-rank handle: every call is a shared no-op."""

    __slots__ = ()

    def span(self, phase: str, level: int | None = None, **meta) -> _NullHandle:
        return _NULL_HANDLE

    def instant(self, phase: str, level: int | None = None, **meta) -> None:
        return None


NULL_RANK_TRACER = NullRankTracer()


class Tracer:
    """Run-wide span collector: one :class:`RankTracer` per simulated rank.

    Pass one instance to ``run_bfs(..., tracer=tracer)``; after the run,
    read spans back per rank.  A tracer records exactly one run — call
    :meth:`reset` (or build a fresh instance) before reusing it, since
    every simulated run restarts virtual time at zero.
    """

    def __init__(self):
        self._ranks: dict[int, RankTracer] = {}
        self._lock = threading.Lock()

    def for_rank(self, comm) -> RankTracer:
        """The recording handle of ``comm``'s global rank (thread-safe)."""
        rank = comm.global_rank
        with self._lock:
            rt = self._ranks.get(rank)
            if rt is None:
                rt = RankTracer(rank, comm.clock)
                self._ranks[rank] = rt
            elif rt._clock is not comm.clock:
                # A new SPMD incarnation of the same run (checkpoint
                # restart) has fresh clocks; rebind so the restarted
                # attempt's spans continue on the same timeline, and drop
                # any stack left by the aborted attempt.
                rt._clock = comm.clock
                rt._stack.clear()
            return rt

    @property
    def nranks(self) -> int:
        return len(self._ranks)

    @property
    def ranks(self) -> list[int]:
        return sorted(self._ranks)

    def spans_for(self, rank: int) -> list[Span]:
        rt = self._ranks.get(rank)
        return rt.spans if rt is not None else []

    def all_spans(self) -> list[Span]:
        """Every span of every rank, in rank order."""
        return [s for rank in self.ranks for s in self.spans_for(rank)]

    @property
    def makespan(self) -> float:
        """Latest span end across all ranks (0.0 when empty/untimed)."""
        return max((s.t_end for s in self.all_spans()), default=0.0)

    def reset(self) -> None:
        """Drop all recorded spans so the tracer can observe another run."""
        with self._lock:
            self._ranks.clear()


class NullTracer:
    """Drop-in disabled tracer (what ``tracer=None`` resolves to)."""

    def for_rank(self, comm) -> NullRankTracer:
        return NULL_RANK_TRACER


NULL_TRACER = NullTracer()


def resolve_tracer(tracer) -> Tracer | NullTracer:
    """Normalize a ``tracer`` argument: ``None`` means the null tracer."""
    return tracer if tracer is not None else NULL_TRACER
