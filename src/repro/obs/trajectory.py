"""Cross-run performance-trajectory analyzer.

:mod:`repro.obs.regress` gates one candidate against one baseline;
this module looks at the whole *history*: every committed
``BENCH_*.json`` run report becomes one point of a per-metric time
series, ordered by filename (git checkouts do not preserve mtimes, so
date- or PR-stamped names are the ordering contract).  From the series
it derives, per metric:

* the **trend** — min/max/latest plus a unicode sparkline;
* a **regression verdict** for gated metrics: the newest point is
  compared against the *median* of the preceding points, so one noisy
  historical point cannot shift the reference the way a mean would;
* **changepoints** — consecutive-point jumps beyond the threshold
  anywhere in the series, which localize *when* a metric moved even if
  the latest point looks fine against the median.

``repro-bench trajectory benchmarks/ --candidate fresh.json`` is the CI
entry point: exit 0 when no gated metric regressed, 1 on regression,
2 on unusable input.  ``--markdown-out``/``--html-out`` write the
dashboard artifacts.  Simulated runs are deterministic, so a candidate
re-run of the committed recipe sits exactly on the trajectory and the
gate can be tight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from statistics import median

from repro.obs.regress import (
    DEFAULT_THRESHOLD,
    GATED_METRICS,
    _LOWER_IS_WORSE,
    _flatten_metrics,
)

#: Sparkline glyphs, lowest to highest.
_SPARKS = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float]) -> str:
    """Render a series as one unicode sparkline character per point."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARKS[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1, int((v - lo) / span * len(_SPARKS)))]
        for v in values
    )


def _worse(name: str, prev: float, curr: float) -> float | None:
    """Signed relative change, normalized so positive means *worse*."""
    if prev == 0:
        return None
    rel = (curr - prev) / abs(prev)
    return -rel if name in _LOWER_IS_WORSE else rel


@dataclass(frozen=True)
class MetricTrend:
    """One metric's history across the run-report series."""

    metric: str
    #: ``(point label, value)`` pairs in series order.
    points: list[tuple[str, float]]
    gated: bool
    #: Median of all points before the latest (``None`` with <2 points).
    reference: float | None
    #: Latest-vs-reference change, positive = worse; ``None`` if not
    #: computable (short series or zero reference).
    rel_change: float | None
    #: ``(point label, worse-positive jump)`` for every consecutive-point
    #: move beyond the threshold, newest last.
    changepoints: list[tuple[str, float]]

    @property
    def latest(self) -> float:
        return self.points[-1][1]

    @property
    def sparkline(self) -> str:
        return _sparkline([v for _, v in self.points])


def _trend(name: str, points: list[tuple[str, float]], threshold: float) -> MetricTrend:
    values = [v for _, v in points]
    reference = median(values[:-1]) if len(values) >= 2 else None
    rel = None
    if reference is not None and reference != 0:
        rel = _worse(name, reference, values[-1])
    changepoints = []
    for (_, prev), (label, curr) in zip(points, points[1:]):
        jump = _worse(name, prev, curr)
        if jump is not None and abs(jump) > threshold:
            changepoints.append((label, jump))
    return MetricTrend(
        metric=name,
        points=points,
        gated=name in GATED_METRICS,
        reference=reference,
        rel_change=rel,
        changepoints=changepoints,
    )


@dataclass
class Trajectory:
    """The analyzed series: per-metric trends plus the gate verdict."""

    #: Point labels (report filenames/stems) in series order.
    names: list[str]
    trends: list[MetricTrend]
    threshold: float
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricTrend]:
        return [
            t
            for t in self.trends
            if t.gated and t.rel_change is not None and t.rel_change > self.threshold
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def trend(self, metric: str) -> MetricTrend | None:
        for t in self.trends:
            if t.metric == metric:
                return t
        return None

    def _verdict(self) -> str:
        if self.ok:
            return (
                "PASS: latest point is on the trajectory "
                f"(no gated metric beyond {self.threshold:.1%} of its median)"
            )
        worst = max(self.regressions, key=lambda t: t.rel_change)
        return (
            f"FAIL: {len(self.regressions)} gated metric(s) off the "
            f"trajectory; worst is {worst.metric} at +{worst.rel_change:.2%} "
            f"vs median (threshold {self.threshold:.1%})"
        )

    def render(self) -> str:
        """Plain-text dashboard plus the verdict line."""
        lines = [
            f"perf trajectory: {len(self.names)} points "
            f"({self.names[0]} .. {self.names[-1]}), "
            f"threshold {self.threshold:.1%}"
        ]
        header = (
            f"{'metric':<28} {'trend':<12} {'median':>12} {'latest':>12} "
            f"{'change':>9}  gate"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for t in self.trends:
            ref = f"{t.reference:.6g}" if t.reference is not None else "-"
            if t.rel_change is None:
                change = "-"
            else:
                raw = -t.rel_change if t.metric in _LOWER_IS_WORSE else t.rel_change
                change = f"{raw:+.2%}"
            flag = ""
            if t.gated:
                flag = (
                    "FAIL"
                    if t.rel_change is not None and t.rel_change > self.threshold
                    else "ok"
                )
            lines.append(
                f"{t.metric:<28} {t.sparkline:<12} {ref:>12} "
                f"{t.latest:>12.6g} {change:>9}  {flag}"
            )
        for t in self.trends:
            for label, jump in t.changepoints:
                direction = "worsened" if jump > 0 else "improved"
                lines.append(
                    f"changepoint: {t.metric} {direction} {abs(jump):.2%} at {label}"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append(self._verdict())
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavored markdown dashboard (CI job summary artifact)."""
        lines = [
            "# Performance trajectory",
            "",
            f"{len(self.names)} points: `{self.names[0]}` → `{self.names[-1]}`, "
            f"gate threshold {self.threshold:.1%}.",
            "",
            "| metric | trend | median | latest | change | gate |",
            "| --- | --- | ---: | ---: | ---: | --- |",
        ]
        for t in self.trends:
            ref = f"{t.reference:.6g}" if t.reference is not None else "—"
            if t.rel_change is None:
                change = "—"
            else:
                raw = -t.rel_change if t.metric in _LOWER_IS_WORSE else t.rel_change
                change = f"{raw:+.2%}"
            if not t.gated:
                flag = "info"
            elif t.rel_change is not None and t.rel_change > self.threshold:
                flag = "**FAIL**"
            else:
                flag = "ok"
            lines.append(
                f"| `{t.metric}` | `{t.sparkline}` | {ref} | "
                f"{t.latest:.6g} | {change} | {flag} |"
            )
        changepoints = [
            (t.metric, label, jump)
            for t in self.trends
            for label, jump in t.changepoints
        ]
        if changepoints:
            lines += ["", "## Changepoints", ""]
            for metric, label, jump in changepoints:
                direction = "worsened" if jump > 0 else "improved"
                lines.append(f"- `{metric}` {direction} {abs(jump):.2%} at `{label}`")
        lines += ["", f"**{self._verdict()}**", ""]
        return "\n".join(lines)

    def render_html(self) -> str:
        """Self-contained HTML dashboard (no external assets)."""
        rows = []
        for t in self.trends:
            ref = f"{t.reference:.6g}" if t.reference is not None else "&mdash;"
            if t.rel_change is None:
                change = "&mdash;"
            else:
                raw = -t.rel_change if t.metric in _LOWER_IS_WORSE else t.rel_change
                change = f"{raw:+.2%}"
            failed = (
                t.gated
                and t.rel_change is not None
                and t.rel_change > self.threshold
            )
            flag = ("FAIL" if failed else "ok") if t.gated else "info"
            cls = "fail" if failed else ("ok" if t.gated else "info")
            rows.append(
                f"<tr class='{cls}'><td><code>{t.metric}</code></td>"
                f"<td class='spark'>{t.sparkline}</td><td>{ref}</td>"
                f"<td>{t.latest:.6g}</td><td>{change}</td><td>{flag}</td></tr>"
            )
        verdict_cls = "ok" if self.ok else "fail"
        points = " &rarr; ".join(f"<code>{n}</code>" for n in self.names)
        return (
            "<!doctype html><html><head><meta charset='utf-8'>"
            "<title>Performance trajectory</title><style>"
            "body{font-family:sans-serif;margin:2em}"
            "table{border-collapse:collapse}"
            "td,th{border:1px solid #ccc;padding:4px 10px;text-align:right}"
            "td:first-child,th:first-child{text-align:left}"
            ".spark{font-family:monospace;letter-spacing:1px}"
            "tr.fail td{background:#fdd}"
            ".verdict.ok{color:#070}.verdict.fail{color:#a00}"
            "</style></head><body>"
            "<h1>Performance trajectory</h1>"
            f"<p>{len(self.names)} points: {points}; "
            f"gate threshold {self.threshold:.1%}.</p>"
            "<table><tr><th>metric</th><th>trend</th><th>median</th>"
            "<th>latest</th><th>change</th><th>gate</th></tr>"
            + "".join(rows)
            + "</table>"
            f"<p class='verdict {verdict_cls}'><b>{self._verdict()}</b></p>"
            "</body></html>\n"
        )


def resolve_series(paths) -> list[Path]:
    """Expand baseline arguments into the ordered report-file series.

    Each element may be a file, a directory (expands to its sorted
    ``BENCH_*.json``) or a glob pattern; the combined list keeps the
    given order, de-duplicated, so mixing a directory with an explicit
    candidate file works naturally.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    series: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            matches = [path]
        elif path.is_dir():
            matches = sorted(path.glob("BENCH_*.json"))
        else:
            matches = sorted(path.parent.glob(path.name))
        if not matches:
            raise FileNotFoundError(f"{raw}: no run reports found")
        for match in matches:
            if match not in series:
                series.append(match)
    return series


def analyze_reports(
    named_reports: list[tuple[str, dict]],
    threshold: float = DEFAULT_THRESHOLD,
) -> Trajectory:
    """Build the trajectory from ``(label, run-report dict)`` pairs."""
    if not named_reports:
        raise ValueError("empty report series")
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    names = [name for name, _ in named_reports]
    flat = [(name, _flatten_metrics(report)) for name, report in named_reports]
    metrics: list[str] = []
    for _, values in flat:
        for key in values:
            if key not in metrics:
                metrics.append(key)
    ordered = [m for m in GATED_METRICS if m in metrics]
    ordered += sorted(m for m in metrics if m not in ordered)
    trends = []
    notes = []
    for name in ordered:
        points = [(label, values[name]) for label, values in flat if name in values]
        if not points:
            continue
        if len(points) < len(flat) and name in GATED_METRICS:
            notes.append(
                f"{name} is missing from {len(flat) - len(points)} point(s); "
                "its trend uses only the points that carry it"
            )
        trends.append(_trend(name, points, threshold))
    if len(named_reports) == 1:
        notes.append("single point: no reference to gate against")
    return Trajectory(names=names, trends=trends, threshold=threshold, notes=notes)


def analyze_trajectory(
    paths,
    candidate: str | Path | None = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> Trajectory:
    """Load and analyze a series of run-report files.

    ``paths`` is a file/directory/glob (or a list of them) of committed
    baselines, ordered by filename; ``candidate`` — a fresh report — is
    appended as the newest point and is what the gate judges.
    """
    from repro.obs.export import load_run_report

    series = resolve_series(paths)
    if candidate is not None:
        candidate = Path(candidate)
        series = [p for p in series if p.resolve() != candidate.resolve()]
        series.append(candidate)
    named = [(path.stem, load_run_report(path)) for path in series]
    return analyze_reports(named, threshold=threshold)
