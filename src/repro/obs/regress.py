"""Performance-regression gate over run reports.

:func:`compare_reports` diffs two :func:`~repro.obs.export.run_report`
dicts metric by metric; :func:`perf_diff` is the file-based entry point
behind ``repro-bench perf-diff a.json b.json --threshold 0.05``.

Gating metrics (``time.total`` and ``gteps``) fail the diff when the
candidate regresses beyond the threshold; everything else — comm/comp
split, per-phase critical-path times, wire volumes, fault/retry/restore
accounting, measured kernel-backend wall-clock comparisons — is
reported for attribution but does not gate, so a net win that shifts
time between phases doesn't trip the gate.  Simulated
runs are deterministic, so a self-comparison is exactly zero-delta and
the gate can be tight.

Fault-injected runs pay modeled recovery overhead (retry backoff,
checkpoint traffic, replayed levels), so when the two reports have
*different* recovery profiles the time metrics compare apples to
oranges: the gate is downgraded to informational with a note, instead
of failing a correctly-recovered run against a fault-free baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

#: Default allowed relative slowdown before the gate fails.
DEFAULT_THRESHOLD = 0.05

#: Metrics whose regression fails the gate.  ``time.total`` regresses
#: upward, ``gteps`` and query throughput downward (flagged by
#: ``_LOWER_IS_WORSE``).  A metric absent from either report never
#: gates, so BFS reports are unaffected by the query gate.
GATED_METRICS = ("time.total", "gteps", "query.queries_per_second")

#: Informational metrics: shown in the diff, never gate.
INFO_METRICS = ("time.comm", "time.comp")

_LOWER_IS_WORSE = frozenset({"gteps", "query.queries_per_second"})


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline/candidate values and relative change.

    ``rel_change`` is signed so that positive always means *worse*
    (slower, or lower throughput); ``None`` when the baseline is zero or
    either side is missing.
    """

    name: str
    baseline: float | None
    candidate: float | None
    rel_change: float | None
    gated: bool

    @property
    def regressed_beyond(self) -> float | None:
        return self.rel_change


def _flatten_metrics(report: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    times = report.get("time") or {}
    for key in ("total", "comm", "comp"):
        value = times.get(key)
        if value is not None:
            out[f"time.{key}"] = float(value)
    if report.get("gteps") is not None:
        out["gteps"] = float(report["gteps"])
    for phase, seconds in (report.get("phases") or {}).items():
        out[f"phase.{phase}"] = float(seconds)
    comm = report.get("comm") or {}
    for key in ("total_wire_words", "total_payload_words"):
        if comm.get(key) is not None:
            out[f"comm.{key}"] = float(comm[key])
    faults = report.get("faults") or {}
    if faults:
        out["faults.attempts"] = float(faults.get("attempts") or 0)
        out["faults.restores"] = float(len(faults.get("restores") or ()))
        for key, value in (faults.get("counters") or {}).items():
            out[f"faults.{key}"] = float(value)
    query = report.get("query") or {}
    for key in ("queries_per_second", "batch"):
        if query.get(key) is not None:
            out[f"query.{key}"] = float(query[key])
    # Optional wall-clock section (measured, not modeled): kernel-backend
    # comparison points recorded by benchmarks/BENCH_kernels.json.  These
    # are host-dependent, so they inform the trajectory but never gate.
    for key, value in (report.get("wallclock") or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f"wallclock.{key}"] = float(value)
    return out


def _recovery_profile(report: dict):
    """What the run survived: ``None`` for an effectively fault-free run.

    Two reports with equal profiles are comparable wall-clock to
    wall-clock; unequal profiles mean one run paid recovery overhead the
    other didn't, so the time gate would be spurious.
    """
    faults = report.get("faults") or {}
    counters = faults.get("counters") or {}
    profile = (
        int(faults.get("attempts") or 1),
        len(faults.get("restores") or ()),
        float(counters.get("fault_retries") or 0.0),
        float(counters.get("fault_delays") or 0.0),
    )
    return None if profile == (1, 0, 0.0, 0.0) else profile


@dataclass
class PerfDiff:
    """Result of comparing a candidate run report against a baseline."""

    baseline: str
    candidate: str
    threshold: float
    deltas: list[MetricDelta]
    #: Diagnostics about the comparison itself (e.g. the time gate being
    #: downgraded because the runs' recovery profiles differ).
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [
            d
            for d in self.deltas
            if d.gated and d.rel_change is not None and d.rel_change > self.threshold
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Human-readable diff table plus the verdict line."""
        lines = [
            f"perf-diff: {self.baseline} (baseline) vs {self.candidate} "
            f"(candidate), threshold {self.threshold:.1%}"
        ]
        header = f"{'metric':<28} {'baseline':>12} {'candidate':>12} {'change':>9}  gate"
        lines.append(header)
        lines.append("-" * len(header))
        for d in self.deltas:
            base = f"{d.baseline:.6g}" if d.baseline is not None else "-"
            cand = f"{d.candidate:.6g}" if d.candidate is not None else "-"
            if d.rel_change is None:
                change = "-"
            else:
                # Undo the worse-is-positive normalization for display.
                raw = -d.rel_change if d.name in _LOWER_IS_WORSE else d.rel_change
                change = f"{raw:+.2%}"
            flag = ""
            if d.gated:
                flag = (
                    "FAIL"
                    if d.rel_change is not None and d.rel_change > self.threshold
                    else "ok"
                )
            lines.append(f"{d.name:<28} {base:>12} {cand:>12} {change:>9}  {flag}")
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.ok:
            lines.append("PASS: no gated metric regressed beyond the threshold")
        else:
            worst = max(self.regressions, key=lambda d: d.rel_change)
            lines.append(
                f"FAIL: {len(self.regressions)} gated metric(s) regressed; "
                f"worst is {worst.name} at +{worst.rel_change:.2%} "
                f"(threshold {self.threshold:.1%})"
            )
        return "\n".join(lines)


def compare_reports(
    baseline: dict,
    candidate: dict,
    threshold: float = DEFAULT_THRESHOLD,
    baseline_name: str = "baseline",
    candidate_name: str = "candidate",
) -> PerfDiff:
    """Diff two run reports; gated metrics beyond ``threshold`` fail.

    ``threshold`` is the allowed relative slowdown (0.05 = 5%).  Metrics
    missing from either report, or with a zero baseline, are shown but
    never gate.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    a = _flatten_metrics(baseline)
    b = _flatten_metrics(candidate)
    notes: list[str] = []
    profile_a = _recovery_profile(baseline)
    profile_b = _recovery_profile(candidate)
    comparable = profile_a == profile_b
    if not comparable:
        notes.append(
            "recovery profiles differ (baseline "
            f"{profile_a or 'fault-free'}, candidate {profile_b or 'fault-free'}); "
            "time.total/gteps shown informationally, not gated"
        )
    deltas: list[MetricDelta] = []
    ordered = list(GATED_METRICS) + list(INFO_METRICS)
    ordered += sorted(k for k in (set(a) | set(b)) if k not in ordered)
    for name in ordered:
        va, vb = a.get(name), b.get(name)
        rel = None
        if va is not None and vb is not None and va != 0:
            rel = (vb - va) / abs(va)
            if name in _LOWER_IS_WORSE:
                rel = -rel
        gated = name in GATED_METRICS and rel is not None and comparable
        if va is None and vb is None:
            continue
        deltas.append(MetricDelta(name, va, vb, rel, gated))
    return PerfDiff(
        baseline=baseline_name,
        candidate=candidate_name,
        threshold=threshold,
        deltas=deltas,
        notes=notes,
    )


def resolve_baseline(path: str | Path) -> Path:
    """Resolve a baseline argument to one concrete report file.

    Accepts a report file, a directory holding committed ``BENCH_*.json``
    baselines, or a glob pattern; directories and globs pick the
    lexicographically **latest** match, so date- or sequence-stamped
    baseline names (``BENCH_2026-08-08.json``, ``BENCH_pr9.json``) roll
    forward automatically.  Filename order is used instead of mtime
    because git checkouts do not preserve modification times.
    """
    path = Path(path)
    if path.is_file():
        return path
    if path.is_dir():
        matches = sorted(path.glob("BENCH_*.json"))
        if not matches:
            raise FileNotFoundError(f"{path}: no BENCH_*.json baselines")
        return matches[-1]
    matches = sorted(path.parent.glob(path.name))
    if not matches:
        raise FileNotFoundError(f"{path}: no baseline file, directory or match")
    return matches[-1]


def perf_diff(
    baseline_path: str | Path,
    candidate_path: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
) -> PerfDiff:
    """Load two run-report files and compare them.

    ``baseline_path`` may also be a directory or glob of ``BENCH_*.json``
    baselines; the latest match (filename order) is used — see
    :func:`resolve_baseline`.
    """
    from repro.obs.export import load_run_report

    baseline_path = resolve_baseline(baseline_path)
    baseline = load_run_report(baseline_path)
    candidate = load_run_report(candidate_path)
    return compare_reports(
        baseline,
        candidate,
        threshold=threshold,
        baseline_name=str(baseline_path),
        candidate_name=str(candidate_path),
    )
