"""Structured event log and flamegraph export for simulated runs.

Two consumable views of one instrumented run, both derived from the
recorded :class:`~repro.obs.tracer.Tracer` spans (and, when present, the
:class:`~repro.obs.metrics.MetricsRegistry` snapshot):

* **JSONL event log** — a schema-versioned stream of structured events
  (``run``/``level``/``span``/``instant``/``fault``/``checkpoint``/
  ``metric``), one JSON object per line, ordered by virtual time.  The
  first line is the run header; every following line carries ``kind``
  and a virtual timestamp ``t``, so a consumer can ``tail -f`` the file
  and dispatch on ``kind`` without buffering — the shape the coming
  long-running traversal service (ROADMAP open item 4) will emit live.
* **Collapsed-stack flamegraph** — ``frame;frame;frame weight`` lines
  (Brendan Gregg's format; loads directly in speedscope and
  ``flamegraph.pl``).  One stack per span, rooted at the rank, weighted
  by the span's *self* virtual time in integer microseconds.  Identical
  stacks aggregate; zero-weight stacks are dropped, so an untimed run
  (no machine model → all spans zero-length) produces an empty graph.

Usage::

    from repro.obs import Tracer, write_events_jsonl, write_flamegraph

    tracer = Tracer()
    result = repro.run_bfs(graph, src, "1d-dirop", nprocs=8,
                           machine="hopper", tracer=tracer)
    write_events_jsonl("events.jsonl", result)
    write_flamegraph("profile.folded", result)

Both writers find the tracer (and metrics registry) in ``result.meta``
exactly like :func:`repro.obs.export.run_report` does.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import Span, Tracer

#: Schema tag on the event stream's header line; consumers dispatch on it.
EVENTS_SCHEMA = "repro.obs/events/v1"

#: Span phases surfaced as first-class ``fault`` events.
_FAULT_PHASES = frozenset({"fault-crash", "fault-delay", "fault-retry"})

#: Span phases surfaced as first-class ``checkpoint`` events.
_CHECKPOINT_PHASES = frozenset({"checkpoint", "restore"})


def _resolve_tracer(result, tracer) -> Tracer | None:
    if tracer is not None:
        return tracer
    return result.meta.get("tracer") if result is not None else None


def _resolve_metrics(result, metrics):
    if metrics is not None:
        return metrics
    return result.meta.get("metrics") if result is not None else None


def _span_kind(span: Span) -> str:
    if span.phase in _FAULT_PHASES:
        return "fault"
    if span.phase in _CHECKPOINT_PHASES:
        return "checkpoint"
    if span.phase == "level":
        return "level"
    if span.instant:
        return "instant"
    return "span"


#: Structural event fields span metadata must not clobber (a fault-retry
#: span carries ``kind="timeout"`` in its meta, which is the *fault*
#: kind, not the event kind).
_RESERVED_FIELDS = frozenset({"kind", "t", "rank", "phase", "dur", "depth"})


def _span_event(span: Span) -> dict:
    event = {
        "kind": _span_kind(span),
        "t": span.t_start,
        "rank": span.rank,
        "phase": span.phase,
        "dur": span.duration,
        "depth": span.depth,
    }
    if span.level is not None:
        event["level"] = span.level
    for key, value in span.meta.items():
        event[f"meta_{key}" if key in _RESERVED_FIELDS else key] = value
    return event


def run_events(result, tracer=None, metrics=None) -> list[dict]:
    """The run's full event list: header first, then time-ordered events.

    ``result`` is a :class:`~repro.core.runner.BFSResult` or
    :class:`~repro.query.QueryResult`; the tracer and metrics registry
    are found in ``result.meta`` unless passed explicitly.  Span-derived
    events are ordered by ``(t, rank, recording order)`` — exactly the
    order a live run would emit them, so writing the list line by line
    *is* the streaming protocol.
    """
    tracer = _resolve_tracer(result, tracer)
    registry = _resolve_metrics(result, metrics)

    header: dict = {"kind": "run", "schema": EVENTS_SCHEMA, "t": 0.0}
    if result is not None:
        header.update(
            algorithm=result.algorithm,
            nranks=result.nranks,
            nlevels=result.nlevels,
            m_traversed=result.m_traversed,
            graph=result.meta.get("graph"),
            machine=result.meta.get("machine"),
        )
        if hasattr(result, "kind"):
            header["query_kind"] = result.kind
            header["batch"] = result.batch
    events = [header]

    spans: list[Span] = tracer.all_spans() if tracer is not None else []
    indexed = sorted(
        enumerate(spans), key=lambda pair: (pair[1].t_start, pair[1].rank, pair[0])
    )
    events.extend(_span_event(span) for _, span in indexed)

    end_t = max((s.t_end for s in spans), default=0.0)
    if registry is not None:
        snapshot = registry.snapshot()
        for name, entry in snapshot["metrics"].items():
            for labels, value in entry["series"].items():
                events.append(
                    {
                        "kind": "metric",
                        "t": end_t,
                        "name": name,
                        "type": entry["type"],
                        "labels": labels,
                        "value": value,
                    }
                )
    events.append({"kind": "end", "t": end_t, "events": len(events)})
    return events


def write_events_jsonl(path, result, tracer=None, metrics=None) -> int:
    """Write the run's event stream as JSON Lines; returns the line count."""
    events = run_events(result, tracer=tracer, metrics=metrics)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return len(events)


def load_events_jsonl(path) -> list[dict]:
    """Read an event stream back; validates the header's schema tag."""
    events = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    if not events:
        raise ValueError(f"{path}: empty event stream")
    head = events[0]
    if head.get("kind") != "run" or head.get("schema") != EVENTS_SCHEMA:
        raise ValueError(
            f"{path}: not a {EVENTS_SCHEMA} stream (header: {head})"
        )
    return events


def validate_events(events: list[dict]) -> None:
    """Structural checks on one event stream (raises ``ValueError``).

    Asserts the header/terminator frame the stream, every event carries
    ``kind`` and a finite non-negative ``t``, and span-derived events are
    non-decreasing in time — the invariant that makes the stream
    tail-able without buffering.
    """
    if not events:
        raise ValueError("empty event stream")
    if events[0].get("kind") != "run":
        raise ValueError(f"first event must be the run header: {events[0]}")
    if events[0].get("schema") != EVENTS_SCHEMA:
        raise ValueError(f"unknown schema: {events[0].get('schema')!r}")
    if events[-1].get("kind") != "end":
        raise ValueError(f"last event must be the end marker: {events[-1]}")
    last_t = 0.0
    for event in events:
        kind = event.get("kind")
        if not isinstance(kind, str) or not kind:
            raise ValueError(f"event without kind: {event}")
        t = event.get("t")
        if kind == "metric":
            continue  # metrics are stamped at end_t, checked via "end"
        if not isinstance(t, (int, float)) or t < 0 or t != t:
            raise ValueError(f"event with bad timestamp: {event}")
        if kind in ("level", "span", "instant", "fault", "checkpoint"):
            if t < last_t:
                raise ValueError(
                    f"events out of order: t={t} after t={last_t}: {event}"
                )
            last_t = t
            if event.get("dur", 0.0) < 0:
                raise ValueError(f"negative duration: {event}")


# -- flamegraph ------------------------------------------------------------


def _frame(span: Span) -> str:
    """One stack frame's name; levels keep their number, ';' is reserved."""
    name = f"level:{span.level}" if span.phase == "level" else span.phase
    return name.replace(";", ",")


def collapsed_stacks(tracer: Tracer) -> dict[str, int]:
    """Aggregate span self-times into collapsed call stacks.

    Returns ``{stack: weight}`` where ``stack`` is
    ``rank0;level:3;td-exchange;alltoallv`` and ``weight`` the stack's
    *self* virtual time (duration minus enclosed children) in integer
    microseconds, summed over identical stacks.  Instants and zero-self
    stacks are dropped.
    """
    stacks: dict[str, int] = {}
    for rank in tracer.ranks:
        spans = tracer.spans_for(rank)
        child_time = [0.0] * len(spans)
        for span in spans:
            if span.parent is not None and not span.instant:
                child_time[span.parent] += span.duration
        for i, span in enumerate(spans):
            if span.instant:
                continue
            self_us = round((span.duration - child_time[i]) * 1e6)
            if self_us <= 0:
                continue
            frames = []
            j: int | None = i
            while j is not None:
                frames.append(_frame(spans[j]))
                j = spans[j].parent
            frames.append(f"rank{rank}")
            stack = ";".join(reversed(frames))
            stacks[stack] = stacks.get(stack, 0) + self_us
    return stacks


def write_flamegraph(path, result=None, tracer=None) -> int:
    """Write a collapsed-stack profile; returns the number of stacks.

    Output is plain ``stack weight`` lines sorted by stack name —
    deterministic, and directly loadable by speedscope or
    ``flamegraph.pl``.  An untimed run writes an empty file (every span
    has zero virtual duration).
    """
    tracer = _resolve_tracer(result, tracer)
    if tracer is None:
        raise ValueError(
            "no tracer: pass tracer= or a result traced with one"
        )
    stacks = collapsed_stacks(tracer)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for stack in sorted(stacks):
            fh.write(f"{stack} {stacks[stack]}\n")
    return len(stacks)


def validate_collapsed_stacks(text: str) -> int:
    """Validate collapsed-stack format; returns the stack count.

    Each non-empty line must be ``frame(;frame)* weight`` with a positive
    integer weight and non-empty frame names — the exact grammar both
    speedscope's importer and ``flamegraph.pl`` parse.
    """
    count = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        stack, sep, weight = line.rpartition(" ")
        if not sep or not stack:
            raise ValueError(f"line {lineno}: not 'stack weight': {line!r}")
        if not weight.isdigit() or int(weight) <= 0:
            raise ValueError(
                f"line {lineno}: weight must be a positive integer: {weight!r}"
            )
        frames = stack.split(";")
        if any(not frame for frame in frames):
            raise ValueError(f"line {lineno}: empty frame name: {stack!r}")
        count += 1
    return count
