"""Trace and run-report exporters.

Two machine-readable artifacts per traced run:

* :func:`chrome_trace` — the Chrome ``trace_event`` JSON format (complete
  ``"X"`` events with ``ph``/``ts``/``dur``/``pid``/``tid``), loadable in
  Perfetto / ``chrome://tracing`` with one track per simulated rank;
  virtual seconds are exported as microseconds, the format's native unit.
* :func:`run_report` — a self-contained JSON run report (graph, machine,
  algorithm and wire-format config, per-phase and per-level times, comm
  volumes, GTEPS) that :mod:`repro.obs.regress` diffs for the perf gate.

Both take the run's :class:`~repro.obs.tracer.Tracer`; ``run_report``
additionally takes the :class:`~repro.core.runner.BFSResult` and finds
the tracer in ``result.meta["tracer"]`` when one was installed.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.obs.analysis import comm_comp_summary, critical_path, load_imbalance
from repro.obs.tracer import Tracer

#: Schema tag stamped into every run report (bump on breaking changes).
#: v2 added the ``faults`` section (fault/retry/checkpoint accounting);
#: v3 added the ``metrics`` snapshot and the ``query`` section
#: (kind/batch/queries-per-second for batched-query runs).
REPORT_SCHEMA = "repro.obs/run-report/v3"

#: Older schemas :func:`load_run_report` still accepts (the additions
#: are backward compatible: readers treat a missing section as absent).
_ACCEPTED_SCHEMAS = frozenset(
    {"repro.obs/run-report/v1", "repro.obs/run-report/v2", REPORT_SCHEMA}
)

#: Seconds -> Chrome trace microseconds.
_US = 1e6


def chrome_trace(tracer: Tracer, pid: int = 0) -> dict:
    """Render a tracer as a Chrome ``trace_event`` JSON object.

    Every rank becomes one named thread track (``tid`` = rank) of process
    ``pid``; spans become complete (``"X"``) events and instants become
    thread-scoped instant (``"i"``) events.  Span metadata and the BFS
    level land in ``args`` so Perfetto's selection panel shows them.
    """
    events: list[dict] = []
    for rank in tracer.ranks:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        for span in tracer.spans_for(rank):
            args: dict = {}
            if span.level is not None:
                args["level"] = span.level
            args.update(span.meta)
            event = {
                "name": span.phase,
                "cat": "bfs",
                "pid": pid,
                "tid": rank,
                "ts": span.t_start * _US,
                "args": args,
            }
            if span.instant:
                event["ph"] = "i"
                event["s"] = "t"
            else:
                event["ph"] = "X"
                event["dur"] = span.duration * _US
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, tracer: Tracer, pid: int = 0) -> Path:
    """Write :func:`chrome_trace` JSON to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer, pid=pid)) + "\n")
    return path


def _stringify_levels(by_level: dict) -> dict:
    """JSON object keys must be strings; sort numerically first."""
    return {str(level): dict(kinds) for level, kinds in sorted(by_level.items())}


def run_report(result, tracer: Tracer | None = None) -> dict:
    """Build the machine-readable run report of one BFS traversal.

    ``result`` is a :class:`~repro.core.runner.BFSResult`; ``tracer``
    defaults to the one ``run_bfs`` stored in ``result.meta["tracer"]``.
    Without a tracer the report still carries config, stats and volumes —
    only the span-derived sections (``phases``/``levels``/``comm_comp``/
    ``imbalance``) are empty.
    """
    if tracer is None:
        tracer = result.meta.get("tracer")
    meta = result.meta
    timed = result.stats is not None and result.time_total > 0
    report: dict = {
        "schema": REPORT_SCHEMA,
        "graph": {
            # shape[0] not size: batched-query results carry (n, batch)
            # lane columns, and n must stay the vertex count.
            "n": int(result.levels.shape[0]),
            "name": meta.get("graph"),
            "m_traversed": int(result.m_traversed),
            "nlevels": int(result.nlevels),
            "source": int(result.source),
        },
        "machine": meta.get("machine"),
        "algorithm": result.algorithm,
        "nranks": int(result.nranks),
        "threads": int(result.threads),
        "config": {
            "kernel": meta.get("kernel"),
            "dedup_sends": meta.get("dedup_sends"),
            "codec": meta.get("codec"),
            "sieve": meta.get("sieve"),
            "vector_dist": meta.get("vector_dist"),
            "dirop_alpha": meta.get("dirop_alpha"),
            "dirop_beta": meta.get("dirop_beta"),
        },
        "time": {
            "total": result.time_total,
            "comm": result.time_comm,
            "comp": result.time_comp,
        },
        "gteps": result.gteps() if timed else None,
        "faults": meta.get("faults"),
        "query": None,
        "metrics": None,
        "comm": None,
        "phases": {},
        "levels": [],
        "comm_comp": None,
        "imbalance": [],
    }
    batch = getattr(result, "batch", None)
    if batch is not None:
        report["graph"]["batch"] = int(batch)
    # Batched-query runs (QueryResult) carry their workload metrics in a
    # first-class section so perf-diff/trajectory can gate on throughput.
    kind = getattr(result, "kind", None)
    if kind is not None:
        report["query"] = {
            "kind": kind,
            "batch": int(batch) if batch is not None else None,
            "queries_per_second": result.queries_per_second() if timed else None,
        }
    registry = meta.get("metrics")
    if registry is not None:
        report["metrics"] = registry.snapshot()
    if result.stats is not None:
        summary = result.stats.summary()
        summary["words_by_level"] = _stringify_levels(summary["words_by_level"])
        report["comm"] = summary
    if tracer is not None and tracer.nranks:
        path = critical_path(tracer)
        report["phases"] = path.phase_totals()
        report["levels"] = [
            {
                "level": lc.level,
                "duration": lc.duration,
                "critical_rank": lc.rank,
                "bounding_phase": lc.bounding_phase,
                "phases": dict(lc.phases),
            }
            for lc in path.levels
        ]
        report["comm_comp"] = comm_comp_summary(tracer)
        report["imbalance"] = [
            {
                "level": im.level,
                "phase": im.phase,
                "max": im.max_seconds,
                "mean": im.mean_seconds,
                "straggler": im.straggler,
                "imbalance": im.imbalance,
            }
            for im in load_imbalance(tracer)
        ]
    return report


def write_run_report(path: str | Path, report: dict) -> Path:
    """Write a run report dict as indented JSON to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, allow_nan=False) + "\n")
    return path


def load_run_report(path: str | Path) -> dict:
    """Read a run report back, checking the schema tag."""
    report = json.loads(Path(path).read_text())
    schema = report.get("schema")
    if schema not in _ACCEPTED_SCHEMAS:
        raise ValueError(
            f"{path}: not a run report (schema {schema!r}, "
            f"expected one of {sorted(_ACCEPTED_SCHEMAS)})"
        )
    return report


def validate_chrome_trace(trace: dict) -> None:
    """Sanity-check a :func:`chrome_trace` object against the format.

    Raises ``ValueError`` on a malformed trace: missing ``traceEvents``,
    events without ``ph``/``pid``/``tid``, complete (``"X"``) events
    without ``ts``/``dur``, instant (``"i"``) events without ``ts`` or a
    scope, non-finite timestamps, or malformed span metadata — a
    ``level`` arg that is not a non-negative integer, or a query span's
    ``lanes`` arg outside ``[1, 64]`` (the uint64 lane-word capacity of
    ``msbfs-1d``).  Used by the tests and the CI perf-gate/telemetry
    jobs before uploading artifacts.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace has no traceEvents")
    for event in events:
        for key in ("ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"trace event missing {key!r}: {event}")
        if event["ph"] == "X":
            for key in ("name", "ts", "dur"):
                if key not in event:
                    raise ValueError(f"complete event missing {key!r}: {event}")
            if not (math.isfinite(event["ts"]) and math.isfinite(event["dur"])):
                raise ValueError(f"non-finite timestamps: {event}")
            if event["dur"] < 0:
                raise ValueError(f"negative duration: {event}")
        elif event["ph"] == "i":
            for key in ("name", "ts"):
                if key not in event:
                    raise ValueError(f"instant event missing {key!r}: {event}")
            if not math.isfinite(event["ts"]) or event["ts"] < 0:
                raise ValueError(f"bad instant timestamp: {event}")
            if event.get("s") not in ("t", "p", "g"):
                raise ValueError(f"instant event without a valid scope: {event}")
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        level = args.get("level")
        if level is not None and (not isinstance(level, int) or level < 0):
            raise ValueError(f"span with non-integer level: {event}")
        lanes = args.get("lanes")
        if lanes is not None and (
            not isinstance(lanes, int) or not 1 <= lanes <= 64
        ):
            raise ValueError(f"query span with lanes outside [1, 64]: {event}")
