"""Trace analysis: critical paths, load imbalance, comm/comp decomposition.

All three analyses consume a populated :class:`~repro.obs.tracer.Tracer`
and exploit the structure the BFS instrumentation guarantees:

* every rank opens exactly one depth-0 ``"level"`` span per BFS level,
  and the level's trailing ``sync`` collective aligns all ranks to the
  same completion time — so level boundaries are global;
* depth-1 phase spans tile each level span (whatever they miss is
  reported as the ``"untraced"`` residual), so per-level phase times sum
  *exactly* to the level duration;
* communication spans carry collective names (:data:`COMM_PHASES`), so
  comm vs computation time can be split at any nesting depth.

:func:`critical_path` therefore reconstructs the run end-to-end: init
time (everything before level 1) plus per-level critical-rank phase
decompositions that sum to the modeled makespan — the programmatic
equivalent of the paper's Figure 6/8 per-phase breakdowns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.tracer import Span, Tracer

#: Span phases that represent time inside communication primitives.  The
#: channel/algorithm instrumentation names comm spans after the underlying
#: collective, so membership here is the comm/comp classifier.
COMM_PHASES = frozenset(
    {"alltoallv", "allgatherv", "allreduce", "transpose", "exchange", "bcast"}
)

#: Phase name used for the part of a level span not covered by any
#: depth-1 child (loop bookkeeping, span-free charges).
UNTRACED = "untraced"


@dataclass
class LevelCritical:
    """Critical-path record of one BFS level.

    ``rank`` is the straggler that bounded the level (latest arrival at
    the level's trailing sync — or, without a sync span, the latest end of
    its last non-sync phase).  ``phases`` maps that rank's depth-1 phase
    names to seconds and includes the :data:`UNTRACED` residual, so
    ``sum(phases.values()) == duration`` exactly.
    """

    level: int
    t_start: float
    t_end: float
    rank: int
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def bounding_phase(self) -> str:
        """The largest phase of the critical rank (straggler attribution)."""
        return max(self.phases, key=lambda k: self.phases[k]) if self.phases else UNTRACED


@dataclass
class CriticalPath:
    """Whole-run critical path: init + per-level critical decompositions."""

    init: float
    levels: list[LevelCritical]

    @property
    def total(self) -> float:
        """Modeled seconds accounted for (must match the run makespan)."""
        return self.init + sum(lc.duration for lc in self.levels)

    def phase_totals(self) -> dict[str, float]:
        """Critical-rank seconds per phase summed over levels (Fig 6/8)."""
        totals: dict[str, float] = {}
        if self.init:
            totals["init"] = self.init
        for lc in self.levels:
            for phase, seconds in lc.phases.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals


def _level_spans(tracer: Tracer) -> dict[int, dict[int, Span]]:
    """``{level: {rank: level-span}}`` for every rank's depth-0 spans."""
    table: dict[int, dict[int, Span]] = {}
    for rank in tracer.ranks:
        for span in tracer.spans_for(rank):
            if span.phase == "level" and span.depth == 0 and span.level is not None:
                table.setdefault(span.level, {})[rank] = span
    return table


def _children(tracer: Tracer, rank: int, parent_span: Span) -> list[Span]:
    spans = tracer.spans_for(rank)
    # Identity lookup: untimed runs make zero-duration spans compare equal.
    parent_idx = next(i for i, s in enumerate(spans) if s is parent_span)
    return [s for s in spans if s.parent == parent_idx and not s.instant]


def critical_path(tracer: Tracer) -> CriticalPath:
    """Extract the run's critical path from its level structure.

    For each level the critical (straggler) rank is the one arriving last
    at the level's ``sync`` phase; its depth-1 phase durations — plus the
    ``untraced`` residual — decompose the level.  Because the trailing
    collective aligns every rank's level end, summing level durations and
    the pre-level-1 init time reproduces the run's modeled makespan
    exactly (see :func:`check_critical_path`).
    """
    by_level = _level_spans(tracer)
    if not by_level:
        return CriticalPath(init=0.0, levels=[])
    levels = sorted(by_level)
    first = by_level[levels[0]]
    init = min(span.t_start for span in first.values())
    out: list[LevelCritical] = []
    for level in levels:
        ranks = by_level[level]
        t_start = min(s.t_start for s in ranks.values())
        t_end = max(s.t_end for s in ranks.values())
        # Straggler: latest arrival at the trailing sync (i.e. the rank
        # that kept everyone waiting).  Ranks missing a sync span fall
        # back to their level-span end.
        def arrival(item) -> tuple[float, float]:
            rank, span = item
            for child in _children(tracer, rank, span):
                if child.phase == "sync":
                    return (child.t_start, span.t_end)
            return (span.t_end, span.t_end)

        crit_rank, crit_span = max(ranks.items(), key=arrival)
        phases: dict[str, float] = {}
        covered = 0.0
        for child in _children(tracer, crit_rank, crit_span):
            phases[child.phase] = phases.get(child.phase, 0.0) + child.duration
            covered += child.duration
        residual = crit_span.duration - covered
        if phases:
            phases[UNTRACED] = residual
        else:
            phases[UNTRACED] = crit_span.duration
        out.append(
            LevelCritical(
                level=level,
                t_start=t_start,
                t_end=t_end,
                rank=crit_rank,
                phases=phases,
            )
        )
    return CriticalPath(init=init, levels=out)


def check_critical_path(
    tracer: Tracer, time_total: float, rel_tol: float = 1e-6
) -> CriticalPath:
    """Validate that the critical path accounts for the whole run.

    Returns the path; raises ``ValueError`` when its total disagrees with
    the run's modeled ``time_total`` beyond ``rel_tol`` (with an absolute
    floor for untimed runs, whose spans are all zero-duration).
    """
    path = critical_path(tracer)
    if not math.isclose(path.total, time_total, rel_tol=rel_tol, abs_tol=1e-15):
        raise ValueError(
            f"critical path sums to {path.total!r} but the run's modeled "
            f"total is {time_total!r} (rel_tol={rel_tol})"
        )
    return path


@dataclass
class PhaseImbalance:
    """Cross-rank spread of one phase at one level."""

    level: int
    phase: str
    max_seconds: float
    mean_seconds: float
    straggler: int  # rank with the max

    @property
    def imbalance(self) -> float:
        """max/mean — 1.0 is perfectly balanced (paper's Figure 4 metric)."""
        if self.mean_seconds <= 0:
            return 1.0
        return self.max_seconds / self.mean_seconds


def load_imbalance(tracer: Tracer) -> list[PhaseImbalance]:
    """Per-level, per-phase max/mean across ranks with straggler ranks.

    Only depth-1 phases (the per-level tiling) are compared; a rank that
    never entered a phase contributes 0 seconds, so structurally skewed
    schedules (e.g. the diagonal-only vector distribution) show up as
    large ``imbalance`` factors.
    """
    by_level = _level_spans(tracer)
    nranks = max(tracer.nranks, 1)
    out: list[PhaseImbalance] = []
    for level in sorted(by_level):
        per_phase: dict[str, dict[int, float]] = {}
        for rank, span in by_level[level].items():
            for child in _children(tracer, rank, span):
                bucket = per_phase.setdefault(child.phase, {})
                bucket[rank] = bucket.get(rank, 0.0) + child.duration
        for phase in sorted(per_phase):
            durations = per_phase[phase]
            straggler = max(durations, key=lambda r: (durations[r], r))
            out.append(
                PhaseImbalance(
                    level=level,
                    phase=phase,
                    max_seconds=max(durations.values()),
                    mean_seconds=sum(durations.values()) / nranks,
                    straggler=straggler,
                )
            )
    return out


def _comm_seconds(tracer: Tracer, rank: int, level_span: Span) -> float:
    """Seconds rank spent inside comm-named spans within one level span."""
    spans = tracer.spans_for(rank)
    lo, hi = level_span.t_start, level_span.t_end
    return sum(
        s.duration
        for s in spans
        if s.phase in COMM_PHASES
        and not s.instant
        and s.t_start >= lo - 1e-18
        and s.t_end <= hi + 1e-18
    )


def comm_comp_summary(tracer: Tracer) -> dict:
    """Per-level and total communication vs computation decomposition.

    Communication is time inside :data:`COMM_PHASES` spans (including
    synchronization waits, matching the paper's "time in MPI" metric);
    computation is the rest of the level.  ``max`` entries follow the
    slowest rank of each level, ``mean`` averages all ranks — together
    they reproduce the Figure 6/8 stacked decompositions programmatically.
    """
    by_level = _level_spans(tracer)
    nranks = max(tracer.nranks, 1)
    levels = []
    total_comm_max = total_comp_max = 0.0
    for level in sorted(by_level):
        ranks = by_level[level]
        comm = {rank: _comm_seconds(tracer, rank, span) for rank, span in ranks.items()}
        comp = {rank: span.duration - comm[rank] for rank, span in ranks.items()}
        comm_max = max(comm.values(), default=0.0)
        comp_max = max(comp.values(), default=0.0)
        levels.append(
            {
                "level": level,
                "comm_max": comm_max,
                "comp_max": comp_max,
                "comm_mean": sum(comm.values()) / nranks,
                "comp_mean": sum(comp.values()) / nranks,
            }
        )
        total_comm_max += comm_max
        total_comp_max += comp_max
    return {
        "levels": levels,
        "totals": {"comm_max": total_comm_max, "comp_max": total_comp_max},
    }
