"""Command-line entry point: ``repro-bench`` / ``python -m repro``.

Regenerates the paper's tables and figures::

    repro-bench list                 # show available experiments
    repro-bench fig5                 # run one experiment
    repro-bench all                  # run everything
    repro-bench all --quick          # smaller graphs / fewer ranks
    repro-bench fig7 -o results/     # also write results/<id>.txt

and runs the Graph 500 benchmark flow::

    repro-bench graph500 --scale 15 --algorithm 2d-hybrid --machine hopper

and the batched-query flow (the ``repro.query`` algorithm zoo)::

    repro-bench query --scale 13 --batch 64 --machine hopper
    repro-bench query --algorithm cc --scale 13 --machine hopper

With ``--trace-out``/``--report-out`` the graph500 and query flows
additionally write a Chrome ``trace_event`` file (open in Perfetto) and
the machine-readable run report of the first search; reports feed the
perf-regression gate and the cross-run trajectory analyzer::

    repro-bench graph500 --scale 13 --report-out base.json
    repro-bench perf-diff base.json candidate.json --threshold 0.05
    repro-bench trajectory benchmarks/ --candidate candidate.json

``--events-out``/``--flamegraph-out``/``--metrics-out`` add the JSONL
event log, the collapsed-stack flamegraph (speedscope/flamegraph.pl)
and the OpenMetrics counter exposition of the same search.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Reproduce the tables and figures of Buluc & Madduri, "
            "'Parallel Breadth-First Search on Distributed Memory Systems' "
            "(SC 2011)."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (see 'list'), 'all', 'list', 'graph500', or "
            "'query'"
        ),
    )
    group = parser.add_argument_group("graph500 options")
    group.add_argument("--scale", type=int, default=14)
    group.add_argument("--edgefactor", type=float, default=16)
    group.add_argument("--algorithm", default="2d")
    group.add_argument("--nprocs", type=int, default=16)
    group.add_argument("--machine", default="hopper")
    group.add_argument("--nbfs", type=int, default=8)
    group.add_argument("--seed", type=int, default=0)
    group.add_argument(
        "--codec",
        default="raw",
        choices=["raw", "delta-varint", "bitmap", "auto"],
        help=(
            "wire format for the exchange buffers; the alpha-beta model "
            "prices the encoded size, so compression is modeled speedup "
            "(default: raw)"
        ),
    )
    group.add_argument(
        "--sieve",
        action="store_true",
        help=(
            "drop candidates whose target the sender already shipped at an "
            "earlier level (exact; parents stay bit-identical)"
        ),
    )
    group.add_argument(
        "--dirop-alpha",
        type=float,
        default=None,
        help=(
            "dirop top-down->bottom-up threshold: switch when frontier "
            "edges exceed 1/alpha of the unexplored edges (default: the "
            "tuned DIROP_ALPHA)"
        ),
    )
    group.add_argument(
        "--dirop-beta",
        type=float,
        default=None,
        help=(
            "dirop bottom-up->top-down threshold: switch back when the "
            "frontier shrinks below n/beta vertices (default: DIROP_BETA)"
        ),
    )
    group.add_argument(
        "--runtime",
        default=None,
        choices=["threads", "sequential", "processes"],
        help=(
            "execution backend for the SPMD ranks: threads (default), "
            "sequential (deterministic round-robin, no timeouts), or "
            "processes (forked workers, real parallelism); modeled "
            "outputs are bit-identical across backends "
            "(default: the REPRO_RUNTIME policy)"
        ),
    )
    group.add_argument(
        "--spmd-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "seconds a rank may wait at a rendezvous before the run "
            "aborts as deadlocked (default: REPRO_SPMD_TIMEOUT or 600)"
        ),
    )
    group.add_argument(
        "--fault-spec",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault schedule, ';'-separated "
            "kind:key=value,... events, e.g. "
            "'crash:rank=1,level=3;timeout:level=2;seed=7' "
            "(kinds: crash, timeout, corrupt, delay)"
        ),
    )
    group.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "snapshot traversal state every N levels so an injected crash "
            "recovers from the last complete checkpoint (cost-modeled; "
            "default: checkpointing off)"
        ),
    )
    group.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="K",
        help=(
            "transient-fault retry budget per collective before the run "
            "aborts (default: 3)"
        ),
    )
    group.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "write a Chrome trace_event JSON of the first search "
            "(open in Perfetto / chrome://tracing)"
        ),
    )
    group.add_argument(
        "--report-out",
        default=None,
        metavar="FILE",
        help=(
            "write the machine-readable run report of the first search "
            "(input to 'repro-bench perf-diff')"
        ),
    )
    group.add_argument(
        "--events-out",
        default=None,
        metavar="FILE",
        help=(
            "write the schema-versioned JSONL event log of the first "
            "search (run/level/span/fault/checkpoint/metric events, one "
            "JSON object per line, ordered by virtual time)"
        ),
    )
    group.add_argument(
        "--flamegraph-out",
        default=None,
        metavar="FILE",
        help=(
            "write a collapsed-stack profile of the first search "
            "(virtual self-time in microseconds; load in speedscope or "
            "flamegraph.pl)"
        ),
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write the metrics registry of the first search as "
            "OpenMetrics text exposition"
        ),
    )
    qgroup = parser.add_argument_group("query options")
    qgroup.add_argument(
        "--batch",
        type=int,
        default=64,
        metavar="K",
        help=(
            "sources per bit-parallel traversal (1..64 lanes of one uint64 "
            "word) for msbfs-1d/sssp-delta, or the landmark count for "
            "landmark (default: 64)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="downscale graphs/ranks for a fast smoke run",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render the experiment as an ASCII chart when it has one",
    )
    parser.add_argument(
        "-o",
        "--output-dir",
        default=None,
        help="directory to write <experiment>.txt result files into",
    )
    return parser


def build_perf_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench perf-diff",
        description=(
            "Compare two run reports (written with --report-out) and fail "
            "on performance regression."
        ),
    )
    parser.add_argument("baseline", help="baseline run-report JSON")
    parser.add_argument("candidate", help="candidate run-report JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="allowed relative slowdown on gated metrics (default: 0.05)",
    )
    return parser


def _run_perf_diff(argv: list[str]) -> int:
    from repro.obs.regress import DEFAULT_THRESHOLD, perf_diff

    args = build_perf_diff_parser().parse_args(argv)
    threshold = DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    try:
        diff = perf_diff(args.baseline, args.candidate, threshold=threshold)
    except (OSError, ValueError) as exc:
        print(f"perf-diff: {exc}", file=sys.stderr)
        return 2
    print(diff.render())
    return 0 if diff.ok else 1


def build_trajectory_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench trajectory",
        description=(
            "Aggregate a series of committed run reports (BENCH_*.json) "
            "into per-metric time series, gate the newest point against "
            "the trajectory's median, and report changepoints."
        ),
    )
    parser.add_argument(
        "baselines",
        nargs="+",
        help=(
            "run-report files, directories (their BENCH_*.json, sorted by "
            "name) or glob patterns, oldest first"
        ),
    )
    parser.add_argument(
        "--candidate",
        default=None,
        metavar="FILE",
        help=(
            "fresh run report appended as the newest point; this is what "
            "the gate judges (default: the series' last point)"
        ),
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="allowed relative drift on gated metrics (default: 0.05)",
    )
    parser.add_argument(
        "--markdown-out",
        default=None,
        metavar="FILE",
        help="also write the dashboard as GitHub-flavored markdown",
    )
    parser.add_argument(
        "--html-out",
        default=None,
        metavar="FILE",
        help="also write the dashboard as a self-contained HTML page",
    )
    return parser


def _run_trajectory(argv: list[str]) -> int:
    from repro.obs.regress import DEFAULT_THRESHOLD
    from repro.obs.trajectory import analyze_trajectory

    args = build_trajectory_parser().parse_args(argv)
    threshold = DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    try:
        trajectory = analyze_trajectory(
            args.baselines, candidate=args.candidate, threshold=threshold
        )
    except (OSError, ValueError) as exc:
        print(f"trajectory: {exc}", file=sys.stderr)
        return 2
    print(trajectory.render())
    from pathlib import Path

    if args.markdown_out:
        path = Path(args.markdown_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(trajectory.render_markdown())
        print(f"wrote {path}")
    if args.html_out:
        path = Path(args.html_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(trajectory.render_html())
        print(f"wrote {path}")
    return 0 if trajectory.ok else 1


def _obs_handles(args):
    """Tracer/metrics-registry pair implied by the requested outputs.

    Spans feed the trace/report/events/flamegraph files; the metrics
    registry feeds the OpenMetrics file and the report/event-log
    snapshots.  Neither costs anything when no output asks for it.
    """
    tracer = registry = None
    if args.trace_out or args.report_out or args.events_out or args.flamegraph_out:
        from repro.obs import Tracer

        tracer = Tracer()
    if args.metrics_out or args.report_out or args.events_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    return tracer, registry


def _write_obs_artifacts(args, result, tracer, registry) -> None:
    """Write every requested observability artifact of one run."""
    if args.trace_out:
        from repro.obs import write_chrome_trace

        print(f"wrote {write_chrome_trace(args.trace_out, tracer)}")
    if args.report_out:
        from repro.obs import run_report, write_run_report

        print(f"wrote {write_run_report(args.report_out, run_report(result))}")
    if args.events_out:
        from repro.obs import write_events_jsonl

        count = write_events_jsonl(args.events_out, result)
        print(f"wrote {args.events_out} ({count} events)")
    if args.flamegraph_out:
        from repro.obs import write_flamegraph

        count = write_flamegraph(args.flamegraph_out, result)
        print(f"wrote {args.flamegraph_out} ({count} stacks)")
    if args.metrics_out:
        from pathlib import Path

        path = Path(args.metrics_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(registry.render_openmetrics())
        print(f"wrote {path}")


def _run_query_flow(args) -> int:
    """Run one batched query (``repro.query`` zoo) from the CLI."""
    from repro.bench.harness import pick_sources
    from repro.core.runner import ALGORITHMS
    from repro.graphs import rmat_graph
    from repro.query import run_query

    # "2d" is the graph500 default; the query flow's is the MS-BFS.
    algorithm = "msbfs-1d" if args.algorithm == "2d" else args.algorithm
    spec = ALGORITHMS.get(algorithm)
    if spec is None or spec.kind == "bfs":
        kinds = sorted(
            name for name, s in ALGORITHMS.items() if s.kind != "bfs"
        )
        print(
            f"query: {algorithm!r} is not a batched query algorithm; "
            f"known: {kinds}",
            file=sys.stderr,
        )
        return 2

    tracer, registry = _obs_handles(args)
    graph = rmat_graph(args.scale, args.edgefactor, seed=args.seed)
    kwargs: dict = {}
    if spec.kind in ("msbfs", "sssp"):
        kwargs["sources"] = pick_sources(graph, args.batch, seed=args.seed + 1)
    elif spec.kind == "landmark":
        kwargs["landmarks"] = args.batch
    result = run_query(
        graph,
        algorithm=algorithm,
        nprocs=args.nprocs,
        machine=args.machine,
        codec=args.codec,
        trace=True,
        tracer=tracer,
        metrics=registry,
        faults=args.fault_spec,
        checkpoint_every=args.checkpoint_every,
        max_retries=args.max_retries,
        runtime=args.runtime,
        spmd_timeout=args.spmd_timeout,
        validate=True,
        **kwargs,
    )
    print(
        f"{algorithm} ({result.kind}) on {graph.name}: "
        f"batch={result.batch} nlevels={result.nlevels} "
        f"ranks={result.nranks}"
    )
    print(
        f"  modeled time {result.time_total * 1e3:.3f} ms  "
        f"({result.queries_per_second():.0f} queries/s, "
        f"{result.gteps():.3f} GTEPS)"
    )
    if result.kind == "cc":
        print(f"  components: {result.meta['components']}")
    _write_obs_artifacts(args, result, tracer, registry)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # The main parser's positional would swallow the report paths, so the
    # perf-diff/trajectory subcommands are dispatched before it.
    if argv and argv[0] == "perf-diff":
        return _run_perf_diff(argv[1:])
    if argv and argv[0] == "trajectory":
        return _run_trajectory(argv[1:])
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for exp_id, (_fn, desc) in EXPERIMENTS.items():
            print(f"{exp_id.ljust(width)}  {desc}")
        return 0

    if args.experiment == "graph500":
        from repro.graph500 import run_graph500

        tracer, registry = _obs_handles(args)
        result = run_graph500(
            scale=args.scale,
            edgefactor=args.edgefactor,
            nprocs=args.nprocs,
            algorithm=args.algorithm,
            machine=args.machine,
            nbfs=args.nbfs,
            seed=args.seed,
            codec=args.codec,
            sieve=args.sieve,
            dirop_alpha=args.dirop_alpha,
            dirop_beta=args.dirop_beta,
            tracer=tracer,
            metrics=registry,
            faults=args.fault_spec,
            checkpoint_every=args.checkpoint_every,
            max_retries=args.max_retries,
            runtime=args.runtime,
            spmd_timeout=args.spmd_timeout,
        )
        print(result.report())
        # Observability artifacts describe the first (traced) search.
        _write_obs_artifacts(args, result.searches[0], tracer, registry)
        return 0

    if args.experiment == "query":
        return _run_query_flow(args)

    if args.experiment == "all":
        exp_ids = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        exp_ids = [args.experiment]
    else:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2

    for exp_id in exp_ids:
        start = time.perf_counter()
        table = run_experiment(exp_id, quick=args.quick)
        elapsed = time.perf_counter() - start
        print(table.render())
        chart = None
        if args.plot or args.output_dir:
            from repro.bench.plotting import render_figure

            chart = render_figure(table, exp_id)
        if args.plot and chart:
            print()
            print(chart)
        print(f"[{exp_id} finished in {elapsed:.1f}s]\n")
        if args.output_dir:
            path = table.save(args.output_dir, exp_id)
            print(f"wrote {path}")
            if chart:
                from pathlib import Path

                chart_path = Path(args.output_dir) / f"{exp_id}.chart.txt"
                chart_path.write_text(chart + "\n")
                print(f"wrote {chart_path}")
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
