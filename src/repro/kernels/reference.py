"""Pure-python reference implementations of the hot-path kernels.

The executable specification of :mod:`repro.kernels`: every kernel is a
plain per-element python loop with no vectorization tricks, so its
correctness is auditable by inspection.  The numpy backend is
differentially tested against this module, and this module is what runs
when numpy is not installed — it imports cleanly without numpy and
operates on any indexable sequence, returning plain lists in that case.

When numpy *is* importable (the usual case: the rest of the simulator
needs it), outputs are coerced to numpy arrays with the same dtypes the
vectorized backend produces, so full traversals under
``REPRO_KERNELS=python`` stay bit-identical to the numpy backend —
parents, levels, modeled times, wire words and trace spans included.

64-bit semantics are emulated explicitly (``_wrap64`` / ``_MASK64``):
the vectorized kernels compute in ``int64``/``uint64`` with wraparound,
and the reference must produce the same bits for adversarial inputs
near ``2**63``.
"""

from __future__ import annotations

try:  # numpy is optional here: used only to coerce outputs.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the CI numpy-absent smoke
    _np = None

#: A 64-bit value needs at most ceil(64 / 7) = 10 LEB128 bytes.
MAX_VARINT_BYTES = 10

_MASK64 = (1 << 64) - 1


def _wrap64(value):
    """Reinterpret an arbitrary python int as a signed 64-bit value."""
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def _ints(seq):
    """Materialize any indexable sequence as a list of python ints."""
    return [int(x) for x in seq]


def _uints(seq):
    """As :func:`_ints` but reinterpreting each value as unsigned 64-bit."""
    return [int(x) & _MASK64 for x in seq]


def _i64(values):
    return _np.asarray(values, dtype=_np.int64) if _np is not None else values


def _u64(values):
    return _np.asarray(values, dtype=_np.uint64) if _np is not None else values


def _u8(values):
    return _np.asarray(values, dtype=_np.uint8) if _np is not None else values


def _bools(values):
    if _np is not None:
        return _np.asarray(values, dtype=bool)
    return [bool(v) for v in values]


def dedup_max(targets, parents):
    best: dict = {}
    for t, p in zip(_ints(targets), _ints(parents)):
        cur = best.get(t)
        if cur is None or p > cur:
            best[t] = p
    keys = sorted(best)
    return _i64(keys), _i64([best[k] for k in keys])


def reduce_runs(keys, values, op):
    if op == "max":
        return dedup_max(keys, values)
    signed = op != "or"
    vals = _ints(values) if signed else _uints(values)
    acc: dict = {}
    for k, v in zip(_ints(keys), vals):
        cur = acc.get(k)
        if cur is None:
            acc[k] = v
        elif op == "min":
            acc[k] = min(cur, v)
        else:
            acc[k] = cur | v
    out_keys = sorted(acc)
    out_vals = [acc[k] for k in out_keys]
    return _i64(out_keys), (_i64(out_vals) if signed else _u64(out_vals))


def scatter_reduce(dense, positions, values, op):
    signed = op != "or"
    vals = _ints(values) if signed else _uints(values)
    for p, v in zip(_ints(positions), vals):
        cur = int(dense[p])
        if op == "max":
            if v > cur:
                dense[p] = v
        elif op == "min":
            if v < cur:
                dense[p] = v
        else:
            dense[p] = (cur & _MASK64) | v


def bucket_by_owner(owners, nbuckets, *arrays):
    owners = _ints(owners)
    if owners and (min(owners) < 0 or max(owners) >= nbuckets):
        raise ValueError(f"owners out of range [0, {nbuckets})")
    buckets: list[list[int]] = [[] for _ in range(nbuckets)]
    for i, owner in enumerate(owners):
        buckets[owner].append(i)

    def _gather(a, idx):
        picked = [a[i] for i in idx]
        if _np is None:
            return picked
        dtype = a.dtype if isinstance(a, _np.ndarray) else _np.int64
        return _np.asarray(picked, dtype=dtype)

    grouped = [tuple(_gather(a, idx) for a in arrays) for idx in buckets]
    counts = _i64([len(idx) for idx in buckets])
    return grouped, counts


def pack_pairs(vertices, parents):
    vertices = _ints(vertices)
    parents = _ints(parents)
    if len(vertices) != len(parents):
        raise ValueError("vertices/parents must be equal length")
    out = []
    for v, p in zip(vertices, parents):
        out.append(v)
        out.append(p)
    return _i64(out)


def unpack_pairs(buf):
    buf = _ints(buf)
    if len(buf) % 2:
        raise ValueError(f"pair buffer has odd length {len(buf)}")
    return _i64(buf[0::2]), _i64(buf[1::2])


def _bitmap_nwords(nbits):
    return (nbits + 63) // 64


def pack_bitmap(vertices, lo, nbits):
    words = [0] * _bitmap_nwords(nbits)
    for v in _ints(vertices):
        bit = v - lo
        words[bit >> 6] |= 1 << (bit & 63)
    return _u64(words)


def unpack_bitmap(words, nbits):
    words = _uints(words)
    return _bools(
        [(words[i >> 6] >> (i & 63)) & 1 for i in range(nbits)]
    )


def popcount(words):
    return _i64([bin(w).count("1") for w in _uints(words)])


def last_hit_scan(hits, starts, counts):
    hits = [bool(h) for h in hits]
    out = []
    for start, count in zip(_ints(starts), _ints(counts)):
        last = -1
        for j in range(start + count - 1, start - 1, -1):
            if hits[j]:
                last = j
                break
        out.append(last)
    return _i64(out)


def lane_prune(targets, sources, words, nlanes):
    targets = _ints(targets)
    sources = _ints(sources)
    words = _uints(words)
    n = len(targets)
    if n == 0:
        return _i64([]), _i64([]), _u64([])
    order = sorted(range(n), key=lambda i: (targets[i], -sources[i]))
    lane_mask = (1 << nlanes) - 1
    out_t, out_s, out_w = [], [], []
    seen = 0
    prev_target = None
    for i in order:
        t = targets[i]
        if t != prev_target:
            prev_target = t
            seen = 0
        lanes = words[i] & lane_mask
        if lanes & ~seen & lane_mask:
            out_t.append(t)
            out_s.append(sources[i])
            out_w.append(words[i])
        seen |= lanes
    return _i64(out_t), _i64(out_s), _u64(out_w)


def unique_sorted(values):
    return _i64(sorted(set(_ints(values))))


def _varint_size(unsigned):
    size = 1
    while size < MAX_VARINT_BYTES and unsigned >= (1 << (7 * size)):
        size += 1
    return size


def varint_sizes(values):
    return _i64([_varint_size(u) for u in _uints(values)])


def varint_encode(values):
    out = []
    for u in _uints(values):
        size = _varint_size(u)
        for j in range(size):
            group = (u >> (7 * j)) & 0x7F
            out.append(group | 0x80 if j < size - 1 else group)
    return _u8(out)


def varint_decode(stream):
    stream = _ints(stream)
    if not stream:
        return _i64([])
    if stream[-1] & 0x80:
        raise ValueError("truncated varint stream: last byte has continuation bit")
    values = []
    cur = 0
    nbytes = 0
    for byte in stream:
        group = byte & 0x7F
        # Shifts past bit 63 wrap exactly like the uint64 vector path.
        cur = (cur | (group << (7 * nbytes))) & _MASK64
        nbytes += 1
        if nbytes > MAX_VARINT_BYTES:
            raise ValueError(
                f"varint longer than {MAX_VARINT_BYTES} bytes in stream"
            )
        if not byte & 0x80:
            values.append(_wrap64(cur))
            cur = 0
            nbytes = 0
    return _i64(values)


def delta_encode(sorted_values):
    sorted_values = _ints(sorted_values)
    out = []
    prev = 0
    for i, v in enumerate(sorted_values):
        out.append(_wrap64(v if i == 0 else v - prev))
        prev = v
    return _i64(out)


def delta_decode(deltas):
    out = []
    acc = 0
    for d in _uints(deltas):
        acc = (acc + d) & _MASK64
        out.append(_wrap64(acc))
    return _i64(out)
