"""Backend-switchable hot-path kernels (pure-python reference + numpy).

Every per-element inner loop the traversals are built from lives here,
as a *pair* of implementations behind one dispatching facade:

* :mod:`repro.kernels.numpy_backend` — the vectorized production
  kernels (one numpy pass per byte position / lane / run, never one per
  value); this is what lets the simulator run R-MAT scale 18+ recipes
  in CI instead of topping out near scale 16;
* :mod:`repro.kernels.reference` — pure-python implementations with no
  hard numpy dependency, the executable specification the numpy kernels
  are differentially tested against
  (``tests/test_kernels_differential.py``) and the graceful fallback
  when numpy is not installed.

**The bit-identity contract.**  For any input, both backends return the
same values with the same dtypes (the reference backend coerces its
python lists back to numpy arrays whenever numpy is importable).  The
traversal results — parents, levels, modeled times, wire words, trace
spans — are therefore identical under either backend; only wall-clock
changes.  ``tests/test_property_kernels.py`` locks this in for every
registered algorithm, and the golden fixtures of ``tests/golden/`` pin
the numpy backend to the pre-refactor behaviour bit for bit.

**Choosing a backend.**  The ``REPRO_KERNELS`` environment variable
selects ``"numpy"`` (the default) or ``"python"`` at process start;
:func:`set_backend` / :func:`use_backend` switch at runtime (the tests'
mechanism).  When numpy is missing the facade falls back to the
reference backend — with a warning if numpy was explicitly requested,
silently when it was merely the default.

Adding a kernel pair: implement the same function in both backend
modules, add its name to :data:`KERNELS`, write a dispatching wrapper
below, and register a differential case for it in
``tests/test_kernels_differential.py`` (the coverage meta-test there
fails on any :data:`KERNELS` entry without one).
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

#: Environment variable naming the startup backend.
ENV_VAR = "REPRO_KERNELS"

#: A 64-bit value needs at most ceil(64 / 7) = 10 LEB128 bytes; both
#: backends define the same constant, re-exported here for callers.
MAX_VARINT_BYTES = 10

#: Recognized backend names, preference order.
BACKENDS = ("numpy", "python")

#: Every dispatched kernel, by facade name.  The differential suite and
#: its coverage meta-test iterate this, so a kernel added here without a
#: paired implementation or a differential case fails the suite.
KERNELS = (
    "dedup_max",
    "reduce_runs",
    "scatter_reduce",
    "bucket_by_owner",
    "pack_pairs",
    "unpack_pairs",
    "pack_bitmap",
    "unpack_bitmap",
    "popcount",
    "last_hit_scan",
    "lane_prune",
    "unique_sorted",
    "varint_sizes",
    "varint_encode",
    "varint_decode",
    "delta_encode",
    "delta_decode",
)

_active_name: str | None = None
_active_mod = None


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _resolve_startup_backend() -> str:
    """Apply the ``REPRO_KERNELS`` policy: numpy by default, with fallback."""
    choice = os.environ.get(ENV_VAR, "").strip().lower()
    if choice and choice not in BACKENDS:
        raise ValueError(
            f"{ENV_VAR}={choice!r} is not a kernel backend; "
            f"known: {sorted(BACKENDS)}"
        )
    if choice == "python":
        return "python"
    if _numpy_available():
        return "numpy"
    if choice == "numpy":
        warnings.warn(
            f"{ENV_VAR}=numpy requested but numpy is not importable; "
            "falling back to the pure-python reference kernels",
            RuntimeWarning,
            stacklevel=3,
        )
    return "python"


def _load(name: str):
    if name == "numpy":
        from repro.kernels import numpy_backend as mod
    else:
        from repro.kernels import reference as mod
    return mod


def _mod():
    """The active backend module, resolving the startup policy lazily."""
    global _active_name, _active_mod
    if _active_mod is None:
        _active_name = _resolve_startup_backend()
        _active_mod = _load(_active_name)
    return _active_mod


def active_backend() -> str:
    """Name of the backend kernel calls currently dispatch to."""
    _mod()
    return _active_name


def set_backend(name: str | None) -> str:
    """Switch the kernel backend at runtime.

    ``name`` is ``"numpy"``, ``"python"``, or ``None`` to re-apply the
    ``REPRO_KERNELS`` startup policy.  Requesting ``"numpy"``
    programmatically when numpy is not importable raises ``ImportError``
    (the env-var path falls back instead).  Returns the active name.
    """
    global _active_name, _active_mod
    if name is None:
        _active_name = None
        _active_mod = None
        _mod()
        return _active_name
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; known: {sorted(BACKENDS)}"
        )
    _active_mod = _load(name)
    _active_name = name
    return _active_name


@contextmanager
def use_backend(name: str):
    """Context manager pinning the backend, restoring the previous one."""
    previous = active_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


# -- dispatching facade -------------------------------------------------------
#
# One thin wrapper per kernel; signatures and semantics are documented
# here once, authoritative for both backends.

def dedup_max(targets, parents):
    """Collapse duplicate targets keeping the maximum parent.

    Returns ``(unique targets ascending, max parent per target)`` as
    int64 arrays — the (select, max) rule every algorithm in the repo
    shares, so results are deterministic.
    """
    return _mod().dedup_max(targets, parents)


def reduce_runs(keys, values, op: str):
    """Combine values sharing a key; keys return unique and ascending.

    ``op`` is ``"max"`` (int64), ``"min"`` (int64) or ``"or"``
    (uint64 lane words).  Input order is irrelevant.
    """
    return _mod().reduce_runs(keys, values, op)


def scatter_reduce(dense, positions, values, op: str) -> None:
    """In-place ``dense[positions] (+)= values`` under ``op``.

    The SPA / semiring scatter: ``op`` in ``{"max", "min", "or"}``;
    ``"or"`` is the 64-lane ``uint64`` OR path of the batched
    traversals.  Positions may repeat; the combine is applied per
    occurrence (order-insensitive for these ops).
    """
    return _mod().scatter_reduce(dense, positions, values, op)


def bucket_by_owner(owners, nbuckets: int, *arrays):
    """Group parallel arrays by destination rank (stable counting sort).

    Returns ``(grouped, counts)``: one tuple of sub-arrays per bucket in
    bucket order, plus the int64 per-bucket counts.  Raises
    ``ValueError`` when an owner falls outside ``[0, nbuckets)``.
    """
    return _mod().bucket_by_owner(owners, nbuckets, *arrays)


def pack_pairs(vertices, parents):
    """Interleave (vertex, parent) into one ``[v0, p0, v1, p1, ...]``
    int64 wire buffer; raises ``ValueError`` on length mismatch."""
    return _mod().pack_pairs(vertices, parents)


def unpack_pairs(buf):
    """Inverse of :func:`pack_pairs`; raises ``ValueError`` on odd
    length."""
    return _mod().unpack_pairs(buf)


def pack_bitmap(vertices, lo: int, nbits: int):
    """Pack local vertex ids in ``[lo, lo + nbits)`` into little-endian
    64-bit bitmap words (bit ``v - lo`` set per vertex)."""
    return _mod().pack_bitmap(vertices, lo, nbits)


def unpack_bitmap(words, nbits: int):
    """Inverse of :func:`pack_bitmap`: words -> boolean mask of
    ``nbits`` entries."""
    return _mod().unpack_bitmap(words, nbits)


def popcount(words):
    """Per-word set-bit count of a ``uint64`` array (int64 result)."""
    return _mod().popcount(words)


def last_hit_scan(hits, starts, counts):
    """Last hit position of each run of a concatenated scan, -1 if none.

    ``hits`` is one boolean per scanned candidate (frontier-bitmap
    membership of each adjacency), runs are ``[starts[i], starts[i] +
    counts[i])`` and tile ``hits`` contiguously with ``counts >= 1``.
    Returns the int64 *global* position of each run's last hit — the
    early-exit landing spot of the dirop bottom-up reverse scan, i.e.
    the maximum frontier neighbour of a sorted adjacency list.
    """
    return _mod().last_hit_scan(hits, starts, counts)


def lane_prune(targets, sources, words, nlanes: int):
    """Sender-side lane-dominance prune of (target, source, word) triples.

    Keeps a candidate iff it is the maximum-source contributor of at
    least one lane of its target; output is sorted by (target asc,
    source desc).  Returns ``(targets int64, sources int64, words
    uint64)``.
    """
    return _mod().lane_prune(targets, sources, words, nlanes)


def unique_sorted(values):
    """Sorted unique int64 values (the SPA's touched-index sort)."""
    return _mod().unique_sorted(values)


def varint_sizes(values):
    """LEB128-encoded byte count of each 64-bit value (int64 array)."""
    return _mod().varint_sizes(values)


def varint_encode(values):
    """LEB128-encode 64-bit values into a ``uint8`` stream."""
    return _mod().varint_encode(values)


def varint_decode(stream):
    """Inverse of :func:`varint_encode`; int64 values.  Raises
    ``ValueError`` on truncation or over-length varints."""
    return _mod().varint_decode(stream)


def delta_encode(sorted_values):
    """First value absolute, the rest consecutive differences (int64)."""
    return _mod().delta_encode(sorted_values)


def delta_decode(deltas):
    """Inverse of :func:`delta_encode` with uint64 wraparound semantics
    (matching the vectorized unsigned cumulative sum)."""
    return _mod().delta_decode(deltas)
