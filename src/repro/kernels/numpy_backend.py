"""Vectorized numpy implementations of the hot-path kernels.

The production backend of :mod:`repro.kernels`: every kernel is one or
a few whole-array numpy passes — a pass per byte *position* for the
varints, per *lane* for the prune, per *run boundary* for the reductions
— never a pass per value.  Semantics (values, dtypes, error messages)
are defined by the pure-python reference in
:mod:`repro.kernels.reference`; the differential suite asserts the two
agree bit for bit.
"""

from __future__ import annotations

import numpy as np

#: A 64-bit value needs at most ceil(64 / 7) = 10 LEB128 bytes.
MAX_VARINT_BYTES = 10

_WORD_BITS = 64


def dedup_max(targets, parents):
    targets = np.asarray(targets, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    if targets.size == 0:
        return targets, parents
    # Python-int span: ``parents.max() + 1`` would wrap int64 for parents
    # near 2**63 and silently corrupt the composite keys below.
    span = int(parents.max()) + 1
    if 0 <= parents.min() and span <= (1 << 62) and targets.max() < (1 << 62) // span:
        # Composite-key quicksort (targets major, parents minor) is far
        # faster than lexsort; the max parent of each target is the last
        # entry of its run.
        span = np.int64(span)
        key = targets * span + parents
        key.sort()
        last = np.empty(key.size, dtype=bool)
        last[-1] = True
        out_targets = key // span
        np.not_equal(out_targets[1:], out_targets[:-1], out=last[:-1])
        key = key[last]
        out_targets = out_targets[last]
        return out_targets, key - out_targets * span
    order = np.lexsort((parents, targets))
    targets, parents = targets[order], parents[order]
    last = np.empty(targets.size, dtype=bool)
    last[-1] = True
    np.not_equal(targets[1:], targets[:-1], out=last[:-1])
    return targets[last], parents[last]


_RUN_UFUNCS = {"min": np.minimum, "or": np.bitwise_or}


def reduce_runs(keys, values, op):
    keys = np.asarray(keys, dtype=np.int64)
    values = np.asarray(values, dtype=np.uint64 if op == "or" else np.int64)
    if op == "max":
        return dedup_max(keys, values)
    ufunc = _RUN_UFUNCS[op]
    if keys.size == 0:
        return keys, values
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    values = values[order]
    starts = np.empty(keys.size, dtype=bool)
    starts[0] = True
    np.not_equal(keys[1:], keys[:-1], out=starts[1:])
    idx = np.flatnonzero(starts)
    return keys[idx], ufunc.reduceat(values, idx)


_AT_UFUNCS = {"max": np.maximum, "min": np.minimum, "or": np.bitwise_or}


def scatter_reduce(dense, positions, values, op):
    _AT_UFUNCS[op].at(dense, positions, values)


def bucket_by_owner(owners, nbuckets, *arrays):
    owners = np.asarray(owners, dtype=np.int64)
    if owners.size and (owners.min() < 0 or owners.max() >= nbuckets):
        raise ValueError(f"owners out of range [0, {nbuckets})")
    order = np.argsort(owners, kind="stable")
    counts = np.bincount(owners, minlength=nbuckets).astype(np.int64)
    splits = np.cumsum(counts)[:-1]
    grouped = []
    for bucket_parts in zip(
        *(np.split(np.asarray(a)[order], splits) for a in arrays)
    ):
        grouped.append(tuple(bucket_parts))
    return grouped, counts


def pack_pairs(vertices, parents):
    vertices = np.asarray(vertices, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    if vertices.shape != parents.shape:
        raise ValueError("vertices/parents must be equal length")
    out = np.empty(2 * vertices.size, dtype=np.int64)
    out[0::2] = vertices
    out[1::2] = parents
    return out


def unpack_pairs(buf):
    buf = np.asarray(buf, dtype=np.int64)
    if buf.size % 2:
        raise ValueError(f"pair buffer has odd length {buf.size}")
    return buf[0::2], buf[1::2]


def _bitmap_nwords(nbits):
    return (nbits + _WORD_BITS - 1) // _WORD_BITS


def pack_bitmap(vertices, lo, nbits):
    vertices = np.asarray(vertices, dtype=np.int64)
    bits = np.zeros(nbits, dtype=np.uint8)
    bits[vertices - lo] = 1
    packed = np.packbits(bits, bitorder="little")
    out = np.zeros(8 * _bitmap_nwords(nbits), dtype=np.uint8)
    out[: packed.size] = packed
    return out.view(np.uint64)


def unpack_bitmap(words, nbits):
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if nbits == 0:
        return np.zeros(0, dtype=bool)
    return np.unpackbits(
        words.view(np.uint8), count=nbits, bitorder="little"
    ).astype(bool)


def popcount(words):
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).astype(np.int64)
    # numpy < 2.0: per-byte popcount via a 256-entry lookup table.
    table = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)
    return table[words.view(np.uint8)].reshape(-1, 8).sum(axis=1)


def last_hit_scan(hits, starts, counts):
    hits = np.asarray(hits, dtype=bool)
    starts = np.asarray(starts, dtype=np.int64)
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    hit_pos = np.where(hits, np.arange(hits.size), -1)
    return np.maximum.reduceat(hit_pos, starts)


def lane_prune(targets, sources, words, nlanes):
    targets = np.asarray(targets, dtype=np.int64)
    sources = np.asarray(sources, dtype=np.int64)
    words = np.asarray(words, dtype=np.uint64)
    if targets.size == 0:
        return targets, sources, words
    tmin, tmax = int(targets.min()), int(targets.max())
    smin, smax = int(sources.min()), int(sources.max())
    if tmin >= 0 and smin >= 0 and tmax + 1 <= (1 << 62) // (smax + 1):
        # Composite single-key stable sort (targets asc, sources desc);
        # one radix/merge pass beats lexsort's two.  Python-int guard
        # keeps the key clear of int64 wrap, mirroring dedup_max.
        span = np.int64(smax + 1)
        key = targets * span + (np.int64(smax) - sources)
        order = np.argsort(key, kind="stable")
    else:
        order = np.lexsort((-sources, targets))
    targets, sources, words = targets[order], sources[order], words[order]
    run_start = np.empty(targets.size, dtype=bool)
    run_start[0] = True
    np.not_equal(targets[1:], targets[:-1], out=run_start[1:])
    # A candidate survives iff it carries a lane bit (below ``nlanes``)
    # that no higher-source candidate of its target carries: its word
    # must add a fresh bit over the run's exclusive prefix OR.  The
    # prefix OR is a Hillis-Steele doubling scan — O(log max-run-length)
    # whole-array passes instead of one pass per lane.
    lanes = np.uint64((1 << nlanes) - 1)
    inc = words & lanes
    live = inc.copy()
    off = 1
    while off < inc.size:
        same = targets[off:] == targets[:-off]
        if not same.any():
            break
        inc[off:][same] |= inc[:-off][same]
        off <<= 1
    ex = np.zeros_like(inc)
    ex[1:] = inc[:-1]
    ex[run_start] = 0
    keep = (live & ~ex) != 0
    return targets[keep], sources[keep], words[keep]


def unique_sorted(values):
    return np.unique(np.asarray(values, dtype=np.int64))


def varint_sizes(values):
    values = np.ascontiguousarray(values).view(np.uint64)
    sizes = np.ones(values.size, dtype=np.int64)
    for k in range(1, MAX_VARINT_BYTES):
        sizes += (values >= (np.uint64(1) << np.uint64(7 * k))).astype(np.int64)
    return sizes


def varint_encode(values):
    values = np.ascontiguousarray(values, dtype=np.int64).view(np.uint64)
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    sizes = varint_sizes(values)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    out = np.empty(int(sizes.sum()), dtype=np.uint8)
    for j in range(int(sizes.max())):
        sel = sizes > j
        group = (values[sel] >> np.uint64(7 * j)) & np.uint64(0x7F)
        byte = group.astype(np.uint8)
        byte |= ((sizes[sel] - 1 > j).astype(np.uint8)) << 7
        out[starts[sel] + j] = byte
    return out


def varint_decode(stream):
    stream = np.ascontiguousarray(stream, dtype=np.uint8)
    if stream.size == 0:
        return np.empty(0, dtype=np.int64)
    terminal = (stream & 0x80) == 0
    if not terminal[-1]:
        raise ValueError("truncated varint stream: last byte has continuation bit")
    ends = np.flatnonzero(terminal)
    starts = np.concatenate([[0], ends[:-1] + 1])
    lengths = ends - starts + 1
    if int(lengths.max()) > MAX_VARINT_BYTES:
        raise ValueError(
            f"varint longer than {MAX_VARINT_BYTES} bytes in stream"
        )
    values = np.zeros(ends.size, dtype=np.uint64)
    for j in range(int(lengths.max())):
        sel = lengths > j
        group = stream[starts[sel] + j].astype(np.uint64) & np.uint64(0x7F)
        values[sel] |= group << np.uint64(7 * j)
    return values.view(np.int64)


def delta_encode(sorted_values):
    sorted_values = np.asarray(sorted_values, dtype=np.int64)
    deltas = np.empty_like(sorted_values)
    if sorted_values.size:
        deltas[0] = sorted_values[0]
        np.subtract(sorted_values[1:], sorted_values[:-1], out=deltas[1:])
    return deltas


def delta_decode(deltas):
    deltas = np.ascontiguousarray(deltas, dtype=np.int64)
    return np.cumsum(deltas.view(np.uint64), dtype=np.uint64).view(np.int64)
