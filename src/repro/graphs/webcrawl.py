"""Synthetic high-diameter web-crawl generator (uk-union stand-in).

The paper's only real-world dataset, ``uk-union`` (a crawl of the .uk
domain, Boldi & Vigna [6]), is not redistributable; what its experiment
exercises is a traversal with *many* level-synchronous iterations
(diameter ~ 140, "BFS takes approximately 140 iterations to complete"),
skewed intra-host degrees, and strong link locality.  This generator
reproduces those structural properties:

* vertices are grouped into "hosts" arranged along a chain (crawls reach
  new hosts frontier-by-frontier, which is what stretches the diameter);
* intra-host links follow a Zipf-like skewed distribution toward each
  host's "index pages";
* a host's few outbound links point to hosts at most ``host_reach`` ahead
  or behind in the chain, with a guaranteed path covering the chain.

BFS from a vertex in the first host therefore needs ~``2 * n_hosts``
levels (hop to next host, fan out inside it), with per-level frontiers
that are tiny compared to R-MAT — the regime where communication is a
small fraction of the runtime and hybrid threading stops paying off
(Figure 11).
"""

from __future__ import annotations

import numpy as np


def webcrawl_edges(
    n: int,
    n_hosts: int = 64,
    intra_degree: float = 12.0,
    inter_degree: float = 1.5,
    host_reach: int = 2,
    zipf_exponent: float = 0.9,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a chain-of-hosts web-crawl-like edge list.

    Parameters
    ----------
    n:
        Vertex count; vertices are split contiguously into ``n_hosts``
        equal blocks (the final block absorbs the remainder).
    n_hosts:
        Number of hosts along the chain; the BFS level count is roughly
        ``2 * n_hosts`` from a vertex in the first host.
    intra_degree / inter_degree:
        Average intra-host and inter-host edges per vertex.
    host_reach:
        Maximum chain distance an inter-host link may span.
    zipf_exponent:
        Skew of intra-host target popularity (0 = uniform).
    """
    if n < n_hosts:
        raise ValueError(f"need n >= n_hosts, got n={n}, n_hosts={n_hosts}")
    if n_hosts < 1:
        raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
    if host_reach < 1:
        raise ValueError(f"host_reach must be >= 1, got {host_reach}")
    if not 0.0 <= zipf_exponent < 1.0:
        raise ValueError(f"zipf_exponent must be in [0, 1), got {zipf_exponent}")
    rng = np.random.default_rng(seed)
    host_size = n // n_hosts
    host_of = np.minimum(np.arange(n, dtype=np.int64) // host_size, n_hosts - 1)
    host_start = np.minimum(
        np.arange(n_hosts, dtype=np.int64) * host_size, n - 1
    )
    host_sizes = np.bincount(host_of, minlength=n_hosts)

    # Intra-host edges: source uniform in host, destination Zipf-skewed
    # toward the low offsets of the host ("index pages").
    m_intra = int(round(n * intra_degree))
    src_i = rng.integers(0, n, size=m_intra, dtype=np.int64)
    sizes_i = host_sizes[host_of[src_i]]
    u = rng.random(m_intra)
    # Inverse-CDF sample of a truncated power law on [0, size): exponent 0
    # is uniform, values near 1 concentrate mass on the low offsets.
    offsets = np.floor(sizes_i * u ** (1.0 / (1.0 - zipf_exponent))).astype(np.int64)
    offsets = np.clip(offsets, 0, sizes_i - 1)
    dst_i = host_start[host_of[src_i]] + offsets

    # Inter-host edges: destination host within +-host_reach on the chain.
    m_inter = int(round(n * inter_degree))
    src_x = rng.integers(0, n, size=m_inter, dtype=np.int64)
    hops = rng.integers(1, host_reach + 1, size=m_inter, dtype=np.int64)
    signs = rng.choice(np.array([-1, 1], dtype=np.int64), size=m_inter)
    dst_host = np.clip(host_of[src_x] + signs * hops, 0, n_hosts - 1)
    dst_x = host_start[dst_host] + rng.integers(
        0, host_sizes[dst_host], dtype=np.int64
    )

    # Backbone: guarantee the chain is connected end to end so the
    # traversal really visits every host.
    bb_src = host_start[:-1]
    bb_dst = host_start[1:]

    src = np.concatenate([src_i, src_x, bb_src])
    dst = np.concatenate([dst_i, dst_x, bb_dst])
    return src, dst


def webcrawl_graph(
    n: int,
    n_hosts: int = 64,
    seed: int | None = 0,
    shuffle: bool = True,
    **kwargs,
):
    """Build a traversal-ready synthetic crawl :class:`Graph`.

    Note that random relabeling (on by default, as in all the paper's
    experiments) only changes vertex *ids*, not the topology, so the
    diameter is preserved.
    """
    from repro.graphs.graph import Graph

    src, dst = webcrawl_edges(n, n_hosts=n_hosts, seed=seed, **kwargs)
    return Graph.from_edges(
        n,
        src,
        dst,
        symmetrize=True,
        shuffle=shuffle,
        seed=seed,
        name=f"webcrawl-n{n}-h{n_hosts}",
    )
