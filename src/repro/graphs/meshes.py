"""Structured mesh-like graph generators.

The paper's single-node comparison (Section 6) runs on three SuiteSparse
matrices — ``KKt_power`` (optimal power flow), ``Freescale1`` (circuit
simulation), ``Cage14`` (DNA electrophoresis) — whose common trait is
*structure*: near-planar or banded sparsity, moderate degrees, diameters
far beyond R-MAT's.  The matrices themselves are not redistributable, so
this module provides generators with the same traits:

* :func:`grid2d_edges` / :func:`grid3d_edges` — k-point lattice stencils
  (optionally periodic), the canonical near-planar/banded workloads;
* :func:`power_grid_edges` — a lattice with random long-range ties and
  degree-1 spurs, mimicking transmission-network topology;
* :func:`banded_edges` — random matrices with bounded bandwidth (the
  Cage-style regime).

All are fully vectorized and deterministic by seed.
"""

from __future__ import annotations

import numpy as np


def grid2d_edges(
    rows: int, cols: int, periodic: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Edges of a ``rows x cols`` 4-point lattice (vertex id = r*cols+c)."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid dimensions must be >= 1, got {rows}x{cols}")
    r = np.arange(rows, dtype=np.int64)
    c = np.arange(cols, dtype=np.int64)
    rr, cc = np.meshgrid(r, c, indexing="ij")
    ids = rr * cols + cc
    src, dst = [], []
    # Horizontal neighbours.
    src.append(ids[:, :-1].ravel())
    dst.append(ids[:, 1:].ravel())
    # Vertical neighbours.
    src.append(ids[:-1, :].ravel())
    dst.append(ids[1:, :].ravel())
    if periodic:
        if cols > 2:
            src.append(ids[:, -1].ravel())
            dst.append(ids[:, 0].ravel())
        if rows > 2:
            src.append(ids[-1, :].ravel())
            dst.append(ids[0, :].ravel())
    return np.concatenate(src), np.concatenate(dst)


def grid3d_edges(
    nx: int, ny: int, nz: int, periodic: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Edges of an ``nx x ny x nz`` 6-point lattice."""
    if min(nx, ny, nz) < 1:
        raise ValueError(f"grid dimensions must be >= 1, got {nx}x{ny}x{nz}")
    ids = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    src, dst = [], []
    for axis, extent in enumerate((nx, ny, nz)):
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(None, -1)
        hi[axis] = slice(1, None)
        src.append(ids[tuple(lo)].ravel())
        dst.append(ids[tuple(hi)].ravel())
        if periodic and extent > 2:
            first = [slice(None)] * 3
            last = [slice(None)] * 3
            first[axis] = 0
            last[axis] = extent - 1
            src.append(ids[tuple(last)].ravel())
            dst.append(ids[tuple(first)].ravel())
    return np.concatenate(src), np.concatenate(dst)


def power_grid_edges(
    n: int,
    tie_fraction: float = 0.05,
    spur_fraction: float = 0.15,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """A transmission-network-like graph (the KKt_power regime).

    A near-square 2D lattice backbone (substations) plus a few random
    long-range ties (HV interconnects) and degree-1 spur vertices (feeder
    endpoints) appended after the lattice ids.  Mean degree stays small
    (~3-4) and the diameter scales like sqrt(n) — nothing like R-MAT.
    """
    if n < 4:
        raise ValueError(f"need n >= 4, got {n}")
    if not 0 <= tie_fraction < 1 or not 0 <= spur_fraction < 1:
        raise ValueError("fractions must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    n_spurs = int(n * spur_fraction)
    n_grid = n - n_spurs
    rows = max(2, int(np.sqrt(n_grid)))
    cols = max(2, n_grid // rows)
    n_grid = rows * cols
    src, dst = grid2d_edges(rows, cols)
    n_ties = int(n_grid * tie_fraction)
    if n_ties:
        tie_src = rng.integers(0, n_grid, n_ties, dtype=np.int64)
        tie_dst = rng.integers(0, n_grid, n_ties, dtype=np.int64)
        src = np.concatenate([src, tie_src])
        dst = np.concatenate([dst, tie_dst])
    # Spurs: one edge each into a random lattice vertex.
    n_spurs = n - n_grid
    if n_spurs > 0:
        spur_ids = n_grid + np.arange(n_spurs, dtype=np.int64)
        anchors = rng.integers(0, n_grid, n_spurs, dtype=np.int64)
        src = np.concatenate([src, spur_ids])
        dst = np.concatenate([dst, anchors])
    return src, dst


def banded_edges(
    n: int, bandwidth: int, avg_degree: float = 8.0, seed: int | None = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Random edges constrained to ``|u - v| <= bandwidth`` (Cage-style)."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    if bandwidth < 1:
        raise ValueError(f"bandwidth must be >= 1, got {bandwidth}")
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2)
    src = rng.integers(0, n, m, dtype=np.int64)
    offset = rng.integers(1, bandwidth + 1, m, dtype=np.int64)
    sign = rng.choice(np.array([-1, 1], dtype=np.int64), m)
    dst = np.clip(src + sign * offset, 0, n - 1)
    # Backbone path keeps the band connected end to end.
    chain = np.arange(n - 1, dtype=np.int64)
    return np.concatenate([src, chain]), np.concatenate([dst, chain + 1])


def mesh_graph(kind: str, n: int, seed: int | None = 0, shuffle: bool = True):
    """Build a traversal-ready :class:`~repro.graphs.graph.Graph`.

    ``kind`` selects the single-node comparison stand-in: ``"power"``
    (KKt_power-like), ``"banded"`` (Cage14-like), ``"grid2d"`` or
    ``"grid3d"`` (Freescale-like near-planar structure).
    """
    from repro.graphs.graph import Graph

    if kind == "power":
        src, dst = power_grid_edges(n, seed=seed)
        n_actual = n
    elif kind == "banded":
        src, dst = banded_edges(n, bandwidth=max(2, n // 256), seed=seed)
        n_actual = n
    elif kind == "grid2d":
        side = max(2, int(np.sqrt(n)))
        src, dst = grid2d_edges(side, side)
        n_actual = side * side
    elif kind == "grid3d":
        side = max(2, round(n ** (1 / 3)))
        src, dst = grid3d_edges(side, side, side)
        n_actual = side**3
    else:
        raise ValueError(
            f"unknown mesh kind {kind!r}; known: power, banded, grid2d, grid3d"
        )
    return Graph.from_edges(
        n_actual, src, dst, shuffle=shuffle, seed=seed, name=f"mesh-{kind}-{n_actual}"
    )
