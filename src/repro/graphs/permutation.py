"""Random vertex relabeling (Section 4.4, "Load-balancing traversal").

The paper — like the Graph 500 benchmark — randomly shuffles all vertex
identifiers prior to partitioning so every process gets roughly the same
number of vertices and edges regardless of the degree distribution.  The
permutation must be remembered so results (parents, levels) can be mapped
back to the original labels.
"""

from __future__ import annotations

import numpy as np


def random_permutation(n: int, seed: int | None = 0) -> np.ndarray:
    """A uniformly random permutation of ``[0, n)`` as ``int64``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``inv[perm[i]] = i``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv


def apply_permutation(
    perm: np.ndarray, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Relabel edge endpoints: vertex ``v`` becomes ``perm[v]``."""
    perm = np.asarray(perm, dtype=np.int64)
    return perm[np.asarray(src, dtype=np.int64)], perm[np.asarray(dst, dtype=np.int64)]
