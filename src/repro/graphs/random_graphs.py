"""Uniform random graph generators.

These provide the *non-skewed* counterpoint to R-MAT: Erdős–Rényi graphs
(binomial degrees) and near-regular uniform-degree graphs — the regime in
which Yoo et al.'s BlueGene/L implementation computed its communication
buffer bounds (Section 2.2).  Useful for testing load-balance behaviour
with and without skew.
"""

from __future__ import annotations

import numpy as np


def erdos_renyi_edges(
    n: int, avg_degree: float, seed: int | None = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``n * avg_degree / 2`` undirected edges uniformly at random.

    This is the G(n, m) model: endpoints drawn independently; self-loops
    and duplicates are left for CSR construction to clean, mirroring the
    R-MAT pipeline.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if avg_degree < 0:
        raise ValueError(f"avg_degree must be >= 0, got {avg_degree}")
    m = int(round(n * avg_degree / 2))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    return src, dst


def uniform_degree_edges(
    n: int, degree: int, seed: int | None = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Near-``degree``-regular random graph via a permutation construction.

    Every vertex appears exactly ``degree`` times as a source and, in
    expectation, ``degree`` times as a destination, giving a sharply
    concentrated degree distribution (no skew).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if degree < 0:
        raise ValueError(f"degree must be >= 0, got {degree}")
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(n, dtype=np.int64), degree)
    dst = np.concatenate(
        [rng.permutation(n).astype(np.int64) for _ in range(degree)]
    ) if degree else np.empty(0, dtype=np.int64)
    return src, dst
