"""Graph persistence: compressed npz round-trips.

Stores the CSR, permutation, and metadata so expensive generator runs can
be reused across benchmark invocations.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graphs.csr import CSR
from repro.graphs.graph import Graph

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Write a :class:`Graph` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    header = {
        "version": _FORMAT_VERSION,
        "n": graph.n,
        "m_input": graph.m_input,
        "name": graph.name,
        "directed": graph.directed,
        "has_perm": graph.perm is not None,
    }
    arrays = {
        "indptr": graph.csr.indptr,
        "indices": graph.csr.indices,
        "header": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    }
    if graph.perm is not None:
        arrays["perm"] = graph.perm
    np.savez_compressed(path, **arrays)
    return path


def load_graph(path: str | Path) -> Graph:
    """Load a :class:`Graph` previously written by :func:`save_graph`."""
    with np.load(Path(path)) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph file version {header.get('version')!r}"
            )
        csr = CSR(
            n=int(header["n"]),
            indptr=data["indptr"],
            indices=data["indices"],
        )
        perm = data["perm"] if header["has_perm"] else None
    return Graph(
        csr=csr,
        m_input=int(header["m_input"]),
        perm=perm,
        name=header["name"],
        directed=bool(header["directed"]),
    )
