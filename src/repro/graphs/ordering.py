"""Locality-aware vertex orderings (Sections 4.4 and 7).

The paper load-balances by *randomly* shuffling vertex ids, accepting an
edge cut "as high as an average random balanced cut" in exchange for even
work.  Its related-work and future-work sections point at the
alternative: relabel vertices so neighbours stay close (Cuthill-McKee
[14]) or partition to reduce communication (hypergraph tools).  This
module provides that counterpoint:

* :func:`rcm_ordering` — a vectorized reverse Cuthill-McKee-style
  level-structure ordering: BFS from a minimum-degree seed, each level
  sorted by degree, visitation order reversed;
* :func:`edge_cut` — the fraction of edges crossing rank boundaries under
  a block partition, the quantity an ordering is trying to shrink.

On a graph *with* structure (the web crawl), RCM slashes the 1D edge cut
and with it the all-to-all volume; on R-MAT it barely helps — the paper's
stated reason for preferring randomization ("the graphs lack good
separators", Section 6).  ``repro-bench abl-ordering`` measures both.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSR


def rcm_ordering(csr: CSR) -> np.ndarray:
    """Reverse Cuthill-McKee-style permutation of a CSR graph.

    Returns ``perm`` with ``new_id = perm[old_id]``, suitable for
    :func:`repro.graphs.permutation.apply_permutation`.  Components are
    processed from minimum-degree seeds; within each BFS level vertices
    are ordered by degree (the CM tie-break), and the final visitation
    order is reversed.
    """
    n = csr.n
    degrees = csr.degrees()
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    filled = 0
    # Process vertices in ascending-degree order so each component starts
    # from a peripheral (low-degree) seed, as CM prescribes.
    seeds = np.argsort(degrees, kind="stable")
    seed_pos = 0
    while filled < n:
        while seed_pos < n and visited[seeds[seed_pos]]:
            seed_pos += 1
        seed = seeds[seed_pos]
        visited[seed] = True
        order[filled] = seed
        filled += 1
        frontier = np.array([seed], dtype=np.int64)
        while frontier.size:
            targets, _sources = csr.gather(frontier)
            targets = np.unique(targets)
            targets = targets[~visited[targets]]
            if targets.size == 0:
                break
            # CM tie-break: ascend by degree within the level.
            targets = targets[np.argsort(degrees[targets], kind="stable")]
            visited[targets] = True
            order[filled : filled + targets.size] = targets
            filled += targets.size
            frontier = targets
    # order[k] = old id visited k-th; reverse (the "R" in RCM) and invert
    # into a relabeling permutation.
    order = order[::-1]
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return perm


def edge_cut(csr: CSR, nparts: int) -> float:
    """Fraction of stored adjacencies crossing block-partition boundaries.

    This is exactly the fraction of 1D BFS candidates that must travel
    over the network (before deduplication).
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    if csr.nnz == 0:
        return 0.0
    from repro.core.partition import Partition1D

    part = Partition1D(csr.n, nparts)
    rows = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
    owners_src = part.owner_of(rows)
    owners_dst = part.owner_of(csr.indices)
    return float((owners_src != owners_dst).mean())


def bandwidth(csr: CSR) -> int:
    """Matrix bandwidth: max |u - v| over edges (what CM minimizes)."""
    if csr.nnz == 0:
        return 0
    rows = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
    return int(np.abs(rows - csr.indices).max())
