"""R-MAT recursive matrix graph generator (Chakrabarti et al. [9]).

Fully vectorized: for a scale-``s`` graph every edge picks one of four
quadrants at each of the ``s`` recursion levels, contributing one bit to
the source and destination vertex ids.  The paper (and the Graph 500
benchmark) uses parameters ``a, b, c, d = 0.59, 0.19, 0.19, 0.05`` and
edgefactor 16, producing skewed degree distributions and a very low
diameter — the properties that make traversal load balancing hard.
"""

from __future__ import annotations

import numpy as np

#: Graph 500 / paper R-MAT parameters (Section 6).  The paper prints
#: a = 0.59, but 0.59 + 0.19 + 0.19 + 0.05 = 1.02; the Graph 500
#: specification the paper says it follows uses a = 0.57, which is what
#: every reference implementation generates.
GRAPH500_PARAMS: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    edgefactor: float = 16,
    params: tuple[float, float, float, float] = GRAPH500_PARAMS,
    seed: int | None = 0,
    noise: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate R-MAT edges for ``n = 2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    edgefactor:
        Directed edges generated per vertex (Graph 500 default 16).
    params:
        Quadrant probabilities ``(a, b, c, d)``; must sum to 1.
    seed:
        RNG seed for reproducibility.
    noise:
        Optional per-level multiplicative jitter on the parameters
        (the "smoothing" used by some R-MAT variants); 0 disables it.

    Returns
    -------
    (src, dst):
        ``int64`` arrays of length ``edgefactor * n``.  Self-loops and
        duplicates are *not* removed here — that is CSR construction's
        job, matching the Graph 500 pipeline.
    """
    if scale < 0:
        raise ValueError(f"scale must be >= 0, got {scale}")
    a, b, c, d = params
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError(f"R-MAT params must sum to 1, got {a + b + c + d}")
    if min(a, b, c, d) < 0:
        raise ValueError(f"R-MAT params must be non-negative: {params}")
    n = 1 << scale
    m = int(round(edgefactor * n))
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        aa, bb, cc, dd = a, b, c, d
        if noise:
            jitter = 1.0 + noise * (2.0 * rng.random(4) - 1.0)
            aa, bb, cc, dd = np.array([a, b, c, d]) * jitter
            total = aa + bb + cc + dd
            aa, bb, cc, dd = aa / total, bb / total, cc / total, dd / total
        draw = rng.random(m)
        # Quadrants in row-major order: (0,0)=a, (0,1)=b, (1,0)=c, (1,1)=d.
        src_bit = draw >= aa + bb
        dst_bit = ((draw >= aa) & (draw < aa + bb)) | (draw >= aa + bb + cc)
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    return src, dst


def rmat_graph(
    scale: int,
    edgefactor: float = 16,
    params: tuple[float, float, float, float] = GRAPH500_PARAMS,
    seed: int | None = 0,
    symmetrize: bool = True,
    shuffle: bool = True,
):
    """Generate a ready-to-traverse :class:`~repro.graphs.graph.Graph`.

    Follows the Graph 500 pipeline the paper uses: generate directed
    R-MAT edges, randomly relabel vertices for load balance (Section 4.4),
    then symmetrize into sorted deduplicated CSR.  The *original* directed
    edge count is retained for TEPS normalization ("we only count the
    number of edges in the original directed graph").
    """
    from repro.graphs.graph import Graph

    src, dst = rmat_edges(scale, edgefactor, params, seed)
    return Graph.from_edges(
        1 << scale,
        src,
        dst,
        symmetrize=symmetrize,
        shuffle=shuffle,
        seed=seed,
        name=f"rmat-s{scale}-ef{edgefactor:g}",
    )
