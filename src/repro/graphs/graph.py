"""Graph container: CSR storage plus benchmark metadata.

A :class:`Graph` owns the traversal-ready CSR (symmetrized, deduplicated,
sorted, optionally randomly relabeled per Section 4.4) together with the
bookkeeping the Graph 500 methodology needs: the original directed edge
count for TEPS normalization and the relabeling permutation so results can
be reported in the caller's vertex ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.csr import CSR, build_csr
from repro.graphs.permutation import (
    apply_permutation,
    invert_permutation,
    random_permutation,
)


@dataclass(frozen=True)
class Graph:
    """Traversal-ready graph.

    Attributes
    ----------
    csr:
        Adjacency structure in *internal* (possibly relabeled) ids.
    m_input:
        Edge count of the original directed input list — the TEPS
        denominator ("we only count the number of edges in the original
        directed graph", Section 6).
    perm:
        Relabeling applied at construction (``internal = perm[original]``),
        or ``None`` when vertices were not shuffled.
    name:
        Workload label used in reports.
    """

    csr: CSR
    m_input: int
    perm: np.ndarray | None = None
    name: str = "graph"
    directed: bool = False
    meta: dict = field(default_factory=dict)

    # -- construction -------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        src: np.ndarray,
        dst: np.ndarray,
        symmetrize: bool = True,
        shuffle: bool = True,
        seed: int | None = 0,
        name: str = "graph",
        drop_self_loops: bool = True,
    ) -> "Graph":
        """Build from raw edges, applying the paper's preprocessing."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        m_input = int(src.size)
        perm = None
        if shuffle:
            perm = random_permutation(n, seed)
            src, dst = apply_permutation(perm, src, dst)
        csr = build_csr(
            n, src, dst, symmetrize=symmetrize, drop_self_loops=drop_self_loops
        )
        return cls(
            csr=csr,
            m_input=m_input,
            perm=perm,
            name=name,
            directed=not symmetrize,
        )

    @classmethod
    def from_csr(cls, csr: CSR, m_input: int | None = None, name: str = "graph") -> "Graph":
        """Wrap an existing CSR (no relabeling, assumed preprocessed)."""
        return cls(csr=csr, m_input=m_input if m_input is not None else csr.nnz // 2, name=name)

    @classmethod
    def from_scipy(
        cls,
        matrix,
        symmetrize: bool = True,
        shuffle: bool = True,
        seed: int | None = 0,
        name: str = "scipy-graph",
    ) -> "Graph":
        """Build from any square ``scipy.sparse`` adjacency matrix.

        Values are ignored (the traversal is boolean).  This is the entry
        point for real-world datasets: combine with ``scipy.io.mmread``
        for SuiteSparse / MatrixMarket files (see :meth:`from_mtx`).
        """
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(
                f"adjacency matrices must be square, got {matrix.shape}"
            )
        coo = matrix.tocoo()
        return cls.from_edges(
            matrix.shape[0],
            coo.row.astype(np.int64),
            coo.col.astype(np.int64),
            symmetrize=symmetrize,
            shuffle=shuffle,
            seed=seed,
            name=name,
        )

    @classmethod
    def from_mtx(
        cls,
        path,
        symmetrize: bool = True,
        shuffle: bool = True,
        seed: int | None = 0,
    ) -> "Graph":
        """Load a MatrixMarket file (the SuiteSparse distribution format).

        This is how the paper's real test instances (uk-union's web
        releases, KKt_power, Freescale1, Cage14) would be fed in when the
        files are available.
        """
        import pathlib

        import scipy.io

        path = pathlib.Path(path)
        matrix = scipy.io.mmread(str(path))
        return cls.from_scipy(
            matrix,
            symmetrize=symmetrize,
            shuffle=shuffle,
            seed=seed,
            name=path.stem,
        )

    # -- basic properties -----------------------------------------------------
    @property
    def n(self) -> int:
        return self.csr.n

    @property
    def nnz(self) -> int:
        """Stored adjacencies (2x the undirected edge count)."""
        return self.csr.nnz

    def degrees(self) -> np.ndarray:
        return self.csr.degrees()

    # -- label translation ----------------------------------------------------
    def to_internal(self, vertices: np.ndarray | int) -> np.ndarray | int:
        """Translate original vertex ids to internal (relabeled) ids."""
        if self.perm is None:
            return vertices
        return self.perm[vertices]

    def to_original(self, vertices: np.ndarray | int):
        """Translate internal ids back to original ids."""
        if self.perm is None:
            return vertices
        inv = invert_permutation(self.perm)
        return inv[vertices]

    def relabel_vertex_array(self, internal_values: np.ndarray) -> np.ndarray:
        """Reorder a per-vertex array from internal to original indexing,
        translating vertex-id *values* (parents) as well.

        ``internal_values[w]`` describes internal vertex ``w``; negative
        values are sentinels (unreachable) and pass through unchanged.
        """
        if self.perm is None:
            return internal_values
        inv = invert_permutation(self.perm)
        out = internal_values[self.perm]
        ids = out >= 0
        out = out.copy()
        out[ids] = inv[out[ids]]
        return out

    def relabel_level_array(self, internal_levels: np.ndarray) -> np.ndarray:
        """Reorder a per-vertex scalar array (levels) to original indexing."""
        if self.perm is None:
            return internal_levels
        return internal_levels[self.perm]

    # -- source sampling --------------------------------------------------
    def random_nonisolated_vertices(
        self, count: int, seed: int | None = 0
    ) -> np.ndarray:
        """Sample distinct *original-id* vertices with degree >= 1.

        The Graph 500 benchmark samples search keys among non-isolated
        vertices; component filtering (the paper restricts to the large
        component) happens in the bench harness, which can afford a BFS.
        """
        deg = self.degrees()
        candidates_internal = np.flatnonzero(deg > 0)
        if candidates_internal.size == 0:
            raise ValueError("graph has no edges; no valid BFS sources")
        rng = np.random.default_rng(seed)
        take = min(count, candidates_internal.size)
        picked = rng.choice(candidates_internal, size=take, replace=False)
        return np.asarray(self.to_original(picked), dtype=np.int64)
