"""Graph generation and representation substrate.

Provides the paper's test workloads:

* :func:`~repro.graphs.rmat.rmat_edges` — the R-MAT recursive generator
  with the Graph 500 parameters (a,b,c,d = 0.59, 0.19, 0.19, 0.05) used in
  every synthetic experiment;
* :func:`~repro.graphs.random_graphs.erdos_renyi_edges` /
  :func:`~repro.graphs.random_graphs.uniform_degree_edges` — uniform
  random baselines (the degree-regular regime assumed by Yoo et al.);
* :func:`~repro.graphs.webcrawl.webcrawl_edges` — a synthetic
  high-diameter web-crawl-like graph standing in for the proprietary
  ``uk-union`` dataset (diameter ~ 140, skewed degrees);
* :class:`~repro.graphs.graph.Graph` — CSR container with the paper's
  preprocessing: symmetrization, dedup, sorted adjacencies, random vertex
  relabeling for load balance (Section 4.4).
"""

from repro.graphs.csr import CSR, build_csr
from repro.graphs.graph import Graph
from repro.graphs.io import load_graph, save_graph
from repro.graphs.meshes import (
    banded_edges,
    grid2d_edges,
    grid3d_edges,
    mesh_graph,
    power_grid_edges,
)
from repro.graphs.ordering import bandwidth, edge_cut, rcm_ordering
from repro.graphs.permutation import apply_permutation, random_permutation
from repro.graphs.random_graphs import erdos_renyi_edges, uniform_degree_edges
from repro.graphs.rmat import GRAPH500_PARAMS, rmat_edges, rmat_graph
from repro.graphs.webcrawl import webcrawl_edges, webcrawl_graph

__all__ = [
    "CSR",
    "build_csr",
    "Graph",
    "load_graph",
    "save_graph",
    "banded_edges",
    "grid2d_edges",
    "grid3d_edges",
    "mesh_graph",
    "power_grid_edges",
    "bandwidth",
    "edge_cut",
    "rcm_ordering",
    "apply_permutation",
    "random_permutation",
    "erdos_renyi_edges",
    "uniform_degree_edges",
    "GRAPH500_PARAMS",
    "rmat_edges",
    "rmat_graph",
    "webcrawl_edges",
    "webcrawl_graph",
]
