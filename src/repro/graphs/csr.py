"""Compressed sparse row construction (Section 4.1).

The paper stores all adjacencies of a vertex sorted and contiguous, with
an ``n + 1``-entry offset array and 64-bit vertex identifiers; undirected
graphs store each edge twice.  :func:`build_csr` reproduces exactly that
representation from raw edge arrays, entirely with vectorized NumPy
(composite-key sort + neighbour-compare dedup + bincount) — no
Python-level loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CSR:
    """Immutable CSR adjacency structure with 64-bit ids.

    Attributes
    ----------
    n:
        Number of vertices.
    indptr:
        ``int64`` array of length ``n + 1``; adjacencies of vertex ``v``
        live in ``indices[indptr[v]:indptr[v+1]]`` and are sorted.
    indices:
        Concatenated adjacency array.
    """

    n: int
    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self):
        if self.indptr.shape != (self.n + 1,):
            raise ValueError(
                f"indptr length {self.indptr.size} != n+1 = {self.n + 1}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr does not span indices")

    @property
    def nnz(self) -> int:
        """Stored adjacency count (2x the edge count for undirected)."""
        return int(self.indices.size)

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted adjacency view (not a copy) of vertex ``v``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search in ``u``'s sorted adjacency."""
        adj = self.neighbors(u)
        pos = np.searchsorted(adj, v)
        return bool(pos < adj.size and adj[pos] == v)

    def gather(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Concatenate the adjacencies of ``vertices``.

        Returns ``(targets, sources)`` where ``sources[k]`` is the vertex
        whose adjacency produced ``targets[k]`` — the frontier-expansion
        primitive of every level-synchronous BFS here.  Vectorized with the
        repeat/cumsum range-gather idiom.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self.indptr[vertices]
        counts = self.indptr[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        # offsets[k] enumerates, for each gathered slot, its position in the
        # source vertex's adjacency list.
        ends = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        flat = np.repeat(starts, counts) + offsets
        targets = self.indices[flat]
        sources = np.repeat(vertices, counts)
        return targets, sources


def build_csr(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    symmetrize: bool = True,
    dedup: bool = True,
    drop_self_loops: bool = True,
) -> CSR:
    """Build sorted CSR from raw edge arrays.

    Parameters
    ----------
    n:
        Vertex-id space size; all ids must lie in ``[0, n)``.
    symmetrize:
        Store both directions of every edge (the paper's undirected mode).
    dedup:
        Collapse parallel edges.
    drop_self_loops:
        Remove ``v -> v`` edges (Graph 500 validation ignores them).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError(f"edge arrays must be equal-length 1-D, got {src.shape} vs {dst.shape}")
    if src.size and (
        src.min() < 0 or dst.min() < 0 or src.max() >= n or dst.max() >= n
    ):
        raise ValueError(f"edge endpoints out of range [0, {n})")
    if drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    if symmetrize:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    if src.size and n <= (1 << 31):
        # Composite-key sort: one quicksort of src * n + dst is ~20x
        # faster than the two stable passes of lexsort, and dedup becomes
        # a single neighbour comparison on the sorted keys.
        key = src * np.int64(n) + dst
        key.sort()
        if dedup:
            keep = np.empty(key.size, dtype=bool)
            keep[0] = True
            np.not_equal(key[1:], key[:-1], out=keep[1:])
            key = key[keep]
        src = key // n
        dst = key - src * n
    else:
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if dedup and src.size:
            keep = np.empty(src.size, dtype=bool)
            keep[0] = True
            np.not_equal(src[1:], src[:-1], out=keep[1:])
            keep[1:] |= dst[1:] != dst[:-1]
            src, dst = src[keep], dst[keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    return CSR(n=n, indptr=indptr, indices=dst)
