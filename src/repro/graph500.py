"""Graph 500 benchmark driver (the benchmark the paper helped define).

Implements the official two-kernel flow the paper's experiments follow:

* **Kernel 1** — construct the graph from the generated edge list
  (symmetrize, dedup, random vertex shuffle);
* **Kernel 2** — run BFS from ``nbfs`` random search keys sampled among
  non-isolated vertices, validating every traversal against the
  specification rules;
* **Reporting** — the benchmark's summary statistics: quartiles of the
  per-search time and TEPS, and the harmonic-mean TEPS that the Graph 500
  list ranks by.

BFS times come from the machine model (this is a simulation — see
DESIGN.md); kernel-1 construction time is real wall-clock of the Python
pipeline and is reported separately.

Example::

    from repro.graph500 import run_graph500

    result = run_graph500(scale=15, nprocs=16, algorithm="2d",
                          machine="hopper", nbfs=8, seed=1)
    print(result.report())
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.runner import BFSResult, run_bfs
from repro.graphs.graph import Graph
from repro.graphs.rmat import rmat_edges
from repro.model.machine import get_machine

#: The official benchmark runs 64 search keys; simulations may downscale.
DEFAULT_NBFS = 64


def _quartiles(values: np.ndarray) -> dict[str, float]:
    q = np.percentile(values, [0, 25, 50, 75, 100])
    return {
        "min": float(q[0]),
        "firstquartile": float(q[1]),
        "median": float(q[2]),
        "thirdquartile": float(q[3]),
        "max": float(q[4]),
        "mean": float(values.mean()),
        "stddev": float(values.std(ddof=1)) if values.size > 1 else 0.0,
    }


@dataclass
class Graph500Result:
    """Summary of one Graph 500 run (official output fields)."""

    scale: int
    edgefactor: float
    nbfs: int
    algorithm: str
    machine: str
    nranks: int
    construction_seconds: float
    bfs_times: np.ndarray  # modeled seconds per search
    teps: np.ndarray  # per-search TEPS
    searches: list[BFSResult] = field(default_factory=list)

    @property
    def harmonic_mean_teps(self) -> float:
        """The statistic the Graph 500 list ranks by."""
        return float(self.teps.size / np.sum(1.0 / self.teps))

    @property
    def time_stats(self) -> dict[str, float]:
        return _quartiles(self.bfs_times)

    @property
    def teps_stats(self) -> dict[str, float]:
        return _quartiles(self.teps)

    def report(self) -> str:
        """Render the benchmark's canonical key-value output."""
        lines = [
            f"SCALE:                          {self.scale}",
            f"edgefactor:                     {self.edgefactor:g}",
            f"NBFS:                           {self.nbfs}",
            f"algorithm:                      {self.algorithm}",
            f"machine_model:                  {self.machine}",
            f"num_mpi_processes (simulated):  {self.nranks}",
            f"construction_time:              {self.construction_seconds:.6g}",
        ]
        for name, stats in (("time", self.time_stats), ("TEPS", self.teps_stats)):
            for key in (
                "min",
                "firstquartile",
                "median",
                "thirdquartile",
                "max",
                "mean",
                "stddev",
            ):
                lines.append(f"{key}_{name}:".ljust(32) + f"{stats[key]:.6g}")
        lines.append(
            "harmonic_mean_TEPS:".ljust(32) + f"{self.harmonic_mean_teps:.6g}"
        )
        return "\n".join(lines)


def sample_search_keys(
    graph: Graph, nbfs: int, seed: int | None = 0
) -> np.ndarray:
    """Sample distinct search keys among non-isolated vertices (spec 2.4)."""
    return graph.random_nonisolated_vertices(nbfs, seed=seed)


def run_graph500(
    scale: int,
    edgefactor: float = 16,
    nprocs: int = 16,
    algorithm: str = "2d",
    machine: str = "hopper",
    nbfs: int = 8,
    seed: int | None = 0,
    validate: bool = True,
    tracer=None,
    metrics=None,
    **bfs_kwargs,
) -> Graph500Result:
    """Run the full Graph 500 flow at the given (down)scale.

    Parameters mirror the official driver: ``scale``/``edgefactor`` define
    the R-MAT instance, ``nbfs`` the number of search keys (official: 64).
    ``algorithm``/``nprocs``/``machine`` select the paper implementation
    and the modeled system.  Every traversal is validated against the
    specification rules unless ``validate=False``.  ``tracer`` is an
    optional :class:`~repro.obs.Tracer` recording phase spans for the
    *first* search only — virtual time restarts at zero each traversal,
    so one tracer describes one run.  ``metrics`` is an optional
    :class:`~repro.obs.MetricsRegistry`, likewise metering the first
    search only.
    """
    if nbfs < 1:
        raise ValueError(f"nbfs must be >= 1, got {nbfs}")
    if get_machine(machine) is None:
        raise ValueError(
            "run_graph500 reports TEPS and therefore needs a machine model "
            "(e.g. machine='hopper'); untimed runs have no traversal time"
        )
    # Kernel 1: generation is *not* timed (spec), construction is.
    src, dst = rmat_edges(scale, edgefactor, seed=seed)
    t0 = time.perf_counter()
    graph = Graph.from_edges(
        1 << scale,
        src,
        dst,
        symmetrize=True,
        shuffle=True,
        seed=seed,
        name=f"graph500-s{scale}-ef{edgefactor:g}",
    )
    construction = time.perf_counter() - t0

    keys = sample_search_keys(graph, nbfs, seed=seed)
    searches: list[BFSResult] = []
    times, rates = [], []
    for i, key in enumerate(keys):
        result = run_bfs(
            graph,
            int(key),
            algorithm,
            nprocs=nprocs,
            machine=machine,
            validate=validate,
            tracer=tracer if i == 0 else None,
            metrics=metrics if i == 0 else None,
            **bfs_kwargs,
        )
        searches.append(result)
        times.append(result.time_total)
        rates.append(result.m_traversed / result.time_total)

    resolved = get_machine(machine)
    return Graph500Result(
        scale=scale,
        edgefactor=edgefactor,
        nbfs=len(keys),
        algorithm=algorithm,
        machine=resolved.name if resolved is not None else "untimed",
        nranks=searches[0].nranks,
        construction_seconds=construction,
        bfs_times=np.array(times),
        teps=np.array(rates),
        searches=searches,
    )
