"""repro — reproduction of Buluc & Madduri, "Parallel Breadth-First Search
on Distributed Memory Systems" (SC 2011, arXiv:1104.4518).

Quickstart::

    import repro

    graph = repro.rmat_graph(scale=16, edgefactor=16, seed=1)
    source = graph.random_nonisolated_vertices(1, seed=2)[0]
    result = repro.run_bfs(
        graph, source, algorithm="2d", nprocs=16, machine="franklin"
    )
    print(result.nlevels, result.gteps())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.

The simulator proper requires numpy.  Without it, importing ``repro``
still succeeds but exposes only :mod:`repro.kernels`, whose pure-python
reference backend (``REPRO_KERNELS=python``) has no numpy dependency —
the graceful-fallback contract the kernels CI job smoke-tests.
"""

__version__ = "1.0.0"

try:
    import numpy as _numpy  # noqa: F401
except ImportError:  # pragma: no cover - exercised by the numpy-absent smoke
    _HAVE_NUMPY = False
else:
    _HAVE_NUMPY = True

if not _HAVE_NUMPY:  # pragma: no cover - exercised by the numpy-absent smoke
    from repro import kernels

    __all__ = ["kernels", "__version__"]
else:
    from repro.core import (
        ALGORITHMS,
        AlgorithmSpec,
        BFSResult,
        RunConfig,
        TraversalEngine,
        bfs_1d,
        bfs_1d_dirop,
        bfs_2d,
        bfs_serial,
        count_traversed_edges,
        run,
        run_bfs,
        validate_bfs,
    )
    from repro.graph500 import Graph500Result, run_graph500
    from repro.graphs import (
        Graph,
        erdos_renyi_edges,
        load_graph,
        rmat_edges,
        rmat_graph,
        save_graph,
        uniform_degree_edges,
        webcrawl_graph,
    )
    from repro.model import (
        CARVER,
        FRANKLIN,
        HOPPER,
        MachineConfig,
        RmatVolumeModel,
        cost_1d,
        cost_2d,
        gteps,
    )
    from repro.mpsim import ProcessorGrid, run_spmd
    from repro.obs import (
        Tracer,
        critical_path,
        perf_diff,
        run_report,
        write_chrome_trace,
        write_run_report,
    )

    __all__ = [
        "ALGORITHMS",
        "AlgorithmSpec",
        "BFSResult",
        "RunConfig",
        "TraversalEngine",
        "bfs_1d",
        "bfs_1d_dirop",
        "bfs_2d",
        "bfs_serial",
        "count_traversed_edges",
        "run",
        "run_bfs",
        "validate_bfs",
        "Graph",
        "erdos_renyi_edges",
        "load_graph",
        "rmat_edges",
        "rmat_graph",
        "save_graph",
        "uniform_degree_edges",
        "webcrawl_graph",
        "CARVER",
        "FRANKLIN",
        "HOPPER",
        "MachineConfig",
        "RmatVolumeModel",
        "cost_1d",
        "cost_2d",
        "gteps",
        "Graph500Result",
        "run_graph500",
        "ProcessorGrid",
        "run_spmd",
        "Tracer",
        "critical_path",
        "perf_diff",
        "run_report",
        "write_chrome_trace",
        "write_run_report",
        "__version__",
    ]
