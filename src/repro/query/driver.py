"""Batched-query driver: launch, stitch, validate, report.

:func:`run_query` is to the query families what
:func:`repro.core.run_bfs` is to the BFS families: it validates a
:class:`~repro.core.runner.RunConfig`, launches the registered
:class:`~repro.core.engine.AlgorithmStep` plugin through the same
resilient SPMD driver (``_run_resilient`` + ``traversal_body`` — crash
restart, tracing and checkpointing all included), stitches the per-rank
outputs, and wraps them in a :class:`QueryResult` whose shape
``run_report``/``perf-diff`` understand.

Kind dispatch (``AlgorithmSpec.kind``):

* ``msbfs``    — one engine run, 2-D lane-column results;
* ``cc``       — one self-seeding engine run; labels canonicalized to the
  component's minimum original vertex id;
* ``sssp``     — one engine run per source, stacked into lane columns
  (modeled times accumulate across the batch);
* ``landmark`` — offline landmark selection + one internal ``msbfs-1d``
  sweep, returning a cached :class:`~repro.query.landmark.LandmarkIndex`.

``repro.core.runner`` is imported lazily: the registry imports the step
classes from this package, so a module-level import here would cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.graphs.graph import Graph
from repro.query.landmark import DEFAULT_LANDMARKS, LandmarkIndex, select_landmarks
from repro.query.msbfs import WORD_LANES
from repro.query.serial import cc_serial, msbfs_serial, sssp_serial
from repro.query.sssp import DEFAULT_DELTA, DEFAULT_WEIGHT_MAX, edge_weights
from repro.sparse.semiring import INF


@dataclass
class QueryResult:
    """Output of one batched query plus its simulation record.

    ``levels``/``parents`` are ``(n, batch)`` lane columns for the
    batched kinds (``msbfs``/``sssp``/``landmark``) and 1-D arrays for
    ``cc`` (first-touch level and component label).  Attribute names
    deliberately mirror :class:`~repro.core.runner.BFSResult` so
    :func:`repro.obs.run_report` accepts either.
    """

    levels: np.ndarray
    parents: np.ndarray
    sources: np.ndarray
    algorithm: str
    kind: str
    nranks: int
    threads: int
    nlevels: int
    batch: int
    m_traversed: int
    time_total: float = 0.0
    time_comm: float = 0.0
    time_comp: float = 0.0
    stats: object = None
    meta: dict = field(default_factory=dict)

    @property
    def source(self) -> int:
        """Representative source (the first lane's), for report headers."""
        return int(self.sources[0]) if self.sources.size else -1

    @property
    def modeled_cores(self) -> int:
        return self.nranks * self.threads

    def lane(self, b: int) -> tuple[np.ndarray, np.ndarray]:
        """One lane's ``(levels, parents)`` as flat single-source arrays."""
        if self.levels.ndim != 2:
            raise ValueError(f"{self.kind} results carry no lanes")
        return self.levels[:, b], self.parents[:, b]

    def gteps(self) -> float:
        """Traversed-edges-per-second rate in billions, batch-aggregate."""
        if self.time_total <= 0:
            raise ValueError("untimed run: pass a machine to run_query for TEPS")
        return self.m_traversed / self.time_total / 1e9

    def queries_per_second(self) -> float:
        """Modeled query throughput: the batch amortizes one traversal."""
        if self.time_total <= 0:
            raise ValueError("untimed run: pass a machine to run_query")
        return self.batch / self.time_total


def run_query(graph: Graph, sources=None, config=None, **kwargs) -> QueryResult:
    """Run one batched query of ``graph`` per ``config``.

    Either pass a prebuilt :class:`~repro.core.runner.RunConfig` via
    ``config``, or keyword options exactly as :func:`~repro.core.run_bfs`
    takes them (plus the query fields ``sources``/``sssp_delta``/
    ``weight_max``/``weight_seed``/``landmarks``).  ``sources`` — up to
    64 vertex ids in the caller's labels — may be given positionally for
    convenience; it is folded into the config.
    """
    from repro.core import runner

    if config is None:
        kwargs.setdefault("algorithm", "msbfs-1d")
        if sources is not None:
            kwargs["sources"] = _as_source_tuple(sources)
        config = runner.RunConfig(**kwargs)
    else:
        if kwargs:
            raise TypeError("pass either config= or keyword options, not both")
        if sources is not None:
            config = replace(config, sources=_as_source_tuple(sources))
    resolved = config.resolve()
    kind = resolved.spec.kind
    if kind == "bfs":
        raise ValueError(
            f"{config.algorithm} is a single-source BFS; use repro.core.run_bfs"
        )
    if kind == "msbfs":
        return _run_msbfs(graph, config, resolved)
    if kind == "cc":
        return _run_cc(graph, config, resolved)
    if kind == "sssp":
        return _run_sssp(graph, config, resolved)
    if kind == "landmark":
        return _run_landmark(graph, config, resolved)
    raise ValueError(f"unknown query kind {kind!r}")  # pragma: no cover


def _as_source_tuple(sources) -> tuple:
    arr = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    return tuple(int(s) for s in arr)


def _require_sources(graph: Graph, config) -> np.ndarray:
    if not config.sources:
        raise ValueError(
            f"{config.algorithm} needs explicit sources; pass up to "
            f"{WORD_LANES} vertex ids"
        )
    sources = np.asarray(config.sources, dtype=np.int64)
    if not 1 <= sources.size <= WORD_LANES:
        raise ValueError(
            f"batch size must be in [1, {WORD_LANES}], got {sources.size}"
        )
    bad = (sources < 0) | (sources >= graph.n)
    if bad.any():
        raise ValueError(
            f"sources out of range [0, {graph.n}): {sources[bad].tolist()}"
        )
    return sources


def _launch(graph, config, resolved, step_args, step_kwargs):
    """One resilient SPMD engine run; returns (spmd, fault_meta, extras)."""
    from repro.core.runner import NetworkCostModel, _run_resilient, traversal_body

    machine, threads = resolved.machine, resolved.threads
    cost_model = (
        NetworkCostModel(machine, threads=threads, total_ranks=config.nprocs)
        if machine is not None
        else None
    )
    engine_kwargs = dict(
        machine=machine,
        threads=threads,
        trace=config.trace,
        tracer=config.tracer,
        metrics=config.metrics,
    )
    return _run_resilient(
        config.nprocs,
        traversal_body,
        (resolved.spec.step, step_args, step_kwargs),
        engine_kwargs,
        cost_model,
        config.faults,
        config.checkpoint_every,
        config.max_retries,
        runtime=config.runtime,
        timeout=config.spmd_timeout,
    )


def _stitch(graph, spmd, columns: int | None):
    """Reassemble per-rank levels/parents into full internal arrays."""
    shape = (graph.n,) if columns is None else (graph.n, columns)
    levels = np.empty(shape, dtype=np.int64)
    parents = np.empty(shape, dtype=np.int64)
    for rank_out in spmd.returns:
        levels[rank_out["lo"] : rank_out["hi"]] = rank_out["levels"]
        parents[rank_out["lo"] : rank_out["hi"]] = rank_out["parents"]
    nlevels = max(r["nlevels"] for r in spmd.returns)
    return levels, parents, nlevels


def _base_meta(graph, config, resolved, fault_meta, level_profile) -> dict:
    return {
        "graph": graph.name,
        "machine": resolved.machine.name if resolved.machine is not None else None,
        "kernel": config.kernel,
        "dedup_sends": config.dedup_sends,
        "codec": getattr(config.codec, "name", config.codec),
        "sieve": bool(config.sieve),
        "vector_dist": config.vector_dist,
        "level_profile": level_profile,
        "tracer": config.tracer,
        "metrics": config.metrics,
        "faults": fault_meta,
    }


def _level_profile(config, resolved, spmd):
    from repro.core.runner import _merge_traces

    if config.trace and "trace-profile" in resolved.spec.capabilities:
        return _merge_traces([r["trace"] for r in spmd.returns])
    return None


def _run_msbfs(graph: Graph, config, resolved) -> QueryResult:
    from repro.core.validate import count_traversed_edges

    sources = _require_sources(graph, config)
    srcs_internal = np.array(
        [int(np.asarray(graph.to_internal(int(s)))) for s in sources],
        dtype=np.int64,
    )
    step_kwargs = dict(dedup_sends=config.dedup_sends, codec=config.codec)
    spmd, fault_meta = _launch(
        graph, config, resolved, (graph.csr, srcs_internal), step_kwargs
    )
    levels_int, parents_int, nlevels = _stitch(graph, spmd, sources.size)

    if config.validate:
        ref_levels, ref_parents = msbfs_serial(graph.csr, srcs_internal)
        if not (
            np.array_equal(levels_int, ref_levels)
            and np.array_equal(parents_int, ref_parents)
        ):
            raise AssertionError(
                "msbfs lanes diverge from the per-lane serial oracle"
            )

    m_traversed = sum(
        count_traversed_edges(graph.csr, levels_int[:, b], graph.m_input)
        for b in range(sources.size)
    )
    meta = _base_meta(
        graph, config, resolved, fault_meta, _level_profile(config, resolved, spmd)
    )
    meta["sources"] = sources.tolist()
    return QueryResult(
        levels=graph.relabel_level_array(levels_int),
        parents=graph.relabel_vertex_array(parents_int),
        sources=sources,
        algorithm=config.algorithm,
        kind="msbfs",
        nranks=config.nprocs,
        threads=resolved.threads,
        nlevels=nlevels,
        batch=int(sources.size),
        m_traversed=int(m_traversed),
        time_total=spmd.stats.makespan if spmd.stats is not None else 0.0,
        time_comm=spmd.stats.max_mpi_time if spmd.stats is not None else 0.0,
        time_comp=spmd.stats.max_compute_time if spmd.stats is not None else 0.0,
        stats=spmd.stats,
        meta=meta,
    )


def _canonical_components(n: int, comp: np.ndarray) -> np.ndarray:
    """Remap each component's label to its minimum member vertex id."""
    smallest = np.full(n, n, dtype=np.int64)
    np.minimum.at(smallest, comp, np.arange(n, dtype=np.int64))
    return smallest[comp]


def _run_cc(graph: Graph, config, resolved) -> QueryResult:
    from repro.core.validate import count_traversed_edges

    if graph.directed:
        raise ValueError("cc requires an undirected graph")
    if config.sources:
        raise ValueError(
            "cc seeds itself from the unlabeled vertices; sources apply to "
            "msbfs-1d/sssp-delta"
        )
    step_kwargs = dict(codec=config.codec)
    spmd, fault_meta = _launch(graph, config, resolved, (graph.csr,), step_kwargs)
    levels_int, comp_int, nlevels = _stitch(graph, spmd, None)

    if config.validate and not np.array_equal(comp_int, cc_serial(graph.csr)):
        raise AssertionError("components diverge from the serial sweep")

    comp = _canonical_components(
        graph.n, np.asarray(graph.relabel_vertex_array(comp_int))
    )
    meta = _base_meta(
        graph, config, resolved, fault_meta, _level_profile(config, resolved, spmd)
    )
    meta["components"] = int(np.unique(comp).size)
    return QueryResult(
        levels=graph.relabel_level_array(levels_int),
        parents=comp,
        sources=np.empty(0, dtype=np.int64),
        algorithm=config.algorithm,
        kind="cc",
        nranks=config.nprocs,
        threads=resolved.threads,
        nlevels=nlevels,
        batch=WORD_LANES,
        m_traversed=count_traversed_edges(graph.csr, levels_int, graph.m_input),
        time_total=spmd.stats.makespan if spmd.stats is not None else 0.0,
        time_comm=spmd.stats.max_mpi_time if spmd.stats is not None else 0.0,
        time_comp=spmd.stats.max_compute_time if spmd.stats is not None else 0.0,
        stats=spmd.stats,
        meta=meta,
    )


def _run_sssp(graph: Graph, config, resolved) -> QueryResult:
    from repro.core.validate import count_traversed_edges

    sources = _require_sources(graph, config)
    delta = DEFAULT_DELTA if config.sssp_delta is None else config.sssp_delta
    weight_max = (
        DEFAULT_WEIGHT_MAX if config.weight_max is None else config.weight_max
    )
    weight_seed = 0 if config.weight_seed is None else config.weight_seed
    weights = edge_weights(graph.csr, weight_max=weight_max, seed=weight_seed)

    n, k = graph.n, sources.size
    levels_int = np.empty((n, k), dtype=np.int64)
    parents_int = np.empty((n, k), dtype=np.int64)
    nlevels = 0
    time_total = time_comm = time_comp = 0.0
    m_traversed = 0
    stats = None
    fault_meta = None
    lane_profiles = []
    for b, s in enumerate(sources):
        src_internal = int(np.asarray(graph.to_internal(int(s))))
        step_kwargs = dict(weights=weights, delta=delta, codec=config.codec)
        spmd, fault_meta = _launch(
            graph, config, resolved, (graph.csr, src_internal), step_kwargs
        )
        dist, parents, levels_run = _stitch(graph, spmd, None)
        dist = np.where(dist >= INF, np.int64(-1), dist)
        if config.validate:
            ref_dist, ref_parents = sssp_serial(graph.csr, src_internal, weights)
            if not (
                np.array_equal(dist, ref_dist)
                and np.array_equal(parents, ref_parents)
            ):
                raise AssertionError(
                    f"sssp lane {b} diverges from the Dijkstra oracle"
                )
        levels_int[:, b] = dist
        parents_int[:, b] = parents
        nlevels = max(nlevels, levels_run)
        m_traversed += count_traversed_edges(graph.csr, dist, graph.m_input)
        if spmd.stats is not None:
            time_total += spmd.stats.makespan
            time_comm += spmd.stats.max_mpi_time
            time_comp += spmd.stats.max_compute_time
        stats = spmd.stats
        profile = _level_profile(config, resolved, spmd)
        if profile is not None:
            lane_profiles.append(profile)

    # One engine run per source: lane 0's profile stands as the
    # representative, the full set rides under "lane_profiles".
    meta = _base_meta(
        graph,
        config,
        resolved,
        fault_meta,
        lane_profiles[0] if lane_profiles else None,
    )
    if lane_profiles:
        meta["lane_profiles"] = lane_profiles
    meta.update(
        sources=sources.tolist(),
        sssp_delta=delta,
        weight_max=weight_max,
        weight_seed=weight_seed,
    )
    return QueryResult(
        levels=graph.relabel_level_array(levels_int),
        parents=graph.relabel_vertex_array(parents_int),
        sources=sources,
        algorithm=config.algorithm,
        kind="sssp",
        nranks=config.nprocs,
        threads=resolved.threads,
        nlevels=nlevels,
        batch=int(k),
        m_traversed=int(m_traversed),
        time_total=time_total,
        time_comm=time_comm,
        time_comp=time_comp,
        stats=stats,
        meta=meta,
    )


def _run_landmark(graph: Graph, config, resolved) -> QueryResult:
    if graph.directed:
        raise ValueError("landmark requires an undirected graph")
    if config.sources:
        raise ValueError(
            "landmark selects its own sources; set landmarks=<count> instead"
        )
    k = DEFAULT_LANDMARKS if config.landmarks is None else config.landmarks
    landmarks = select_landmarks(graph, min(k, max(graph.n, 1)))
    inner = replace(
        config,
        algorithm="msbfs-1d",
        sources=tuple(int(v) for v in landmarks),
        landmarks=None,
    )
    res = run_query(graph, config=inner)
    index = LandmarkIndex(landmarks=landmarks, dist=res.levels)
    meta = dict(res.meta)
    meta["landmarks"] = landmarks.tolist()
    meta["index"] = index
    return QueryResult(
        levels=res.levels,
        parents=res.parents,
        sources=landmarks,
        algorithm=config.algorithm,
        kind="landmark",
        nranks=res.nranks,
        threads=res.threads,
        nlevels=res.nlevels,
        batch=res.batch,
        m_traversed=res.m_traversed,
        time_total=res.time_total,
        time_comm=res.time_comm,
        time_comp=res.time_comp,
        stats=res.stats,
        meta=meta,
    )
