"""Batched multi-source query subsystem.

One traversal, up to 64 queries: the lane word (one ``uint64`` per
vertex, bit ``b`` = source ``b``'s state) turns the paper's SpMSV into a
bit-parallel multi-source kernel, and a small semiring zoo builds
batched BFS (``msbfs-1d``), connected components (``cc``), bucketed
min-plus SSSP (``sssp-delta``) and a landmark distance index
(``landmark``) on top of it — all as
:class:`~repro.core.engine.AlgorithmStep` plugins under the unchanged
traversal engine.  :func:`run_query` is the driver entry point.
"""

from repro.query.cc import ConnectedComponents1D, close_lane_classes
from repro.query.driver import QueryResult, run_query
from repro.query.landmark import (
    DEFAULT_LANDMARKS,
    LandmarkIndex,
    select_landmarks,
)
from repro.query.msbfs import (
    WORD_LANES,
    MSBFS1D,
    lane_bit,
    prune_lane_candidates,
)
from repro.query.serial import cc_serial, msbfs_serial, sssp_serial
from repro.query.sssp import (
    DEFAULT_DELTA,
    DEFAULT_WEIGHT_MAX,
    DeltaSSSP1D,
    edge_weights,
    gather_weighted,
)

__all__ = [
    "MSBFS1D",
    "WORD_LANES",
    "ConnectedComponents1D",
    "DEFAULT_DELTA",
    "DEFAULT_LANDMARKS",
    "DEFAULT_WEIGHT_MAX",
    "DeltaSSSP1D",
    "LandmarkIndex",
    "QueryResult",
    "cc_serial",
    "close_lane_classes",
    "edge_weights",
    "gather_weighted",
    "lane_bit",
    "msbfs_serial",
    "prune_lane_candidates",
    "run_query",
    "select_landmarks",
    "sssp_serial",
]
