"""Landmark distance index: offline 64-way sweep, online O(k) estimates.

The production query pattern behind the batched kernel (Sharma,
arXiv:2003.04826 motivates it): pick up to 64 high-coverage *landmarks*,
run one ``msbfs-1d`` traversal with all of them as sources, and cache the
resulting ``(n, k)`` hop-distance table.  A point-to-point distance query
then costs ``O(k)`` array ops against the cache instead of a traversal:

* upper bound  ``min_L d(u, L) + d(L, v)``  (triangle inequality),
* lower bound  ``max_L |d(u, L) - d(v, L)|``  (reverse triangle),

exact whenever an endpoint *is* a landmark (its own table row is zero).
Undirected graphs only — the bounds assume ``d(u, L) == d(L, u)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.query.msbfs import WORD_LANES

#: Default landmark count; one lane word holds them all.
DEFAULT_LANDMARKS = 16


def select_landmarks(graph: Graph, k: int = DEFAULT_LANDMARKS) -> np.ndarray:
    """Pick ``k`` landmarks by descending degree (ties to smaller id).

    High-degree hubs cover the most shortest paths on R-MAT-like graphs
    (the classic ALT heuristic).  Deterministic: the same graph always
    yields the same landmark set, in selection order (lane order).  Falls
    back to the smallest vertex ids when the graph has fewer nonisolated
    vertices than ``k``.
    """
    if not 1 <= k <= WORD_LANES:
        raise ValueError(f"landmark count must be in [1, {WORD_LANES}], got {k}")
    k = min(k, graph.n)
    degrees = graph.relabel_level_array(graph.csr.degrees())
    order = np.lexsort((np.arange(graph.n, dtype=np.int64), -degrees))
    chosen = order[degrees[order] > 0][:k]
    if chosen.size < k:
        rest = np.setdiff1d(
            np.arange(graph.n, dtype=np.int64), chosen, assume_unique=False
        )
        chosen = np.concatenate([chosen, rest[: k - chosen.size]])
    return chosen.astype(np.int64)


@dataclass(frozen=True)
class LandmarkIndex:
    """Cached landmark table answering distance-estimation queries.

    ``dist[v, i]`` is the hop distance from vertex ``v`` to
    ``landmarks[i]`` in the caller's (original) labels, -1 when
    unreachable.
    """

    landmarks: np.ndarray
    dist: np.ndarray

    @property
    def k(self) -> int:
        return int(self.landmarks.size)

    @property
    def memory_words(self) -> int:
        """Cache footprint in 64-bit words."""
        return int(self.dist.size + self.landmarks.size)

    def bounds(self, u: int, v: int) -> tuple[int, int]:
        """Lower/upper bounds on ``d(u, v)``; ``(0, -1)`` when no landmark
        reaches both endpoints (on an undirected graph that means the
        endpoints are in different components, so the true distance is
        infinite and the empty upper bound is honest)."""
        if u == v:
            return 0, 0
        du, dv = self.dist[u], self.dist[v]
        ok = (du >= 0) & (dv >= 0)
        if not ok.any():
            return 0, -1
        du, dv = du[ok], dv[ok]
        return int(np.abs(du - dv).max()), int((du + dv).min())

    def estimate(self, u: int, v: int) -> int:
        """Distance estimate (the upper bound; -1 when unknown).

        Exact when ``u`` or ``v`` is a landmark: the landmark's own
        column contributes ``d(u, v) + 0`` to the upper bound and the
        reverse triangle pins the lower bound to the same value.
        """
        return self.bounds(u, v)[1]
