"""Connected components via repeated 64-way reachability (``cc``).

Undirected components fall out of the batched reachability kernel: seed
the 64 globally-smallest unlabeled vertices into the lanes of one
:data:`~repro.sparse.semiring.BIT_OR` sweep, run it to fixpoint, then
label everything each lane reached and reseed the next 64 — one engine
run covers the whole graph in ``ceil(#components / 64)`` batches.

Two seeds of one batch may share a component; their lanes co-occur on at
least one vertex word.  The finalize step closes that co-occurrence
relation (a tiny 64x64 transitive closure on lane masks, Allreduced with
a bitwise-OR) and labels each class by its smallest seed.  Seeds are
always the smallest unlabeled ids, so every component's label ends up
being its minimum vertex id — a canonical, shuffle-independent labeling
(the driver re-canonicalizes in original labels after stitching).

The wire is the ordinary pair exchange with the ``uint64`` lane word
(viewed as int64) in the parent column, so all codecs price it.
"""

from __future__ import annotations

import numpy as np

from repro.comm import CommChannel
from repro.core.engine import LevelOutcome, TraversalEngine
from repro.core.engine import partition_ranges as _partition_ranges
from repro.core.partition import Partition1D
from repro.graphs.csr import CSR
from repro.query.msbfs import WORD_LANES, lane_bit
from repro.sparse import BIT_OR, SPA


def close_lane_classes(masks: np.ndarray) -> np.ndarray:
    """Transitive closure of the lane co-occurrence masks.

    ``masks[b]`` ORs the lane words of every vertex lane ``b`` reached
    (self bit included).  Two lanes sharing any vertex share a component;
    closure makes each row the full lane set of its component class.
    At most 64x64 bits — a few python-level passes, never on the hot path.
    """
    masks = masks.copy()
    changed = True
    while changed:
        changed = False
        for b in range(masks.size):
            merged = masks[b]
            for c in range(masks.size):
                if masks[b] & lane_bit(c):
                    merged |= masks[c]
            if merged != masks[b]:
                masks[b] = merged
                changed = True
    return masks


class ConnectedComponents1D:
    """Batched-reachability CC interior, as an engine step plugin.

    ``parents`` doubles as the component-label array (the engine marshals
    it per rank); ``levels`` records the level a vertex was first
    reached, a per-batch diagnostic.  ``termination_sync`` returning 0
    means *no unlabeled vertices remain anywhere*: a drained batch
    finalizes labels and reseeds instead of terminating.
    """

    result_keys = ("lo", "hi")
    charger_kwargs: dict = {}

    def __init__(self, csr: CSR, codec="raw"):
        self.csr = csr
        self.codec = codec

    def setup(self, engine: TraversalEngine) -> None:
        csr = self.csr
        comm = engine.comm
        self.comm = comm
        self.charger = engine.charger
        self.obs = engine.obs
        self.threads = engine.threads
        self.part = Partition1D(csr.n, comm.size)
        self.lo, self.hi = self.part.range_of(comm.rank)
        self.nloc = self.hi - self.lo
        self.channel = CommChannel(
            comm,
            _partition_ranges(self.part, comm.size),
            codec=self.codec,
            sieve=None,
            charger=engine.charger,
            tracer=engine.obs,
            metrics=engine.metrics,
            faults=engine.faults,
        )
        #: Component label per owned vertex (the marshaled "parents").
        self.comp = np.full(self.nloc, -1, dtype=np.int64)
        self.parents = self.comp
        self.levels = np.full(self.nloc, -1, dtype=np.int64)
        self.visit = np.zeros(self.nloc, dtype=np.uint64)
        self.fwords = np.zeros(self.nloc, dtype=np.uint64)
        self.frontier = np.empty(0, dtype=np.int64)
        self.seeds = np.empty(0, dtype=np.int64)
        self.batch_index = 0
        self.spa = SPA(self.nloc, BIT_OR)

    def vertex_range(self) -> tuple[int, int]:
        return (self.lo, self.hi)

    def initial_sync(self) -> int:
        return self._reseed()

    def begin_level(self, level: int) -> dict:
        return {"level": level, "batch": self.batch_index}

    def step(self, level: int) -> LevelOutcome:
        csr, charger, obs = self.csr, self.charger, self.obs
        lo, nloc = self.lo, self.nloc
        frontier = self.frontier
        with obs.span("cc-scan"):
            targets, sources = csr.gather(frontier)
            words = self.fwords[sources - lo]
            charger.random(frontier.size, ws_words=2 * max(nloc, 1))
            charger.stream(2.0 * targets.size, edges_scanned=float(targets.size))

        # Lane identity is irrelevant to CC, so the sender aggregates to
        # one ORed word per target — the BIT_OR reduction itself.
        candidates = int(targets.size)
        with obs.span("cc-dedup"):
            targets, words = BIT_OR.reduce_sorted_runs(targets, words)
            charger.sort(candidates)
        with obs.span("cc-pack"):
            owners = self.part.owner_of(targets)
            send, xinfo = self.channel.pack_pairs(
                targets, words.view(np.int64), owners
            )
            charger.intops(2.0 * xinfo.pairs)
            charger.stream(2.0 * xinfo.pairs)
            charger.count(
                candidates=float(candidates), unique_sends=float(xinfo.pairs)
            )

        with obs.span("cc-exchange"):
            rv, rp = self.channel.exchange_pairs(send, xinfo, level=level)

        with obs.span("cc-update"):
            charger.random(float(rv.size), ws_words=max(nloc, 1))
            rw = rp.view(np.uint64)
            fresh = rw & ~self.visit[rv - lo]
            alive = fresh != 0
            rv, fresh = rv[alive], fresh[alive]
            self.spa.accumulate(rv - lo, fresh)
            pos, won = self.spa.extract_and_reset()
            self.visit[pos] |= won
            first_touch = pos[self.levels[pos] < 0]
            self.levels[first_touch] = level
            self.fwords.fill(0)
            self.fwords[pos] = won
            self.frontier = pos + lo
            if self.threads > 1:
                charger.thread_merge(float(self.frontier.size))
            charger.stream(float(self.frontier.size))

        return LevelOutcome(
            candidates=candidates,
            words_sent=int(2 * xinfo.pairs),
            wire_words=int(xinfo.wire_words),
            sieve_dropped=0,
            extra={"batch": self.batch_index},
        )

    def termination_sync(self) -> int:
        alive = self.comm.allreduce(int(self.frontier.size))
        if alive:
            return alive
        self._finalize_batch()
        return self._reseed()

    def _finalize_batch(self) -> None:
        """Label everything the drained batch reached, then clear it."""
        if self.seeds.size == 0:
            return
        k = int(self.seeds.size)
        masks = np.zeros(k, dtype=np.uint64)
        for b in range(k):
            rows = (self.visit & lane_bit(b)) != 0
            if rows.any():
                masks[b] = np.bitwise_or.reduce(self.visit[rows])
            masks[b] |= lane_bit(b)
        masks = self.comm.allreduce(masks, op=np.bitwise_or)
        masks = close_lane_classes(masks)
        canon = np.empty(k, dtype=np.int64)
        for b in range(k):
            members = [c for c in range(k) if masks[b] & lane_bit(c)]
            canon[b] = int(self.seeds[members].min())
        for b in range(k):
            rows = (self.visit & lane_bit(b)) != 0
            self.comp[rows] = canon[b]
        self.charger.intops(float(k * k))
        self.visit.fill(0)

    def _reseed(self) -> int:
        """Seed the next batch with the 64 smallest unlabeled vertices."""
        self.batch_index += 1
        mine = np.flatnonzero(self.comp < 0)[:WORD_LANES] + self.lo
        proposals = self.comm.allgatherv(mine.astype(np.int64), concat=True)
        seeds = np.sort(proposals)[:WORD_LANES]
        self.seeds = seeds
        self.fwords.fill(0)
        if seeds.size == 0:
            self.frontier = np.empty(0, dtype=np.int64)
            return 0
        owned = seeds[(self.lo <= seeds) & (seeds < self.hi)]
        for b, s in enumerate(seeds):
            s = int(s)
            if self.lo <= s < self.hi:
                self.visit[s - self.lo] |= lane_bit(b)
                self.fwords[s - self.lo] |= lane_bit(b)
                if self.levels[s - self.lo] < 0:
                    self.levels[s - self.lo] = 0
        self.frontier = owned
        return int(seeds.size)

    def state(self) -> dict:
        return {}

    def restore(self, snapshot: dict) -> None:
        return None
