"""Serial oracles for the batched query families.

Structurally independent references for the property tests and for
``run_query(..., validate=True)``:

* :func:`msbfs_serial` — 64 independent :func:`~repro.core.serial.bfs_serial`
  runs stacked into lane columns (the bit-parallel run must match this
  lane for lane, bit for bit);
* :func:`cc_serial` — plain BFS component sweep labeling every component
  by its minimum vertex id;
* :func:`sssp_serial` — binary-heap Dijkstra plus the closed-form
  deterministic parent rule ``parents[v] = max {u : dist[u] + w(u, v) ==
  dist[v]}``.

All operate on the *internal* CSR labeling, like their BFS counterpart.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.serial import bfs_serial
from repro.graphs.csr import CSR


def msbfs_serial(
    csr: CSR, sources: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-lane serial BFS; returns ``(n, k)`` levels and parents."""
    sources = np.asarray(sources, dtype=np.int64)
    levels = np.empty((csr.n, sources.size), dtype=np.int64)
    parents = np.empty((csr.n, sources.size), dtype=np.int64)
    for b, s in enumerate(sources):
        levels[:, b], parents[:, b] = bfs_serial(csr, int(s))
    return levels, parents


def cc_serial(csr: CSR) -> np.ndarray:
    """Component label per vertex: the minimum vertex id of its component."""
    comp = np.full(csr.n, -1, dtype=np.int64)
    for v in range(csr.n):
        if comp[v] >= 0:
            continue
        # v is the smallest unlabeled vertex, hence its component's min.
        frontier = np.array([v], dtype=np.int64)
        comp[v] = v
        while frontier.size:
            targets, _src = csr.gather(frontier)
            targets = np.unique(targets)
            targets = targets[comp[targets] < 0]
            comp[targets] = v
            frontier = targets
    return comp


def sssp_serial(
    csr: CSR, source: int, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Dijkstra distances plus closed-form (select, max) parents."""
    if not 0 <= source < csr.n:
        raise ValueError(f"source {source} out of range [0, {csr.n})")
    dist = np.full(csr.n, -1, dtype=np.int64)
    dist[source] = 0
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d != dist[u]:
            continue
        lo, hi = int(csr.indptr[u]), int(csr.indptr[u + 1])
        for k in range(lo, hi):
            v = int(csr.indices[k])
            nd = d + int(weights[k])
            if dist[v] < 0 or nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    parents = np.full(csr.n, -1, dtype=np.int64)
    parents[source] = source
    u = np.repeat(np.arange(csr.n, dtype=np.int64), np.diff(csr.indptr))
    v = csr.indices
    ok = (dist[u] >= 0) & (dist[v] >= 0) & (dist[u] + weights == dist[v])
    ok &= v != source
    np.maximum.at(parents, v[ok], u[ok])
    return dist, parents
