"""Bit-parallel multi-source BFS with 1D partitioning (``msbfs-1d``).

One traversal advances up to 64 independent BFS searches at once: every
vertex carries a single ``uint64`` *lane word* in which bit *b* is source
*b*'s visited flag, and the per-level combine is one scatter-OR over the
:data:`~repro.sparse.semiring.BIT_OR` semiring (the SPA forms the lane
union exactly as it forms the 2D column union).  Batching amortizes the
per-level latency terms — the Alltoallv startup and the termination
Allreduce fire once per level for the whole batch instead of once per
query — which is where the `query-throughput` experiment's modeled
queries/sec win comes from.

Per-lane *exactness* is preserved: levels and parents of lane *b* are
bit-identical to a single-source run from source *b* (the paper's
(select, max) parent rule applied within each lane), which
``tests/test_query.py`` locks in at batch 64.

Wire format: ``(target, source, lane-word)`` triples through
:meth:`~repro.comm.CommChannel.pack_triples`.  The sender-side
*lane-dominance prune* (:func:`prune_lane_candidates`) plays the role of
the 1D dedup: a candidate ships only if it is the maximum-source
contributor for at least one lane of its target, so at most 64 candidates
per target survive and owner-side per-lane (select, max) results are
unchanged.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.comm import CommChannel
from repro.core.engine import LevelOutcome, TraversalEngine
from repro.core.engine import partition_ranges as _partition_ranges
from repro.core.frontier import dedup_candidates
from repro.core.partition import Partition1D
from repro.graphs.csr import CSR
from repro.sparse import BIT_OR, SPA

#: Lane capacity of one machine word; the hard batch ceiling.
WORD_LANES = 64


def lane_bit(b: int) -> np.uint64:
    """The lane mask of batched source ``b`` (numpy-safe uint64 shift)."""
    return np.uint64(1) << np.uint64(b)


def prune_lane_candidates(
    targets: np.ndarray, sources: np.ndarray, words: np.ndarray, nlanes: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sender-side lane-dominance prune of ``(target, source, word)`` triples.

    Keeps a candidate iff it is the maximum-source contributor of at
    least one lane of its target — the winners of every lane's
    (select, max) race survive, so the owner computes identical per-lane
    parents from the pruned set, and at most ``nlanes`` candidates per
    target remain (the batched analogue of the 1D ``dedup_sends``).
    Survivors keep their full lane words: a loser bit riding along on a
    winner is harmless because the lane's true winner is also present
    and wins the owner-side reduction again.

    Output is sorted by (target asc, source desc) — deterministic.
    """
    return kernels.lane_prune(targets, sources, words, nlanes)


class MSBFS1D:
    """64-way batched BFS level interior, as an engine step plugin.

    The rank's traversal arrays are 2-D: ``levels``/``parents`` have one
    column per lane, and ``visit``/``fwords`` pack the 64 visited and
    frontier flags of each owned vertex into one ``uint64`` word.  A
    checkpoint snapshots the full lane word per vertex (``state()``), so
    crash-restart resumes every lane consistently.
    """

    result_keys = ("lo", "hi")
    charger_kwargs: dict = {}

    def __init__(
        self,
        csr: CSR,
        sources: np.ndarray,
        dedup_sends: bool = True,
        codec="raw",
    ):
        sources = np.asarray(sources, dtype=np.int64)
        if not 1 <= sources.size <= WORD_LANES:
            raise ValueError(
                f"batch size must be in [1, {WORD_LANES}], got {sources.size}"
            )
        self.csr = csr
        self.sources = sources
        self.nlanes = int(sources.size)
        self.dedup_sends = dedup_sends
        self.codec = codec

    def setup(self, engine: TraversalEngine) -> None:
        csr = self.csr
        comm = engine.comm
        self.comm = comm
        self.charger = engine.charger
        self.obs = engine.obs
        self.metrics = engine.metrics
        self.threads = engine.threads
        self.part = Partition1D(csr.n, comm.size)
        self.lo, self.hi = self.part.range_of(comm.rank)
        self.nloc = self.hi - self.lo
        self.channel = CommChannel(
            comm,
            _partition_ranges(self.part, comm.size),
            codec=self.codec,
            sieve=None,
            charger=engine.charger,
            tracer=engine.obs,
            metrics=engine.metrics,
            faults=engine.faults,
        )

        self.levels = np.full((self.nloc, self.nlanes), -1, dtype=np.int64)
        self.parents = np.full((self.nloc, self.nlanes), -1, dtype=np.int64)
        self.visit = np.zeros(self.nloc, dtype=np.uint64)
        self.fwords = np.zeros(self.nloc, dtype=np.uint64)
        for b, s in enumerate(self.sources):
            s = int(s)
            if self.lo <= s < self.hi:
                self.levels[s - self.lo, b] = 0
                self.parents[s - self.lo, b] = s
                self.visit[s - self.lo] |= lane_bit(b)
                self.fwords[s - self.lo] |= lane_bit(b)
        self.frontier = np.flatnonzero(self.fwords) + self.lo
        self.spa = SPA(self.nloc, BIT_OR)

    def vertex_range(self) -> tuple[int, int]:
        return (self.lo, self.hi)

    def initial_sync(self) -> None:
        # Like the 1D top-down step: level 1 always runs (some rank owns
        # at least one source, so the global frontier is never empty).
        return None

    def begin_level(self, level: int) -> dict:
        return {"level": level, "lanes": self.nlanes}

    def step(self, level: int) -> LevelOutcome:
        csr, charger, obs = self.csr, self.charger, self.obs
        lo, nloc = self.lo, self.nloc
        frontier = self.frontier
        # 1. Enumerate adjacencies; every gathered edge carries its
        #    frontier vertex's lane word (which lanes reached it anew).
        with obs.span("ms-scan"):
            targets, sources = csr.gather(frontier)
            words = self.fwords[sources - lo]
            charger.random(frontier.size, ws_words=2 * max(nloc, 1))
            charger.stream(3.0 * targets.size, edges_scanned=float(targets.size))

        # 2. Lane-dominance prune (the batched dedup): at most one
        #    surviving candidate per (target, lane).
        candidates = int(targets.size)
        if self.dedup_sends:
            with obs.span("ms-dedup"):
                targets, sources, words = prune_lane_candidates(
                    targets, sources, words, self.nlanes
                )
                charger.sort(candidates)
                self.metrics.inc("lane_prune_candidates", float(candidates))
                self.metrics.inc("lane_prune_kept", float(targets.size))
        with obs.span("ms-pack"):
            owners = self.part.owner_of(targets)
            send, xinfo = self.channel.pack_triples(
                targets, sources, words.view(np.int64), owners
            )
            charger.intops(3.0 * xinfo.pairs)
            charger.stream(3.0 * xinfo.pairs)
            charger.count(
                candidates=float(candidates), unique_sends=float(xinfo.pairs)
            )

        # 3. The level's single collective.
        with obs.span("ms-exchange"):
            rt, rs, rx = self.channel.exchange_triples(send, xinfo, level=level)

        # 4. Owner-side update: mask off already-visited lanes, form the
        #    per-vertex union of new lanes with the BIT_OR SPA, then
        #    resolve each active lane's (select, max) parent.
        with obs.span("ms-update"):
            charger.random(float(rt.size), ws_words=max(nloc, 1))
            rw = rx.view(np.uint64)
            fresh = rw & ~self.visit[rt - lo]
            alive = fresh != 0
            rt, rs, fresh = rt[alive], rs[alive], fresh[alive]
            self.spa.accumulate(rt - lo, fresh)
            pos, won = self.spa.extract_and_reset()
            self.visit[pos] |= won
            self.fwords.fill(0)
            self.fwords[pos] = won
            # Every fresh word only carries bits below nlanes, so the
            # per-lane candidate count is the total set-bit count.
            lane_ops = int(kernels.popcount(fresh).sum()) if fresh.size else 0
            for b in range(self.nlanes):
                mask = (fresh & lane_bit(b)) != 0
                if not mask.any():
                    continue
                tb, sb = dedup_candidates(rt[mask], rs[mask])
                self.levels[tb - lo, b] = level
                self.parents[tb - lo, b] = sb
            self.frontier = pos + lo
            charger.intops(2.0 * lane_ops)
            if self.threads > 1:
                charger.thread_merge(float(self.frontier.size))
            charger.stream(float(self.frontier.size))

        return LevelOutcome(
            candidates=candidates,
            words_sent=int(3 * xinfo.pairs),
            wire_words=int(xinfo.wire_words),
            sieve_dropped=0,
            extra={"lanes": self.nlanes},
        )

    def termination_sync(self) -> int:
        return self.comm.allreduce(int(self.frontier.size))

    def state(self) -> dict:
        # The full lane word per vertex: both the visited and the
        # frontier bits of all 64 lanes must survive a crash.
        return {"visit": self.visit, "fwords": self.fwords}

    def restore(self, snapshot: dict) -> None:
        self.visit[:] = snapshot["visit"]
        self.fwords[:] = snapshot["fwords"]
        return None
