"""Bucketed min-plus SSSP with 1D partitioning (``sssp-delta``).

Delta-stepping-lite over the :data:`~repro.sparse.semiring.MIN_PLUS`
semiring: pending vertices are bucketed by ``dist // delta``, every
engine level relaxes the globally-smallest bucket's frontier, and the
relaxations travel as ``(target, distance, source)`` triples through the
same wire seam as the batched BFS.  With nonnegative weights the minimum
pending bucket never decreases (a relaxation from bucket ``B`` lands at
``dist >= B * delta``), so the sweep is monotone and terminates; distances
are exact because the scheme is label-correcting — any vertex whose
distance improves re-enters the pending set.

Parents are deterministic: ``parents[v]`` is the *maximum* vertex ``u``
with ``dist[u] + w(u, v) == dist[v]`` — the (select, max) tie rule of the
BFS families transplanted to the tropical semiring — which the serial
Dijkstra oracle reproduces in closed form.

Graphs carry no stored weights, so :func:`edge_weights` derives a
deterministic, symmetric synthetic weight in ``[1, weight_max]`` for
every adjacency from a hash of the endpoint pair.
"""

from __future__ import annotations

import numpy as np

from repro.comm import CommChannel
from repro.core.engine import LevelOutcome, TraversalEngine
from repro.core.engine import partition_ranges as _partition_ranges
from repro.core.partition import Partition1D
from repro.graphs.csr import CSR
from repro.sparse.semiring import INF

#: Default synthetic-weight range and bucket width; ``delta`` near the
#: mean weight keeps buckets a few relaxation rounds deep.
DEFAULT_WEIGHT_MAX = 8
DEFAULT_DELTA = 4

#: Bucket sentinel for "no pending vertex on this rank".
_NO_BUCKET = INF

_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xC2B2AE3D27D4EB4F)
_MIX_C = np.uint64(0x165667B19E3779F9)


def edge_weights(csr: CSR, weight_max: int = DEFAULT_WEIGHT_MAX, seed: int = 0) -> np.ndarray:
    """Deterministic synthetic weight for every stored adjacency.

    ``weights[k]`` belongs to ``csr.indices[k]``; the hash mixes the
    *unordered* endpoint pair, so the two stored directions of an
    undirected edge always agree.  Values lie in ``[1, weight_max]``.
    """
    if weight_max < 1:
        raise ValueError(f"weight_max must be >= 1, got {weight_max}")
    u = np.repeat(
        np.arange(csr.n, dtype=np.int64), np.diff(csr.indptr)
    ).astype(np.uint64)
    v = csr.indices.astype(np.uint64)
    a, b = np.minimum(u, v), np.maximum(u, v)
    h = a * _MIX_A ^ b * _MIX_B ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF) * _MIX_C
    h ^= h >> np.uint64(33)
    h *= _MIX_B
    h ^= h >> np.uint64(29)
    return (h % np.uint64(weight_max)).astype(np.int64) + 1


def gather_weighted(
    csr: CSR, weights: np.ndarray, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:meth:`CSR.gather` that also returns the gathered edges' weights."""
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = csr.indptr[vertices]
    counts = csr.indptr[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    flat = np.repeat(starts, counts) + offsets
    return csr.indices[flat], np.repeat(vertices, counts), weights[flat]


def _best_per_target(
    targets: np.ndarray, dists: np.ndarray, sources: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Keep one candidate per target: minimum distance, ties to max source."""
    if targets.size == 0:
        return targets, dists, sources
    order = np.lexsort((-sources, dists, targets))
    targets, dists, sources = targets[order], dists[order], sources[order]
    first = np.empty(targets.size, dtype=bool)
    first[0] = True
    np.not_equal(targets[1:], targets[:-1], out=first[1:])
    return targets[first], dists[first], sources[first]


def _sync_op(a, b):
    return [a[0] + b[0], min(a[1], b[1])]


class DeltaSSSP1D:
    """Bucketed min-plus relaxation interior, as an engine step plugin.

    ``levels`` aliases the distance array (``INF`` = unreached; the
    driver converts to -1 after stitching) so the engine's marshaling
    needs no special case.
    """

    result_keys = ("lo", "hi")
    charger_kwargs: dict = {}

    def __init__(
        self,
        csr: CSR,
        source: int,
        weights: np.ndarray,
        delta: int = DEFAULT_DELTA,
        codec="raw",
    ):
        if delta < 1:
            raise ValueError(f"delta must be >= 1, got {delta}")
        self.csr = csr
        self.source = source
        self.weights = weights
        self.delta = delta
        self.codec = codec

    def setup(self, engine: TraversalEngine) -> None:
        csr = self.csr
        comm = engine.comm
        self.comm = comm
        self.charger = engine.charger
        self.obs = engine.obs
        self.threads = engine.threads
        self.part = Partition1D(csr.n, comm.size)
        self.lo, self.hi = self.part.range_of(comm.rank)
        self.nloc = self.hi - self.lo
        self.channel = CommChannel(
            comm,
            _partition_ranges(self.part, comm.size),
            codec=self.codec,
            sieve=None,
            charger=engine.charger,
            tracer=engine.obs,
            metrics=engine.metrics,
            faults=engine.faults,
        )
        self.dist = np.full(self.nloc, INF, dtype=np.int64)
        self.levels = self.dist
        self.parents = np.full(self.nloc, -1, dtype=np.int64)
        self.pending = np.zeros(self.nloc, dtype=bool)
        self.bucket = 0
        if self.lo <= self.source < self.hi:
            self.dist[self.source - self.lo] = 0
            self.parents[self.source - self.lo] = self.source
            self.pending[self.source - self.lo] = True
            self.frontier = np.array([self.source], dtype=np.int64)
        else:
            self.frontier = np.empty(0, dtype=np.int64)

    def vertex_range(self) -> tuple[int, int]:
        return (self.lo, self.hi)

    def _sync(self) -> int:
        """Combined Allreduce: global pending count + next bucket."""
        if self.pending.any():
            local = [
                int(self.pending.sum()),
                int((self.dist[self.pending] // self.delta).min()),
            ]
        else:
            local = [0, _NO_BUCKET]
        total, bucket = self.comm.allreduce(local, op=_sync_op)
        self.bucket = int(bucket)
        return int(total)

    def initial_sync(self) -> int:
        return self._sync()

    def begin_level(self, level: int) -> dict:
        return {"level": level, "bucket": self.bucket}

    def step(self, level: int) -> LevelOutcome:
        charger, obs = self.charger, self.obs
        lo, nloc = self.lo, self.nloc
        with obs.span("ds-relax"):
            active = self.pending & (self.dist // self.delta == self.bucket)
            verts_loc = np.flatnonzero(active)
            self.pending[verts_loc] = False
            verts = verts_loc + lo
            targets, sources, w = gather_weighted(self.csr, self.weights, verts)
            nd = self.dist[sources - lo] + w
            charger.random(verts.size, ws_words=2 * max(nloc, 1))
            charger.stream(3.0 * targets.size, edges_scanned=float(targets.size))

        candidates = int(targets.size)
        with obs.span("ds-dedup"):
            targets, nd, sources = _best_per_target(targets, nd, sources)
            charger.sort(candidates)
        with obs.span("ds-pack"):
            owners = self.part.owner_of(targets)
            send, xinfo = self.channel.pack_triples(targets, nd, sources, owners)
            charger.intops(3.0 * xinfo.pairs)
            charger.stream(3.0 * xinfo.pairs)
            charger.count(
                candidates=float(candidates), unique_sends=float(xinfo.pairs)
            )

        with obs.span("ds-exchange"):
            rt, rd, rs = self.channel.exchange_triples(send, xinfo, level=level)

        with obs.span("ds-update"):
            charger.random(float(rt.size), ws_words=max(nloc, 1))
            rt, rd, rs = _best_per_target(rt, rd, rs)
            loc = rt - lo
            better = rd < self.dist[loc]
            tie = (rd == self.dist[loc]) & (rs > self.parents[loc])
            improved = loc[better]
            self.dist[improved] = rd[better]
            self.parents[improved] = rs[better]
            self.pending[improved] = True
            # An equal-distance candidate cannot shorten the path, but the
            # (select, max) rule still promotes the larger parent.
            self.parents[loc[tie]] = rs[tie]
            self.frontier = improved + lo
            charger.stream(float(self.frontier.size))

        return LevelOutcome(
            candidates=candidates,
            words_sent=int(3 * xinfo.pairs),
            wire_words=int(xinfo.wire_words),
            sieve_dropped=0,
            extra={"bucket": self.bucket},
        )

    def termination_sync(self) -> int:
        return self._sync()

    def state(self) -> dict:
        return {"pending": self.pending, "bucket": np.array([self.bucket])}

    def restore(self, snapshot: dict) -> None:
        self.pending[:] = snapshot["pending"]
        self.bucket = int(snapshot["bucket"][0])
        return None
