"""Direction-optimizing BFS on the 2D matrix partition.

The follow-up work of Buluc, Beamer, Madduri, Asanovic and Patterson
("Distributed-Memory Breadth-First Search Revisited", arXiv:1705.04590)
combines the two refinements this repo previously modeled separately:
Algorithm 3's 2D SpMSV decomposition and Beamer's direction-optimizing
search.  On the hub-dominated middle levels the top-down SpMSV — whose
fold ships one (vertex, parent) pair per candidate edge — is replaced by
a *bottom-up* sweep inside the same processor grid:

* **expand** — the transposed frontier is gathered along the processor
  column as a dense bitmap (``~n_block/64`` words on the wire via
  :meth:`~repro.comm.CommChannel.gather_mask`), instead of a sparse
  vertex list;
* **completed exchange** — each rank contributes its vector piece's
  visited vertices to a second bitmap gather along the processor *row*,
  assembling the block-row "completed" array every rank of the row scans
  against (the paper's per-level bottom-up row communication);
* **fold** — each rank reverse-scans the unvisited rows of its local
  block against the frontier bitmap, early-exiting at the first hit.
  The stored matrix is ``A^T`` (block row ``v`` holds the in-neighbours
  of ``v``), and the reverse scan of a sorted list lands on the *maximum*
  frontier in-neighbour inside the rank's column block; the usual pair
  fold along the row plus the receiver's (select, max) dedup then picks
  the global maximum — exactly the parent every other algorithm in the
  repo produces, so the variant stays bit-identical to the serial
  oracle.  (Because the matrix is pre-transposed, the sweep is correct
  on directed inputs too, unlike the 1D variant which must pin
  top-down.)

Direction choice is collective and deterministic, reusing the DirOpt1D
policy: the level-closing ``Allreduce`` carries the global frontier
size, its incident-edge count and the unexplored-edge count, and every
rank applies the shared ``alpha``/``beta`` predicates from
:mod:`repro.core.frontier` in lockstep.  Checkpoints extend the 2D base
state with the switching hysteresis (current direction plus the last
global stats), so a restarted attempt resumes with the same decisions.

Only the level *interior* lives here: :class:`DirOpt2D` is an
:class:`~repro.core.engine.AlgorithmStep` plugin subclassing
:class:`~repro.core.bfs2d.SpMSV2D` (top-down levels run the parent's
transpose/expand/SpMSV/fold phases unchanged); the level loop,
crash markers and checkpoint plumbing are the
:class:`~repro.core.engine.TraversalEngine`'s.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.comm import restore_sieve, sieve_state
from repro.core.bfs2d import SpMSV2D
from repro.core.bfs_dirop import BOTTOM_UP, TOP_DOWN
from repro.core.engine import LevelOutcome, TraversalEngine
from repro.core.frontier import (
    bitmap_words,
    dedup_candidates,
    should_switch_bottom_up,
    should_switch_top_down,
)
from repro.model.costmodel import DIROP_ALPHA, DIROP_BETA


class DirOpt2D(SpMSV2D):
    """The direction-optimizing 2D level interior, as an engine plugin.

    Top-down levels are the parent's Algorithm 3 phases verbatim;
    bottom-up levels run the bitmap expand + completed exchange +
    reverse-scan fold described in the module docstring.  The direction
    flip happens in :meth:`begin_level` from collective state only, the
    termination ``Allreduce`` carries the three frontier-density
    statistics the predicates need, and checkpoints add the switch
    hysteresis via :meth:`state`/:meth:`restore`.
    """

    def __init__(
        self,
        blocks,
        decomp,
        source: int,
        kernel: str = "auto",
        modeled_cores: int | None = None,
        codec="raw",
        sieve=False,
        alpha: float | None = None,
        beta: float | None = None,
        degrees: np.ndarray | None = None,
    ):
        super().__init__(
            blocks,
            decomp,
            source,
            kernel=kernel,
            modeled_cores=modeled_cores,
            codec=codec,
            sieve=sieve,
        )
        self.alpha = DIROP_ALPHA if alpha is None else alpha
        self.beta = DIROP_BETA if beta is None else beta
        #: Global per-vertex degree array (shared, read-only): the
        #: switching statistics need edge counts for the rank's vector
        #: piece, which the rank's matrix block alone cannot provide.
        self.global_degrees = degrees

    def setup(self, engine: TraversalEngine) -> None:
        super().setup(engine)
        if self.global_degrees is None:
            raise ValueError("DirOpt2D needs the global degree array")

        # Row-major view of the local block: the bottom-up sweep walks
        # whole block *rows* (in-adjacencies), which the column-major
        # DCSC pieces cannot serve.  Built once per rank, like the DCSC
        # itself — graph (re)structuring is unpriced setup throughout.
        rows_parts, cols_parts = [], []
        for t, piece in enumerate(self.local.pieces):
            prows, pcols = piece.to_coo()
            rows_parts.append(prows + self.local.band_offsets[t])
            cols_parts.append(pcols)
        if rows_parts:
            rows = np.concatenate(rows_parts)
            cols = np.concatenate(cols_parts)
        else:
            rows = np.empty(0, dtype=np.int64)
            cols = np.empty(0, dtype=np.int64)
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        nrows_block = self.row_hi - self.row_lo
        self.bu_indptr = np.zeros(nrows_block + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=nrows_block), out=self.bu_indptr[1:])
        #: Ascending global in-neighbour ids per block row.
        self.bu_cols = cols + self.col_lo

        # Switching statistics over the rank's vector piece (each vertex
        # is owned by exactly one piece, so the Allreduce sums exactly).
        self.piece_degrees = np.asarray(self.global_degrees)[self.plo : self.phi]
        self.unexplored_edges = int(self.piece_degrees.sum())
        if self.plo <= self.source < self.phi:
            self.unexplored_edges -= int(self.piece_degrees[self.source - self.plo])
        self.direction = TOP_DOWN

    # -- direction policy (shared with DirOpt1D) ----------------------------
    def _frontier_stats(self, front: np.ndarray) -> np.ndarray:
        fedges = (
            int(self.piece_degrees[front - self.plo].sum()) if front.size else 0
        )
        return np.array(
            [front.size, fedges, self.unexplored_edges], dtype=np.int64
        )

    def _sync_stats(self) -> None:
        self.g_front, self.g_fedges, self.g_unexplored = (
            int(x)
            for x in self.comm.allreduce(self._frontier_stats(self.frontier))
        )

    def initial_sync(self) -> None:
        # The pre-loop stats Allreduce seeds the first switch decision;
        # level 1 itself always runs (the source frontier is nonempty
        # somewhere), so no termination count is returned.
        self._sync_stats()
        return None

    def begin_level(self, level: int) -> dict:
        # Collective state only, so every rank flips in lockstep.  No
        # symmetry gate: the stored matrix is A^T, so the bottom-up row
        # scan sees in-neighbours and is exact on directed inputs too.
        if self.direction == TOP_DOWN and should_switch_bottom_up(
            self.g_fedges, self.g_unexplored, self.alpha
        ):
            self.direction = BOTTOM_UP
        elif self.direction == BOTTOM_UP and should_switch_top_down(
            self.g_front, self.decomp.n, self.beta
        ):
            self.direction = TOP_DOWN
        return {"level": level, "direction": self.direction}

    # -- level interiors ----------------------------------------------------
    def step(self, level: int) -> LevelOutcome:
        if self.direction == TOP_DOWN:
            outcome = super().step(level)
        else:
            outcome = self._bottomup_step(level)
        frontier = self.frontier
        self.unexplored_edges -= (
            int(self.piece_degrees[frontier - self.plo].sum())
            if frontier.size
            else 0
        )
        outcome.extra["direction"] = self.direction
        return outcome

    def _bottomup_step(self, level: int) -> LevelOutcome:
        charger, obs = self.charger, self.obs

        # 1. TransposeVector, exactly as top-down: frontier pieces line
        #    up with the processor columns that will gather them.
        transposed = self._transpose_frontier(self.frontier, level)

        # 2. Expand: the column's frontier as a dense bitmap over my
        #    column block (overlapping identical ranges OR-union to the
        #    block's frontier mask).
        with obs.span("bu-expand"):
            payload = float(bitmap_words(self.col_hi - self.col_lo))
            charger.stream(payload + float(transposed.size))
            fmask, expand_info = self.col_channel.gather_mask(
                transposed, level=level
            )
            charger.stream(float(fmask.size) / 64.0)

        # 3. Completed exchange: assemble the block row's visited mask
        #    from the vector pieces along my processor row — the
        #    bottom-up sweep must skip rows any piece owner has already
        #    finished.
        with obs.span("bu-done"):
            visited = np.flatnonzero(self.parents != -1) + self.plo
            done_payload = float(bitmap_words(self.nloc))
            charger.stream(done_payload + float(visited.size))
            row_done, done_info = self.row_channel.gather_mask(
                visited, level=level
            )
            charger.stream(float(row_done.size) / 64.0)

        # 4. Reverse early-exit scan of the unvisited block rows against
        #    the frontier mask.  The last frontier hit of an ascending
        #    in-adjacency list is the maximum frontier in-neighbour in
        #    my column block — the local (select, max) winner.
        with obs.span("bu-scan"):
            charger.stream(float(row_done.size))
            blockdeg = np.diff(self.bu_indptr)
            active = np.flatnonzero(~row_done & (blockdeg > 0))
            counts = blockdeg[active]
            charger.random(
                float(active.size), ws_words=2 * max(row_done.size, 1)
            )
            if active.size:
                total = int(counts.sum())
                ends = np.cumsum(counts)
                starts = ends - counts
                offsets = np.arange(total, dtype=np.int64) - np.repeat(
                    starts, counts
                )
                flat = np.repeat(self.bu_indptr[active], counts) + offsets
                targets = self.bu_cols[flat]
                last_hit = kernels.last_hit_scan(
                    fmask[targets - self.col_lo], starts, counts
                )
                has_parent = last_hit >= 0
                trows = (active + self.row_lo)[has_parent]
                tvals = targets[last_hit[has_parent]]
                # Reverse scan visits positions [last_hit, end) before
                # exiting — the whole list when no frontier neighbour
                # exists.
                scanned = float(
                    np.where(has_parent, ends - last_hit, counts).sum()
                )
            else:
                trows = np.empty(0, dtype=np.int64)
                tvals = np.empty(0, dtype=np.int64)
                scanned = 0.0
            charger.random(scanned, ws_words=max(1.0, float(fmask.size) / 64.0))
            charger.stream(2.0 * scanned, edges_scanned=scanned)
            charger.count(candidates=scanned)

        # 5. Fold: the surviving local winners travel to their vector-
        #    piece owners along the row, like any top-down fold — only
        #    far fewer of them (one candidate per newly-found row, not
        #    one per edge).
        with obs.span("fold-pack"):
            owners = self.decomp.vec_owner_col(self.grid.row, trows)
            send, xinfo = self.row_channel.pack_pairs(trows, tvals, owners)
            charger.intops(float(xinfo.pairs))
            charger.count(unique_sends=float(xinfo.pairs))
        with obs.span("fold-exchange"):
            rv, rp = self.row_channel.exchange_pairs(send, xinfo, level=level)

        # 6. Mask with pi-bar and update, exactly as top-down.
        with obs.span("update"):
            charger.random(float(rv.size), ws_words=float(max(self.nloc, 1)))
            unvisited = self.parents[rv - self.plo] == -1
            rv, rp = dedup_candidates(rv[unvisited], rp[unvisited])
            self.parents[rv - self.plo] = rp
            self.levels[rv - self.plo] = level
            self.frontier = rv
            if self.threads > 1:
                charger.thread_merge(float(self.frontier.size))

        return LevelOutcome(
            candidates=int(scanned),
            words_sent=int(payload + done_payload + 2 * xinfo.pairs),
            wire_words=int(
                expand_info.wire_words
                + done_info.wire_words
                + xinfo.wire_words
            ),
            sieve_dropped=xinfo.dropped,
        )

    # -- termination + checkpoint extras ------------------------------------
    def termination_sync(self) -> int:
        self._sync_stats()
        return self.g_front

    def state(self) -> dict:
        return {
            "direction": self.direction,
            "unexplored_edges": self.unexplored_edges,
            "g_front": self.g_front,
            "g_fedges": self.g_fedges,
            "g_unexplored": self.g_unexplored,
            **sieve_state(self.shared_sieve),
        }

    def restore(self, snapshot: dict) -> int:
        restore_sieve(self.shared_sieve, snapshot)
        self.direction = snapshot["direction"]
        self.unexplored_edges = int(snapshot["unexplored_edges"])
        self.g_front = int(snapshot["g_front"])
        self.g_fedges = int(snapshot["g_fedges"])
        self.g_unexplored = int(snapshot["g_unexplored"])
        return self.g_front
