"""Graph and vector partitioning (Sections 3.1 and 3.2).

1D: each of ``p`` processes owns ``n/p`` consecutive vertices and all
their outgoing edges (the last process absorbs the remainder).

2D: processors form a square ``s x s`` grid.  The adjacency matrix is
block-distributed — ``P(i, j)`` stores the sub-matrix with rows in block
``i`` and columns in block ``j`` — and the *vector* follows the "2D vector
distribution" (Section 3.2): processor row ``i`` collectively owns vector
block ``i``, split evenly among the ``s`` processors of the row.  The
paper's alternative "1D vector distribution" (only the diagonal processors
own vector entries) is also provided for the Figure 4 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def block_bounds(n: int, parts: int) -> np.ndarray:
    """Offsets of an even block partition: floor(n/parts) per block, the
    last block absorbing the remainder (the paper's convention)."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    size = n // parts
    bounds = np.arange(parts + 1, dtype=np.int64) * size
    bounds[-1] = n
    return bounds


@dataclass(frozen=True)
class Partition1D:
    """Block distribution of ``n`` vertices over ``p`` ranks."""

    n: int
    p: int
    bounds: np.ndarray = field(init=False)

    def __post_init__(self):
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")
        object.__setattr__(self, "bounds", block_bounds(self.n, self.p))

    def range_of(self, rank: int) -> tuple[int, int]:
        """Half-open global vertex range owned by ``rank``."""
        if not 0 <= rank < self.p:
            raise ValueError(f"rank {rank} out of range [0, {self.p})")
        return int(self.bounds[rank]), int(self.bounds[rank + 1])

    def local_count(self, rank: int) -> int:
        lo, hi = self.range_of(rank)
        return hi - lo

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized ``find_owner``: which rank owns each vertex."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (vertices.min() < 0 or vertices.max() >= self.n):
            raise ValueError(f"vertex ids out of range [0, {self.n})")
        owners = np.searchsorted(self.bounds, vertices, side="right") - 1
        return np.minimum(owners, self.p - 1)


@dataclass(frozen=True)
class Decomp2D:
    """2D block decomposition of matrix and vector over a ``pr x pc`` grid.

    Matrix block ``(i, j)`` covers rows ``row_block(i)`` (one of ``pr``
    even bands) and columns ``col_block(j)`` (one of ``pc``); vector piece
    ``(i, j)`` is the ``j``-th even subdivision of ``row_block(i)`` (the
    2D vector distribution), or — with ``diagonal_vectors=True``, square
    grids only — the whole ``row_block(i)`` for ``j == i`` and empty
    otherwise (the 1D vector distribution of Figure 4).

    The paper runs all its 2D experiments on "the closest square processor
    grid" (``pc`` defaults to ``pr``), but its general formulation allows
    rectangular grids, where the vector transpose becomes an all-to-all
    instead of a pairwise swap (Section 3.2).
    """

    n: int
    pr: int
    pc: int | None = None
    diagonal_vectors: bool = False
    row_bounds: np.ndarray = field(init=False)
    col_bounds: np.ndarray = field(init=False)

    def __post_init__(self):
        if self.pc is None:
            object.__setattr__(self, "pc", self.pr)
        if self.pr < 1 or self.pc < 1:
            raise ValueError(f"grid dims must be >= 1, got {self.pr}x{self.pc}")
        if self.diagonal_vectors and self.pr != self.pc:
            raise ValueError(
                "the diagonal (1D) vector distribution needs a square grid"
            )
        object.__setattr__(self, "row_bounds", block_bounds(self.n, self.pr))
        object.__setattr__(self, "col_bounds", block_bounds(self.n, self.pc))

    @property
    def is_square(self) -> bool:
        return self.pr == self.pc

    @property
    def side(self) -> int:
        """Grid dimension of a square decomposition (most call sites)."""
        if not self.is_square:
            raise ValueError(
                f"side is only defined for square grids, this one is "
                f"{self.pr}x{self.pc}"
            )
        return self.pr

    @property
    def nprocs(self) -> int:
        return self.pr * self.pc

    def row_block(self, i: int) -> tuple[int, int]:
        """Row range of processor-row ``i``'s matrix blocks."""
        if not 0 <= i < self.pr:
            raise ValueError(f"row block {i} out of range [0, {self.pr})")
        return int(self.row_bounds[i]), int(self.row_bounds[i + 1])

    def col_block(self, j: int) -> tuple[int, int]:
        """Column range of processor-column ``j``'s matrix blocks."""
        if not 0 <= j < self.pc:
            raise ValueError(f"col block {j} out of range [0, {self.pc})")
        return int(self.col_bounds[j]), int(self.col_bounds[j + 1])

    def block(self, k: int) -> tuple[int, int]:
        """Square-grid shorthand: row/column range of block ``k``."""
        if not self.is_square:
            raise ValueError("block() needs a square grid; use row_block/col_block")
        return self.row_block(k)

    def row_block_of(self, vertices: np.ndarray) -> np.ndarray:
        """Which row block each global vertex id falls into."""
        vertices = np.asarray(vertices, dtype=np.int64)
        blocks = np.searchsorted(self.row_bounds, vertices, side="right") - 1
        return np.minimum(blocks, self.pr - 1)

    def col_block_of(self, vertices: np.ndarray) -> np.ndarray:
        """Which column block each global vertex id falls into."""
        vertices = np.asarray(vertices, dtype=np.int64)
        blocks = np.searchsorted(self.col_bounds, vertices, side="right") - 1
        return np.minimum(blocks, self.pc - 1)

    def block_of(self, vertices: np.ndarray) -> np.ndarray:
        """Square-grid shorthand for :meth:`row_block_of`."""
        if not self.is_square:
            raise ValueError(
                "block_of() needs a square grid; use row_block_of/col_block_of"
            )
        return self.row_block_of(vertices)

    # -- vector distribution -------------------------------------------------
    def vec_piece(self, i: int, j: int) -> tuple[int, int]:
        """Global range of the vector piece owned by ``P(i, j)``."""
        lo, hi = self.row_block(i)
        if self.diagonal_vectors:
            return (lo, hi) if i == j else (lo, lo)
        piece_bounds = block_bounds(hi - lo, self.pc)
        return lo + int(piece_bounds[j]), lo + int(piece_bounds[j + 1])

    def vec_owner_col(self, i: int, vertices: np.ndarray) -> np.ndarray:
        """Within processor row ``i``, the column index owning each vertex.

        ``vertices`` must lie inside ``row_block(i)``.
        """
        lo, hi = self.row_block(i)
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (vertices.min() < lo or vertices.max() >= hi):
            raise ValueError(f"vertices outside block {i} range [{lo}, {hi})")
        if self.diagonal_vectors:
            return np.full(vertices.shape, i, dtype=np.int64)
        piece_bounds = lo + block_bounds(hi - lo, self.pc)
        owners = np.searchsorted(piece_bounds, vertices, side="right") - 1
        return np.minimum(owners, self.pc - 1)
