"""The paper's core contribution: distributed-memory BFS algorithms.

* :func:`~repro.core.serial.bfs_serial` — Algorithm 1, the work-efficient
  level-synchronous baseline and correctness oracle;
* :func:`~repro.core.bfs1d.bfs_1d` — Algorithm 2: 1D vertex partitioning
  with owner-side visited checks and a per-level ``Alltoallv`` edge
  aggregation (flat MPI and hybrid via the thread model);
* :func:`~repro.core.bfs2d.bfs_2d` — Algorithm 3: 2D sparse-matrix
  partitioning, expand (``Allgatherv`` over processor columns) / fold
  (``Alltoallv`` over processor rows) phases, DCSC blocks and the SPA/heap
  SpMSV polyalgorithm;
* :func:`~repro.core.bfs_dirop.bfs_1d_dirop` — direction-optimizing 1D:
  per-level switching between the top-down exchange and a bottom-up
  sweep against an ``Allgatherv``-assembled frontier bitmap, preserving
  the (select, max) parents via early-exiting reverse edge scans;
* :class:`~repro.core.bfs2d_dirop.DirOpt2D` — direction-optimizing 2D
  (the follow-up paper, arXiv:1705.04590): the same alpha/beta switching
  policy inside the 2D SpMSV loop, with bitmap-compressed expand and
  completed exchanges along the processor grid;
* :class:`~repro.core.engine.TraversalEngine` — the shared
  level-synchronous skeleton: the algorithms above are thin
  :class:`~repro.core.engine.AlgorithmStep` plugins
  (:class:`~repro.core.bfs1d.TopDown1D`,
  :class:`~repro.core.bfs_dirop.DirOpt1D`,
  :class:`~repro.core.bfs2d.SpMSV2D`,
  :class:`~repro.core.bfs2d_dirop.DirOpt2D`) running under it;
* :func:`~repro.core.runner.run` / :func:`~repro.core.runner.run_bfs` —
  one-call driver over a typed :class:`~repro.core.runner.RunConfig`
  (``run_bfs`` is the keyword-API shim): partitions the graph, launches
  the SPMD simulation, reassembles and (optionally) validates the
  result, and reports TEPS plus modeled time breakdowns.
"""

from repro.core.bfs1d import TopDown1D, bfs_1d
from repro.core.bfs2d import SpMSV2D, bfs_2d
from repro.core.bfs2d_dirop import DirOpt2D
from repro.core.bfs_dirop import DirOpt1D, bfs_1d_dirop
from repro.core.engine import AlgorithmStep, LevelOutcome, TraversalEngine
from repro.core.partition import Decomp2D, Partition1D
from repro.core.runner import (
    ALGORITHMS,
    AlgorithmSpec,
    BFSResult,
    RunConfig,
    run,
    run_bfs,
)
from repro.core.serial import bfs_serial
from repro.core.validate import count_traversed_edges, validate_bfs

__all__ = [
    "bfs_1d",
    "bfs_1d_dirop",
    "bfs_2d",
    "TopDown1D",
    "DirOpt1D",
    "SpMSV2D",
    "DirOpt2D",
    "AlgorithmStep",
    "LevelOutcome",
    "TraversalEngine",
    "Decomp2D",
    "Partition1D",
    "ALGORITHMS",
    "AlgorithmSpec",
    "BFSResult",
    "RunConfig",
    "run",
    "run_bfs",
    "bfs_serial",
    "count_traversed_edges",
    "validate_bfs",
]
