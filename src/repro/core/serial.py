"""Serial BFS (Algorithm 1) — baseline and correctness oracle.

Two implementations:

* :func:`bfs_serial` — the vectorized level-synchronous algorithm with the
  two-stack (FS/NS) structure of Algorithm 1; this is the performance
  baseline and produces the same deterministic (select, max) parents as
  the distributed variants;
* :func:`bfs_queue` — the classic CLRS FIFO queue formulation, kept
  deliberately naive as an independent oracle for property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.frontier import dedup_candidates
from repro.graphs.csr import CSR


def bfs_serial(csr: CSR, source: int) -> tuple[np.ndarray, np.ndarray]:
    """Level-synchronous serial BFS.

    Returns
    -------
    (levels, parents):
        ``levels[v]`` is the hop distance from ``source`` (-1 when
        unreachable); ``parents[v]`` is the BFS-tree predecessor, with
        ``parents[source] == source`` (Graph 500 convention) and -1 for
        unreachable vertices.
    """
    if not 0 <= source < csr.n:
        raise ValueError(f"source {source} out of range [0, {csr.n})")
    levels = np.full(csr.n, -1, dtype=np.int64)
    parents = np.full(csr.n, -1, dtype=np.int64)
    levels[source] = 0
    parents[source] = source
    frontier = np.array([source], dtype=np.int64)
    level = 1
    while frontier.size:
        targets, sources = csr.gather(frontier)
        unvisited = levels[targets] < 0
        targets, sources = dedup_candidates(targets[unvisited], sources[unvisited])
        levels[targets] = level
        parents[targets] = sources
        frontier = targets
        level += 1
    return levels, parents


def bfs_queue(csr: CSR, source: int) -> tuple[np.ndarray, np.ndarray]:
    """Textbook FIFO-queue BFS; O(n + m) with Python-level loops.

    Slow (only for small oracles in tests) but structurally independent of
    the vectorized implementations.
    """
    if not 0 <= source < csr.n:
        raise ValueError(f"source {source} out of range [0, {csr.n})")
    levels = [-1] * csr.n
    parents = [-1] * csr.n
    levels[source] = 0
    parents[source] = source
    queue = [source]
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        for v in csr.neighbors(u):
            v = int(v)
            if levels[v] < 0:
                levels[v] = levels[u] + 1
                parents[v] = u
                queue.append(v)
    return np.array(levels, dtype=np.int64), np.array(parents, dtype=np.int64)
