"""Frontier manipulation primitives shared by the BFS variants.

These are the vectorized counterparts of the per-edge loops in
Algorithms 1-3: candidate deduplication with deterministic (select, max)
parent resolution, interleaved (vertex, parent) wire format for the
exchange buffers, and destination bucketing for the all-to-all.

The direction-optimizing 1D variant adds frontier-density bookkeeping:
a packed 64-bit frontier bitmap (the ``Allgatherv`` payload of the
bottom-up expand) and the Beamer-style density predicates that decide
when the traversal flips between top-down and bottom-up sweeps.
"""

from __future__ import annotations

import numpy as np

#: Bits per bitmap word; the paper counts 64-bit words, so one frontier
#: bitmap costs ``ceil(n_local / 64)`` words on the wire.
BITMAP_WORD_BITS = 64


def dedup_candidates(
    targets: np.ndarray, parents: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate targets, keeping the maximum parent.

    The (select, max) rule makes every algorithm in the repo produce the
    same parent array for the same graph, which the integration tests
    exploit.  Output targets are sorted ascending.
    """
    targets = np.asarray(targets, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    if targets.size == 0:
        return targets, parents
    # Python-int span: ``parents.max() + 1`` would wrap int64 for parents
    # near 2**63 and silently corrupt the composite keys below.
    span = int(parents.max()) + 1
    if 0 <= parents.min() and span <= (1 << 62) and targets.max() < (1 << 62) // span:
        # Composite-key quicksort (targets major, parents minor) is far
        # faster than lexsort; the max parent of each target is the last
        # entry of its run.
        span = np.int64(span)
        key = targets * span + parents
        key.sort()
        last = np.empty(key.size, dtype=bool)
        last[-1] = True
        out_targets = key // span
        np.not_equal(out_targets[1:], out_targets[:-1], out=last[:-1])
        key = key[last]
        out_targets = out_targets[last]
        return out_targets, key - out_targets * span
    order = np.lexsort((parents, targets))
    targets, parents = targets[order], parents[order]
    last = np.empty(targets.size, dtype=bool)
    last[-1] = True
    np.not_equal(targets[1:], targets[:-1], out=last[:-1])
    return targets[last], parents[last]


def pack_pairs(vertices: np.ndarray, parents: np.ndarray) -> np.ndarray:
    """Interleave (vertex, parent) pairs into one wire buffer.

    A single buffer per destination keeps the all-to-all call count at one
    per level (the 1D algorithm's only collective), and the layout
    ``[v0, p0, v1, p1, ...]`` keeps each pair contiguous.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    if vertices.shape != parents.shape:
        raise ValueError("vertices/parents must be equal length")
    out = np.empty(2 * vertices.size, dtype=np.int64)
    out[0::2] = vertices
    out[1::2] = parents
    return out


def unpack_pairs(buf: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_pairs`."""
    buf = np.asarray(buf, dtype=np.int64)
    if buf.size % 2:
        raise ValueError(f"pair buffer has odd length {buf.size}")
    return buf[0::2], buf[1::2]


def build_send_buffers(
    targets: np.ndarray,
    parents: np.ndarray,
    owners: np.ndarray,
    nbuckets: int,
) -> list[np.ndarray]:
    """Bucket (target, parent) candidates by owner into wire buffers.

    The shared send-side path of every 1D-family algorithm: stable-sort by
    destination, split at bucket boundaries, interleave each bucket with
    :func:`pack_pairs`.  Returns one buffer per destination rank.
    """
    owners = np.asarray(owners, dtype=np.int64)
    order = np.argsort(owners, kind="stable")
    targets = np.asarray(targets, dtype=np.int64)[order]
    parents = np.asarray(parents, dtype=np.int64)[order]
    counts = np.bincount(owners, minlength=nbuckets)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    return [
        pack_pairs(
            targets[offsets[j] : offsets[j + 1]],
            parents[offsets[j] : offsets[j + 1]],
        )
        for j in range(nbuckets)
    ]


def bitmap_words(nbits: int) -> int:
    """Wire words of a packed bitmap over ``nbits`` vertices."""
    if nbits < 0:
        raise ValueError(f"nbits must be >= 0, got {nbits}")
    return (nbits + BITMAP_WORD_BITS - 1) // BITMAP_WORD_BITS


def pack_frontier_bitmap(vertices: np.ndarray, lo: int, nbits: int) -> np.ndarray:
    """Pack a local frontier into 64-bit words for the bottom-up expand.

    ``vertices`` are global ids inside ``[lo, lo + nbits)``; bit
    ``v - lo`` of the output is set for each frontier vertex.  The packed
    ``uint64`` array is what each owner contributes to the ``Allgatherv``
    that assembles the global frontier bitmap.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size and (vertices.min() < lo or vertices.max() >= lo + nbits):
        raise ValueError(f"vertices out of owned range [{lo}, {lo + nbits})")
    bits = np.zeros(nbits, dtype=np.uint8)
    bits[vertices - lo] = 1
    packed = np.packbits(bits, bitorder="little")
    out = np.zeros(8 * bitmap_words(nbits), dtype=np.uint8)
    out[: packed.size] = packed
    return out.view(np.uint64)


def unpack_frontier_bitmap(words: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_frontier_bitmap`: words -> boolean mask."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.size != bitmap_words(nbits):
        raise ValueError(
            f"expected {bitmap_words(nbits)} words for {nbits} bits, got {words.size}"
        )
    if nbits == 0:
        return np.zeros(0, dtype=bool)
    return np.unpackbits(
        words.view(np.uint8), count=nbits, bitorder="little"
    ).astype(bool)


def should_switch_bottom_up(
    frontier_edges: int, unexplored_edges: int, alpha: float
) -> bool:
    """Top-down -> bottom-up predicate (Beamer's ``m_f > m_u / alpha``).

    ``frontier_edges`` is the global number of edges incident to the
    current frontier, ``unexplored_edges`` the edges incident to still
    unvisited vertices.  Larger ``alpha`` switches earlier.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    return frontier_edges * alpha > unexplored_edges


def should_switch_top_down(frontier_vertices: int, n: int, beta: float) -> bool:
    """Bottom-up -> top-down predicate (Beamer's ``n_f < n / beta``).

    Once the frontier thins out, scanning every unvisited vertex against
    it stops paying; smaller ``beta`` raises the ``n / beta`` threshold
    and switches back earlier.
    """
    if beta <= 0:
        raise ValueError(f"beta must be > 0, got {beta}")
    return frontier_vertices * beta < n


def bucket_by_owner(
    owners: np.ndarray, nbuckets: int, *arrays: np.ndarray
) -> tuple[list[tuple[np.ndarray, ...]], np.ndarray]:
    """Group parallel arrays by destination rank.

    Returns one tuple of sub-arrays per bucket (in bucket order) plus the
    per-bucket counts.  Uses a stable counting-sort-style argsort, the
    vectorized version of Algorithm 2's per-thread ``tBuf`` packing.
    """
    owners = np.asarray(owners, dtype=np.int64)
    if owners.size and (owners.min() < 0 or owners.max() >= nbuckets):
        raise ValueError(f"owners out of range [0, {nbuckets})")
    order = np.argsort(owners, kind="stable")
    counts = np.bincount(owners, minlength=nbuckets).astype(np.int64)
    splits = np.cumsum(counts)[:-1]
    grouped = []
    for bucket_parts in zip(
        *(np.split(np.asarray(a)[order], splits) for a in arrays)
    ):
        grouped.append(tuple(bucket_parts))
    return grouped, counts
