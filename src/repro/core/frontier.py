"""Frontier manipulation primitives shared by the BFS variants.

These are the vectorized counterparts of the per-edge loops in
Algorithms 1-3: candidate deduplication with deterministic (select, max)
parent resolution, interleaved (vertex, parent) wire format for the
exchange buffers, and destination bucketing for the all-to-all.
"""

from __future__ import annotations

import numpy as np


def dedup_candidates(
    targets: np.ndarray, parents: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate targets, keeping the maximum parent.

    The (select, max) rule makes every algorithm in the repo produce the
    same parent array for the same graph, which the integration tests
    exploit.  Output targets are sorted ascending.
    """
    targets = np.asarray(targets, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    if targets.size == 0:
        return targets, parents
    span = np.int64(parents.max()) + 1
    if 0 <= parents.min() and targets.max() < (1 << 62) // max(span, 1):
        # Composite-key quicksort (targets major, parents minor) is far
        # faster than lexsort; the max parent of each target is the last
        # entry of its run.
        key = targets * span + parents
        key.sort()
        last = np.empty(key.size, dtype=bool)
        last[-1] = True
        out_targets = key // span
        np.not_equal(out_targets[1:], out_targets[:-1], out=last[:-1])
        key = key[last]
        out_targets = out_targets[last]
        return out_targets, key - out_targets * span
    order = np.lexsort((parents, targets))
    targets, parents = targets[order], parents[order]
    last = np.empty(targets.size, dtype=bool)
    last[-1] = True
    np.not_equal(targets[1:], targets[:-1], out=last[:-1])
    return targets[last], parents[last]


def pack_pairs(vertices: np.ndarray, parents: np.ndarray) -> np.ndarray:
    """Interleave (vertex, parent) pairs into one wire buffer.

    A single buffer per destination keeps the all-to-all call count at one
    per level (the 1D algorithm's only collective), and the layout
    ``[v0, p0, v1, p1, ...]`` keeps each pair contiguous.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    if vertices.shape != parents.shape:
        raise ValueError("vertices/parents must be equal length")
    out = np.empty(2 * vertices.size, dtype=np.int64)
    out[0::2] = vertices
    out[1::2] = parents
    return out


def unpack_pairs(buf: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_pairs`."""
    buf = np.asarray(buf, dtype=np.int64)
    if buf.size % 2:
        raise ValueError(f"pair buffer has odd length {buf.size}")
    return buf[0::2], buf[1::2]


def build_send_buffers(
    targets: np.ndarray,
    parents: np.ndarray,
    owners: np.ndarray,
    nbuckets: int,
) -> list[np.ndarray]:
    """Bucket (target, parent) candidates by owner into wire buffers.

    The shared send-side path of every 1D-family algorithm: stable-sort by
    destination, split at bucket boundaries, interleave each bucket with
    :func:`pack_pairs`.  Returns one buffer per destination rank.
    """
    owners = np.asarray(owners, dtype=np.int64)
    order = np.argsort(owners, kind="stable")
    targets = np.asarray(targets, dtype=np.int64)[order]
    parents = np.asarray(parents, dtype=np.int64)[order]
    counts = np.bincount(owners, minlength=nbuckets)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    return [
        pack_pairs(
            targets[offsets[j] : offsets[j + 1]],
            parents[offsets[j] : offsets[j + 1]],
        )
        for j in range(nbuckets)
    ]


def bucket_by_owner(
    owners: np.ndarray, nbuckets: int, *arrays: np.ndarray
) -> tuple[list[tuple[np.ndarray, ...]], np.ndarray]:
    """Group parallel arrays by destination rank.

    Returns one tuple of sub-arrays per bucket (in bucket order) plus the
    per-bucket counts.  Uses a stable counting-sort-style argsort, the
    vectorized version of Algorithm 2's per-thread ``tBuf`` packing.
    """
    owners = np.asarray(owners, dtype=np.int64)
    if owners.size and (owners.min() < 0 or owners.max() >= nbuckets):
        raise ValueError(f"owners out of range [0, {nbuckets})")
    order = np.argsort(owners, kind="stable")
    counts = np.bincount(owners, minlength=nbuckets).astype(np.int64)
    splits = np.cumsum(counts)[:-1]
    grouped = []
    for bucket_parts in zip(
        *(np.split(np.asarray(a)[order], splits) for a in arrays)
    ):
        grouped.append(tuple(bucket_parts))
    return grouped, counts
