"""Frontier manipulation primitives shared by the BFS variants.

These are the kernel-backed counterparts of the per-edge loops in
Algorithms 1-3: candidate deduplication with deterministic (select, max)
parent resolution, interleaved (vertex, parent) wire format for the
exchange buffers, and destination bucketing for the all-to-all.

The direction-optimizing 1D variant adds frontier-density bookkeeping:
a packed 64-bit frontier bitmap (the ``Allgatherv`` payload of the
bottom-up expand) and the Beamer-style density predicates that decide
when the traversal flips between top-down and bottom-up sweeps.

This module owns input validation and the paper-facing semantics; the
per-element work dispatches through :mod:`repro.kernels`, so the
``REPRO_KERNELS`` backend switch (vectorized numpy vs. pure-python
reference) applies to every caller at once, bit-identically.
"""

from __future__ import annotations

import numpy as np

from repro import kernels

#: Bits per bitmap word; the paper counts 64-bit words, so one frontier
#: bitmap costs ``ceil(n_local / 64)`` words on the wire.
BITMAP_WORD_BITS = 64


def dedup_candidates(
    targets: np.ndarray, parents: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate targets, keeping the maximum parent.

    The (select, max) rule makes every algorithm in the repo produce the
    same parent array for the same graph, which the integration tests
    exploit.  Output targets are sorted ascending.
    """
    targets = np.asarray(targets, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    if targets.size == 0:
        return targets, parents
    return kernels.dedup_max(targets, parents)


def pack_pairs(vertices: np.ndarray, parents: np.ndarray) -> np.ndarray:
    """Interleave (vertex, parent) pairs into one wire buffer.

    A single buffer per destination keeps the all-to-all call count at one
    per level (the 1D algorithm's only collective), and the layout
    ``[v0, p0, v1, p1, ...]`` keeps each pair contiguous.
    """
    return kernels.pack_pairs(vertices, parents)


def unpack_pairs(buf: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_pairs`."""
    return kernels.unpack_pairs(buf)


def build_send_buffers(
    targets: np.ndarray,
    parents: np.ndarray,
    owners: np.ndarray,
    nbuckets: int,
) -> list[np.ndarray]:
    """Bucket (target, parent) candidates by owner into wire buffers.

    The shared send-side path of every 1D-family algorithm: stable-sort by
    destination, split at bucket boundaries, interleave each bucket with
    :func:`pack_pairs`.  Returns one buffer per destination rank.
    """
    targets = np.asarray(targets, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    grouped, _counts = kernels.bucket_by_owner(
        np.asarray(owners, dtype=np.int64), nbuckets, targets, parents
    )
    return [kernels.pack_pairs(t, p) for t, p in grouped]


def bitmap_words(nbits: int) -> int:
    """Wire words of a packed bitmap over ``nbits`` vertices."""
    if nbits < 0:
        raise ValueError(f"nbits must be >= 0, got {nbits}")
    return (nbits + BITMAP_WORD_BITS - 1) // BITMAP_WORD_BITS


def pack_frontier_bitmap(vertices: np.ndarray, lo: int, nbits: int) -> np.ndarray:
    """Pack a local frontier into 64-bit words for the bottom-up expand.

    ``vertices`` are global ids inside ``[lo, lo + nbits)``; bit
    ``v - lo`` of the output is set for each frontier vertex.  The packed
    ``uint64`` array is what each owner contributes to the ``Allgatherv``
    that assembles the global frontier bitmap.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size and (vertices.min() < lo or vertices.max() >= lo + nbits):
        raise ValueError(f"vertices out of owned range [{lo}, {lo + nbits})")
    return kernels.pack_bitmap(vertices, lo, nbits)


def unpack_frontier_bitmap(words: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_frontier_bitmap`: words -> boolean mask."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.size != bitmap_words(nbits):
        raise ValueError(
            f"expected {bitmap_words(nbits)} words for {nbits} bits, got {words.size}"
        )
    return kernels.unpack_bitmap(words, nbits)


def should_switch_bottom_up(
    frontier_edges: int, unexplored_edges: int, alpha: float
) -> bool:
    """Top-down -> bottom-up predicate (Beamer's ``m_f > m_u / alpha``).

    ``frontier_edges`` is the global number of edges incident to the
    current frontier, ``unexplored_edges`` the edges incident to still
    unvisited vertices.  Larger ``alpha`` switches earlier.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    return frontier_edges * alpha > unexplored_edges


def should_switch_top_down(frontier_vertices: int, n: int, beta: float) -> bool:
    """Bottom-up -> top-down predicate (Beamer's ``n_f < n / beta``).

    Once the frontier thins out, scanning every unvisited vertex against
    it stops paying; smaller ``beta`` raises the ``n / beta`` threshold
    and switches back earlier.
    """
    if beta <= 0:
        raise ValueError(f"beta must be > 0, got {beta}")
    return frontier_vertices * beta < n


def bucket_by_owner(
    owners: np.ndarray, nbuckets: int, *arrays: np.ndarray
) -> tuple[list[tuple[np.ndarray, ...]], np.ndarray]:
    """Group parallel arrays by destination rank.

    Returns one tuple of sub-arrays per bucket (in bucket order) plus the
    per-bucket counts.  The stable counting-sort-style grouping is the
    vectorized version of Algorithm 2's per-thread ``tBuf`` packing.
    """
    return kernels.bucket_by_owner(
        np.asarray(owners, dtype=np.int64), nbuckets, *arrays
    )
