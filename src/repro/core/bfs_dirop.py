"""Direction-optimizing distributed BFS on the 1D partition.

The paper's cost model shows BFS time is dominated by the few
hub-dominated middle levels of an R-MAT traversal, where the frontier
touches almost every edge.  The direction-optimizing refinement (Beamer
et al.; applied to distributed memory in the follow-up work of Buluc,
Beamer and Madduri) replaces the top-down candidate exchange on those
levels with a *bottom-up* sweep:

* **expand** — owners pack their local frontier into a 64-bit bitmap and
  assemble the global frontier with one ``Allgatherv`` (``~n/64`` words
  on the wire, charged at ``beta_{N,ag}``), instead of shipping
  per-edge (vertex, parent) pairs through the ``Alltoallv``;
* **fold** — each owner scans its *unvisited* local vertices against the
  bitmap, walking every sorted adjacency list in reverse and stopping at
  the first frontier neighbour.  The reverse order makes the early exit
  land on the *maximum* frontier neighbour, which is exactly the
  (select, max) parent the top-down dedup would have chosen — so the
  variant stays bit-identical to every other algorithm in the repo.

Direction choice is collective and deterministic: each level, ranks
``Allreduce`` the global frontier size, the frontier's incident-edge
count, and the unexplored-edge count, then apply the shared
``alpha``/``beta`` density predicates from :mod:`repro.core.frontier`.
Directed graphs (no symmetry) disable the bottom-up sweep, since
scanning out-adjacencies cannot discover in-neighbours.

Only the level *interior* lives here: :class:`DirOpt1D` is an
:class:`~repro.core.engine.AlgorithmStep` plugin whose
:meth:`~DirOpt1D.begin_level` flips the traversal direction and whose
checkpoint :meth:`~DirOpt1D.state` carries the switch hysteresis; the
level loop itself is the :class:`~repro.core.engine.TraversalEngine`'s.
:func:`bfs_1d_dirop` is the SPMD rank body binding the two: run it
under :func:`repro.mpsim.run_spmd`, one call per simulated rank.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.comm import CommChannel, make_sieve, restore_sieve, sieve_state
from repro.core.engine import (
    LevelOutcome,
    TraversalEngine,
    partition_ranges,
)
from repro.core.frontier import (
    bitmap_words,
    dedup_candidates,
    should_switch_bottom_up,
    should_switch_top_down,
)
from repro.core.partition import Partition1D
from repro.graphs.csr import CSR
from repro.model.costmodel import DIROP_ALPHA, DIROP_BETA
from repro.mpsim.communicator import Communicator

TOP_DOWN = "top-down"
BOTTOM_UP = "bottom-up"


def _topdown_level(
    comm, csr, part, channel, charger, obs, levels, parents, frontier, lo,
    nloc, level, dedup_sends, threads,
):
    """One top-down level: Algorithm 2's enumerate/dedup/exchange/update."""
    with obs.span("td-scan"):
        targets, sources = csr.gather(frontier)
        charger.random(frontier.size, ws_words=2 * max(nloc, 1))
        charger.stream(2.0 * targets.size, edges_scanned=float(targets.size))

    candidates = int(targets.size)
    if dedup_sends:
        with obs.span("td-dedup"):
            targets, sources = dedup_candidates(targets, sources)
            charger.sort(candidates)
    with obs.span("td-pack"):
        owners = part.owner_of(targets)
        send, xinfo = channel.pack_pairs(targets, sources, owners)
        charger.intops(2.0 * xinfo.pairs)
        charger.stream(2.0 * xinfo.pairs)
        charger.count(candidates=float(candidates), unique_sends=float(xinfo.pairs))

    with obs.span("td-exchange"):
        rv, rp = channel.exchange_pairs(send, xinfo, level=level)
    with obs.span("td-update"):
        charger.random(float(rv.size), ws_words=max(nloc, 1))
        unvisited = levels[rv - lo] < 0
        rv, rp = dedup_candidates(rv[unvisited], rp[unvisited])
        levels[rv - lo] = level
        parents[rv - lo] = rp
        if threads > 1:
            charger.thread_merge(float(rv.size))
        charger.stream(float(rv.size))
    return rv, {
        "candidates": candidates,
        "words_sent": int(2 * xinfo.pairs),
        "wire_words": int(xinfo.wire_words),
        "sieve_dropped": xinfo.dropped,
    }


def _bottomup_level(
    comm, csr, part, channel, charger, obs, levels, parents, frontier, lo,
    nloc, level, threads,
):
    """One bottom-up level: bitmap expand + early-exit reverse edge scans."""
    # Expand: every owner contributes its local frontier bitmap; the
    # Allgatherv assembles the global one (~n/64 words received per rank
    # under the raw codec, priced post-codec by the collective cost model).
    with obs.span("bu-expand"):
        payload = float(bitmap_words(nloc))
        charger.stream(payload + float(frontier.size))
        bitmap, xinfo = channel.expand_bitmap(frontier, level=level)
        charger.stream(float(bitmap.size) / 64.0)

    # Fold: enumerate unvisited owned vertices and reverse-scan their
    # sorted adjacencies against the bitmap.  The last frontier hit of a
    # sorted list is the maximum frontier neighbour, so the early exit
    # reproduces the (select, max) parent of the top-down dedup.
    with obs.span("bu-scan"):
        unvisited = np.flatnonzero(levels < 0) + lo
        charger.stream(float(nloc))
        deg = csr.indptr[unvisited + 1] - csr.indptr[unvisited]
        active = unvisited[deg > 0]
        counts = deg[deg > 0]
        charger.random(float(active.size), ws_words=2 * max(nloc, 1))
        targets, _sources = csr.gather(active)
        if active.size:
            ends = np.cumsum(counts)
            starts = ends - counts
            last_hit = kernels.last_hit_scan(bitmap[targets], starts, counts)
            has_parent = last_hit >= 0
            new = active[has_parent]
            new_parents = targets[last_hit[has_parent]]
            # Reverse scan visits positions [last_hit, end) before exiting —
            # the whole list when no frontier neighbour exists.
            scanned = float(np.where(has_parent, ends - last_hit, counts).sum())
        else:
            new = np.empty(0, dtype=np.int64)
            new_parents = np.empty(0, dtype=np.int64)
            scanned = 0.0
        charger.random(scanned, ws_words=max(1.0, float(bitmap.size) / 64.0))
        charger.stream(2.0 * scanned, edges_scanned=scanned)
        charger.count(candidates=scanned)

    with obs.span("bu-update"):
        levels[new - lo] = level
        parents[new - lo] = new_parents
        if threads > 1:
            charger.thread_merge(float(new.size))
        charger.stream(float(new.size))
    return new, {
        "candidates": int(scanned),
        "words_sent": int(payload),
        "wire_words": int(xinfo.wire_words),
        "sieve_dropped": 0,
    }


class DirOpt1D:
    """The direction-optimizing level interior, as an engine step plugin.

    Top-down levels run Algorithm 2's phases; bottom-up levels run the
    bitmap expand + reverse-scan fold.  The direction flip happens in
    :meth:`begin_level` from collective state only, the termination
    ``Allreduce`` carries the three frontier-density statistics the
    predicates need, and checkpoints add the switch-hysteresis state so
    a restarted attempt resumes with the same decisions.
    """

    result_keys = ("lo", "hi")
    charger_kwargs: dict = {}

    def __init__(
        self,
        csr: CSR,
        source: int,
        dedup_sends: bool = True,
        codec="raw",
        sieve=False,
        alpha: float | None = None,
        beta: float | None = None,
        symmetric: bool = True,
    ):
        self.csr = csr
        self.source = source
        self.dedup_sends = dedup_sends
        self.codec = codec
        self.sieve = sieve
        self.alpha = DIROP_ALPHA if alpha is None else alpha
        self.beta = DIROP_BETA if beta is None else beta
        self.symmetric = symmetric

    def setup(self, engine: TraversalEngine) -> None:
        csr = self.csr
        comm = engine.comm
        self.comm = comm
        self.charger = engine.charger
        self.obs = engine.obs
        self.threads = engine.threads
        self.part = Partition1D(csr.n, comm.size)
        self.lo, self.hi = self.part.range_of(comm.rank)
        self.nloc = self.hi - self.lo
        self.channel = CommChannel(
            comm,
            partition_ranges(self.part, comm.size),
            codec=self.codec,
            sieve=make_sieve(self.sieve, csr.n),
            charger=engine.charger,
            tracer=engine.obs,
            metrics=engine.metrics,
            faults=engine.faults,
        )
        self.degrees = csr.indptr[self.lo + 1 : self.hi + 1] - csr.indptr[self.lo : self.hi]

        self.levels = np.full(self.nloc, -1, dtype=np.int64)
        self.parents = np.full(self.nloc, -1, dtype=np.int64)
        self.unexplored_edges = int(self.degrees.sum())
        if self.lo <= self.source < self.hi:
            self.levels[self.source - self.lo] = 0
            self.parents[self.source - self.lo] = self.source
            self.frontier = np.array([self.source], dtype=np.int64)
            self.unexplored_edges -= int(self.degrees[self.source - self.lo])
        else:
            self.frontier = np.empty(0, dtype=np.int64)
        self.direction = TOP_DOWN

    def vertex_range(self) -> tuple[int, int]:
        return (self.lo, self.hi)

    def _frontier_stats(self, front: np.ndarray) -> np.ndarray:
        fedges = int(self.degrees[front - self.lo].sum()) if front.size else 0
        return np.array(
            [front.size, fedges, self.unexplored_edges], dtype=np.int64
        )

    def _sync_stats(self) -> None:
        self.g_front, self.g_fedges, self.g_unexplored = (
            int(x)
            for x in self.comm.allreduce(self._frontier_stats(self.frontier))
        )

    def initial_sync(self) -> None:
        # The pre-loop stats Allreduce seeds the first switch decision;
        # level 1 itself always runs (the source frontier is nonempty
        # somewhere), so no termination count is returned.
        self._sync_stats()
        return None

    def begin_level(self, level: int) -> dict:
        # Direction choice: collective state only, so every rank flips in
        # lockstep without extra communication.
        if self.symmetric:
            if self.direction == TOP_DOWN and should_switch_bottom_up(
                self.g_fedges, self.g_unexplored, self.alpha
            ):
                self.direction = BOTTOM_UP
            elif self.direction == BOTTOM_UP and should_switch_top_down(
                self.g_front, self.csr.n, self.beta
            ):
                self.direction = TOP_DOWN
        return {"level": level, "direction": self.direction}

    def step(self, level: int) -> LevelOutcome:
        if self.direction == TOP_DOWN:
            frontier, info = _topdown_level(
                self.comm, self.csr, self.part, self.channel, self.charger,
                self.obs, self.levels, self.parents, self.frontier, self.lo,
                self.nloc, level, self.dedup_sends, self.threads,
            )
        else:
            frontier, info = _bottomup_level(
                self.comm, self.csr, self.part, self.channel, self.charger,
                self.obs, self.levels, self.parents, self.frontier, self.lo,
                self.nloc, level, self.threads,
            )
        self.frontier = frontier
        self.unexplored_edges -= (
            int(self.degrees[frontier - self.lo].sum()) if frontier.size else 0
        )
        return LevelOutcome(
            candidates=info["candidates"],
            words_sent=info["words_sent"],
            wire_words=info["wire_words"],
            sieve_dropped=info["sieve_dropped"],
            extra={"direction": self.direction},
        )

    def termination_sync(self) -> int:
        self._sync_stats()
        return self.g_front

    def state(self) -> dict:
        return {
            "direction": self.direction,
            "unexplored_edges": self.unexplored_edges,
            "g_front": self.g_front,
            "g_fedges": self.g_fedges,
            "g_unexplored": self.g_unexplored,
            **sieve_state(self.channel.sieve),
        }

    def restore(self, snapshot: dict) -> int:
        restore_sieve(self.channel.sieve, snapshot)
        self.direction = snapshot["direction"]
        self.unexplored_edges = int(snapshot["unexplored_edges"])
        self.g_front = int(snapshot["g_front"])
        self.g_fedges = int(snapshot["g_fedges"])
        self.g_unexplored = int(snapshot["g_unexplored"])
        return self.g_front


def bfs_1d_dirop(
    comm: Communicator,
    csr: CSR,
    source: int,
    machine=None,
    threads: int = 1,
    dedup_sends: bool = True,
    codec="raw",
    sieve=False,
    alpha: float | None = None,
    beta: float | None = None,
    symmetric: bool = True,
    trace: bool = False,
    tracer=None,
    faults=None,
    checkpoint=None,
    resume_level: int | None = None,
) -> dict:
    """Rank body of the direction-optimizing 1D algorithm.

    Parameters
    ----------
    comm / csr / source / machine / threads / dedup_sends / codec / sieve:
        As in :func:`repro.core.bfs1d.bfs_1d`; ``dedup_sends`` applies to
        the top-down levels only, while ``codec``/``sieve`` cover both the
        top-down ``Alltoallv`` and the bottom-up bitmap ``Allgatherv``
        (the expand also feeds the sieve: a gathered frontier is a set of
        discovered vertices no later exchange needs to re-ship).
    alpha:
        Top-down -> bottom-up density threshold (default
        :data:`~repro.model.costmodel.DIROP_ALPHA`): switch when the
        frontier's incident edges exceed ``1/alpha`` of the unexplored
        edges.
    beta:
        Bottom-up -> top-down threshold (default
        :data:`~repro.model.costmodel.DIROP_BETA`): switch back when the
        frontier shrinks below ``n / beta`` vertices.
    symmetric:
        Whether the adjacency structure is symmetric; directed inputs
        pin the traversal to top-down (bottom-up needs in-edges).
    trace:
        Record a per-level profile including which ``direction`` ran.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` recording nested phase
        spans in virtual time: ``td-*`` phases on top-down levels,
        ``bu-expand``/``bu-scan``/``bu-update`` on bottom-up ones, and the
        level-closing ``sync`` around the frontier-stats ``Allreduce``.
    faults / checkpoint / resume_level:
        Resilience hooks threaded by ``run_bfs`` (see
        :func:`repro.core.bfs1d.bfs_1d`).  Snapshots additionally carry
        the direction-optimizing hysteresis state (current ``direction``,
        the unexplored-edge count and the last global frontier stats), so
        a restarted attempt resumes with the same switch decisions.

    Returns
    -------
    dict with the rank's vertex range, local ``levels``/``parents`` arrays
    and the number of levels executed.
    """
    step = DirOpt1D(
        csr,
        source,
        dedup_sends=dedup_sends,
        codec=codec,
        sieve=sieve,
        alpha=alpha,
        beta=beta,
        symmetric=symmetric,
    )
    return TraversalEngine(
        comm,
        step,
        machine=machine,
        threads=threads,
        trace=trace,
        tracer=tracer,
        faults=faults,
        checkpoint=checkpoint,
        resume_level=resume_level,
    ).run()
