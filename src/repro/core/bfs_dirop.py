"""Direction-optimizing distributed BFS on the 1D partition.

The paper's cost model shows BFS time is dominated by the few
hub-dominated middle levels of an R-MAT traversal, where the frontier
touches almost every edge.  The direction-optimizing refinement (Beamer
et al.; applied to distributed memory in the follow-up work of Buluc,
Beamer and Madduri) replaces the top-down candidate exchange on those
levels with a *bottom-up* sweep:

* **expand** — owners pack their local frontier into a 64-bit bitmap and
  assemble the global frontier with one ``Allgatherv`` (``~n/64`` words
  on the wire, charged at ``beta_{N,ag}``), instead of shipping
  per-edge (vertex, parent) pairs through the ``Alltoallv``;
* **fold** — each owner scans its *unvisited* local vertices against the
  bitmap, walking every sorted adjacency list in reverse and stopping at
  the first frontier neighbour.  The reverse order makes the early exit
  land on the *maximum* frontier neighbour, which is exactly the
  (select, max) parent the top-down dedup would have chosen — so the
  variant stays bit-identical to every other algorithm in the repo.

Direction choice is collective and deterministic: each level, ranks
``Allreduce`` the global frontier size, the frontier's incident-edge
count, and the unexplored-edge count, then apply the shared
``alpha``/``beta`` density predicates from :mod:`repro.core.frontier`.
Directed graphs (no symmetry) disable the bottom-up sweep, since
scanning out-adjacencies cannot discover in-neighbours.

The function is an SPMD rank body: run it under
:func:`repro.mpsim.run_spmd`, one call per simulated rank.
"""

from __future__ import annotations

import numpy as np

from repro.comm import CommChannel
from repro.core.bfs1d import (
    make_sieve,
    partition_ranges,
    restore_sieve,
    sieve_state,
)
from repro.core.frontier import (
    bitmap_words,
    dedup_candidates,
    should_switch_bottom_up,
    should_switch_top_down,
)
from repro.core.partition import Partition1D
from repro.faults import (
    RankCrashError,
    resolve_rank_faults,
    restore_checkpoint,
    save_checkpoint,
)
from repro.graphs.csr import CSR
from repro.model.costmodel import DIROP_ALPHA, DIROP_BETA, Charger
from repro.mpsim.communicator import Communicator
from repro.obs.tracer import resolve_tracer

TOP_DOWN = "top-down"
BOTTOM_UP = "bottom-up"


def _topdown_level(
    comm, csr, part, channel, charger, obs, levels, parents, frontier, lo,
    nloc, level, dedup_sends, threads,
):
    """One top-down level: Algorithm 2's enumerate/dedup/exchange/update."""
    with obs.span("td-scan"):
        targets, sources = csr.gather(frontier)
        charger.random(frontier.size, ws_words=2 * max(nloc, 1))
        charger.stream(2.0 * targets.size, edges_scanned=float(targets.size))

    candidates = int(targets.size)
    if dedup_sends:
        with obs.span("td-dedup"):
            targets, sources = dedup_candidates(targets, sources)
            charger.sort(candidates)
    with obs.span("td-pack"):
        owners = part.owner_of(targets)
        send, xinfo = channel.pack_pairs(targets, sources, owners)
        charger.intops(2.0 * xinfo.pairs)
        charger.stream(2.0 * xinfo.pairs)
        charger.count(candidates=float(candidates), unique_sends=float(xinfo.pairs))

    with obs.span("td-exchange"):
        rv, rp = channel.exchange_pairs(send, xinfo, level=level)
    with obs.span("td-update"):
        charger.random(float(rv.size), ws_words=max(nloc, 1))
        unvisited = levels[rv - lo] < 0
        rv, rp = dedup_candidates(rv[unvisited], rp[unvisited])
        levels[rv - lo] = level
        parents[rv - lo] = rp
        if threads > 1:
            charger.thread_merge(float(rv.size))
        charger.stream(float(rv.size))
    return rv, {
        "candidates": candidates,
        "words_sent": int(2 * xinfo.pairs),
        "wire_words": int(xinfo.wire_words),
        "sieve_dropped": xinfo.dropped,
    }


def _bottomup_level(
    comm, csr, part, channel, charger, obs, levels, parents, frontier, lo,
    nloc, level, threads,
):
    """One bottom-up level: bitmap expand + early-exit reverse edge scans."""
    # Expand: every owner contributes its local frontier bitmap; the
    # Allgatherv assembles the global one (~n/64 words received per rank
    # under the raw codec, priced post-codec by the collective cost model).
    with obs.span("bu-expand"):
        payload = float(bitmap_words(nloc))
        charger.stream(payload + float(frontier.size))
        bitmap, xinfo = channel.expand_bitmap(frontier, level=level)
        charger.stream(float(bitmap.size) / 64.0)

    # Fold: enumerate unvisited owned vertices and reverse-scan their
    # sorted adjacencies against the bitmap.  The last frontier hit of a
    # sorted list is the maximum frontier neighbour, so the early exit
    # reproduces the (select, max) parent of the top-down dedup.
    with obs.span("bu-scan"):
        unvisited = np.flatnonzero(levels < 0) + lo
        charger.stream(float(nloc))
        deg = csr.indptr[unvisited + 1] - csr.indptr[unvisited]
        active = unvisited[deg > 0]
        counts = deg[deg > 0]
        charger.random(float(active.size), ws_words=2 * max(nloc, 1))
        targets, _sources = csr.gather(active)
        if active.size:
            ends = np.cumsum(counts)
            starts = ends - counts
            hit_pos = np.where(bitmap[targets], np.arange(targets.size), -1)
            last_hit = np.maximum.reduceat(hit_pos, starts)
            has_parent = last_hit >= 0
            new = active[has_parent]
            new_parents = targets[last_hit[has_parent]]
            # Reverse scan visits positions [last_hit, end) before exiting —
            # the whole list when no frontier neighbour exists.
            scanned = float(np.where(has_parent, ends - last_hit, counts).sum())
        else:
            new = np.empty(0, dtype=np.int64)
            new_parents = np.empty(0, dtype=np.int64)
            scanned = 0.0
        charger.random(scanned, ws_words=max(1.0, float(bitmap.size) / 64.0))
        charger.stream(2.0 * scanned, edges_scanned=scanned)
        charger.count(candidates=scanned)

    with obs.span("bu-update"):
        levels[new - lo] = level
        parents[new - lo] = new_parents
        if threads > 1:
            charger.thread_merge(float(new.size))
        charger.stream(float(new.size))
    return new, {
        "candidates": int(scanned),
        "words_sent": int(payload),
        "wire_words": int(xinfo.wire_words),
        "sieve_dropped": 0,
    }


def bfs_1d_dirop(
    comm: Communicator,
    csr: CSR,
    source: int,
    machine=None,
    threads: int = 1,
    dedup_sends: bool = True,
    codec="raw",
    sieve=False,
    alpha: float | None = None,
    beta: float | None = None,
    symmetric: bool = True,
    trace: bool = False,
    tracer=None,
    faults=None,
    checkpoint=None,
    resume_level: int | None = None,
) -> dict:
    """Rank body of the direction-optimizing 1D algorithm.

    Parameters
    ----------
    comm / csr / source / machine / threads / dedup_sends / codec / sieve:
        As in :func:`repro.core.bfs1d.bfs_1d`; ``dedup_sends`` applies to
        the top-down levels only, while ``codec``/``sieve`` cover both the
        top-down ``Alltoallv`` and the bottom-up bitmap ``Allgatherv``
        (the expand also feeds the sieve: a gathered frontier is a set of
        discovered vertices no later exchange needs to re-ship).
    alpha:
        Top-down -> bottom-up density threshold (default
        :data:`~repro.model.costmodel.DIROP_ALPHA`): switch when the
        frontier's incident edges exceed ``1/alpha`` of the unexplored
        edges.
    beta:
        Bottom-up -> top-down threshold (default
        :data:`~repro.model.costmodel.DIROP_BETA`): switch back when the
        frontier shrinks below ``n / beta`` vertices.
    symmetric:
        Whether the adjacency structure is symmetric; directed inputs
        pin the traversal to top-down (bottom-up needs in-edges).
    trace:
        Record a per-level profile including which ``direction`` ran.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` recording nested phase
        spans in virtual time: ``td-*`` phases on top-down levels,
        ``bu-expand``/``bu-scan``/``bu-update`` on bottom-up ones, and the
        level-closing ``sync`` around the frontier-stats ``Allreduce``.
    faults / checkpoint / resume_level:
        Resilience hooks threaded by ``run_bfs`` (see
        :func:`repro.core.bfs1d.bfs_1d`).  Snapshots additionally carry
        the direction-optimizing hysteresis state (current ``direction``,
        the unexplored-edge count and the last global frontier stats), so
        a restarted attempt resumes with the same switch decisions.

    Returns
    -------
    dict with the rank's vertex range, local ``levels``/``parents`` arrays
    and the number of levels executed.
    """
    alpha = DIROP_ALPHA if alpha is None else alpha
    beta = DIROP_BETA if beta is None else beta
    part = Partition1D(csr.n, comm.size)
    lo, hi = part.range_of(comm.rank)
    nloc = hi - lo
    charger = Charger(comm, machine=machine, threads=threads)
    obs = resolve_tracer(tracer).for_rank(comm)
    flt = resolve_rank_faults(faults, comm, charger.machine, obs)
    channel = CommChannel(
        comm,
        partition_ranges(part, comm.size),
        codec=codec,
        sieve=make_sieve(sieve, csr.n),
        charger=charger,
        tracer=obs,
        faults=flt,
    )
    degrees = csr.indptr[lo + 1 : hi + 1] - csr.indptr[lo:hi]

    levels = np.full(nloc, -1, dtype=np.int64)
    parents = np.full(nloc, -1, dtype=np.int64)
    unexplored_edges = int(degrees.sum())
    if lo <= source < hi:
        levels[source - lo] = 0
        parents[source - lo] = source
        frontier = np.array([source], dtype=np.int64)
        unexplored_edges -= int(degrees[source - lo])
    else:
        frontier = np.empty(0, dtype=np.int64)

    def frontier_stats(front: np.ndarray) -> np.ndarray:
        fedges = int(degrees[front - lo].sum()) if front.size else 0
        return np.array(
            [front.size, fedges, unexplored_edges], dtype=np.int64
        )

    level = 1
    direction = TOP_DOWN
    if resume_level is not None:
        snap = restore_checkpoint(checkpoint, comm, charger, obs, resume_level)
        levels[:] = snap["levels"]
        parents[:] = snap["parents"]
        frontier = snap["frontier"].copy()
        restore_sieve(channel.sieve, snap)
        direction = snap["direction"]
        unexplored_edges = int(snap["unexplored_edges"])
        g_front = int(snap["g_front"])
        g_fedges = int(snap["g_fedges"])
        g_unexplored = int(snap["g_unexplored"])
        level = resume_level + 1
    else:
        g_front, g_fedges, g_unexplored = (
            int(x) for x in comm.allreduce(frontier_stats(frontier))
        )

    level_trace: list[dict] = []
    crashed = None
    while True:
        # Cooperative failure detection at the level boundary (see
        # repro.core.bfs1d): all ranks observe the crash, none abort.
        try:
            flt.on_level_start(level)
        except RankCrashError as crash:
            crashed = crash
            break
        # Direction choice: collective state only, so every rank flips in
        # lockstep without extra communication.
        if symmetric:
            if direction == TOP_DOWN and should_switch_bottom_up(
                g_fedges, g_unexplored, alpha
            ):
                direction = BOTTOM_UP
            elif direction == BOTTOM_UP and should_switch_top_down(
                g_front, csr.n, beta
            ):
                direction = TOP_DOWN

        frontier_in = int(frontier.size)
        with obs.span("level", level=level, direction=direction):
            if direction == TOP_DOWN:
                frontier, info = _topdown_level(
                    comm, csr, part, channel, charger, obs, levels, parents,
                    frontier, lo, nloc, level, dedup_sends, threads,
                )
            else:
                frontier, info = _bottomup_level(
                    comm, csr, part, channel, charger, obs, levels, parents,
                    frontier, lo, nloc, level, threads,
                )
            unexplored_edges -= (
                int(degrees[frontier - lo].sum()) if frontier.size else 0
            )

            if trace:
                level_trace.append(
                    {
                        "level": level,
                        "frontier": frontier_in,
                        "candidates": info["candidates"],
                        "words_sent": info["words_sent"],
                        "wire_words": info["wire_words"],
                        "sieve_dropped": info["sieve_dropped"],
                        "discovered": int(frontier.size),
                        "direction": direction,
                    }
                )

            with obs.span("sync"):
                charger.level_overhead()
                with obs.span("allreduce"):
                    g_front, g_fedges, g_unexplored = (
                        int(x) for x in comm.allreduce(frontier_stats(frontier))
                    )

            # The stats Allreduce just made the level globally complete;
            # snapshot the traversal plus the switch-hysteresis state.
            if checkpoint is not None and g_front > 0 and checkpoint.due(level):
                state = {
                    "levels": levels,
                    "parents": parents,
                    "frontier": frontier,
                    "direction": direction,
                    "unexplored_edges": unexplored_edges,
                    "g_front": g_front,
                    "g_fedges": g_fedges,
                    "g_unexplored": g_unexplored,
                }
                state.update(sieve_state(channel.sieve))
                save_checkpoint(checkpoint, comm, charger, obs, level, state)
        if g_front == 0:
            break
        level += 1

    result = {
        "lo": lo,
        "hi": hi,
        "levels": levels,
        "parents": parents,
        "nlevels": level,
    }
    if crashed is not None:
        result["crashed"] = crashed
    if trace:
        result["trace"] = level_trace
    return result
