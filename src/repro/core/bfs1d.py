"""Distributed BFS with 1D vertex partitioning (Algorithm 2, Section 3.1).

Each rank owns a block of vertices and their adjacencies.  A BFS level:

1. enumerate the adjacencies of the local frontier (thread-parallel in the
   hybrid variant, via the cost model's thread divisor);
2. deduplicate candidates per destination ("in-node aggregation" — the
   tuned behaviour that distinguishes this code from the Graph 500
   reference implementation; can be disabled for the ablation);
3. bucket (vertex, parent) pairs by owner and exchange with a single
   ``Alltoallv``;
4. owners perform the visited checks and build the next local frontier;
5. an ``Allreduce`` detects global termination.

The function is an SPMD rank body: run it under
:func:`repro.mpsim.run_spmd`, one call per simulated rank.
"""

from __future__ import annotations

import numpy as np

from repro.comm import CommChannel, Sieve, VertexRange
from repro.core.frontier import dedup_candidates
from repro.core.partition import Partition1D
from repro.faults import (
    RankCrashError,
    resolve_rank_faults,
    restore_checkpoint,
    save_checkpoint,
)
from repro.graphs.csr import CSR
from repro.model.costmodel import Charger
from repro.mpsim.communicator import Communicator
from repro.obs.tracer import resolve_tracer


def partition_ranges(part: Partition1D, nranks: int) -> list[VertexRange]:
    """Owned vertex range of every rank, as the comm layer's contexts."""
    ranges = []
    for rank in range(nranks):
        lo, hi = part.range_of(rank)
        ranges.append(VertexRange(lo, hi - lo))
    return ranges


def make_sieve(sieve: bool | Sieve | None, nglobal: int) -> Sieve | None:
    """Normalize a ``sieve`` argument (flag or prebuilt instance)."""
    if isinstance(sieve, Sieve):
        return sieve
    return Sieve(nglobal) if sieve else None


def sieve_state(sieve: Sieve | None) -> dict:
    """The sieve's dedup epoch, as checkpoint state entries."""
    if sieve is None:
        return {}
    return {"sieve_seen": sieve.seen, "sieve_dropped": sieve.dropped}


def restore_sieve(sieve: Sieve | None, snapshot: dict) -> None:
    if sieve is not None and "sieve_seen" in snapshot:
        sieve.seen[:] = snapshot["sieve_seen"]
        sieve.dropped = int(snapshot["sieve_dropped"])


def bfs_1d(
    comm: Communicator,
    csr: CSR,
    source: int,
    machine=None,
    threads: int = 1,
    dedup_sends: bool = True,
    codec="raw",
    sieve: bool | Sieve = False,
    trace: bool = False,
    tracer=None,
    faults=None,
    checkpoint=None,
    resume_level: int | None = None,
) -> dict:
    """Rank body of the 1D algorithm (flat MPI when ``threads == 1``).

    Parameters
    ----------
    comm:
        The rank's world communicator.
    csr:
        The *global* adjacency structure; ranks slice their own block
        (shared-memory simulation stands in for the distributed copy, so
        volumes — not storage — are what is measured).
    source:
        Global source vertex id (already relabeled if shuffling is on).
    machine / threads:
        Cost-model configuration; ``machine=None`` runs untimed.
    dedup_sends:
        Send-side deduplication of candidate vertices per destination.
    codec / sieve:
        Wire format for the candidate exchange (``"raw"``,
        ``"delta-varint"``, ``"bitmap"``, ``"auto"`` or a
        :class:`~repro.comm.Codec` instance) and the sender-side
        already-seen filter; see :mod:`repro.comm`.
    trace:
        Record a per-level profile (frontier size, candidates, words
        sent/received) under the ``"trace"`` key of the result.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; when installed, every
        level leaves nested phase spans (``td-scan``/``td-dedup``/
        ``td-pack``/``td-exchange``/``td-update``/``sync``) stamped in
        virtual time.  Tracing is passive: results and stats are
        bit-identical with or without it.
    faults / checkpoint / resume_level:
        Resilience hooks threaded by ``run_bfs``: a
        :class:`~repro.faults.FaultContext` firing the run's fault plan,
        a :class:`~repro.faults.CheckpointConfig` snapshotting the
        traversal state every N levels, and — on a restart attempt — the
        checkpointed level to resume from.

    Returns
    -------
    dict with the rank's vertex range, local ``levels``/``parents`` arrays
    and the number of levels executed.
    """
    part = Partition1D(csr.n, comm.size)
    lo, hi = part.range_of(comm.rank)
    nloc = hi - lo
    charger = Charger(comm, machine=machine, threads=threads)
    obs = resolve_tracer(tracer).for_rank(comm)
    flt = resolve_rank_faults(faults, comm, charger.machine, obs)
    channel = CommChannel(
        comm,
        partition_ranges(part, comm.size),
        codec=codec,
        sieve=make_sieve(sieve, csr.n),
        charger=charger,
        tracer=obs,
        faults=flt,
    )

    levels = np.full(nloc, -1, dtype=np.int64)
    parents = np.full(nloc, -1, dtype=np.int64)
    if lo <= source < hi:
        levels[source - lo] = 0
        parents[source - lo] = source
        frontier = np.array([source], dtype=np.int64)
    else:
        frontier = np.empty(0, dtype=np.int64)

    level = 1
    if resume_level is not None:
        snap = restore_checkpoint(checkpoint, comm, charger, obs, resume_level)
        levels[:] = snap["levels"]
        parents[:] = snap["parents"]
        frontier = snap["frontier"].copy()
        restore_sieve(channel.sieve, snap)
        level = resume_level + 1

    level_trace: list[dict] = []
    crashed = None
    while True:
        # Cooperative failure detection: every rank observes a scheduled
        # crash at the same level boundary and returns a crash marker —
        # no engine abort, so clocks, spans, and the checkpoint store
        # stay deterministic for the recovery driver to restart from.
        try:
            flt.on_level_start(level)
        except RankCrashError as crash:
            crashed = crash
            break
        with obs.span("level", level=level):
            frontier_in = int(frontier.size)
            # 1. Enumerate adjacencies of the local frontier (global vertex
            #    ids; the rank owns the frontier vertices, so the global CSR
            #    offsets are its own rows).
            with obs.span("td-scan"):
                targets, sources = csr.gather(frontier)
                charger.random(frontier.size, ws_words=2 * max(nloc, 1))
                charger.stream(
                    2.0 * targets.size, edges_scanned=float(targets.size)
                )

            # 2/3. Aggregate and bucket by owner.
            candidates = int(targets.size)
            if dedup_sends:
                # Dedup within (rank, level): cheapest when done before the
                # owner bucketing because R-MAT hubs generate many duplicates.
                with obs.span("td-dedup"):
                    targets, sources = dedup_candidates(targets, sources)
                    charger.sort(candidates)
            with obs.span("td-pack"):
                owners = part.owner_of(targets)
                send, xinfo = channel.pack_pairs(targets, sources, owners)
                charger.intops(2.0 * xinfo.pairs)  # owner computation + packing
                charger.stream(2.0 * xinfo.pairs)
                charger.count(
                    candidates=float(candidates), unique_sends=float(xinfo.pairs)
                )

            # 3. The level's single collective (codec-encoded buffers).
            with obs.span("td-exchange"):
                rv, rp = channel.exchange_pairs(send, xinfo, level=level)

            # 4. Owner-side visited checks (Algorithm 2 lines 23-26).  The
            #    received pairs from different sources may share targets.
            with obs.span("td-update"):
                charger.random(float(rv.size), ws_words=max(nloc, 1))
                unvisited = levels[rv - lo] < 0
                rv, rp = dedup_candidates(rv[unvisited], rp[unvisited])
                levels[rv - lo] = level
                parents[rv - lo] = rp
                frontier = rv
                if threads > 1:
                    charger.thread_merge(float(frontier.size))
                charger.stream(float(frontier.size))

            if trace:
                level_trace.append(
                    {
                        "level": level,
                        "frontier": frontier_in,
                        "candidates": candidates,
                        "words_sent": int(2 * xinfo.pairs),
                        "wire_words": int(xinfo.wire_words),
                        "sieve_dropped": xinfo.dropped,
                        "discovered": int(frontier.size),
                    }
                )

            # 5. Global termination test.
            with obs.span("sync"):
                charger.level_overhead()
                with obs.span("allreduce"):
                    total_new = comm.allreduce(int(frontier.size))

            # The termination Allreduce just made level complete on every
            # rank — the globally-consistent point a snapshot must cover.
            if checkpoint is not None and total_new > 0 and checkpoint.due(level):
                state = {"levels": levels, "parents": parents, "frontier": frontier}
                state.update(sieve_state(channel.sieve))
                save_checkpoint(checkpoint, comm, charger, obs, level, state)
        if total_new == 0:
            break
        level += 1

    result = {
        "lo": lo,
        "hi": hi,
        "levels": levels,
        "parents": parents,
        "nlevels": level,
    }
    if crashed is not None:
        result["crashed"] = crashed
    if trace:
        result["trace"] = level_trace
    return result
