"""Distributed BFS with 1D vertex partitioning (Algorithm 2, Section 3.1).

Each rank owns a block of vertices and their adjacencies.  A BFS level:

1. enumerate the adjacencies of the local frontier (thread-parallel in the
   hybrid variant, via the cost model's thread divisor);
2. deduplicate candidates per destination ("in-node aggregation" — the
   tuned behaviour that distinguishes this code from the Graph 500
   reference implementation; can be disabled for the ablation);
3. bucket (vertex, parent) pairs by owner and exchange with a single
   ``Alltoallv``;
4. owners perform the visited checks and build the next local frontier;
5. an ``Allreduce`` detects global termination.

Only the level *interior* lives here: :class:`TopDown1D` is an
:class:`~repro.core.engine.AlgorithmStep` plugin, and the level loop,
crash markers, checkpointing and result marshaling are the
:class:`~repro.core.engine.TraversalEngine`'s.  :func:`bfs_1d` is the
SPMD rank body binding the two: run it under
:func:`repro.mpsim.run_spmd`, one call per simulated rank.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.comm import CommChannel, Sieve
from repro.comm import make_sieve as _make_sieve
from repro.comm import restore_sieve as _restore_sieve
from repro.comm import sieve_state as _sieve_state
from repro.core.engine import LevelOutcome, TraversalEngine
from repro.core.engine import partition_ranges as _partition_ranges
from repro.core.frontier import dedup_candidates
from repro.core.partition import Partition1D
from repro.graphs.csr import CSR
from repro.mpsim.communicator import Communicator

#: Names that used to live in this module; import from their new homes.
_MOVED = {
    "make_sieve": "repro.comm",
    "sieve_state": "repro.comm",
    "restore_sieve": "repro.comm",
    "partition_ranges": "repro.core.engine",
}


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.core.bfs1d.{name} moved to {_MOVED[name]}; "
            "import it from there",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            "make_sieve": _make_sieve,
            "sieve_state": _sieve_state,
            "restore_sieve": _restore_sieve,
            "partition_ranges": _partition_ranges,
        }[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class TopDown1D:
    """Algorithm 2's level interior, as an engine step plugin.

    Owns the 1D partition, the candidate-exchange
    :class:`~repro.comm.CommChannel` and the rank's traversal arrays;
    every level runs the enumerate/dedup/pack/exchange/update phases and
    terminates on an ``Allreduce`` of the new-frontier size.
    """

    result_keys = ("lo", "hi")
    charger_kwargs: dict = {}

    def __init__(
        self,
        csr: CSR,
        source: int,
        dedup_sends: bool = True,
        codec="raw",
        sieve: bool | Sieve = False,
    ):
        self.csr = csr
        self.source = source
        self.dedup_sends = dedup_sends
        self.codec = codec
        self.sieve = sieve

    def setup(self, engine: TraversalEngine) -> None:
        csr = self.csr
        comm = engine.comm
        self.comm = comm
        self.charger = engine.charger
        self.obs = engine.obs
        self.threads = engine.threads
        self.part = Partition1D(csr.n, comm.size)
        self.lo, self.hi = self.part.range_of(comm.rank)
        self.nloc = self.hi - self.lo
        self.channel = CommChannel(
            comm,
            _partition_ranges(self.part, comm.size),
            codec=self.codec,
            sieve=_make_sieve(self.sieve, csr.n),
            charger=engine.charger,
            tracer=engine.obs,
            metrics=engine.metrics,
            faults=engine.faults,
        )

        self.levels = np.full(self.nloc, -1, dtype=np.int64)
        self.parents = np.full(self.nloc, -1, dtype=np.int64)
        if self.lo <= self.source < self.hi:
            self.levels[self.source - self.lo] = 0
            self.parents[self.source - self.lo] = self.source
            self.frontier = np.array([self.source], dtype=np.int64)
        else:
            self.frontier = np.empty(0, dtype=np.int64)

    def vertex_range(self) -> tuple[int, int]:
        return (self.lo, self.hi)

    def initial_sync(self) -> None:
        # No pre-loop termination test: level 1 always runs (the source
        # rank's frontier is never empty before it).
        return None

    def begin_level(self, level: int) -> dict:
        return {"level": level}

    def step(self, level: int) -> LevelOutcome:
        csr, charger, obs = self.csr, self.charger, self.obs
        lo, nloc = self.lo, self.nloc
        frontier = self.frontier
        # 1. Enumerate adjacencies of the local frontier (global vertex
        #    ids; the rank owns the frontier vertices, so the global CSR
        #    offsets are its own rows).
        with obs.span("td-scan"):
            targets, sources = csr.gather(frontier)
            charger.random(frontier.size, ws_words=2 * max(nloc, 1))
            charger.stream(
                2.0 * targets.size, edges_scanned=float(targets.size)
            )

        # 2/3. Aggregate and bucket by owner.
        candidates = int(targets.size)
        if self.dedup_sends:
            # Dedup within (rank, level): cheapest when done before the
            # owner bucketing because R-MAT hubs generate many duplicates.
            with obs.span("td-dedup"):
                targets, sources = dedup_candidates(targets, sources)
                charger.sort(candidates)
        with obs.span("td-pack"):
            owners = self.part.owner_of(targets)
            send, xinfo = self.channel.pack_pairs(targets, sources, owners)
            charger.intops(2.0 * xinfo.pairs)  # owner computation + packing
            charger.stream(2.0 * xinfo.pairs)
            charger.count(
                candidates=float(candidates), unique_sends=float(xinfo.pairs)
            )

        # 3. The level's single collective (codec-encoded buffers).
        with obs.span("td-exchange"):
            rv, rp = self.channel.exchange_pairs(send, xinfo, level=level)

        # 4. Owner-side visited checks (Algorithm 2 lines 23-26).  The
        #    received pairs from different sources may share targets.
        with obs.span("td-update"):
            charger.random(float(rv.size), ws_words=max(nloc, 1))
            unvisited = self.levels[rv - lo] < 0
            rv, rp = dedup_candidates(rv[unvisited], rp[unvisited])
            self.levels[rv - lo] = level
            self.parents[rv - lo] = rp
            self.frontier = rv
            if self.threads > 1:
                charger.thread_merge(float(self.frontier.size))
            charger.stream(float(self.frontier.size))

        return LevelOutcome(
            candidates=candidates,
            words_sent=int(2 * xinfo.pairs),
            wire_words=int(xinfo.wire_words),
            sieve_dropped=xinfo.dropped,
        )

    def termination_sync(self) -> int:
        return self.comm.allreduce(int(self.frontier.size))

    def state(self) -> dict:
        return _sieve_state(self.channel.sieve)

    def restore(self, snapshot: dict) -> None:
        _restore_sieve(self.channel.sieve, snapshot)
        return None


def bfs_1d(
    comm: Communicator,
    csr: CSR,
    source: int,
    machine=None,
    threads: int = 1,
    dedup_sends: bool = True,
    codec="raw",
    sieve: bool | Sieve = False,
    trace: bool = False,
    tracer=None,
    faults=None,
    checkpoint=None,
    resume_level: int | None = None,
) -> dict:
    """Rank body of the 1D algorithm (flat MPI when ``threads == 1``).

    Parameters
    ----------
    comm:
        The rank's world communicator.
    csr:
        The *global* adjacency structure; ranks slice their own block
        (shared-memory simulation stands in for the distributed copy, so
        volumes — not storage — are what is measured).
    source:
        Global source vertex id (already relabeled if shuffling is on).
    machine / threads:
        Cost-model configuration; ``machine=None`` runs untimed.
    dedup_sends:
        Send-side deduplication of candidate vertices per destination.
    codec / sieve:
        Wire format for the candidate exchange (``"raw"``,
        ``"delta-varint"``, ``"bitmap"``, ``"auto"`` or a
        :class:`~repro.comm.Codec` instance) and the sender-side
        already-seen filter; see :mod:`repro.comm`.
    trace:
        Record a per-level profile (frontier size, candidates, words
        sent/received) under the ``"trace"`` key of the result.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; when installed, every
        level leaves nested phase spans (``td-scan``/``td-dedup``/
        ``td-pack``/``td-exchange``/``td-update``/``sync``) stamped in
        virtual time.  Tracing is passive: results and stats are
        bit-identical with or without it.
    faults / checkpoint / resume_level:
        Resilience hooks threaded by ``run_bfs``: a
        :class:`~repro.faults.FaultContext` firing the run's fault plan,
        a :class:`~repro.faults.CheckpointConfig` snapshotting the
        traversal state every N levels, and — on a restart attempt — the
        checkpointed level to resume from.

    Returns
    -------
    dict with the rank's vertex range, local ``levels``/``parents`` arrays
    and the number of levels executed.
    """
    step = TopDown1D(
        csr, source, dedup_sends=dedup_sends, codec=codec, sieve=sieve
    )
    return TraversalEngine(
        comm,
        step,
        machine=machine,
        threads=threads,
        trace=trace,
        tracer=tracer,
        faults=faults,
        checkpoint=checkpoint,
        resume_level=resume_level,
    ).run()
